//! Property-based tests (proptest) over the core data structures and
//! numerical invariants.

use epilepsy_monitor::core::eval::Confusion;
use epilepsy_monitor::fx::fixed::{saturate_to_width, truncate_lsbs, width_of};
use epilepsy_monitor::fx::quantize::Quantizer;
use epilepsy_monitor::fx::{pow2_range_exponent, FeatureScales};
use epilepsy_monitor::hw::pipeline::AcceleratorConfig;
use epilepsy_monitor::hw::TechParams;
use proptest::prelude::*;

proptest! {
    /// Round-trip quantisation error is bounded by half an LSB inside the
    /// representable range.
    #[test]
    fn quantizer_roundtrip_error_bounded(
        x in -1000.0f64..1000.0,
        r in -8i32..12,
        bits in 4u32..24,
    ) {
        let q = Quantizer::for_range_exponent(r, bits);
        let lo = q.decode(q.min_code());
        let hi = q.decode(q.max_code());
        if x > lo && x < hi {
            let err = (q.quantize(x) - x).abs();
            prop_assert!(err <= q.lsb() / 2.0 + 1e-12, "err {} lsb {}", err, q.lsb());
        }
    }

    /// Encoding is monotone: a larger value never gets a smaller code.
    #[test]
    fn quantizer_is_monotone(
        a in -100.0f64..100.0,
        b in -100.0f64..100.0,
        bits in 3u32..20,
    ) {
        let q = Quantizer::for_range_exponent(3, bits);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.encode(lo) <= q.encode(hi));
    }

    /// Codes always stay within the two's-complement width.
    #[test]
    fn quantizer_codes_stay_in_width(x in proptest::num::f64::ANY, bits in 2u32..30) {
        let q = Quantizer::for_range_exponent(0, bits);
        let c = q.encode(if x.is_nan() { 0.0 } else { x });
        prop_assert!(c >= q.min_code() && c <= q.max_code());
    }

    /// Eq 6: the chosen power-of-two range covers avg ± sigma.
    #[test]
    fn eq6_range_covers_one_sigma(values in proptest::collection::vec(-1e4f64..1e4, 2..64)) {
        let r = pow2_range_exponent(&values);
        let n = values.len() as f64;
        let avg = values.iter().sum::<f64>() / n;
        let sigma = (values.iter().map(|v| (v - avg) * (v - avg)).sum::<f64>() / n).sqrt();
        let bound = (r as f64).exp2();
        prop_assert!(avg - sigma > -bound - 1e-9);
        prop_assert!(avg + sigma < bound + 1e-9);
    }

    /// Homogenised scales dominate every per-feature scale.
    #[test]
    fn homogenize_dominates(rows in proptest::collection::vec(
        proptest::collection::vec(-100.0f64..100.0, 4), 2..20)) {
        let s = FeatureScales::calibrate(&rows);
        let h = s.homogenize();
        for (a, b) in s.r.iter().zip(h.r.iter()) {
            prop_assert!(b >= a);
        }
    }

    /// Arithmetic truncation equals floor division by 2^k.
    #[test]
    fn truncation_is_floor_division(v in -1_000_000_000i64..1_000_000_000, k in 0u32..30) {
        let t = truncate_lsbs(v as i128, k);
        let d = (v as f64 / (k as f64).exp2()).floor() as i128;
        prop_assert_eq!(t, d);
    }

    /// Saturation clamps into the width and is idempotent.
    #[test]
    fn saturation_is_idempotent(v in proptest::num::i64::ANY, bits in 2u32..64) {
        let s1 = saturate_to_width(v as i128, bits);
        let s2 = saturate_to_width(s1, bits);
        prop_assert_eq!(s1, s2);
        prop_assert!(width_of(s1) <= bits);
    }

    /// Confusion-matrix metrics always land in [0, 1] and GM is the
    /// geometric mean of Se and Sp.
    #[test]
    fn confusion_metrics_in_unit_interval(
        tp in 0usize..500, tn in 0usize..500, fp in 0usize..500, fn_ in 0usize..500,
    ) {
        let c = Confusion { tp, tn, fp, fn_ };
        if let Some(se) = c.sensitivity() {
            prop_assert!((0.0..=1.0).contains(&se));
        }
        if let Some(sp) = c.specificity() {
            prop_assert!((0.0..=1.0).contains(&sp));
        }
        if let (Some(se), Some(sp), Some(gm)) =
            (c.sensitivity(), c.specificity(), c.geometric_mean())
        {
            prop_assert!((gm - (se * sp).sqrt()).abs() < 1e-12);
        }
    }

    /// The accelerator cost model never returns negative or non-finite
    /// costs, and cycles follow the N_SV x N_feat law.
    #[test]
    fn cost_model_is_well_behaved(
        n_sv in 1usize..300,
        n_feat in 1usize..64,
        d_bits in 2u32..64,
        a_bits in 2u32..64,
    ) {
        let hw = AcceleratorConfig::new(n_sv, n_feat, d_bits, a_bits);
        let c = hw.cost(&TechParams::default());
        prop_assert!(c.energy_nj.is_finite() && c.energy_nj > 0.0);
        prop_assert!(c.area_mm2.is_finite() && c.area_mm2 > 0.0);
        prop_assert_eq!(hw.cycles(), (n_sv * n_feat + 2 * n_sv + n_feat) as u64);
    }

    /// Pearson correlation is symmetric and bounded.
    #[test]
    fn pearson_symmetric_bounded(
        x in proptest::collection::vec(-100.0f64..100.0, 8..64),
        seed in 0u64..1000,
    ) {
        // Build y as a deterministic mix of x and pseudo-noise.
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let n = ((seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 33)
                    as f64)
                    / (1u64 << 31) as f64
                    - 0.5;
                0.3 * v + n * 10.0
            })
            .collect();
        let ab = epilepsy_monitor::dsp::stats::pearson(&x, &y).unwrap();
        let ba = epilepsy_monitor::dsp::stats::pearson(&y, &x).unwrap();
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!(ab.abs() <= 1.0 + 1e-12);
    }
}
