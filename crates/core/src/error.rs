//! Error type for the tailoring pipeline.

use std::fmt;

/// Errors produced by the seizure-detection pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// SVM training failed.
    Svm(svm::SvmError),
    /// Feature extraction failed.
    Feature(ecg_features::FeatureError),
    /// The requested configuration is inconsistent.
    InvalidConfig(String),
    /// The dataset cannot support the requested operation (e.g. empty
    /// training fold, single-class fold).
    Dataset(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Svm(e) => write!(f, "svm failure: {e}"),
            CoreError::Feature(e) => write!(f, "feature extraction failure: {e}"),
            CoreError::InvalidConfig(s) => write!(f, "invalid configuration: {s}"),
            CoreError::Dataset(s) => write!(f, "dataset problem: {s}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Svm(e) => Some(e),
            CoreError::Feature(e) => Some(e),
            _ => None,
        }
    }
}

impl From<svm::SvmError> for CoreError {
    fn from(e: svm::SvmError) -> Self {
        CoreError::Svm(e)
    }
}

impl From<ecg_features::FeatureError> for CoreError {
    fn from(e: ecg_features::FeatureError) -> Self {
        CoreError::Feature(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = svm::SvmError::InvalidConfig("c").into();
        assert!(e.to_string().contains("svm"));
        assert!(e.source().is_some());
        let e: CoreError = ecg_features::FeatureError::TooFewBeats { needed: 8, got: 0 }.into();
        assert!(e.to_string().contains("feature"));
        let e = CoreError::InvalidConfig("bad".into());
        assert!(e.source().is_none());
        assert!(CoreError::Dataset("x".into())
            .to_string()
            .contains("dataset"));
    }
}
