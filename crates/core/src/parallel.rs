//! Deterministic data parallelism on OS threads.
//!
//! The evaluation layer fans independent work items (LOSO folds, sweep
//! points, grid cells) across `std::thread::scope` workers. No external
//! runtime is required, and determinism is structural: every item is
//! computed independently and its result is written back to the item's
//! own output slot, so the caller always observes results in input order
//! regardless of scheduling. Combined with a fixed aggregation order this
//! makes the parallel evaluation paths bit-identical to their sequential
//! twins.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use for `n` items: the machine's available
/// parallelism, capped by the item count (minimum 1).
pub fn worker_count(n: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(n).max(1)
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Items are pulled from a shared atomic counter, so uneven item costs
/// (e.g. LOSO folds with very different training-set sizes) balance
/// across workers. Falls back to a plain sequential map when only one
/// worker is warranted, keeping single-core machines overhead-free.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker wrote every claimed slot"))
        .collect()
}

/// Indexed variant of [`par_map`]: `f` receives `(index, &item)`.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let indexed: Vec<usize> = (0..items.len()).collect();
    par_map(&indexed, |&i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |&i| i * 3);
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_variant_sees_indices() {
        let items = vec!["a", "b", "c"];
        let out = par_map_indexed(&items, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map(&[] as &[usize], |&i| i), Vec::<usize>::new());
        assert_eq!(par_map(&[7usize], |&i| i + 1), vec![8]);
    }

    #[test]
    fn matches_sequential_map_bitwise() {
        // f64 work: parallel scheduling must not change a single bit.
        let items: Vec<f64> = (0..100).map(|i| i as f64 * 0.37).collect();
        let work = |&x: &f64| (x.sin() * 1e6).sqrt() + x.powi(3);
        let seq: Vec<f64> = items.iter().map(work).collect();
        let par = par_map(&items, work);
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn worker_count_is_bounded() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1000) >= 1);
    }
}
