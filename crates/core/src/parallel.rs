//! Deterministic data parallelism on a persistent worker pool.
//!
//! The evaluation layer fans independent work items (LOSO folds, sweep
//! points, grid cells, patient streams) across OS threads. Up to PR 2
//! every [`par_map`] call paid a full `std::thread::scope` spawn/join
//! cycle; the sweep drivers (`loso_evaluate`, `bit_grid_evaluate`,
//! `feature_sweep`, `run_streams_parallel`) call it thousands of times,
//! so the spawn overhead was a real tax. [`par_map`] now dispatches onto
//! a lazily-initialised global [`WorkerPool`]: workers are spawned once,
//! park on a condvar between jobs, and claim items from a shared atomic
//! counter exactly as before.
//!
//! Determinism is structural and unchanged: every item is computed
//! independently and its result is written to the item's own output
//! slot, so the caller always observes results in input order regardless
//! of scheduling. Combined with a fixed aggregation order this makes the
//! parallel evaluation paths bit-identical to their sequential twins.
//!
//! Nested calls (an item's `f` calling [`par_map`] again, on the caller
//! thread or on a pool worker) fall back to a plain sequential map — the
//! pool runs one job at a time and nesting would otherwise deadlock on
//! the submission lock.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

thread_local! {
    /// Set while this thread is inside a pool job (as the submitting
    /// caller or as a pool worker): nested [`par_map`] calls go
    /// sequential instead of deadlocking on the one-job-at-a-time pool.
    static IN_POOL_JOB: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads to use for `n` items: the machine's available
/// parallelism, capped by the item count (minimum 1).
pub fn worker_count(n: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(n).max(1)
}

/// One dispatched job: a type-erased "run the shared work loop" closure.
/// The raw pointer's referent lives on the submitting caller's stack;
/// the submission protocol guarantees no worker touches it after the
/// caller's dispatch returns (the caller blocks until every worker has
/// finished the epoch).
#[derive(Clone, Copy)]
struct Job {
    body: *const (dyn Fn() + Sync + 'static),
}

// SAFETY: the pointee is `Sync` (it is a `&dyn Fn() + Sync`) and the
// dispatch protocol bounds its lifetime (the submitting frame stays
// blocked until every worker finishes the epoch), so moving the pointer
// between threads is sound.
unsafe impl Send for Job {}

struct PoolState {
    /// Current job, present while an epoch is in flight.
    job: Option<Job>,
    /// Bumped once per dispatched job; workers run each epoch exactly
    /// once.
    epoch: u64,
    /// Workers still executing the current epoch.
    active: usize,
    /// Workers whose job body panicked this epoch.
    panics: usize,
    /// Set by [`WorkerPool::drop`]: parked workers exit their loop.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work: Condvar,
    done: Condvar,
}

/// Ignore mutex poisoning: pool state is only mutated under the small,
/// panic-free protocol sections below; job-body panics are caught and
/// recorded, never unwound through a held lock.
fn lock(m: &Mutex<PoolState>) -> MutexGuard<'_, PoolState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A persistent pool of parked worker threads executing one
/// order-preserving parallel map at a time.
///
/// Construct explicitly for tests/benches; production callers go through
/// [`par_map`], which lazily initialises one global pool sized to the
/// machine (`available_parallelism - 1` workers — the submitting caller
/// participates, so total executors equal the hardware width).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Submission lock: one job at a time; held for a whole dispatch.
    submit: Mutex<()>,
    workers: usize,
    /// Join handles, drained on drop so an explicitly constructed pool
    /// releases its threads deterministically.
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns `workers` parked worker threads (0 is valid: every dispatch
    /// then runs entirely on the caller). Dropping the pool shuts them
    /// down and joins them.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                active: 0,
                panics: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("seizure-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            submit: Mutex::new(()),
            workers,
            handles,
        }
    }

    /// Number of persistent workers (the caller adds one executor on
    /// top during a dispatch).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Order-preserving parallel map over `items` on this pool.
    ///
    /// Falls back to a plain sequential map for empty/single-item inputs,
    /// worker-less pools, and nested calls.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f`: the caller's own panic payload is
    /// rethrown after every worker has finished; worker panics are
    /// re-raised as `"pool worker panicked"`.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        if n <= 1 || self.workers == 0 || IN_POOL_JOB.get() {
            return items.iter().map(f).collect();
        }

        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let slots = SlotWriter(out.as_mut_ptr());
        let next = AtomicUsize::new(0);
        let body = || {
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                // SAFETY: `i < n` (checked above) and each index is
                // claimed by exactly one executor via the shared atomic
                // counter, so this is a race-free write to a distinct
                // in-bounds slot.
                unsafe { slots.write(i, r) };
            }
        };
        let body_ref: &(dyn Fn() + Sync) = &body;
        let job = Job {
            // SAFETY: erases the stack lifetime only for the duration of
            // the dispatch — the protocol below keeps the closure alive
            // (this frame blocked in the `active > 0` wait) until every
            // worker has finished the epoch, and `st.job` is cleared
            // before returning.
            body: unsafe {
                std::mem::transmute::<&(dyn Fn() + Sync), *const (dyn Fn() + Sync + 'static)>(
                    body_ref,
                )
            },
        };

        // One job at a time: if another thread is mid-dispatch, stay
        // productive on scoped spawn threads instead of queueing idle —
        // concurrent top-level callers must not serialise behind each
        // other.
        let _submission = match self.submit.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                return par_map_spawn_n(items, self.workers + 1, f);
            }
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        };
        {
            let mut st = lock(&self.shared.state);
            st.job = Some(job);
            st.epoch += 1;
            st.active = self.workers;
            st.panics = 0;
            self.shared.work.notify_all();
        }
        // The caller participates in its own job (and must not submit a
        // nested one while doing so).
        IN_POOL_JOB.set(true);
        let caller_result = catch_unwind(AssertUnwindSafe(body_ref));
        IN_POOL_JOB.set(false);
        let worker_panics = {
            let mut st = lock(&self.shared.state);
            while st.active > 0 {
                st = self.shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.job = None;
            st.panics
        };
        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
        assert!(worker_panics == 0, "pool worker panicked");
        out.into_iter()
            .map(|r| r.expect("every claimed slot written"))
            .collect()
    }

    /// Order-preserving parallel map over **mutable** items on this pool
    /// — the shard-scoped twin of [`WorkerPool::par_map`], built for
    /// stages that mutate per-item state in place (e.g. one streaming
    /// session's extractor per item). Results come back in input order
    /// and each item's `&mut` borrow is taken by exactly one executor,
    /// so there are no locks on the work path.
    ///
    /// Falls back to a plain sequential map for empty/single-item
    /// inputs, worker-less pools, nested calls, and when another thread
    /// is mid-dispatch on this pool (mutable items cannot ride the
    /// scoped-spawn fallback shared work queue semantics of `par_map`;
    /// serialising onto the caller keeps the no-deadlock guarantee).
    ///
    /// # Panics
    ///
    /// Propagates panics from `f` exactly like [`WorkerPool::par_map`].
    pub fn par_map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        let n = items.len();
        if n <= 1 || self.workers == 0 || IN_POOL_JOB.get() {
            return items.iter_mut().map(f).collect();
        }

        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let slots = SlotWriter(out.as_mut_ptr());
        let base = ItemWriter(items.as_mut_ptr());
        let next = AtomicUsize::new(0);
        let body = || {
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: `i < n` (checked above) and each index is
                // claimed by exactly one executor via the shared atomic
                // counter, so the `&mut` borrows are disjoint.
                let r = f(unsafe { base.get_mut(i) });
                // SAFETY: same claim discipline — exactly one executor
                // writes slot `i`, which is in bounds.
                unsafe { slots.write(i, r) };
            }
        };
        let body_ref: &(dyn Fn() + Sync) = &body;
        let job = Job {
            // SAFETY: erases the stack lifetime only for the duration of
            // the dispatch — the protocol below keeps the closure alive
            // (this frame blocked in the `active > 0` wait) until every
            // worker has finished the epoch, and `st.job` is cleared
            // before returning.
            body: unsafe {
                std::mem::transmute::<&(dyn Fn() + Sync), *const (dyn Fn() + Sync + 'static)>(
                    body_ref,
                )
            },
        };

        let _submission = match self.submit.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                return items.iter_mut().map(f).collect();
            }
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        };
        {
            let mut st = lock(&self.shared.state);
            st.job = Some(job);
            st.epoch += 1;
            st.active = self.workers;
            st.panics = 0;
            self.shared.work.notify_all();
        }
        // The caller participates in its own job (and must not submit a
        // nested one while doing so).
        IN_POOL_JOB.set(true);
        let caller_result = catch_unwind(AssertUnwindSafe(body_ref));
        IN_POOL_JOB.set(false);
        let worker_panics = {
            let mut st = lock(&self.shared.state);
            while st.active > 0 {
                st = self.shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.job = None;
            st.panics
        };
        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
        assert!(worker_panics == 0, "pool worker panicked");
        out.into_iter()
            .map(|r| r.expect("every claimed slot written"))
            .collect()
    }
}

/// Raw mutable-access handle into the item slice of a
/// [`WorkerPool::par_map_mut`] dispatch; `Send + Sync` because each
/// index is claimed by exactly one executor (the shared atomic counter),
/// so the `&mut` borrows handed out are disjoint while the owning slice
/// outlives the job.
struct ItemWriter<T>(*mut T);

// SAFETY: the pointer targets a `&mut [T]` (exclusive) slice owned by the
// blocked dispatching frame; per-index claims make cross-thread access
// disjoint, so the handle may move between executor threads.
unsafe impl<T: Send> Send for ItemWriter<T> {}
// SAFETY: shared across executors by reference, but every dereference is
// to a distinct claimed index — no two threads touch the same element.
unsafe impl<T: Send> Sync for ItemWriter<T> {}

impl<T> ItemWriter<T> {
    /// # Safety
    ///
    /// `i` must be in bounds and claimed by exactly one executor.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self, i: usize) -> &mut T {
        // SAFETY: caller contract — `i` in bounds, claimed exactly once,
        // and the owning slice outlives the job.
        unsafe { &mut *self.0.add(i) }
    }
}

/// Raw write handle into the output slot vector; `Send + Sync` because
/// distinct indices are written by distinct executors exactly once while
/// the owning vector outlives the job.
struct SlotWriter<R>(*mut Option<R>);

// SAFETY: the pointer targets the output vector owned by the blocked
// dispatching frame; per-index claims make cross-thread writes disjoint,
// so the handle may move between executor threads.
unsafe impl<R: Send> Send for SlotWriter<R> {}
// SAFETY: shared across executors by reference, but every write lands in
// a distinct claimed slot — no two threads touch the same element.
unsafe impl<R: Send> Sync for SlotWriter<R> {}

impl<R> SlotWriter<R> {
    /// # Safety
    ///
    /// `i` must be in bounds and claimed by exactly one executor.
    unsafe fn write(&self, i: usize, r: R) {
        // SAFETY: caller contract — `i` in bounds, claimed exactly once,
        // and the owning vector outlives the job.
        unsafe { *self.0.add(i) = Some(r) };
    }
}

impl Drop for WorkerPool {
    /// Shuts the workers down and joins them, so explicitly constructed
    /// pools (tests, benches) release their threads deterministically.
    /// `&mut self` guarantees no dispatch is in flight on this pool.
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    // Anything `f` runs on this thread must not re-enter the pool.
    IN_POOL_JOB.set(true);
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job.expect("epoch bumped with a job installed");
                }
                st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        // SAFETY: the job pointer stays valid for the whole epoch — the
        // submitting frame blocks until `active` drops to zero, which
        // happens only after this call returns (see the protocol in
        // `par_map`).
        let ok = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.body)() })).is_ok();
        let mut st = lock(&shared.state);
        if !ok {
            st.panics += 1;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

/// The global pool behind [`par_map`]: `available_parallelism - 1`
/// persistent workers, spawned on first use. Crate-visible so machinery
/// that sizes its stages to the default pool (the fleet scheduler) can
/// ask for the executor count without forcing its own pool.
pub(crate) fn global_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(worker_count(usize::MAX).saturating_sub(1)))
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Items are pulled from a shared atomic counter, so uneven item costs
/// (e.g. LOSO folds with very different training-set sizes) balance
/// across executors. Runs on the persistent global [`WorkerPool`] — no
/// per-call thread spawning — and falls back to a plain sequential map
/// on single-core machines, tiny inputs and nested calls, keeping those
/// paths overhead-free.
///
/// # Panics
///
/// Propagates panics from `f` (the dispatch waits for all workers
/// first).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    global_pool().par_map(items, f)
}

/// Maps `f` over **mutable** items in parallel on the global pool,
/// returning results in input order — the free twin of
/// [`WorkerPool::par_map_mut`], with the same sequential fallbacks.
///
/// # Panics
///
/// Propagates panics from `f` (the dispatch waits for all workers
/// first).
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    global_pool().par_map_mut(items, f)
}

/// Indexed variant of [`par_map`]: `f` receives `(index, &item)`.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let indexed: Vec<usize> = (0..items.len()).collect();
    par_map(&indexed, |&i| f(i, &items[i]))
}

/// The pre-pool implementation — a full `std::thread::scope` spawn/join
/// per call — kept as the overhead reference the kernel bench compares
/// the persistent pool against. Semantically identical to [`par_map`].
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn par_map_spawn<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_spawn_n(items, worker_count(items.len()), f)
}

/// [`par_map_spawn`] with an explicit worker count (so benches can match
/// pool and spawn executor counts on any machine).
pub fn par_map_spawn_n<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker wrote every claimed slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |&i| i * 3);
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_variant_sees_indices() {
        let items = vec!["a", "b", "c"];
        let out = par_map_indexed(&items, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map(&[] as &[usize], |&i| i), Vec::<usize>::new());
        assert_eq!(par_map(&[7usize], |&i| i + 1), vec![8]);
    }

    #[test]
    fn matches_sequential_map_bitwise() {
        // f64 work: parallel scheduling must not change a single bit.
        let items: Vec<f64> = (0..100).map(|i| i as f64 * 0.37).collect();
        let work = |&x: &f64| (x.sin() * 1e6).sqrt() + x.powi(3);
        let seq: Vec<f64> = items.iter().map(work).collect();
        let par = par_map(&items, work);
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn worker_count_is_bounded() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1000) >= 1);
    }

    #[test]
    fn explicit_pool_keeps_order_across_many_jobs() {
        // A real multi-worker pool regardless of the host's core count,
        // reused across many dispatches (the persistent-pool property).
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        for round in 0..50usize {
            let items: Vec<usize> = (0..97).collect();
            let out = pool.par_map(&items, |&i| i * 7 + round);
            assert_eq!(out, items.iter().map(|i| i * 7 + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn explicit_pool_is_bitwise_deterministic() {
        let pool = WorkerPool::new(4);
        let items: Vec<f64> = (0..200).map(|i| i as f64 * 0.21 - 13.0).collect();
        let work = |&x: &f64| (x.cos() * 1e3).abs().sqrt() + x * x;
        let seq: Vec<f64> = items.iter().map(work).collect();
        for _ in 0..10 {
            let par = pool.par_map(&items, work);
            for (a, b) in seq.iter().zip(par.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn nested_calls_fall_back_to_sequential() {
        let pool = WorkerPool::new(2);
        let outer: Vec<usize> = (0..8).collect();
        // The inner par_map (on the global pool) runs while this thread
        // or a pool worker is inside a job — it must complete sequentially
        // rather than deadlock.
        let out = pool.par_map(&outer, |&i| {
            let inner: Vec<usize> = (0..5).collect();
            par_map(&inner, |&j| i * 10 + j).iter().sum::<usize>()
        });
        let want: Vec<usize> = outer
            .iter()
            .map(|&i| (0..5).map(|j| i * 10 + j).sum())
            .collect();
        assert_eq!(out, want);
    }

    #[test]
    fn par_map_mut_mutates_in_place_and_keeps_order() {
        let pool = WorkerPool::new(3);
        for round in 0..20usize {
            let mut items: Vec<usize> = (0..97).collect();
            let out = pool.par_map_mut(&mut items, |v| {
                *v += round;
                *v * 2
            });
            for (i, (item, r)) in items.iter().zip(&out).enumerate() {
                assert_eq!(*item, i + round);
                assert_eq!(*r, (i + round) * 2);
            }
        }
        // The free global-pool variant agrees (sequential fallback or
        // not, results and mutations are identical).
        let mut items: Vec<usize> = (0..31).collect();
        let out = par_map_mut(&mut items, |v| {
            *v += 1;
            *v
        });
        assert_eq!(out, (1..32).collect::<Vec<_>>());
        assert_eq!(items, (1..32).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_mut_nested_calls_fall_back_to_sequential() {
        let pool = WorkerPool::new(2);
        let outer: Vec<usize> = (0..6).collect();
        let out = pool.par_map(&outer, |&i| {
            let mut inner: Vec<usize> = (0..4).collect();
            par_map_mut(&mut inner, |v| {
                *v += i * 10;
                *v
            })
            .iter()
            .sum::<usize>()
        });
        let want: Vec<usize> = outer
            .iter()
            .map(|&i| (0..4).map(|j| j + i * 10).sum())
            .collect();
        assert_eq!(out, want);
    }

    #[test]
    fn par_map_mut_propagates_panics_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let mut items: Vec<usize> = (0..64).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_mut(&mut items, |v| {
                assert!(*v != 13, "boom at {v}");
                *v
            })
        }));
        assert!(caught.is_err());
        let mut items: Vec<usize> = (0..64).collect();
        let out = pool.par_map_mut(&mut items, |v| *v + 1);
        assert_eq!(out[63], 64);
    }

    #[test]
    fn pool_propagates_panics_and_survives_them() {
        let pool = WorkerPool::new(2);
        let items: Vec<usize> = (0..64).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |&i| {
                assert!(i != 13, "boom at {i}");
                i
            })
        }));
        assert!(caught.is_err());
        // The pool must stay usable after a panicked job.
        let out = pool.par_map(&items, |&i| i + 1);
        assert_eq!(out[63], 64);
    }

    #[test]
    fn spawn_reference_matches_pool() {
        let items: Vec<usize> = (0..123).collect();
        let pool = WorkerPool::new(3);
        let a = pool.par_map(&items, |&i| i * i);
        let b = par_map_spawn_n(&items, 4, |&i| i * i);
        let c = par_map_spawn(&items, |&i| i * i);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn zero_worker_pool_runs_sequentially() {
        let pool = WorkerPool::new(0);
        let items: Vec<usize> = (0..10).collect();
        assert_eq!(pool.par_map(&items, |&i| i * 2)[9], 18);
    }

    #[test]
    fn dropping_a_pool_joins_its_workers() {
        // Drop must terminate and join the parked workers — if shutdown
        // were broken this test would hang on the joins.
        let pool = WorkerPool::new(3);
        let items: Vec<usize> = (0..40).collect();
        assert_eq!(pool.par_map(&items, |&i| i + 1)[39], 40);
        drop(pool);
    }

    #[test]
    fn concurrent_callers_do_not_serialise_behind_the_submit_lock() {
        // Two threads dispatching onto one busy pool: the loser of the
        // try_lock falls back to scoped spawn threads and both finish
        // with correct, ordered results.
        let pool = WorkerPool::new(2);
        let items: Vec<usize> = (0..500).collect();
        let work = |&i: &usize| {
            std::hint::black_box((0..200).fold(i, |a, b| a.wrapping_add(b)));
            i * 3
        };
        let want: Vec<usize> = items.iter().map(work).collect();
        std::thread::scope(|s| {
            let jobs: Vec<_> = (0..4)
                .map(|_| s.spawn(|| pool.par_map(&items, work)))
                .collect();
            for j in jobs {
                assert_eq!(j.join().expect("caller thread"), want);
            }
        });
    }
}
