//! Classification-performance evaluation (paper Eq 2) under
//! leave-one-session-out cross-validation.
//!
//! Folds are independent by construction, so [`loso_evaluate`] runs them
//! on the parallel layer ([`crate::parallel`]) and aggregates in the fixed
//! first-appearance session order — making it bit-identical to the
//! sequential twin [`loso_evaluate_serial`] (a property the test suite
//! pins). Predictors consume whole test batches as contiguous row-major
//! blocks ([`DenseMatrix`]) instead of dispatching row by row.

use crate::alarm::{
    score_events, session_decision_sequence, truth_events, AlarmConfig, AlarmStateMachine,
    EventMetrics, EventScoring,
};
use crate::config::FitConfig;
use crate::error::CoreError;
use crate::parallel::par_map;
use crate::trained::FloatPipeline;
use ecg_features::{DenseMatrix, FeatureMatrix};
use ecg_sim::dataset::DatasetSpec;
use svm::{decision_is_seizure, ClassifierEngine};

/// Confusion counts for the two-class seizure problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// Seizure windows classified as seizure.
    pub tp: usize,
    /// Non-seizure windows classified as non-seizure.
    pub tn: usize,
    /// Non-seizure windows classified as seizure (false alarms).
    pub fp: usize,
    /// Seizure windows missed.
    pub fn_: usize,
}

impl Confusion {
    /// Adds one prediction. `predicted` may be a `±1` class label or a
    /// raw decision value — either way the seizure side is decided by the
    /// shared [`decision_is_seizure`] boundary (`>= 0.0`, ties positive),
    /// so batch metrics can never disagree with `classify`/streaming on
    /// boundary windows.
    pub fn record(&mut self, truth: i8, predicted: f64) {
        match (truth > 0, decision_is_seizure(predicted)) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Builds a confusion from aligned truth/prediction batches.
    ///
    /// # Panics
    ///
    /// Panics when the slices disagree in length.
    pub fn from_batch(truth: &[i8], predicted: &[f64]) -> Confusion {
        assert_eq!(
            truth.len(),
            predicted.len(),
            "truth/prediction length mismatch"
        );
        let mut c = Confusion::default();
        for (&t, &p) in truth.iter().zip(predicted.iter()) {
            c.record(t, p);
        }
        c
    }

    /// Merges another confusion into this one.
    pub fn merge(&mut self, other: &Confusion) {
        self.tp += other.tp;
        self.tn += other.tn;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// Sensitivity `TP / (TP + FN)`; `None` without positive examples.
    pub fn sensitivity(&self) -> Option<f64> {
        let d = self.tp + self.fn_;
        (d > 0).then(|| self.tp as f64 / d as f64)
    }

    /// Specificity `TN / (TN + FP)`; `None` without negative examples.
    pub fn specificity(&self) -> Option<f64> {
        let d = self.tn + self.fp;
        (d > 0).then(|| self.tn as f64 / d as f64)
    }

    /// Geometric mean `sqrt(Se × Sp)`; `None` unless both are defined.
    pub fn geometric_mean(&self) -> Option<f64> {
        Some((self.sensitivity()? * self.specificity()?).sqrt())
    }

    /// Total classified windows.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }
}

/// Aggregated Se/Sp/GM triple.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Metrics {
    /// Mean sensitivity.
    pub se: f64,
    /// Mean specificity.
    pub sp: f64,
    /// Mean geometric mean.
    pub gm: f64,
}

/// Outcome of one leave-one-session-out fold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldOutcome {
    /// Test session id.
    pub session_id: usize,
    /// Confusion over the fold's test windows.
    pub confusion: Confusion,
    /// Support-vector count of the fold's trained model.
    pub n_sv: usize,
}

/// Aggregate result over all folds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LosoResult {
    /// Per-fold outcomes (successful folds only).
    pub folds: Vec<FoldOutcome>,
    /// Folds skipped because training failed (e.g. single-class fold).
    pub skipped: usize,
    /// Mean sensitivity over folds where it is defined.
    pub mean_se: f64,
    /// Mean specificity over folds where it is defined.
    pub mean_sp: f64,
    /// Mean geometric mean over folds where both Se and Sp are defined —
    /// the paper's headline metric.
    pub mean_gm: f64,
    /// Mean support-vector count across folds (drives the HW cost model).
    pub mean_n_sv: f64,
}

impl LosoResult {
    fn from_folds(folds: Vec<FoldOutcome>, skipped: usize) -> LosoResult {
        let mean_over = |vals: Vec<f64>| {
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        };
        let mean_se = mean_over(
            folds
                .iter()
                .filter_map(|f| f.confusion.sensitivity())
                .collect(),
        );
        let mean_sp = mean_over(
            folds
                .iter()
                .filter_map(|f| f.confusion.specificity())
                .collect(),
        );
        let mean_gm = mean_over(
            folds
                .iter()
                .filter_map(|f| f.confusion.geometric_mean())
                .collect(),
        );
        let mean_n_sv = mean_over(folds.iter().map(|f| f.n_sv as f64).collect());
        LosoResult {
            folds,
            skipped,
            mean_se,
            mean_sp,
            mean_gm,
            mean_n_sv,
        }
    }

    /// Mean SV count rounded to a design point, or 0 when no fold
    /// trained (NaN mean). Central guard for the hardware-costing sites.
    pub fn mean_n_sv_rounded(&self) -> usize {
        if self.mean_n_sv.is_finite() {
            self.mean_n_sv.round() as usize
        } else {
            0
        }
    }

    /// Pooled confusion over all folds (micro-average view).
    pub fn pooled(&self) -> Confusion {
        let mut c = Confusion::default();
        for f in &self.folds {
            c.merge(&f.confusion);
        }
        c
    }
}

/// Runs one fold: split, fit on the training side, batch-classify the
/// test side. `None` marks a skipped fold (degenerate split or failed
/// fit).
fn run_fold<P, F>(m: &FeatureMatrix, sid: usize, fit: &F) -> Option<FoldOutcome>
where
    F: Fn(&FeatureMatrix) -> Result<(P, usize), CoreError>,
    P: Fn(&DenseMatrix<f64>) -> Vec<f64>,
{
    let (train, test) = m.split_by_session(sid);
    if train.n_rows() == 0 || test.n_rows() == 0 {
        return None;
    }
    let (predict, n_sv) = fit(&train).ok()?;
    let predictions = predict(&test.features);
    let confusion = Confusion::from_batch(&test.labels, &predictions);
    Some(FoldOutcome {
        session_id: sid,
        confusion,
        n_sv,
    })
}

/// Collects per-fold options (in session order) into a result.
fn aggregate(outcomes: Vec<Option<FoldOutcome>>) -> LosoResult {
    let mut folds = Vec::with_capacity(outcomes.len());
    let mut skipped = 0usize;
    for o in outcomes {
        match o {
            Some(f) => folds.push(f),
            None => skipped += 1,
        }
    }
    LosoResult::from_folds(folds, skipped)
}

/// Generic leave-one-session-out evaluation, folds in parallel: `fit`
/// builds a batch predictor from a training matrix, returning the
/// predictor and its SV count. Folds whose `fit` fails are skipped and
/// counted. Aggregation runs in first-appearance session order, so the
/// result is bit-identical to [`loso_evaluate_with_serial`].
pub fn loso_evaluate_with<P, F>(m: &FeatureMatrix, fit: F) -> LosoResult
where
    F: Fn(&FeatureMatrix) -> Result<(P, usize), CoreError> + Sync,
    P: Fn(&DenseMatrix<f64>) -> Vec<f64>,
{
    let sessions = m.session_list();
    aggregate(par_map(&sessions, |&sid| run_fold(m, sid, &fit)))
}

/// Sequential twin of [`loso_evaluate_with`] (reference semantics; also
/// the right choice when the caller already parallelises at a coarser
/// grain and wants to bound thread counts).
pub fn loso_evaluate_with_serial<P, F>(m: &FeatureMatrix, fit: F) -> LosoResult
where
    F: Fn(&FeatureMatrix) -> Result<(P, usize), CoreError>,
    P: Fn(&DenseMatrix<f64>) -> Vec<f64>,
{
    let sessions = m.session_list();
    aggregate(sessions.iter().map(|&sid| run_fold(m, sid, &fit)).collect())
}

/// A fold fitter that produces any [`ClassifierEngine`] backend — the
/// seam through which the float and quantised paths are interchangeable.
pub type BoxedEngine = Box<dyn ClassifierEngine>;

/// Boxed batch predictor produced by the engine adapter.
type BatchPredictor = Box<dyn Fn(&DenseMatrix<f64>) -> Vec<f64>>;

/// Adapter from an engine builder to the generic fold-fitter shape: the
/// fold's test batch is classified through the trait's `classify_batch`
/// and the SV count comes from the engine's cost metadata.
fn engine_fit<F>(
    build: F,
) -> impl Fn(&FeatureMatrix) -> Result<(BatchPredictor, usize), CoreError> + Sync
where
    F: Fn(&FeatureMatrix) -> Result<BoxedEngine, CoreError> + Sync,
{
    move |train: &FeatureMatrix| {
        let engine = build(train)?;
        let n_sv = engine.info().n_support_vectors;
        let predictor: BatchPredictor = Box::new(move |rows| engine.classify_batch(rows));
        Ok((predictor, n_sv))
    }
}

/// Leave-one-session-out evaluation of any [`ClassifierEngine`] backend,
/// folds in parallel: `build` fits one engine per training fold (float
/// pipeline, quantised engine, anything implementing the trait).
pub fn loso_evaluate_engine<F>(m: &FeatureMatrix, build: F) -> LosoResult
where
    F: Fn(&FeatureMatrix) -> Result<BoxedEngine, CoreError> + Sync,
{
    loso_evaluate_with(m, engine_fit(build))
}

/// Sequential twin of [`loso_evaluate_engine`]; bit-identical results.
pub fn loso_evaluate_engine_serial<F>(m: &FeatureMatrix, build: F) -> LosoResult
where
    F: Fn(&FeatureMatrix) -> Result<BoxedEngine, CoreError> + Sync,
{
    loso_evaluate_with_serial(m, engine_fit(build))
}

/// The standard engine builder: the float reference pipeline under `cfg`.
fn float_engine(
    cfg: &FitConfig,
) -> impl Fn(&FeatureMatrix) -> Result<BoxedEngine, CoreError> + Sync + '_ {
    move |train: &FeatureMatrix| Ok(Box::new(FloatPipeline::fit(train, cfg)?) as BoxedEngine)
}

/// Leave-one-session-out evaluation of the float reference pipeline,
/// folds in parallel (routed through the [`ClassifierEngine`] seam).
pub fn loso_evaluate(m: &FeatureMatrix, cfg: &FitConfig) -> LosoResult {
    loso_evaluate_engine(m, float_engine(cfg))
}

/// Sequential twin of [`loso_evaluate`]; produces bit-identical results.
pub fn loso_evaluate_serial(m: &FeatureMatrix, cfg: &FitConfig) -> LosoResult {
    loso_evaluate_engine_serial(m, float_engine(cfg))
}

/// Outcome of one leave-one-session-out fold with the alarm stage on
/// top: window-level confusion plus event-level metrics of the held-out
/// session.
#[derive(Debug, Clone, PartialEq)]
pub struct EventFoldOutcome {
    /// Test session id.
    pub session_id: usize,
    /// Window-level confusion over the fold's extractable windows.
    pub confusion: Confusion,
    /// Support-vector count of the fold's trained engine.
    pub n_sv: usize,
    /// Event-level metrics of the held-out session's alarm stream.
    pub events: EventMetrics,
}

/// Aggregate of [`loso_evaluate_events_engine`]: the window-level LOSO
/// summary *plus* pooled event-level metrics, so fold reports carry
/// Se/Sp **and** FA/24h + detection latency side by side.
#[derive(Debug, Clone, PartialEq)]
pub struct LosoEventResult {
    /// Per-fold outcomes (successful folds only), in first-appearance
    /// session order.
    pub folds: Vec<EventFoldOutcome>,
    /// Folds skipped because training failed (e.g. single-class fold).
    pub skipped: usize,
    /// Mean window-level sensitivity over folds where defined.
    pub mean_se: f64,
    /// Mean window-level specificity over folds where defined.
    pub mean_sp: f64,
    /// Mean window-level geometric mean over folds where defined.
    pub mean_gm: f64,
    /// Mean support-vector count across folds.
    pub mean_n_sv: f64,
    /// Event metrics pooled over every fold (micro-average): event
    /// sensitivity, false alarms per 24 h, detection latencies.
    pub events: EventMetrics,
}

impl LosoEventResult {
    /// Pooled event sensitivity; `None` without ground-truth events.
    pub fn event_sensitivity(&self) -> Option<f64> {
        self.events.event_sensitivity()
    }

    /// Pooled false alarms per 24 h; `None` without monitored time.
    pub fn false_alarms_per_24h(&self) -> Option<f64> {
        self.events.false_alarms_per_24h()
    }

    /// Pooled median detection latency; `None` without detections.
    pub fn median_latency_s(&self) -> Option<f64> {
        self.events.median_latency_s()
    }
}

/// One held-out session evaluated at the event level: extract every
/// window (tracking drops exactly like assembly), batch-classify the
/// survivors, fold the decision sequence through the alarm machine and
/// score against the session's ground-truth seizure intervals.
fn run_event_fold(
    spec: &DatasetSpec,
    m: &FeatureMatrix,
    sid: usize,
    fit: &(impl Fn(&FeatureMatrix) -> Result<BoxedEngine, CoreError> + Sync),
    alarm_cfg: AlarmConfig,
) -> Option<EventFoldOutcome> {
    let session = spec.sessions.iter().find(|s| s.session_index == sid)?;
    let (train, test) = m.split_by_session(sid);
    if train.n_rows() == 0 || test.n_rows() == 0 {
        return None;
    }
    let engine = fit(&train).ok()?;
    let n_sv = engine.info().n_support_vectors;

    let rec = session.synthesize();
    let window_s = spec.scale.window_s();
    // Per-window decision sequence (None = dropped), same geometry the
    // streaming path sees — via the shared batch-twin routine.
    let (decisions, window_len) = session_decision_sequence(&rec, window_s, engine.as_ref());
    if window_len == 0 {
        return None;
    }

    // Window-level confusion over the extractable windows.
    let labels = rec.window_labels(window_s);
    let mut confusion = Confusion::default();
    for (label, decision) in labels.iter().zip(decisions.iter()) {
        if let Some(d) = decision {
            confusion.record(if label.is_seizure { 1 } else { -1 }, *d);
        }
    }

    // Event level: alarm scan + scoring against ground truth.
    let alarms = AlarmStateMachine::scan(alarm_cfg, &decisions, window_len)
        .expect("alarm config validated by caller");
    let scoring = EventScoring::for_windows(rec.fs, window_len);
    let events = score_events(
        &alarms,
        &truth_events(&rec.seizures),
        rec.duration_s(),
        &scoring,
    );
    Some(EventFoldOutcome {
        session_id: sid,
        confusion,
        n_sv,
        events,
    })
}

/// Aggregates event-fold options (in session order) into a result.
fn aggregate_event_folds(outcomes: Vec<Option<EventFoldOutcome>>) -> LosoEventResult {
    let mut folds = Vec::with_capacity(outcomes.len());
    let mut skipped = 0usize;
    for o in outcomes {
        match o {
            Some(f) => folds.push(f),
            None => skipped += 1,
        }
    }
    let window_summary = LosoResult::from_folds(
        folds
            .iter()
            .map(|f| FoldOutcome {
                session_id: f.session_id,
                confusion: f.confusion,
                n_sv: f.n_sv,
            })
            .collect(),
        skipped,
    );
    let mut events = EventMetrics::default();
    for f in &folds {
        events.merge(&f.events);
    }
    LosoEventResult {
        folds,
        skipped,
        mean_se: window_summary.mean_se,
        mean_sp: window_summary.mean_sp,
        mean_gm: window_summary.mean_gm,
        mean_n_sv: window_summary.mean_n_sv,
        events,
    }
}

/// Event-level twin of [`loso_evaluate_engine`]: leave-one-session-out
/// over the cohort in `spec`, with each held-out session re-synthesised,
/// its decision stream folded through a k-of-n alarm machine at
/// `alarm_cfg`, and the alarms scored against the session's ground-truth
/// seizure intervals. Fold summaries therefore report window Se/Sp
/// **and** event sensitivity, FA/24h and detection latency. Folds run in
/// parallel; aggregation order is fixed, so results are deterministic.
///
/// `m` must be the feature matrix assembled from `spec`
/// ([`crate::assemble::build_feature_matrix`]) — the fold split uses its
/// session ids.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for an invalid `alarm_cfg`.
pub fn loso_evaluate_events_engine<F>(
    spec: &DatasetSpec,
    m: &FeatureMatrix,
    build: F,
    alarm_cfg: AlarmConfig,
) -> Result<LosoEventResult, CoreError>
where
    F: Fn(&FeatureMatrix) -> Result<BoxedEngine, CoreError> + Sync,
{
    alarm_cfg.validate()?;
    let sessions: Vec<usize> = spec.sessions.iter().map(|s| s.session_index).collect();
    Ok(aggregate_event_folds(par_map(&sessions, |&sid| {
        run_event_fold(spec, m, sid, &build, alarm_cfg)
    })))
}

/// [`loso_evaluate_events_engine`] for the standard float reference
/// pipeline under `cfg`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for an invalid `alarm_cfg`.
pub fn loso_evaluate_events(
    spec: &DatasetSpec,
    m: &FeatureMatrix,
    cfg: &FitConfig,
    alarm_cfg: AlarmConfig,
) -> Result<LosoEventResult, CoreError> {
    loso_evaluate_events_engine(spec, m, float_engine(cfg), alarm_cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quickfeat::{synthetic_matrix, QuickFeatConfig};

    #[test]
    fn confusion_metrics() {
        let mut c = Confusion::default();
        for _ in 0..8 {
            c.record(1, 1.0);
        }
        for _ in 0..2 {
            c.record(1, -1.0);
        }
        for _ in 0..90 {
            c.record(-1, -1.0);
        }
        for _ in 0..10 {
            c.record(-1, 1.0);
        }
        assert_eq!(c.total(), 110);
        assert!((c.sensitivity().unwrap() - 0.8).abs() < 1e-12);
        assert!((c.specificity().unwrap() - 0.9).abs() < 1e-12);
        assert!((c.geometric_mean().unwrap() - (0.72f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn batch_confusion_matches_incremental() {
        let truth = [1i8, 1, -1, -1, 1];
        let pred = [1.0, -1.0, -1.0, 1.0, 1.0];
        let batch = Confusion::from_batch(&truth, &pred);
        let mut inc = Confusion::default();
        for (&t, &p) in truth.iter().zip(pred.iter()) {
            inc.record(t, p);
        }
        assert_eq!(batch, inc);
    }

    #[test]
    fn zero_decision_counts_as_seizure_prediction() {
        // Regression for the `> 0.0` vs `>= 0.0` boundary fork: a
        // decision of exactly 0.0 is seizure everywhere — classify says
        // +1, so confusion counting must put it on the seizure side too.
        let mut c = Confusion::default();
        c.record(1, 0.0); // seizure truth, boundary decision → TP
        c.record(-1, 0.0); // non-seizure truth, boundary decision → FP
        c.record(-1, -0.0); // -0.0 sits on the seizure side as well
        assert_eq!(
            c,
            Confusion {
                tp: 1,
                tn: 0,
                fp: 2,
                fn_: 0
            }
        );
        // And the batch path agrees.
        let batch = Confusion::from_batch(&[1, -1], &[0.0, 0.0]);
        assert_eq!(batch.tp, 1);
        assert_eq!(batch.fp, 1);
    }

    #[test]
    fn undefined_metrics_are_none() {
        let mut c = Confusion::default();
        c.record(-1, -1.0);
        assert!(c.sensitivity().is_none());
        assert!(c.specificity().is_some());
        assert!(c.geometric_mean().is_none());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Confusion {
            tp: 1,
            tn: 2,
            fp: 3,
            fn_: 4,
        };
        let b = Confusion {
            tp: 10,
            tn: 20,
            fp: 30,
            fn_: 40,
        };
        a.merge(&b);
        assert_eq!(
            a,
            Confusion {
                tp: 11,
                tn: 22,
                fp: 33,
                fn_: 44
            }
        );
    }

    #[test]
    fn loso_on_separable_synthetic_data_has_high_gm() {
        let m = synthetic_matrix(&QuickFeatConfig {
            n_sessions: 6,
            windows_per_session: 30,
            ..Default::default()
        });
        let result = loso_evaluate(&m, &FitConfig::default());
        assert_eq!(result.folds.len() + result.skipped, 6);
        assert!(result.mean_gm > 0.6, "gm {}", result.mean_gm);
        assert!(result.mean_n_sv > 1.0);
        let pooled = result.pooled();
        assert!(pooled.total() > 0);
    }

    #[test]
    fn parallel_and_serial_are_bit_identical() {
        let m = synthetic_matrix(&QuickFeatConfig {
            n_sessions: 5,
            windows_per_session: 25,
            seed: 17,
            ..Default::default()
        });
        let par = loso_evaluate(&m, &FitConfig::default());
        let ser = loso_evaluate_serial(&m, &FitConfig::default());
        assert_eq!(par, ser);
        assert_eq!(par.mean_gm.to_bits(), ser.mean_gm.to_bits());
        assert_eq!(par.mean_n_sv.to_bits(), ser.mean_n_sv.to_bits());
    }

    #[test]
    fn perfect_and_broken_predictors() {
        let m = synthetic_matrix(&QuickFeatConfig {
            n_sessions: 4,
            windows_per_session: 20,
            ..Default::default()
        });
        // Oracle predictor (cheats by memorising labels — evaluation only
        // checks plumbing here).
        let all_rows: Vec<(Vec<f64>, i8)> = m
            .rows()
            .map(|r| r.to_vec())
            .zip(m.labels.iter().copied())
            .collect();
        let oracle = loso_evaluate_with(&m, move |_train| {
            let table = all_rows.clone();
            Ok::<_, CoreError>((
                move |rows: &DenseMatrix<f64>| {
                    rows.rows()
                        .map(|row| {
                            table
                                .iter()
                                .find(|(r, _)| r == row)
                                .map(|(_, l)| *l as f64)
                                .unwrap_or(-1.0)
                        })
                        .collect()
                },
                1,
            ))
        });
        assert!((oracle.mean_gm - 1.0).abs() < 1e-12);
        // Constant-negative predictor: Se = 0 on every fold.
        let pessimist = loso_evaluate_with(&m, |_train| {
            Ok::<_, CoreError>((|rows: &DenseMatrix<f64>| vec![-1.0; rows.n_rows()], 1))
        });
        assert_eq!(pessimist.mean_se, 0.0);
        assert_eq!(pessimist.mean_sp, 1.0);
        assert_eq!(pessimist.mean_gm, 0.0);
    }

    #[test]
    fn loso_event_twin_reports_event_metrics_next_to_window_metrics() {
        use crate::assemble::build_feature_matrix;
        use ecg_sim::dataset::Scale;
        let spec = DatasetSpec::new(Scale::Tiny, 42);
        let m = build_feature_matrix(&spec);
        let alarm_cfg = AlarmConfig::k_of_n(1, 1);
        let r = loso_evaluate_events(&spec, &m, &FitConfig::default(), alarm_cfg).unwrap();
        assert_eq!(r.folds.len() + r.skipped, spec.sessions.len());
        // Window-level summary is populated like the plain LOSO.
        assert!(r.mean_gm.is_finite());
        assert!(r.mean_n_sv > 1.0);
        // Event level: the Tiny cohort has seizures and monitored time.
        assert_eq!(r.events.n_events, 8, "Tiny cohort has 8 seizures");
        let total_s: f64 = spec.sessions.iter().map(|s| s.duration_s).sum();
        assert!((r.events.monitored_s - total_s).abs() < 1e-6);
        assert!(r.event_sensitivity().is_some());
        assert!(r.false_alarms_per_24h().is_some());
        // Latency list length matches the detected count.
        assert_eq!(r.events.latencies_s.len(), r.events.detected);
        if r.events.detected > 0 {
            assert!(r.median_latency_s().is_some());
        }
        // Deterministic: a second run is identical.
        let again = loso_evaluate_events(&spec, &m, &FitConfig::default(), alarm_cfg).unwrap();
        assert_eq!(r, again);
        // Invalid alarm configs are rejected up front.
        assert!(
            loso_evaluate_events(&spec, &m, &FitConfig::default(), AlarmConfig::k_of_n(3, 2))
                .is_err()
        );
    }

    #[test]
    fn failing_fits_are_counted_as_skipped() {
        let m = synthetic_matrix(&QuickFeatConfig {
            n_sessions: 3,
            windows_per_session: 10,
            ..Default::default()
        });
        type NeverPredict = fn(&DenseMatrix<f64>) -> Vec<f64>;
        let r = loso_evaluate_with(&m, |_train| {
            Err::<(NeverPredict, usize), _>(CoreError::Dataset("nope".into()))
        });
        assert_eq!(r.skipped, 3);
        assert!(r.folds.is_empty());
        assert!(r.mean_gm.is_nan());
    }
}
