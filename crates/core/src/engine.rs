//! Bit-accurate quantised inference engine — the integer twin of the
//! Fig 2 accelerator.
//!
//! Numerical plan (all power-of-two scales, so every rescaling is a
//! shift):
//!
//! * feature codes: `D_bits` signed, LSB `2^-(D_bits-1)` after per-feature
//!   range shift (`x / 2^{R_j}`, saturated);
//! * MAC1 accumulates test×SV products (scale `2^-2(D-1)`), adds the `+1`
//!   constant at that scale, then discards `t₁` LSBs;
//! * SQ squares, then discards `t₂` LSBs;
//! * αᵢyᵢ are normalised by `s = max|αᵢyᵢ|` (sign-preserving) and encoded
//!   on `A_bits`; the bias is encoded at the MAC2 accumulator scale;
//! * the predicted class is the sign bit of the final accumulator.
//!
//! Exact integer arithmetic is used up to `D_bits = 26` (worst-case widths
//! stay under `i128`); wider datapaths (the 32/64-bit homogeneous
//! reference pipelines) switch to a float-backed simulation in which only
//! the operand quantisation is modelled — at ≥ 32 fractional bits the
//! truncation noise is far below the decision margin, exactly the paper's
//! "64-bit has the same accuracy as floating point" observation.

use crate::error::CoreError;
use crate::kernels;
use crate::trained::FloatPipeline;
use ecg_features::DenseMatrix;
use fixedpoint::quantize::Quantizer;
use fixedpoint::FeatureScales;
use hwmodel::pipeline::AcceleratorConfig;
use std::cell::RefCell;
use svm::classifier::{ClassifierEngine, EngineInfo};
use svm::Kernel;

thread_local! {
    /// Per-thread feature-code scratch for the row entry points, so the
    /// streaming hot loop (`engine.decision(row)` per window) encodes
    /// without a heap allocation per call.
    static CODE_SCRATCH: RefCell<Vec<i64>> = const { RefCell::new(Vec::new()) };
}

/// Bit-level configuration of the tailored pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitConfig {
    /// Feature word width (`D_bits`).
    pub d_bits: u32,
    /// Coefficient word width (`A_bits`).
    pub a_bits: u32,
    /// LSBs discarded after the dot product (paper: 10).
    pub post_dot_truncate: u32,
    /// LSBs discarded after the squarer (paper: 10).
    pub post_square_truncate: u32,
}

impl BitConfig {
    /// Tailored configuration with the paper's 10+10 LSB truncations.
    pub fn new(d_bits: u32, a_bits: u32) -> Self {
        BitConfig {
            d_bits,
            a_bits,
            post_dot_truncate: 10,
            post_square_truncate: 10,
        }
    }

    /// Homogeneous-width configuration without truncation (the 64/32/16-
    /// bit reference pipelines of Fig 7).
    pub fn uniform(bits: u32) -> Self {
        BitConfig {
            d_bits: bits,
            a_bits: bits,
            post_dot_truncate: 0,
            post_square_truncate: 0,
        }
    }

    /// The paper's chosen point: 9 feature bits, 15 coefficient bits.
    pub fn paper_choice() -> Self {
        BitConfig::new(9, 15)
    }

    /// Serialises the bit configuration as versioned plain text, the
    /// companion block to a persisted [`FloatPipeline`] so a quantised
    /// engine can be rebuilt from disk without retraining.
    pub fn to_text(&self) -> String {
        format!(
            "bitconfig v1\nd_bits {}\na_bits {}\npost_dot_truncate {}\npost_square_truncate {}\n",
            self.d_bits, self.a_bits, self.post_dot_truncate, self.post_square_truncate
        )
    }

    /// Parses a configuration previously written by
    /// [`BitConfig::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on a wrong header/version or
    /// malformed/missing fields.
    pub fn from_text(text: &str) -> Result<Self, CoreError> {
        let bad = |msg: String| CoreError::InvalidConfig(format!("persisted bitconfig: {msg}"));
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or_else(|| bad("empty text".into()))?;
        if header.trim() != "bitconfig v1" {
            return Err(bad(format!("unsupported header `{header}`")));
        }
        let mut fields = [None::<u32>; 4];
        const NAMES: [&str; 4] = [
            "d_bits",
            "a_bits",
            "post_dot_truncate",
            "post_square_truncate",
        ];
        for line in lines {
            match line.split_whitespace().collect::<Vec<_>>().as_slice() {
                [key, v] => {
                    let slot = NAMES
                        .iter()
                        .position(|n| n == key)
                        .ok_or_else(|| bad(format!("unknown field `{key}`")))?;
                    fields[slot] = Some(v.parse().map_err(|_| bad(format!("bad {key} `{v}`")))?);
                }
                _ => return Err(bad(format!("unrecognised line `{line}`"))),
            }
        }
        let get = |i: usize| fields[i].ok_or_else(|| bad(format!("missing {}", NAMES[i])));
        Ok(BitConfig {
            d_bits: get(0)?,
            a_bits: get(1)?,
            post_dot_truncate: get(2)?,
            post_square_truncate: get(3)?,
        })
    }
}

impl Default for BitConfig {
    fn default() -> Self {
        BitConfig::paper_choice()
    }
}

/// Largest `D_bits` for which the exact integer path is used.
const MAX_EXACT_D_BITS: u32 = 26;

/// The hardware sign-bit convention on an accumulator code: ties
/// positive — the integer image of [`svm::decision_is_seizure`]
/// (`code as f64` is sign-exact, so the two can never disagree).
fn sign_of_code(code: i128) -> f64 {
    svm::class_of_decision(code as f64)
}

/// The quantised inference engine.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedEngine {
    bits: BitConfig,
    guard: i32,
    feature_indices: Vec<usize>,
    scales: FeatureScales,
    /// Quantised SV feature codes (exact path), one contiguous row-major
    /// `n_sv × n_feat` block — the software image of the SV memory.
    sv_codes: DenseMatrix<i64>,
    /// Quantised αy codes (after max-normalisation).
    alpha_codes: Vec<i64>,
    /// Bias code at the MAC2 accumulator scale (exact path).
    bias_code: i128,
    /// Float-sim mirrors (used when `D_bits > MAX_EXACT_D_BITS`).
    sv_values: DenseMatrix<f64>,
    alpha_values: Vec<f64>,
    bias_value: f64,
    /// Whether the exact path runs the i64 micro-kernel
    /// ([`kernels::quant_dot_fits_i64`] at this engine's shape).
    fast_i64: bool,
    /// Cached feature quantiser (exact path).
    feat_q: Quantizer,
    /// Cached per-feature scale reciprocals `2^-(R_j + G)` — multiplying
    /// by an exact power of two is bit-identical to the division it
    /// replaces, without the per-element `exp2`.
    inv_div: Vec<f64>,
    /// Cached reciprocal of the feature LSB (`2^-lsb_exp`).
    inv_lsb: f64,
    /// Cached saturation bound `2^-G`.
    bound: f64,
}

impl QuantizedEngine {
    /// Builds the engine from a trained float pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the pipeline's kernel is
    /// not the quadratic polynomial the accelerator implements (Eq 3),
    /// when widths are out of range (`2..=63`), or when the model has no
    /// support vectors.
    pub fn from_pipeline(p: &FloatPipeline, bits: BitConfig) -> Result<Self, CoreError> {
        if p.model().kernel() != (Kernel::Polynomial { degree: 2 }) {
            return Err(CoreError::InvalidConfig(
                "the accelerator implements the quadratic kernel (Eq 3) only".into(),
            ));
        }
        // Widths above 63 (e.g. the 64-bit homogeneous reference) clamp to
        // 63: quantisation codes live in i64, and above ~53 fractional
        // bits the operand quantisation is below f64 resolution anyway, so
        // 63- and 64-bit pipelines are numerically identical.
        let bits = BitConfig {
            d_bits: bits.d_bits.min(63),
            a_bits: bits.a_bits.min(63),
            ..bits
        };
        if bits.d_bits < 2 || bits.a_bits < 2 {
            return Err(CoreError::InvalidConfig(
                "bit widths must be at least 2".into(),
            ));
        }
        let model = p.model();
        if model.n_support_vectors() == 0 {
            return Err(CoreError::InvalidConfig(
                "model has no support vectors".into(),
            ));
        }
        let guard = p.guard();
        let feat_q = Quantizer::for_range_exponent(-guard, bits.d_bits);
        let svs = model.support_vectors();
        let sv_codes = DenseMatrix::from_flat(
            svs.as_slice().iter().map(|&v| feat_q.encode(v)).collect(),
            svs.n_cols(),
        );
        let sv_values = DenseMatrix::from_flat(
            sv_codes
                .as_slice()
                .iter()
                .map(|&c| feat_q.decode(c))
                .collect(),
            sv_codes.n_cols(),
        );

        // Normalise αy into [-1, 1] by the max magnitude: the sign of the
        // decision function is invariant under positive scaling.
        let alpha_y = model.alpha_y();
        let s = alpha_y
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(f64::MIN_POSITIVE);
        let alpha_q = Quantizer::for_alpha(bits.a_bits);
        let alpha_codes: Vec<i64> = alpha_y.iter().map(|&v| alpha_q.encode(v / s)).collect();
        let alpha_values: Vec<f64> = alpha_codes.iter().map(|&c| alpha_q.decode(c)).collect();
        let bias_value = model.bias() / s;

        // Exact-path bias at the MAC2 accumulator scale.
        let d = bits.d_bits as i32;
        let a = bits.a_bits as i32;
        let lsb_f = -(guard + d - 1); // feature LSB exponent
        let s1 = 2 * lsb_f + bits.post_dot_truncate as i32;
        let s2 = 2 * s1 + bits.post_square_truncate as i32;
        let acc2_exp = s2 - (a - 1);
        let bias_code = {
            let v = bias_value / (acc2_exp as f64).exp2();
            if v.is_finite() {
                v.round() as i128
            } else {
                0
            }
        };

        let feature_indices = p.feature_indices().to_vec();
        let scales = p.scales().clone();
        let fast_i64 = kernels::quant_dot_fits_i64(guard, bits.d_bits, feature_indices.len());
        let inv_div: Vec<f64> = scales
            .r
            .iter()
            .map(|&r| (-(r + guard) as f64).exp2())
            .collect();
        Ok(QuantizedEngine {
            bits,
            guard,
            feature_indices,
            scales,
            sv_codes,
            alpha_codes,
            bias_code,
            sv_values,
            alpha_values,
            bias_value,
            fast_i64,
            feat_q,
            inv_div,
            inv_lsb: (-feat_q.lsb_exp as f64).exp2(),
            bound: (-guard as f64).exp2(),
        })
    }

    /// Bit configuration.
    pub fn bits(&self) -> BitConfig {
        self.bits
    }

    /// Number of support vectors in the engine memory.
    pub fn n_support_vectors(&self) -> usize {
        self.sv_codes.n_rows()
    }

    /// The quantised SV code image (exact path) — the software mirror of
    /// the accelerator's SV memory, exposed read-only for inspection,
    /// benches and hardware export.
    pub fn sv_codes(&self) -> &DenseMatrix<i64> {
        &self.sv_codes
    }

    /// The quantised `αᵢyᵢ` code memory (exact path).
    pub fn alpha_codes(&self) -> &[i64] {
        &self.alpha_codes
    }

    /// The bias code at the MAC2 accumulator scale (exact path).
    pub fn bias_code(&self) -> i128 {
        self.bias_code
    }

    /// Feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.scales.len()
    }

    /// The matching hardware design point for the cost model.
    pub fn accelerator_config(&self) -> AcceleratorConfig {
        AcceleratorConfig {
            n_sv: self.n_support_vectors(),
            n_feat: self.n_features(),
            d_bits: self.bits.d_bits,
            a_bits: self.bits.a_bits,
            post_dot_truncate: self.bits.post_dot_truncate,
            post_square_truncate: self.bits.post_square_truncate,
            lanes: 1,
        }
    }

    /// Encodes a raw full-width feature row into feature codes
    /// (select → shift by `2^{R_j}` → saturating quantisation).
    pub fn encode_features(&self, raw_row: &[f64]) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.feature_indices.len());
        self.encode_features_into(raw_row, &mut out);
        out
    }

    /// In-place variant of [`QuantizedEngine::encode_features`]: clears
    /// and refills `out`, so batch loops reuse one code buffer instead of
    /// allocating per row.
    ///
    /// The hot-loop form of select → shift → saturating round: all scale
    /// factors are cached powers of two, so the multiplications are
    /// bit-identical to the `exp2`-and-divide reference (pinned by the
    /// `encode_matches_quantizer_reference` test).
    pub fn encode_features_into(&self, raw_row: &[f64], out: &mut Vec<i64>) {
        let max_code = self.feat_q.max_code();
        let min_code = self.feat_q.min_code();
        out.clear();
        out.extend(
            self.feature_indices
                .iter()
                .zip(self.inv_div.iter())
                .map(|(&j, &inv)| {
                    let norm = (raw_row[j] * inv).clamp(-self.bound, self.bound);
                    let q = (norm * self.inv_lsb).round();
                    if q >= max_code as f64 {
                        max_code
                    } else if q <= min_code as f64 {
                        min_code
                    } else {
                        // NaN input falls through here and casts to 0,
                        // matching `Quantizer::encode`.
                        q as i64
                    }
                }),
        );
    }

    /// Classifies a raw feature row: `+1.0` (seizure) or `-1.0`.
    ///
    /// # Panics
    ///
    /// Panics if `raw_row` is narrower than the largest selected feature
    /// index.
    pub fn classify(&self, raw_row: &[f64]) -> f64 {
        if self.bits.d_bits <= MAX_EXACT_D_BITS {
            self.classify_exact(raw_row)
        } else {
            self.classify_float_sim(raw_row)
        }
    }

    /// Decision value as an `f64`: the exact path's accumulator code cast
    /// to float (sign-exact — no nonzero integer rounds across zero), the
    /// wide path's float accumulator. This is the value the
    /// [`ClassifierEngine`] trait exposes; its sign always agrees with
    /// [`QuantizedEngine::classify`].
    pub fn decision_value(&self, raw_row: &[f64]) -> f64 {
        if self.bits.d_bits <= MAX_EXACT_D_BITS {
            self.decision_code(raw_row) as f64
        } else {
            self.decision_float_sim(raw_row)
        }
    }

    /// Decision value in accumulator LSBs (exact path) — exposed so tests
    /// and the Fig 6 exploration can inspect quantisation margins. Uses a
    /// thread-local code scratch, so per-row streaming calls stay
    /// allocation-free.
    pub fn decision_code(&self, raw_row: &[f64]) -> i128 {
        CODE_SCRATCH.with(|scratch| {
            let mut codes = scratch.borrow_mut();
            self.encode_features_into(raw_row, &mut codes);
            self.decision_code_of(&codes)
        })
    }

    /// Whether the exact integer path ([`QuantizedEngine::decision_code`])
    /// runs on the i64 micro-kernel, i.e.
    /// [`kernels::quant_dot_fits_i64`] holds at this engine's shape —
    /// exactly the dispatch `decision_code_of` performs. Note the
    /// [`ClassifierEngine`] entry points only *consume* the exact path up
    /// to `D_bits = 26`; wider configs classify through the float
    /// simulation regardless of this flag.
    pub fn uses_i64_fast_path(&self) -> bool {
        self.fast_i64
    }

    /// Exponent of the kernel's `+1` constant at product scale.
    fn one_exp(&self) -> u32 {
        (2 * (self.guard + self.bits.d_bits as i32 - 1)) as u32
    }

    /// Exact-path decision value from already-encoded feature codes:
    /// the i64 micro-kernel under the threshold rule, the i128 reference
    /// above it — bit-identical by construction.
    fn decision_code_of(&self, codes: &[i64]) -> i128 {
        if self.fast_i64 {
            kernels::decision_code_i64(
                codes,
                &self.sv_codes,
                &self.alpha_codes,
                1i64 << self.one_exp(),
                self.bits.post_dot_truncate,
                self.bits.post_square_truncate,
                self.bias_code,
            )
        } else {
            self.decision_code_of_i128(codes)
        }
    }

    /// The i128 reference accumulator, unconditionally.
    fn decision_code_of_i128(&self, codes: &[i64]) -> i128 {
        kernels::decision_code_i128(
            codes,
            &self.sv_codes,
            &self.alpha_codes,
            1i128 << self.one_exp(),
            self.bits.post_dot_truncate,
            self.bits.post_square_truncate,
            self.bias_code,
        )
    }

    /// Batch classification forced onto the exact i128 reference
    /// accumulator (the pre-micro-kernel datapath), regardless of the
    /// threshold rule — the oracle the equivalence tests and the kernel
    /// bench compare the fast path against. Float-sim configs
    /// (`D_bits > 26`) fall back to the same float simulation as
    /// `classify_batch`.
    pub fn classify_batch_i128_reference(&self, rows: &DenseMatrix<f64>) -> Vec<f64> {
        self.batch_with(
            rows,
            |e, codes| e.decision_code_of_i128(codes),
            sign_of_code,
            |e, row| e.classify_float_sim(row),
        )
    }

    /// Shared batch skeleton: on the exact path, encodes every row into
    /// the same thread-local code scratch the per-row path uses (so
    /// panel serving is allocation-free per call and each pool worker
    /// keeps its own warm buffer) and maps its decision code through
    /// `map_code`; wide configs run `float_sim` per row. All batch
    /// entry points (decision, classify, i128 reference, row panels)
    /// are instances. The `code_of` callbacks must not touch
    /// `CODE_SCRATCH` themselves (the decision-code kernels do not) —
    /// the scratch is borrowed across the whole batch.
    fn batch_with(
        &self,
        rows: &DenseMatrix<f64>,
        code_of: impl Fn(&Self, &[i64]) -> i128,
        map_code: impl Fn(i128) -> f64,
        float_sim: impl Fn(&Self, &[f64]) -> f64,
    ) -> Vec<f64> {
        if self.bits.d_bits <= MAX_EXACT_D_BITS {
            CODE_SCRATCH.with(|scratch| {
                let mut codes = scratch.borrow_mut();
                rows.rows()
                    .map(|row| {
                        self.encode_features_into(row, &mut codes);
                        map_code(code_of(self, &codes))
                    })
                    .collect()
            })
        } else {
            rows.rows().map(|row| float_sim(self, row)).collect()
        }
    }

    fn classify_exact(&self, raw_row: &[f64]) -> f64 {
        sign_of_code(self.decision_code(raw_row))
    }

    /// Wide-datapath simulation accumulator: quantised operands, float
    /// arithmetic.
    fn decision_float_sim(&self, raw_row: &[f64]) -> f64 {
        let q = Quantizer::for_range_exponent(-self.guard, self.bits.d_bits);
        let bound = (-self.guard as f64).exp2();
        let x: Vec<f64> = self
            .feature_indices
            .iter()
            .zip(self.scales.r.iter())
            .map(|(&j, &r)| {
                q.quantize((raw_row[j] / ((r + self.guard) as f64).exp2()).clamp(-bound, bound))
            })
            .collect();
        let mut acc = self.bias_value;
        for (sv, &a) in self.sv_values.rows().zip(self.alpha_values.iter()) {
            let dot: f64 = x.iter().zip(sv.iter()).map(|(p, q)| p * q).sum();
            let k = (dot + 1.0) * (dot + 1.0);
            acc += a * k;
        }
        acc
    }

    fn classify_float_sim(&self, raw_row: &[f64]) -> f64 {
        svm::class_of_decision(self.decision_float_sim(raw_row))
    }
}

/// The quantised engine consumes the same raw full-width rows as the
/// float pipeline it was built from (selection, shifting and quantisation
/// happen inside), so the two are drop-in interchangeable behind
/// `dyn ClassifierEngine`.
impl ClassifierEngine for QuantizedEngine {
    fn decision(&self, row: &[f64]) -> f64 {
        self.decision_value(row)
    }

    fn classify(&self, row: &[f64]) -> f64 {
        QuantizedEngine::classify(self, row)
    }

    /// Bit-identical to mapping `decision` over the rows; the exact path
    /// reuses one feature-code buffer across the whole batch.
    fn decision_batch(&self, rows: &DenseMatrix<f64>) -> Vec<f64> {
        self.batch_with(
            rows,
            |e, codes| e.decision_code_of(codes),
            |code| code as f64,
            |e, row| e.decision_float_sim(row),
        )
    }

    /// Borrowed-row panels skip the dense gather entirely: each row ref
    /// is encoded straight into the thread-local code scratch and
    /// decided — bit-identical to `decision_batch` on a gathered copy,
    /// with zero copies and zero allocations on the exact path.
    fn decision_rows_into(&self, rows: &[&[f64]], out: &mut Vec<f64>) {
        if self.bits.d_bits <= MAX_EXACT_D_BITS {
            CODE_SCRATCH.with(|scratch| {
                let mut codes = scratch.borrow_mut();
                out.extend(rows.iter().map(|row| {
                    self.encode_features_into(row, &mut codes);
                    self.decision_code_of(&codes) as f64
                }));
            });
        } else {
            out.extend(rows.iter().map(|row| self.decision_float_sim(row)));
        }
    }

    /// Bit-identical to mapping [`QuantizedEngine::classify`] over the
    /// rows; the exact path reuses one feature-code buffer across the
    /// whole batch and streams the contiguous SV-code block per row.
    fn classify_batch(&self, rows: &DenseMatrix<f64>) -> Vec<f64> {
        self.batch_with(
            rows,
            |e, codes| e.decision_code_of(codes),
            sign_of_code,
            |e, row| e.classify_float_sim(row),
        )
    }

    fn n_features(&self) -> usize {
        QuantizedEngine::n_features(self)
    }

    fn info(&self) -> EngineInfo {
        EngineInfo {
            kind: "quantized-engine",
            n_support_vectors: self.n_support_vectors(),
            n_features: QuantizedEngine::n_features(self),
            d_bits: Some(self.bits.d_bits),
            a_bits: Some(self.bits.a_bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FitConfig;
    use crate::quickfeat::{synthetic_matrix, QuickFeatConfig};
    use ecg_features::FeatureMatrix;

    fn matrix() -> FeatureMatrix {
        synthetic_matrix(&QuickFeatConfig {
            n_sessions: 4,
            windows_per_session: 40,
            seed: 11,
            ..Default::default()
        })
    }

    fn pipeline(m: &FeatureMatrix) -> FloatPipeline {
        FloatPipeline::fit(m, &FitConfig::default()).unwrap()
    }

    fn agreement(
        a: &dyn Fn(&[f64]) -> f64,
        b: &dyn Fn(&[f64]) -> f64,
        rows: &ecg_features::DenseMatrix<f64>,
    ) -> f64 {
        let same = rows.rows().filter(|r| a(r) == b(r)).count();
        same as f64 / rows.n_rows() as f64
    }

    #[test]
    fn wide_engine_matches_float_pipeline() {
        let m = matrix();
        let p = pipeline(&m);
        let e = QuantizedEngine::from_pipeline(&p, BitConfig::new(24, 24)).unwrap();
        let agree = agreement(&|r| p.predict(r), &|r| e.classify(r), &m.features);
        assert!(agree > 0.99, "agreement {agree}");
    }

    #[test]
    fn paper_choice_engine_is_close_to_float() {
        let m = matrix();
        let p = pipeline(&m);
        let e = QuantizedEngine::from_pipeline(&p, BitConfig::paper_choice()).unwrap();
        let agree = agreement(&|r| p.predict(r), &|r| e.classify(r), &m.features);
        assert!(agree > 0.9, "agreement {agree}");
    }

    #[test]
    fn tiny_widths_degrade() {
        let m = matrix();
        let p = pipeline(&m);
        let coarse = QuantizedEngine::from_pipeline(&p, BitConfig::new(3, 4)).unwrap();
        let fine = QuantizedEngine::from_pipeline(&p, BitConfig::new(16, 16)).unwrap();
        let a_coarse = agreement(&|r| p.predict(r), &|r| coarse.classify(r), &m.features);
        let a_fine = agreement(&|r| p.predict(r), &|r| fine.classify(r), &m.features);
        assert!(a_fine >= a_coarse, "fine {a_fine} coarse {a_coarse}");
        assert!(a_fine > 0.97);
    }

    #[test]
    fn float_sim_path_matches_exact_at_same_widths() {
        // d_bits = 26 runs exact; the float sim with identical widths and
        // zero truncation must agree (quantisation is the only effect).
        let m = matrix();
        let p = pipeline(&m);
        let cfg = BitConfig {
            d_bits: 20,
            a_bits: 20,
            post_dot_truncate: 0,
            post_square_truncate: 0,
        };
        let exact = QuantizedEngine::from_pipeline(&p, cfg).unwrap();
        // Force the float path by copying into a wide config with the
        // same operand widths... 64-bit operands quantise negligibly, so
        // instead compare both against the float pipeline.
        let wide = QuantizedEngine::from_pipeline(&p, BitConfig::uniform(63)).unwrap();
        let a1 = agreement(&|r| exact.classify(r), &|r| p.predict(r), &m.features);
        let a2 = agreement(&|r| wide.classify(r), &|r| p.predict(r), &m.features);
        assert!(a1 > 0.99, "exact {a1}");
        assert!(a2 > 0.995, "wide {a2}");
    }

    #[test]
    fn truncation_is_nearly_free() {
        // The paper: discarding 10 LSBs after dot and square has no
        // classification impact.
        let m = matrix();
        let p = pipeline(&m);
        let with = QuantizedEngine::from_pipeline(&p, BitConfig::new(16, 16)).unwrap();
        let without = QuantizedEngine::from_pipeline(
            &p,
            BitConfig {
                d_bits: 16,
                a_bits: 16,
                post_dot_truncate: 0,
                post_square_truncate: 0,
            },
        )
        .unwrap();
        let agree = agreement(&|r| with.classify(r), &|r| without.classify(r), &m.features);
        assert!(agree > 0.97, "agreement {agree}");
    }

    #[test]
    fn engine_requires_quadratic_kernel() {
        let m = matrix();
        let cfg = FitConfig::default().with_kernel(svm::Kernel::Linear);
        let p = FloatPipeline::fit(&m, &cfg).unwrap();
        assert!(matches!(
            QuantizedEngine::from_pipeline(&p, BitConfig::paper_choice()),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn invalid_widths_rejected() {
        let m = matrix();
        let p = pipeline(&m);
        assert!(QuantizedEngine::from_pipeline(&p, BitConfig::new(1, 8)).is_err());
        // Over-wide widths clamp to 63 instead of failing (64-bit
        // homogeneous reference pipelines).
        let wide = QuantizedEngine::from_pipeline(&p, BitConfig::uniform(64)).unwrap();
        assert_eq!(wide.bits().d_bits, 63);
    }

    #[test]
    fn accelerator_config_mirrors_engine() {
        let m = matrix();
        let p = pipeline(&m);
        let e = QuantizedEngine::from_pipeline(&p, BitConfig::paper_choice()).unwrap();
        let hw = e.accelerator_config();
        assert_eq!(hw.n_sv, e.n_support_vectors());
        assert_eq!(hw.n_feat, 53);
        assert_eq!(hw.d_bits, 9);
        assert_eq!(hw.a_bits, 15);
        assert_eq!(hw.post_dot_truncate, 10);
    }

    #[test]
    fn feature_codes_stay_in_width() {
        let m = matrix();
        let p = pipeline(&m);
        let e = QuantizedEngine::from_pipeline(&p, BitConfig::new(9, 15)).unwrap();
        let lo = -(1i64 << 8);
        let hi = (1i64 << 8) - 1;
        for row in m.rows() {
            for c in e.encode_features(row) {
                assert!((lo..=hi).contains(&c), "code {c}");
            }
        }
        for &c in e.sv_codes.as_slice() {
            assert!((lo..=hi).contains(&c));
        }
        for &a in &e.alpha_codes {
            assert!((-(1i64 << 14)..=(1i64 << 14) - 1).contains(&a));
        }
    }

    #[test]
    fn paper_grid_runs_the_i64_fast_path() {
        let m = matrix();
        let p = pipeline(&m);
        for d in [2u32, 9, 16] {
            let e = QuantizedEngine::from_pipeline(&p, BitConfig::new(d, 15)).unwrap();
            assert!(e.uses_i64_fast_path(), "d_bits {d}");
        }
        // The wide homogeneous reference stays off the integer path.
        let wide = QuantizedEngine::from_pipeline(&p, BitConfig::uniform(63)).unwrap();
        assert!(!wide.uses_i64_fast_path());
    }

    #[test]
    fn fast_path_is_bit_identical_to_i128_reference() {
        let m = matrix();
        let p = pipeline(&m);
        for bits in [
            BitConfig::paper_choice(),
            BitConfig::new(2, 4),
            BitConfig::new(16, 16),
            BitConfig::new(24, 24),
        ] {
            let e = QuantizedEngine::from_pipeline(&p, bits).unwrap();
            assert!(e.uses_i64_fast_path(), "{bits:?}");
            let fast = e.classify_batch(&m.features);
            let reference = e.classify_batch_i128_reference(&m.features);
            assert_eq!(fast, reference, "{bits:?}");
            for row in m.rows().take(30) {
                let code = e.decision_code(row);
                let wide = e.decision_code_of_i128(&e.encode_features(row));
                assert_eq!(code, wide, "{bits:?}");
            }
        }
    }

    #[test]
    fn encode_matches_quantizer_reference() {
        // The cached power-of-two multiplications must reproduce the
        // exp2-and-divide Quantizer reference bit for bit, including NaN
        // and saturating inputs.
        let m = matrix();
        let p = pipeline(&m);
        let e = QuantizedEngine::from_pipeline(&p, BitConfig::paper_choice()).unwrap();
        let q = Quantizer::for_range_exponent(-e.guard, e.bits.d_bits);
        let bound = (-e.guard as f64).exp2();
        let reference = |raw_row: &[f64]| -> Vec<i64> {
            e.feature_indices
                .iter()
                .zip(e.scales.r.iter())
                .map(|(&j, &r)| {
                    let norm = (raw_row[j] / ((r + e.guard) as f64).exp2()).clamp(-bound, bound);
                    q.encode(norm)
                })
                .collect()
        };
        for row in m.rows().take(40) {
            assert_eq!(e.encode_features(row), reference(row));
        }
        let mut weird = m.row(0).to_vec();
        weird[0] = f64::NAN;
        weird[1] = f64::INFINITY;
        weird[2] = f64::NEG_INFINITY;
        weird[3] = 1e300;
        weird[4] = -1e300;
        weird[5] = 1e-300;
        assert_eq!(e.encode_features(&weird), reference(&weird));
    }

    #[test]
    fn classify_batch_matches_per_row_on_both_paths() {
        let m = matrix();
        let p = pipeline(&m);
        // Exact integer path and wide float-sim path.
        for bits in [BitConfig::paper_choice(), BitConfig::uniform(63)] {
            let e = QuantizedEngine::from_pipeline(&p, bits).unwrap();
            let batch = e.classify_batch(&m.features);
            for (i, row) in m.rows().enumerate() {
                assert_eq!(batch[i], e.classify(row), "row {i} at {bits:?}");
            }
        }
    }

    #[test]
    fn rows_into_matches_decision_batch_on_both_paths() {
        let m = matrix();
        let p = pipeline(&m);
        for bits in [BitConfig::paper_choice(), BitConfig::uniform(63)] {
            let e = QuantizedEngine::from_pipeline(&p, bits).unwrap();
            let expect = e.decision_batch(&m.features);
            let refs: Vec<&[f64]> = m.rows().collect();
            let mut got = Vec::new();
            e.decision_rows_into(&refs, &mut got);
            assert_eq!(got.len(), expect.len());
            for (i, (g, w)) in got.iter().zip(&expect).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "row {i} at {bits:?}");
            }
        }
    }

    #[test]
    fn decision_value_sign_agrees_with_classify_on_both_paths() {
        let m = matrix();
        let p = pipeline(&m);
        for bits in [BitConfig::paper_choice(), BitConfig::uniform(63)] {
            let e = QuantizedEngine::from_pipeline(&p, bits).unwrap();
            let dec = e.decision_batch(&m.features);
            for (i, row) in m.rows().enumerate() {
                assert_eq!(dec[i].to_bits(), e.decision_value(row).to_bits());
                let cls = if dec[i] >= 0.0 { 1.0 } else { -1.0 };
                assert_eq!(cls, e.classify(row), "row {i} at {bits:?}");
            }
        }
    }

    #[test]
    fn engine_info_carries_widths() {
        let m = matrix();
        let p = pipeline(&m);
        let e = QuantizedEngine::from_pipeline(&p, BitConfig::paper_choice()).unwrap();
        let info = ClassifierEngine::info(&e);
        assert_eq!(info.kind, "quantized-engine");
        assert_eq!(info.n_features, 53);
        assert_eq!(info.d_bits, Some(9));
        assert_eq!(info.a_bits, Some(15));
        assert_eq!(info.n_support_vectors, e.n_support_vectors());
    }

    #[test]
    fn bitconfig_text_round_trip() {
        for cfg in [
            BitConfig::paper_choice(),
            BitConfig::uniform(32),
            BitConfig {
                d_bits: 11,
                a_bits: 13,
                post_dot_truncate: 3,
                post_square_truncate: 0,
            },
        ] {
            assert_eq!(BitConfig::from_text(&cfg.to_text()).unwrap(), cfg);
        }
        assert!(BitConfig::from_text("").is_err());
        assert!(BitConfig::from_text("bitconfig v9\n").is_err());
        assert!(BitConfig::from_text("bitconfig v1\nd_bits 9\n").is_err());
        assert!(BitConfig::from_text("bitconfig v1\nwhat 9\n").is_err());
    }

    #[test]
    fn bitconfig_constructors() {
        let t = BitConfig::new(9, 15);
        assert_eq!(t.post_dot_truncate, 10);
        let u = BitConfig::uniform(32);
        assert_eq!(u.d_bits, 32);
        assert_eq!(u.a_bits, 32);
        assert_eq!(u.post_dot_truncate, 0);
        assert_eq!(BitConfig::default(), BitConfig::paper_choice());
    }
}
