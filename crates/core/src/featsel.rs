//! Correlation-driven feature-set reduction (paper Section III, Fig 3/4).
//!
//! Two iterated phases, exactly as the paper describes: (1) compute the
//! pairwise Pearson matrix (Eq 4); (2) remove the feature with the highest
//! aggregated coefficient. We aggregate |ρ| rather than signed ρ so
//! strongly anti-correlated features count as redundant too — the signed
//! sum would let negative correlations cancel positive ones.

use biodsp::stats::pearson;
use ecg_features::{DenseMatrix, FeatureMatrix};

/// Pairwise Pearson correlation matrix of the feature columns (Fig 3),
/// as a dense row-major `d × d` block. Degenerate (constant) columns
/// correlate 0 with everything; the diagonal is exactly 1.
pub fn correlation_matrix(m: &FeatureMatrix) -> DenseMatrix<f64> {
    let d = m.n_cols();
    let cols: Vec<Vec<f64>> = (0..d).map(|j| m.column(j)).collect();
    let mut corr = DenseMatrix::from_flat(vec![0.0f64; d * d], d);
    for i in 0..d {
        corr.row_mut(i)[i] = 1.0;
        for j in 0..i {
            let r = pearson(&cols[i], &cols[j]).unwrap_or(0.0);
            corr.row_mut(i)[j] = r;
            corr.row_mut(j)[i] = r;
        }
    }
    corr
}

/// Removal order: index of the feature removed at each step, most
/// redundant first. The returned vector has length `d` (the last entry is
/// the feature that would be removed last, i.e. the least redundant).
pub fn removal_order(corr: &DenseMatrix<f64>) -> Vec<usize> {
    let d = corr.n_rows();
    let mut active: Vec<usize> = (0..d).collect();
    let mut order = Vec::with_capacity(d);
    while !active.is_empty() {
        // Aggregated |ρ| of each active feature against the other actives.
        let (pos, _) = active
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let row = corr.row(i);
                let score: f64 = active
                    .iter()
                    .filter(|&&j| j != i)
                    .map(|&j| row[j].abs())
                    .sum();
                (pos, score)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("active is non-empty");
        order.push(active.remove(pos));
    }
    order
}

/// Indices (sorted ascending) of the `n_keep` features retained after
/// removing the `d - n_keep` most redundant ones.
///
/// # Panics
///
/// Panics when `n_keep` is zero or exceeds the feature count.
pub fn keep_n(corr: &DenseMatrix<f64>, n_keep: usize) -> Vec<usize> {
    let d = corr.n_rows();
    assert!(n_keep >= 1 && n_keep <= d, "n_keep must be in 1..={d}");
    let order = removal_order(corr);
    let mut kept: Vec<usize> = order[d - n_keep..].to_vec();
    kept.sort_unstable();
    kept
}

/// Convenience: correlation matrix + keep set in one call.
pub fn select_features(m: &FeatureMatrix, n_keep: usize) -> Vec<usize> {
    keep_n(&correlation_matrix(m), n_keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quickfeat::{synthetic_matrix, QuickFeatConfig};

    fn toy_matrix() -> FeatureMatrix {
        // f0: base signal; f1 ≈ f0 (redundant); f2: independent; f3 ≈ -f0.
        let mut m = FeatureMatrix::default();
        let vals = [
            (1.0, 1.1, 5.0, -1.0),
            (2.0, 2.1, -3.0, -2.0),
            (3.0, 2.9, 1.0, -3.1),
            (4.0, 4.2, 2.0, -3.9),
            (5.0, 4.8, -2.0, -5.0),
            (6.0, 6.1, 0.0, -6.2),
        ];
        for (i, &(a, b, c, d)) in vals.iter().enumerate() {
            m.push_row(&[a, b, c, d], if i % 2 == 0 { 1 } else { -1 }, 0, 0);
        }
        m
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let m = toy_matrix();
        let c = correlation_matrix(&m);
        for (i, row) in c.rows().enumerate() {
            assert!((row[i] - 1.0).abs() < 1e-12);
            for (j, &v) in row.iter().enumerate() {
                assert!((v - c.row(j)[i]).abs() < 1e-12);
                assert!(v.abs() <= 1.0 + 1e-12);
            }
        }
        // f0–f1 strongly positive, f0–f3 strongly negative.
        assert!(c.row(0)[1] > 0.99);
        assert!(c.row(0)[3] < -0.99);
    }

    #[test]
    fn redundant_features_are_removed_first() {
        let m = toy_matrix();
        let c = correlation_matrix(&m);
        let order = removal_order(&c);
        assert_eq!(order.len(), 4);
        // The independent feature (2) must be removed last or second to
        // last; the three correlated ones go first.
        let pos_of_2 = order.iter().position(|&j| j == 2).unwrap();
        assert!(pos_of_2 >= 2, "order {order:?}");
        // Keeping 2 features keeps the independent one.
        let kept = keep_n(&c, 2);
        assert!(kept.contains(&2), "kept {kept:?}");
    }

    #[test]
    fn anticorrelation_counts_as_redundancy() {
        // Only f0 and f3 (ρ ≈ -1) plus one independent: the pair must be
        // broken up before the independent feature is touched.
        let mut m = FeatureMatrix::default();
        for i in 0..8 {
            let t = i as f64;
            m.push_row(
                &[t, -t + 0.01 * (t * 7.0).sin(), (t * 2.3).sin() * 3.0],
                if i % 2 == 0 { 1 } else { -1 },
                0,
                0,
            );
        }
        let c = correlation_matrix(&m);
        let order = removal_order(&c);
        assert!(order[0] == 0 || order[0] == 1, "order {order:?}");
    }

    #[test]
    fn keep_n_bounds() {
        let c = correlation_matrix(&toy_matrix());
        assert_eq!(keep_n(&c, 4).len(), 4);
        assert_eq!(keep_n(&c, 1).len(), 1);
        let kept = keep_n(&c, 3);
        let mut sorted = kept.clone();
        sorted.sort_unstable();
        assert_eq!(kept, sorted, "keep set must be ascending");
    }

    #[test]
    #[should_panic(expected = "n_keep must be")]
    fn keep_n_validates() {
        let c = correlation_matrix(&toy_matrix());
        let _ = keep_n(&c, 0);
    }

    #[test]
    fn synthetic_block_structure_is_detected() {
        // quickfeat builds blocks of noisy copies (cols ≥ 8 copy col
        // j % 6). A correlation-driven reduction keeps the two pure-noise
        // features (6 and 7, uncorrelated with everything) and covers
        // several distinct source blocks rather than piling up inside one.
        let m = synthetic_matrix(&QuickFeatConfig::default());
        let kept = select_features(&m, 10);
        assert!(kept.contains(&6) && kept.contains(&7), "kept {kept:?}");
        let groups: std::collections::HashSet<usize> = kept
            .iter()
            .filter(|&&j| j != 6 && j != 7)
            .map(|&j| if j < 6 { j } else { j % 6 })
            .collect();
        assert!(groups.len() >= 4, "kept {kept:?} covers groups {groups:?}");
    }

    #[test]
    fn removal_order_is_a_permutation() {
        let m = synthetic_matrix(&QuickFeatConfig::default());
        let order = removal_order(&correlation_matrix(&m));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..53).collect::<Vec<_>>());
    }
}
