//! The float reference pipeline: feature selection → power-of-two range
//! normalisation → SMO training.
//!
//! The deployed accelerator consumes *raw* features scaled by per-feature
//! power-of-two shifts (paper Section III, "Reducing bitwidths"); the SVM
//! is therefore trained on exactly those shift-normalised features so the
//! float model and its quantised twin ([`crate::engine::QuantizedEngine`])
//! share one parameterisation.
//!
//! The paper calibrates Eq 6 statistics over the SV set; we calibrate over
//! the training rows (a superset with the same statistics), which avoids a
//! second training pass — the resulting exponents differ only on
//! degenerate folds.

use crate::config::FitConfig;
use crate::error::CoreError;
use ecg_features::{DenseMatrix, FeatureMatrix};
use fixedpoint::FeatureScales;
use svm::smo::{SmoConfig, SmoTrainer};
use svm::SvmModel;

/// A trained float pipeline over a (possibly reduced) feature set.
#[derive(Debug, Clone, PartialEq)]
pub struct FloatPipeline {
    feature_indices: Vec<usize>,
    scales: FeatureScales,
    model: SvmModel,
    guard: i32,
}

/// Global guard shift (bits) applied on top of the per-feature range
/// exponents, sized so the 53-term dot product of Eq 3 stays comparable
/// to the kernel's `+1` constant (`2^3 ≈ √53`). Without it the quadratic
/// kernel degenerates to `(x·y)²` and the soft-margin box never binds.
/// Being a power of two, it is one extra shift in hardware — exactly the
/// scaling mechanism the paper's Section III allows.
pub const DOT_GUARD_SHIFT: i32 = 3;

/// Shift-normalises one already-selected row: `x_j / 2^{R_j + G}`,
/// saturated to `[-2^-G, 2^-G]` as the paper's range saturation
/// prescribes. `guard` is [`DOT_GUARD_SHIFT`] for tailored pipelines and
/// 0 for homogeneous ones (whose single global scale already absorbs any
/// constant shift).
pub(crate) fn normalize_row(row: &[f64], scales: &FeatureScales, guard: i32) -> Vec<f64> {
    let bound = (-guard as f64).exp2();
    row.iter()
        .zip(scales.r.iter())
        .map(|(&v, &r)| (v / ((r + guard) as f64).exp2()).clamp(-bound, bound))
        .collect()
}

/// Shift-normalises a whole block of already-selected rows into a new
/// dense block (the batch twin of [`normalize_row`]).
pub(crate) fn normalize_block(
    rows: &DenseMatrix<f64>,
    scales: &FeatureScales,
    guard: i32,
) -> DenseMatrix<f64> {
    let bound = (-guard as f64).exp2();
    let divisors: Vec<f64> = scales
        .r
        .iter()
        .map(|&r| ((r + guard) as f64).exp2())
        .collect();
    let mut data = Vec::with_capacity(rows.n_rows() * rows.n_cols());
    for row in rows.rows() {
        data.extend(
            row.iter()
                .zip(divisors.iter())
                .map(|(&v, &d)| (v / d).clamp(-bound, bound)),
        );
    }
    DenseMatrix::from_flat(data, rows.n_cols())
}

impl FloatPipeline {
    /// Fits the pipeline on a training matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for out-of-range feature
    /// indices or an SV budget smaller than 2, [`CoreError::Dataset`] for
    /// empty/single-class training data and [`CoreError::Svm`] when the
    /// solver fails.
    pub fn fit(train: &FeatureMatrix, cfg: &FitConfig) -> Result<Self, CoreError> {
        if train.n_rows() == 0 {
            return Err(CoreError::Dataset("empty training set".into()));
        }
        let n_cols = train.n_cols();
        let feature_indices: Vec<usize> = match &cfg.features {
            Some(f) => {
                if f.is_empty() {
                    return Err(CoreError::InvalidConfig("empty feature subset".into()));
                }
                if f.iter().any(|&j| j >= n_cols) {
                    return Err(CoreError::InvalidConfig(format!(
                        "feature index out of range (n_cols = {n_cols})"
                    )));
                }
                f.clone()
            }
            None => (0..n_cols).collect(),
        };
        let sub = train.select_columns(&feature_indices);
        let mut scales = FeatureScales::calibrate(sub.features.rows());
        // Homogeneous designs have exactly one global scale parameter, so
        // the dot-product guard shift is not separately available to them.
        let guard = if cfg.homogeneous_scale {
            0
        } else {
            DOT_GUARD_SHIFT
        };
        if cfg.homogeneous_scale {
            scales = scales.homogenize();
        }
        let x = normalize_block(&sub.features, &scales, guard);
        let y: Vec<f64> = sub
            .labels
            .iter()
            .map(|&l| if l > 0 { 1.0 } else { -1.0 })
            .collect();
        let n_pos = y.iter().filter(|&&v| v > 0.0).count();
        if n_pos == 0 || n_pos == y.len() {
            return Err(CoreError::Dataset(
                "training fold contains a single class".into(),
            ));
        }
        let smo_cfg = SmoConfig {
            c: cfg.c,
            kernel: cfg.kernel,
            ..Default::default()
        };
        let model = match cfg.sv_budget {
            Some(budget) => crate::budget::train_budgeted(&x, &y, &smo_cfg, budget)?.0,
            None => SmoTrainer::new(smo_cfg).train(&x, &y)?,
        };
        Ok(FloatPipeline {
            feature_indices,
            scales,
            model,
            guard,
        })
    }

    /// Guard shift in effect ([`DOT_GUARD_SHIFT`] or 0 for homogeneous).
    pub fn guard(&self) -> i32 {
        self.guard
    }

    /// Original-index feature subset this pipeline consumes.
    pub fn feature_indices(&self) -> &[usize] {
        &self.feature_indices
    }

    /// Per-feature power-of-two scales (Eq 6), aligned with
    /// [`FloatPipeline::feature_indices`].
    pub fn scales(&self) -> &FeatureScales {
        &self.scales
    }

    /// The trained SVM over normalised features.
    pub fn model(&self) -> &SvmModel {
        &self.model
    }

    /// Selects and normalises a raw full-width feature row.
    ///
    /// # Panics
    ///
    /// Panics if `raw_row` is narrower than the largest selected index.
    pub fn normalize(&self, raw_row: &[f64]) -> Vec<f64> {
        let selected: Vec<f64> = self.feature_indices.iter().map(|&j| raw_row[j]).collect();
        normalize_row(&selected, &self.scales, self.guard)
    }

    /// Selects and normalises a whole block of raw full-width rows into
    /// one contiguous normalised batch.
    ///
    /// # Panics
    ///
    /// Panics if the block is narrower than the largest selected index.
    pub fn normalize_batch(&self, raw: &DenseMatrix<f64>) -> DenseMatrix<f64> {
        let selected = raw.select_columns(&self.feature_indices);
        normalize_block(&selected, &self.scales, self.guard)
    }

    /// Decision value `f(x)` on a raw feature row.
    pub fn decision_value(&self, raw_row: &[f64]) -> f64 {
        self.model.decision_value(&self.normalize(raw_row))
    }

    /// Predicted class (±1) on a raw feature row.
    pub fn predict(&self, raw_row: &[f64]) -> f64 {
        self.model.predict(&self.normalize(raw_row))
    }

    /// Decision values for a whole block of raw rows (normalise once,
    /// then stream the contiguous batch through the model).
    pub fn decision_batch(&self, raw: &DenseMatrix<f64>) -> Vec<f64> {
        self.model.decision_batch(&self.normalize_batch(raw))
    }

    /// Predicted classes (±1) for a whole block of raw rows.
    pub fn predict_batch(&self, raw: &DenseMatrix<f64>) -> Vec<f64> {
        self.model.predict_batch(&self.normalize_batch(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quickfeat::{synthetic_matrix, QuickFeatConfig};
    use svm::Kernel;

    fn matrix() -> FeatureMatrix {
        synthetic_matrix(&QuickFeatConfig {
            n_sessions: 4,
            windows_per_session: 40,
            ..Default::default()
        })
    }

    #[test]
    fn fit_and_training_accuracy() {
        let m = matrix();
        let p = FloatPipeline::fit(&m, &FitConfig::default()).unwrap();
        assert_eq!(p.feature_indices().len(), 53);
        assert_eq!(p.scales().len(), 53);
        assert!(p.model().n_support_vectors() > 0);
        // Training accuracy should be well above chance.
        let correct = m
            .rows()
            .zip(m.labels.iter())
            .filter(|(r, &l)| p.predict(r) == f64::from(l))
            .count();
        assert!(correct as f64 / m.n_rows() as f64 > 0.85);
    }

    #[test]
    fn normalized_features_are_in_unit_range() {
        let m = matrix();
        let p = FloatPipeline::fit(&m, &FitConfig::default()).unwrap();
        for row in m.rows() {
            let n = p.normalize(row);
            assert!(n.iter().all(|v| (-1.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn feature_subset_restricts_model_width() {
        let m = matrix();
        let cfg = FitConfig::default().with_features(vec![0, 1, 2, 3, 4, 5]);
        let p = FloatPipeline::fit(&m, &cfg).unwrap();
        assert_eq!(p.model().n_features(), 6);
        assert_eq!(p.feature_indices(), &[0, 1, 2, 3, 4, 5]);
        let _ = p.predict(m.row(0)); // consumes full-width rows
    }

    #[test]
    fn budget_limits_sv_count() {
        let m = matrix();
        let free = FloatPipeline::fit(&m, &FitConfig::default()).unwrap();
        let budget = (free.model().n_support_vectors() / 2).max(4);
        let cfg = FitConfig::default().with_sv_budget(budget);
        let p = FloatPipeline::fit(&m, &cfg).unwrap();
        assert!(
            p.model().n_support_vectors() <= budget,
            "{} > {budget}",
            p.model().n_support_vectors()
        );
    }

    #[test]
    fn homogeneous_scale_uses_single_exponent() {
        let m = matrix();
        let cfg = FitConfig {
            homogeneous_scale: true,
            ..Default::default()
        };
        let p = FloatPipeline::fit(&m, &cfg).unwrap();
        let r0 = p.scales().r[0];
        assert!(p.scales().r.iter().all(|&r| r == r0));
    }

    #[test]
    fn invalid_configs_error() {
        let m = matrix();
        assert!(matches!(
            FloatPipeline::fit(&m, &FitConfig::default().with_features(vec![99])),
            Err(CoreError::InvalidConfig(_))
        ));
        assert!(matches!(
            FloatPipeline::fit(&m, &FitConfig::default().with_features(vec![])),
            Err(CoreError::InvalidConfig(_))
        ));
        let empty = FeatureMatrix::default();
        assert!(matches!(
            FloatPipeline::fit(&empty, &FitConfig::default()),
            Err(CoreError::Dataset(_))
        ));
    }

    #[test]
    fn single_class_fold_errors() {
        let mut m = matrix();
        for l in &mut m.labels {
            *l = -1;
        }
        assert!(matches!(
            FloatPipeline::fit(&m, &FitConfig::default()),
            Err(CoreError::Dataset(_))
        ));
    }

    #[test]
    fn batch_inference_matches_per_row_bitwise() {
        let m = matrix();
        let p = FloatPipeline::fit(&m, &FitConfig::default()).unwrap();
        let dec = p.decision_batch(&m.features);
        let pred = p.predict_batch(&m.features);
        for (i, row) in m.rows().enumerate() {
            assert_eq!(dec[i].to_bits(), p.decision_value(row).to_bits());
            assert_eq!(pred[i], p.predict(row));
        }
    }

    #[test]
    fn linear_kernel_fits_too() {
        let m = matrix();
        let cfg = FitConfig::default().with_kernel(Kernel::Linear);
        let p = FloatPipeline::fit(&m, &cfg).unwrap();
        assert_eq!(p.model().kernel(), Kernel::Linear);
    }
}
