//! The float reference pipeline: feature selection → power-of-two range
//! normalisation → SMO training.
//!
//! The deployed accelerator consumes *raw* features scaled by per-feature
//! power-of-two shifts (paper Section III, "Reducing bitwidths"); the SVM
//! is therefore trained on exactly those shift-normalised features so the
//! float model and its quantised twin ([`crate::engine::QuantizedEngine`])
//! share one parameterisation.
//!
//! The paper calibrates Eq 6 statistics over the SV set; we calibrate over
//! the training rows (a superset with the same statistics), which avoids a
//! second training pass — the resulting exponents differ only on
//! degenerate folds.

use std::cell::RefCell;

use crate::config::FitConfig;
use crate::error::CoreError;
use ecg_features::{DenseMatrix, FeatureMatrix};
use fixedpoint::FeatureScales;
use svm::classifier::{ClassifierEngine, EngineInfo};
use svm::smo::{SmoConfig, SmoTrainer};
use svm::SvmModel;

thread_local! {
    /// Reusable panel + decision-value buffers for
    /// [`FloatPipeline::decision_rows_into`] (same idiom as the quantised
    /// engine's `CODE_SCRATCH`): steady-state fleet flushes stop
    /// allocating per panel once the buffers hit their high-water mark.
    static PANEL_SCRATCH: RefCell<(Vec<f64>, Vec<f64>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// A trained float pipeline over a (possibly reduced) feature set.
#[derive(Debug, Clone, PartialEq)]
pub struct FloatPipeline {
    feature_indices: Vec<usize>,
    scales: FeatureScales,
    model: SvmModel,
    guard: i32,
    /// Cached per-feature divisors `2^{R_j + G}` (derived from `scales`
    /// and `guard`), so the panel-serving path does not rebuild them on
    /// every flush.
    divisors: Vec<f64>,
}

/// Per-feature divisors `2^{R_j + G}` for the shift-normalisation.
fn divisors_for(scales: &FeatureScales, guard: i32) -> Vec<f64> {
    scales
        .r
        .iter()
        .map(|&r| ((r + guard) as f64).exp2())
        .collect()
}

/// Global guard shift (bits) applied on top of the per-feature range
/// exponents, sized so the 53-term dot product of Eq 3 stays comparable
/// to the kernel's `+1` constant (`2^3 ≈ √53`). Without it the quadratic
/// kernel degenerates to `(x·y)²` and the soft-margin box never binds.
/// Being a power of two, it is one extra shift in hardware — exactly the
/// scaling mechanism the paper's Section III allows.
pub const DOT_GUARD_SHIFT: i32 = 3;

/// Shift-normalises one already-selected row: `x_j / 2^{R_j + G}`,
/// saturated to `[-2^-G, 2^-G]` as the paper's range saturation
/// prescribes. `guard` is [`DOT_GUARD_SHIFT`] for tailored pipelines and
/// 0 for homogeneous ones (whose single global scale already absorbs any
/// constant shift).
pub(crate) fn normalize_row(row: &[f64], scales: &FeatureScales, guard: i32) -> Vec<f64> {
    let bound = (-guard as f64).exp2();
    row.iter()
        .zip(scales.r.iter())
        .map(|(&v, &r)| (v / ((r + guard) as f64).exp2()).clamp(-bound, bound))
        .collect()
}

/// Shift-normalises a whole block of already-selected rows into a new
/// dense block (the batch twin of [`normalize_row`]).
pub(crate) fn normalize_block(
    rows: &DenseMatrix<f64>,
    scales: &FeatureScales,
    guard: i32,
) -> DenseMatrix<f64> {
    let bound = (-guard as f64).exp2();
    let divisors: Vec<f64> = scales
        .r
        .iter()
        .map(|&r| ((r + guard) as f64).exp2())
        .collect();
    let mut data = Vec::with_capacity(rows.n_rows() * rows.n_cols());
    for row in rows.rows() {
        data.extend(
            row.iter()
                .zip(divisors.iter())
                .map(|(&v, &d)| (v / d).clamp(-bound, bound)),
        );
    }
    DenseMatrix::from_flat(data, rows.n_cols())
}

impl FloatPipeline {
    /// Fits the pipeline on a training matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for out-of-range feature
    /// indices or an SV budget smaller than 2, [`CoreError::Dataset`] for
    /// empty/single-class training data and [`CoreError::Svm`] when the
    /// solver fails.
    pub fn fit(train: &FeatureMatrix, cfg: &FitConfig) -> Result<Self, CoreError> {
        if train.n_rows() == 0 {
            return Err(CoreError::Dataset("empty training set".into()));
        }
        let n_cols = train.n_cols();
        let feature_indices: Vec<usize> = match &cfg.features {
            Some(f) => {
                if f.is_empty() {
                    return Err(CoreError::InvalidConfig("empty feature subset".into()));
                }
                if f.iter().any(|&j| j >= n_cols) {
                    return Err(CoreError::InvalidConfig(format!(
                        "feature index out of range (n_cols = {n_cols})"
                    )));
                }
                f.clone()
            }
            None => (0..n_cols).collect(),
        };
        let sub = train.select_columns(&feature_indices);
        let mut scales = FeatureScales::calibrate(sub.features.rows());
        // Homogeneous designs have exactly one global scale parameter, so
        // the dot-product guard shift is not separately available to them.
        let guard = if cfg.homogeneous_scale {
            0
        } else {
            DOT_GUARD_SHIFT
        };
        if cfg.homogeneous_scale {
            scales = scales.homogenize();
        }
        let x = normalize_block(&sub.features, &scales, guard);
        let y: Vec<f64> = sub
            .labels
            .iter()
            .map(|&l| if l > 0 { 1.0 } else { -1.0 })
            .collect();
        let n_pos = y.iter().filter(|&&v| v > 0.0).count();
        if n_pos == 0 || n_pos == y.len() {
            return Err(CoreError::Dataset(
                "training fold contains a single class".into(),
            ));
        }
        let smo_cfg = SmoConfig {
            c: cfg.c,
            kernel: cfg.kernel,
            ..Default::default()
        };
        let model = match cfg.sv_budget {
            Some(budget) => crate::budget::train_budgeted(&x, &y, &smo_cfg, budget)?.0,
            None => SmoTrainer::new(smo_cfg).train(&x, &y)?,
        };
        let divisors = divisors_for(&scales, guard);
        Ok(FloatPipeline {
            feature_indices,
            scales,
            model,
            guard,
            divisors,
        })
    }

    /// Guard shift in effect ([`DOT_GUARD_SHIFT`] or 0 for homogeneous).
    pub fn guard(&self) -> i32 {
        self.guard
    }

    /// Original-index feature subset this pipeline consumes.
    pub fn feature_indices(&self) -> &[usize] {
        &self.feature_indices
    }

    /// Per-feature power-of-two scales (Eq 6), aligned with
    /// [`FloatPipeline::feature_indices`].
    pub fn scales(&self) -> &FeatureScales {
        &self.scales
    }

    /// The trained SVM over normalised features.
    pub fn model(&self) -> &SvmModel {
        &self.model
    }

    /// Selects and normalises a raw full-width feature row.
    ///
    /// # Panics
    ///
    /// Panics if `raw_row` is narrower than the largest selected index.
    pub fn normalize(&self, raw_row: &[f64]) -> Vec<f64> {
        let selected: Vec<f64> = self.feature_indices.iter().map(|&j| raw_row[j]).collect();
        normalize_row(&selected, &self.scales, self.guard)
    }

    /// Selects and normalises a whole block of raw full-width rows into
    /// one contiguous normalised batch.
    ///
    /// # Panics
    ///
    /// Panics if the block is narrower than the largest selected index.
    pub fn normalize_batch(&self, raw: &DenseMatrix<f64>) -> DenseMatrix<f64> {
        let selected = raw.select_columns(&self.feature_indices);
        normalize_block(&selected, &self.scales, self.guard)
    }

    /// Decision value `f(x)` on a raw feature row.
    pub fn decision_value(&self, raw_row: &[f64]) -> f64 {
        self.model.decision_value(&self.normalize(raw_row))
    }

    /// Predicted class (±1) on a raw feature row.
    ///
    /// Batch variants (`decision_batch` / `predict_batch`-style) live on
    /// the [`ClassifierEngine`] trait this pipeline implements.
    pub fn predict(&self, raw_row: &[f64]) -> f64 {
        self.model.predict(&self.normalize(raw_row))
    }

    /// Serialises the trained pipeline (selection, scales, guard and the
    /// embedded SVM) as versioned plain text; round-trips bit-exactly so
    /// a monitor restarted from disk classifies bit-identically. See
    /// [`svm::persist`] for the field encoding.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("floatpipeline v{PIPELINE_FORMAT_VERSION}\n"));
        out.push_str(&format!("guard {}\n", self.guard));
        out.push_str("features");
        for &j in &self.feature_indices {
            out.push_str(&format!(" {j}"));
        }
        out.push('\n');
        out.push_str("scales");
        for &r in &self.scales.r {
            out.push_str(&format!(" {r}"));
        }
        out.push('\n');
        out.push_str(&self.model.to_text());
        out
    }

    /// Parses a pipeline previously written by [`FloatPipeline::to_text`].
    ///
    /// A pipeline does not record the width of the raw rows it was fitted
    /// against, so the selected feature indices cannot be bounds-checked
    /// here; consumers that know their row width validate on top (the
    /// streaming monitor rejects indices `>= N_FEATURES` at load time),
    /// and [`FloatPipeline::normalize`] documents the panic otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on a wrong header/version or
    /// malformed/missing fields, and wraps [`svm::SvmError`] for problems
    /// inside the embedded model block.
    pub fn from_text(text: &str) -> Result<Self, CoreError> {
        let bad = |msg: String| CoreError::InvalidConfig(format!("persisted pipeline: {msg}"));
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or_else(|| bad("empty text".into()))?;
        if header.trim() != format!("floatpipeline v{PIPELINE_FORMAT_VERSION}") {
            return Err(bad(format!("unsupported header `{header}`")));
        }
        let mut guard = None;
        let mut feature_indices = None;
        let mut scales = None;
        let mut model_text = String::new();
        let mut in_model = false;
        for line in lines {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if in_model {
                model_text.push_str(line);
                model_text.push('\n');
                continue;
            }
            match parts.as_slice() {
                ["guard", v] => {
                    guard = Some(
                        v.parse::<i32>()
                            .map_err(|_| bad(format!("bad guard field `{v}`")))?,
                    );
                }
                ["features", rest @ ..] => {
                    feature_indices = Some(
                        rest.iter()
                            .map(|v| {
                                v.parse::<usize>()
                                    .map_err(|_| bad(format!("bad feature index `{v}`")))
                            })
                            .collect::<Result<Vec<usize>, _>>()?,
                    );
                }
                ["scales", rest @ ..] => {
                    scales = Some(FeatureScales {
                        r: rest
                            .iter()
                            .map(|v| {
                                v.parse::<i32>()
                                    .map_err(|_| bad(format!("bad scale exponent `{v}`")))
                            })
                            .collect::<Result<Vec<i32>, _>>()?,
                    });
                }
                ["svmmodel", ..] => {
                    in_model = true;
                    model_text.push_str(line);
                    model_text.push('\n');
                }
                _ => return Err(bad(format!("unrecognised line `{line}`"))),
            }
        }
        let feature_indices = feature_indices.ok_or_else(|| bad("missing features".into()))?;
        let scales = scales.ok_or_else(|| bad("missing scales".into()))?;
        if feature_indices.len() != scales.len() {
            return Err(bad(format!(
                "{} feature indices but {} scales",
                feature_indices.len(),
                scales.len()
            )));
        }
        let model = SvmModel::from_text(&model_text)?;
        if model.n_features() != feature_indices.len() {
            return Err(bad(format!(
                "model width {} does not match the {} selected features",
                model.n_features(),
                feature_indices.len()
            )));
        }
        let guard = guard.ok_or_else(|| bad("missing guard".into()))?;
        let divisors = divisors_for(&scales, guard);
        Ok(FloatPipeline {
            feature_indices,
            scales,
            model,
            guard,
            divisors,
        })
    }
}

/// Format version written by [`FloatPipeline::to_text`].
pub const PIPELINE_FORMAT_VERSION: u32 = 1;

/// The reference pipeline is an engine over **raw** full-width feature
/// rows: selection and shift-normalisation happen inside, so it is
/// drop-in interchangeable with the quantised engine behind
/// `dyn ClassifierEngine`.
impl ClassifierEngine for FloatPipeline {
    fn decision(&self, row: &[f64]) -> f64 {
        self.decision_value(row)
    }

    fn classify(&self, row: &[f64]) -> f64 {
        self.predict(row)
    }

    /// Normalises the block once, then streams it through the model.
    fn decision_batch(&self, rows: &DenseMatrix<f64>) -> Vec<f64> {
        self.model.decision_batch(&self.normalize_batch(rows))
    }

    /// Normalises the block once, then streams it through the model.
    fn classify_batch(&self, rows: &DenseMatrix<f64>) -> Vec<f64> {
        self.model.classify_batch(&self.normalize_batch(rows))
    }

    /// Selects and shift-normalises straight from the borrowed rows into
    /// one dense panel (same divide-then-clamp per element as
    /// [`normalize_block`], so bit-identical to `decision_batch` on a
    /// gathered copy), then streams the panel through the model's tiled
    /// batch kernel. Panel and decision-value buffers are thread-local
    /// scratch recycled across calls, so steady-state fleet flushes are
    /// allocation-free on this path.
    fn decision_rows_into(&self, rows: &[&[f64]], out: &mut Vec<f64>) {
        let k = self.feature_indices.len();
        let bound = (-self.guard as f64).exp2();
        PANEL_SCRATCH.with(|scratch| {
            let (mut data, mut vals) = scratch.take();
            data.clear();
            data.reserve(rows.len() * k);
            for row in rows {
                data.extend(
                    self.feature_indices
                        .iter()
                        .zip(self.divisors.iter())
                        .map(|(&j, &d)| (row[j] / d).clamp(-bound, bound)),
                );
            }
            let panel = DenseMatrix::from_flat(data, k);
            svm::kernel::block::decision_batch_into(
                self.model.kernel(),
                &panel,
                self.model.support_vectors(),
                self.model.sv_sq_norms(),
                self.model.alpha_y(),
                self.model.bias(),
                &mut vals,
            );
            out.extend_from_slice(&vals);
            scratch.replace((panel.into_flat(), vals));
        });
    }

    fn n_features(&self) -> usize {
        self.feature_indices.len()
    }

    fn info(&self) -> EngineInfo {
        EngineInfo {
            kind: "float-pipeline",
            n_support_vectors: self.model.n_support_vectors(),
            n_features: self.feature_indices.len(),
            d_bits: None,
            a_bits: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quickfeat::{synthetic_matrix, QuickFeatConfig};
    use svm::Kernel;

    fn matrix() -> FeatureMatrix {
        synthetic_matrix(&QuickFeatConfig {
            n_sessions: 4,
            windows_per_session: 40,
            ..Default::default()
        })
    }

    #[test]
    fn fit_and_training_accuracy() {
        let m = matrix();
        let p = FloatPipeline::fit(&m, &FitConfig::default()).unwrap();
        assert_eq!(p.feature_indices().len(), 53);
        assert_eq!(p.scales().len(), 53);
        assert!(p.model().n_support_vectors() > 0);
        // Training accuracy should be well above chance.
        let correct = m
            .rows()
            .zip(m.labels.iter())
            .filter(|(r, &l)| p.predict(r) == f64::from(l))
            .count();
        assert!(correct as f64 / m.n_rows() as f64 > 0.85);
    }

    #[test]
    fn rows_into_matches_decision_batch_bitwise() {
        let m = matrix();
        let p = FloatPipeline::fit(&m, &FitConfig::default()).unwrap();
        let raw: Vec<Vec<f64>> = m.rows().take(9).map(<[f64]>::to_vec).collect();
        let refs: Vec<&[f64]> = raw.iter().map(Vec::as_slice).collect();
        let batch = DenseMatrix::from_rows(&raw);
        let expect = ClassifierEngine::decision_batch(&p, &batch);
        let mut got = Vec::new();
        p.decision_rows_into(&refs, &mut got);
        assert_eq!(got.len(), expect.len());
        for (g, w) in got.iter().zip(&expect) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn normalized_features_are_in_unit_range() {
        let m = matrix();
        let p = FloatPipeline::fit(&m, &FitConfig::default()).unwrap();
        for row in m.rows() {
            let n = p.normalize(row);
            assert!(n.iter().all(|v| (-1.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn feature_subset_restricts_model_width() {
        let m = matrix();
        let cfg = FitConfig::default().with_features(vec![0, 1, 2, 3, 4, 5]);
        let p = FloatPipeline::fit(&m, &cfg).unwrap();
        assert_eq!(p.model().n_features(), 6);
        assert_eq!(p.feature_indices(), &[0, 1, 2, 3, 4, 5]);
        let _ = p.predict(m.row(0)); // consumes full-width rows
    }

    #[test]
    fn budget_limits_sv_count() {
        let m = matrix();
        let free = FloatPipeline::fit(&m, &FitConfig::default()).unwrap();
        let budget = (free.model().n_support_vectors() / 2).max(4);
        let cfg = FitConfig::default().with_sv_budget(budget);
        let p = FloatPipeline::fit(&m, &cfg).unwrap();
        assert!(
            p.model().n_support_vectors() <= budget,
            "{} > {budget}",
            p.model().n_support_vectors()
        );
    }

    #[test]
    fn homogeneous_scale_uses_single_exponent() {
        let m = matrix();
        let cfg = FitConfig {
            homogeneous_scale: true,
            ..Default::default()
        };
        let p = FloatPipeline::fit(&m, &cfg).unwrap();
        let r0 = p.scales().r[0];
        assert!(p.scales().r.iter().all(|&r| r == r0));
    }

    #[test]
    fn invalid_configs_error() {
        let m = matrix();
        assert!(matches!(
            FloatPipeline::fit(&m, &FitConfig::default().with_features(vec![99])),
            Err(CoreError::InvalidConfig(_))
        ));
        assert!(matches!(
            FloatPipeline::fit(&m, &FitConfig::default().with_features(vec![])),
            Err(CoreError::InvalidConfig(_))
        ));
        let empty = FeatureMatrix::default();
        assert!(matches!(
            FloatPipeline::fit(&empty, &FitConfig::default()),
            Err(CoreError::Dataset(_))
        ));
    }

    #[test]
    fn single_class_fold_errors() {
        let mut m = matrix();
        for l in &mut m.labels {
            *l = -1;
        }
        assert!(matches!(
            FloatPipeline::fit(&m, &FitConfig::default()),
            Err(CoreError::Dataset(_))
        ));
    }

    #[test]
    fn batch_inference_matches_per_row_bitwise() {
        let m = matrix();
        let p = FloatPipeline::fit(&m, &FitConfig::default()).unwrap();
        let dec = p.decision_batch(&m.features);
        let pred = p.classify_batch(&m.features);
        for (i, row) in m.rows().enumerate() {
            assert_eq!(dec[i].to_bits(), p.decision_value(row).to_bits());
            assert_eq!(pred[i], p.predict(row));
        }
    }

    #[test]
    fn engine_trait_routes_to_pipeline_semantics() {
        let m = matrix();
        let p = FloatPipeline::fit(&m, &FitConfig::default()).unwrap();
        let e: &dyn ClassifierEngine = &p;
        assert_eq!(ClassifierEngine::n_features(&p), 53);
        let info = e.info();
        assert_eq!(info.kind, "float-pipeline");
        assert_eq!(info.n_support_vectors, p.model().n_support_vectors());
        assert_eq!(info.d_bits, None);
        for row in m.rows().take(20) {
            assert_eq!(e.decision(row).to_bits(), p.decision_value(row).to_bits());
            assert_eq!(e.classify(row), p.predict(row));
        }
    }

    #[test]
    fn text_round_trip_is_bit_exact() {
        let m = matrix();
        let p = FloatPipeline::fit(
            &m,
            &FitConfig::default().with_features(vec![0, 3, 5, 11, 40]),
        )
        .unwrap();
        let text = p.to_text();
        let back = FloatPipeline::from_text(&text).unwrap();
        assert_eq!(p, back);
        for row in m.rows().take(25) {
            assert_eq!(
                p.decision_value(row).to_bits(),
                back.decision_value(row).to_bits()
            );
        }
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn malformed_pipeline_text_is_rejected() {
        assert!(FloatPipeline::from_text("").is_err());
        assert!(FloatPipeline::from_text("floatpipeline v99\n").is_err());
        let m = matrix();
        let p = FloatPipeline::fit(&m, &FitConfig::default()).unwrap();
        let good = p.to_text();
        assert!(FloatPipeline::from_text(&good.replace("guard 3", "guard x")).is_err());
        // Scale count must match the feature subset.
        assert!(FloatPipeline::from_text(&good.replacen("scales ", "scales 0 ", 1)).is_err());
        // A missing model block is rejected.
        let no_model: String = good
            .lines()
            .take_while(|l| !l.starts_with("svmmodel"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(FloatPipeline::from_text(&no_model).is_err());
    }

    /// Deterministic corpus of corrupted pipeline texts: every entry must
    /// come back as an error — never a panic, never `Ok`.
    #[test]
    fn corrupted_pipeline_corpus_never_panics() {
        let m = matrix();
        let p = FloatPipeline::fit(
            &m,
            &FitConfig::default().with_features(vec![0, 3, 5, 11, 40]),
        )
        .unwrap();
        let good = p.to_text();
        let mut corpus: Vec<String> = vec![
            String::new(),
            "floatpipeline".into(),
            "floatpipeline v1".into(), // header only
            "floatpipeline v9\n".into(),
            "not a pipeline\n".into(),
            good.replace("guard 3", "guard 3.5"), // non-integer guard
            good.replace("guard 3", "guard"),     // empty guard
            good.replacen("features", "festures", 1), // misspelt key
            good.replacen("features 0 ", "features zero ", 1), // bad index
            good.replacen("scales ", "scales x ", 1), // bad exponent
            good.replacen("scales ", "scales 0 ", 1), // count mismatch
            good.replace("n_feat 5", "n_feat 0"), // zero-width model
            good.replace("n_feat 5", "n_feat 6"), // width mismatch
            good.replace("svmmodel v1", "svmmodel v7"), // bad inner header
        ];
        // Truncations at every line boundary (all but the full text).
        let lines: Vec<&str> = good.lines().collect();
        for cut in 0..lines.len() {
            corpus.push(
                lines[..cut]
                    .iter()
                    .map(|l| format!("{l}\n"))
                    .collect::<String>(),
            );
        }
        for (i, text) in corpus.iter().enumerate() {
            assert!(
                FloatPipeline::from_text(text).is_err(),
                "corpus entry {i} must be rejected:\n{text}"
            );
        }
        assert!(FloatPipeline::from_text(&good).is_ok());
    }

    #[test]
    fn linear_kernel_fits_too() {
        let m = matrix();
        let cfg = FitConfig::default().with_kernel(Kernel::Linear);
        let p = FloatPipeline::fit(&m, &cfg).unwrap();
        assert_eq!(p.model().kernel(), Kernel::Linear);
    }
}
