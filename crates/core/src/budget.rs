//! Support-vector budgeting (paper Section III, Fig 5).
//!
//! Counters the "curse of kernelization" with the strategy of Wang et al.
//! [10 in the paper]: train, rank support vectors by the significance norm
//! of Eq 5 (`‖SVᵢ‖ = ‖αᵢ‖² · k(xᵢ, xᵢ)`), drop the least significant ones
//! *from the training set*, and re-train. We remove half of the excess per
//! round (instead of one SV per round) so the number of re-trainings is
//! logarithmic in the excess; the fixed point is the same — a model with
//! at most `budget` support vectors.

use ecg_features::DenseMatrix;
use svm::smo::{SmoConfig, SmoTrainer};
use svm::{SvmError, SvmModel};

/// Trains an SVM whose support-vector count does not exceed `budget`.
///
/// Returns the model and the number of re-training rounds performed.
///
/// # Errors
///
/// Returns [`SvmError::InvalidConfig`] when `budget < 2` and propagates
/// trainer errors. If pruning would remove the last positive or negative
/// example, remaining excess SVs are tolerated and the current model is
/// returned (documented degradation instead of a crash on degenerate
/// folds).
pub fn train_budgeted(
    x: &DenseMatrix<f64>,
    y: &[f64],
    cfg: &SmoConfig,
    budget: usize,
) -> Result<(SvmModel, usize), SvmError> {
    if budget < 2 {
        return Err(SvmError::InvalidConfig("sv budget must be at least 2"));
    }
    let trainer = SmoTrainer::new(*cfg);
    let mut xs: DenseMatrix<f64> = x.clone();
    let mut ys: Vec<f64> = y.to_vec();
    let mut rounds = 0usize;
    loop {
        let (model, alphas, _stats) = trainer.train_with_alphas(&xs, &ys)?;
        let sv_idx: Vec<usize> = (0..xs.n_rows()).filter(|&i| alphas[i] > 1e-8).collect();
        if sv_idx.len() <= budget || rounds >= 64 {
            return Ok((model, rounds));
        }
        // Eq 5 norms for current SVs, globally ranked: the least
        // significant SVs go first regardless of class (with class-
        // weighted costs this tends to prune majority-class vectors
        // first, which preserves sensitivity longest — the behaviour the
        // paper's Fig 5 plateau relies on).
        let mut ranked: Vec<(usize, f64)> = sv_idx
            .iter()
            .map(|&i| {
                (
                    i,
                    alphas[i] * alphas[i] * cfg.kernel.eval(xs.row(i), xs.row(i)),
                )
            })
            .collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
        let excess = sv_idx.len() - budget;
        let k = (excess / 2).max(1).min(excess);
        // Never remove the final example of either class.
        let mut remove = vec![false; xs.n_rows()];
        let mut removed = 0usize;
        let mut pos_left = ys.iter().filter(|&&v| v > 0.0).count();
        let mut neg_left = ys.len() - pos_left;
        for &(i, _) in ranked.iter() {
            if removed == k {
                break;
            }
            if ys[i] > 0.0 {
                if pos_left <= 1 {
                    continue;
                }
                pos_left -= 1;
            } else {
                if neg_left <= 1 {
                    continue;
                }
                neg_left -= 1;
            }
            remove[i] = true;
            removed += 1;
        }
        if removed == 0 {
            // Cannot prune further without destroying a class.
            return Ok((model, rounds));
        }
        // Rebuild the dense block without the pruned rows, preserving the
        // original sample order (keeps re-training deterministic).
        xs = xs.filter_rows(|i| !remove[i]);
        ys = ys
            .iter()
            .enumerate()
            .filter(|&(i, _)| !remove[i])
            .map(|(_, &v)| v)
            .collect();
        rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svm::ClassifierEngine;
    use svm::Kernel;

    /// Noisy two-moon-ish data that produces many SVs.
    fn noisy_problem(n: usize) -> (DenseMatrix<f64>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut seed = 42u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) - 0.5
        };
        for i in 0..n {
            let t = i as f64 * 0.37;
            // Overlapping classes → many bound SVs.
            x.push(vec![0.4 + 0.8 * rnd() + 0.2 * t.sin(), 0.5 * rnd()]);
            y.push(1.0);
            x.push(vec![-0.4 + 0.8 * rnd(), 0.5 * rnd() + 0.2 * t.cos()]);
            y.push(-1.0);
        }
        (DenseMatrix::from_rows(&x), y)
    }

    fn cfg() -> SmoConfig {
        SmoConfig {
            c: 2.0,
            kernel: Kernel::Polynomial { degree: 2 },
            balance_classes: false,
            ..Default::default()
        }
    }

    #[test]
    fn budget_is_respected() {
        let (x, y) = noisy_problem(60);
        let unbudgeted = SmoTrainer::new(cfg()).train(&x, &y).unwrap();
        let full = unbudgeted.n_support_vectors();
        assert!(full > 20, "need a rich SV set for this test, got {full}");
        let budget = full / 3;
        let (model, rounds) = train_budgeted(&x, &y, &cfg(), budget).unwrap();
        assert!(model.n_support_vectors() <= budget);
        assert!(rounds >= 1);
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let (x, y) = noisy_problem(30);
        let free = SmoTrainer::new(cfg()).train(&x, &y).unwrap();
        let (model, rounds) = train_budgeted(&x, &y, &cfg(), 10_000).unwrap();
        assert_eq!(rounds, 0);
        assert_eq!(model, free);
    }

    #[test]
    fn budgeted_model_still_classifies_well() {
        let (x, y) = noisy_problem(60);
        let free = SmoTrainer::new(cfg()).train(&x, &y).unwrap();
        let budget = (free.n_support_vectors() / 2).max(4);
        let (model, _) = train_budgeted(&x, &y, &cfg(), budget).unwrap();
        let acc = |m: &SvmModel| {
            m.classify_batch(&x)
                .iter()
                .zip(y.iter())
                .filter(|(&p, &yi)| p == yi)
                .count() as f64
                / x.n_rows() as f64
        };
        // Accuracy may drop slightly but must stay in the same regime
        // (the paper's Fig 5 plateau).
        assert!(
            acc(&model) > acc(&free) - 0.12,
            "{} vs {}",
            acc(&model),
            acc(&free)
        );
    }

    #[test]
    fn rejects_tiny_budget() {
        let (x, y) = noisy_problem(10);
        assert!(matches!(
            train_budgeted(&x, &y, &cfg(), 1),
            Err(SvmError::InvalidConfig(_))
        ));
    }

    #[test]
    fn class_preservation_on_extreme_budget() {
        // Budget 2 on imbalanced data: pruning must never delete the last
        // positive example.
        let mut x = DenseMatrix::with_cols(2);
        x.push_row(&[1.0, 1.0]);
        let mut y = vec![1.0];
        for i in 0..20 {
            x.push_row(&[-1.0 - 0.05 * i as f64, -1.0]);
            y.push(-1.0);
        }
        let (model, _) = train_budgeted(&x, &y, &cfg(), 2).unwrap();
        // Model still predicts the positive region positive.
        assert_eq!(model.predict(&[1.2, 1.2]), 1.0);
    }

    #[test]
    fn low_norm_svs_are_pruned_first() {
        let (x, y) = noisy_problem(40);
        let trainer = SmoTrainer::new(cfg());
        let (_m0, alphas, _) = trainer.train_with_alphas(&x, &y).unwrap();
        let sv_count = alphas.iter().filter(|&&a| a > 1e-8).count();
        let budget = sv_count - 2;
        let (m1, rounds) = train_budgeted(&x, &y, &cfg(), budget).unwrap();
        assert!(m1.n_support_vectors() <= budget);
        // Each round removes half the excess; re-training can promote new
        // SVs, so more than one round is legitimate — but it must finish.
        assert!((1..=64).contains(&rounds), "rounds {rounds}");
    }
}
