//! Streaming inference: chunked samples in, per-window decisions out.
//!
//! The batch path synthesises a whole session, extracts every window and
//! classifies one matrix. A wearable monitor sees the opposite shape:
//! samples arrive in arbitrary chunks (one per ADC interrupt, a packet
//! per second, a file at a time) and decisions must leave as soon as each
//! window completes. [`StreamingSession`] bridges the two worlds:
//!
//! ```text
//! push_samples(chunk) ─► SampleRing ─► WindowScheduler ─► extract_into
//!                        (biodsp)      (window/stride)    (scratch-reusing)
//!                                                              │
//!                       WindowDecision ◄── ClassifierEngine ◄──┘
//! ```
//!
//! Two properties are pinned by the test suites:
//!
//! * **chunking invariance / batch equivalence** — for any chunk sizes,
//!   the decision stream is bit-identical to running the batch pipeline
//!   on the same windows (window `i` covers samples
//!   `[i·stride, i·stride + window_len)`), for every
//!   [`ClassifierEngine`] backend;
//! * **allocation-light hot loop** — the ring, the window copy, the QRS
//!   scratch (all of the sample-rate-proportional work) and the feature
//!   row are reused across windows; after warm-up the only per-window
//!   heap traffic is a handful of row-sized (53-element) vectors (the
//!   pending feature row plus buffers inside the engine's `decision`)
//!   and the beat-rate buffers of RR/EDR processing, two orders of
//!   magnitude below the window itself.
//!
//! The per-window pipeline is split into two stages so it can be driven
//! two ways: the **extract stage**
//! ([`StreamingSession::extract_windows_into`]) turns chunks into
//! [`PendingWindow`]s (feature row or dropped marker), and the **decide
//! stage** ([`StreamingSession::decide_window`]) folds a decision value
//! into stats, alarms and the output. [`StreamingSession::push_samples`]
//! fuses them per row; [`crate::fleet::FleetScheduler`] batches the
//! decide stage across thousands of patients.
//!
//! Many patient streams run concurrently via
//! [`run_streams_parallel`], which fans sessions out on
//! [`crate::parallel::par_map`] while sharing one engine.

// lint: allow-file(hot-index) — streaming bookkeeping: ring/batch offsets come
// from the window scheduler's drain contract (`min_ring_capacity`) and the
// lane-group layout sized in the same function.
use crate::alarm::{AlarmConfig, AlarmEvent, AlarmStateMachine};
use crate::clock::LatencyHistogram;
use crate::error::CoreError;
use crate::parallel::par_map_mut;
use biodsp::stream::{SampleRing, WindowScheduler};
use biodsp::ExtractPrecision;
use ecg_features::extract::{ExtractScratch, WindowExtractor};
use ecg_features::N_FEATURES;
use std::sync::Arc;
use std::time::Instant;
use svm::{decision_is_seizure, ClassifierEngine};

/// Shared engine handle used by streaming sessions (one engine, many
/// concurrent patient streams).
pub type SharedEngine = Arc<dyn ClassifierEngine>;

/// Windowing configuration of a sample stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// ECG sampling rate in Hz.
    pub fs: f64,
    /// Analysis window length in samples.
    pub window_len: usize,
    /// Stride between window starts in samples (`== window_len` for the
    /// paper's non-overlapping protocol).
    pub stride: usize,
    /// Arithmetic precision of the extraction hot loops (see
    /// [`ExtractPrecision`]). Defaults to [`ExtractPrecision::F64`],
    /// which is bit-identical to the historical pipeline.
    pub precision: ExtractPrecision,
}

impl StreamConfig {
    /// Non-overlapping `window_s`-second windows at `fs` Hz — the exact
    /// geometry of [`ecg_sim::session::SessionRecording::window_labels`]
    /// (window length rounded to the nearest sample), so streaming and
    /// batch agree on window boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a non-finite or
    /// non-positive `fs` or `window_s`, or a window shorter than one
    /// sample — validated here, up front, instead of surfacing later as
    /// a misleading zero-length-window error.
    pub fn non_overlapping(fs: f64, window_s: f64) -> Result<Self, CoreError> {
        if !fs.is_finite() || fs <= 0.0 {
            return Err(CoreError::InvalidConfig(format!(
                "stream sampling rate must be positive and finite, got {fs}"
            )));
        }
        if !window_s.is_finite() || window_s <= 0.0 {
            return Err(CoreError::InvalidConfig(format!(
                "stream window length must be positive and finite, got {window_s} s"
            )));
        }
        let window_len = (window_s * fs).round() as usize;
        if window_len == 0 {
            return Err(CoreError::InvalidConfig(format!(
                "stream window of {window_s} s at {fs} Hz rounds to zero samples"
            )));
        }
        Ok(StreamConfig {
            fs,
            window_len,
            stride: window_len,
            precision: ExtractPrecision::default(),
        })
    }

    /// Same config with the extraction hot loops at `precision`.
    pub fn with_precision(self, precision: ExtractPrecision) -> Self {
        StreamConfig { precision, ..self }
    }

    /// Number of windows completed once `samples` total samples have
    /// been fed — pure geometry, exactly the count the window scheduler
    /// emits (window `i` completes at sample `i·stride + window_len`).
    /// Lets buffering layers (the fleet's deferred extract stage)
    /// account for completed-but-unextracted windows without touching a
    /// session.
    pub fn windows_in(&self, samples: u64) -> u64 {
        let (w, s) = (self.window_len as u64, self.stride as u64);
        if samples >= w {
            (samples - w) / s + 1
        } else {
            0
        }
    }
}

/// One completed analysis window waiting for its decision — the output
/// of the **extract stage** ([`StreamingSession::extract_windows_into`])
/// and the input of the **decide stage**
/// ([`StreamingSession::decide_window`]).
///
/// The solo streaming path decides each pending window immediately with
/// a per-row `engine.decision` call; the fleet layer
/// ([`crate::fleet::FleetScheduler`]) instead buffers pending windows
/// across many patients and drives one
/// [`ClassifierEngine::decision_batch`] call over all of them — the
/// split exists so both paths share one extraction and one accounting
/// implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingWindow {
    /// Window index (0-based over the stream).
    pub window_index: u64,
    /// Absolute index of the window's first sample.
    pub start_sample: u64,
    /// Extracted feature row, or `None` when extraction failed (too few
    /// beats, …) — the window is already known dropped and must be
    /// decided with `decision = None`.
    pub row: Option<Vec<f64>>,
    /// Wall-clock cost of extraction (ns); the decide stage adds the
    /// classification share on top so per-window latency accounting
    /// survives the stage split.
    pub extract_ns: u64,
}

/// One completed analysis window's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowDecision {
    /// Window index (0-based over the stream).
    pub window_index: u64,
    /// Absolute index of the window's first sample.
    pub start_sample: u64,
    /// Engine decision value, or `None` when feature extraction failed
    /// (too few beats, …) and the window was dropped — exactly the
    /// windows the batch assembly path drops.
    pub decision: Option<f64>,
    /// Predicted class: `true` ⇔ seizure, by the shared
    /// [`decision_is_seizure`] boundary (`decision >= 0`); always `false`
    /// for dropped windows.
    pub is_seizure: bool,
    /// Wall-clock cost of this window (extraction + classification).
    pub latency_ns: u64,
}

/// Running latency/throughput accounting of one stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Samples ingested.
    pub samples_in: u64,
    /// Windows completed (classified + dropped).
    pub windows: u64,
    /// Windows dropped because extraction failed.
    pub dropped: u64,
    /// Windows classified as seizure.
    pub seizure_windows: u64,
    /// Alarms raised by the optional alarm stage (0 when disabled).
    pub alarms: u64,
    /// Per-window latency distribution (extraction + classification
    /// share): p50/p99/max + jitter via the log-bucketed
    /// [`LatencyHistogram`], replacing the old sum/max pair — the sum
    /// and max remain available exactly via
    /// [`StreamStats::total_latency_ns`] / [`StreamStats::max_latency_ns`].
    pub latency: LatencyHistogram,
}

impl StreamStats {
    /// Summed per-window latency (ns) — exact, from the histogram.
    pub fn total_latency_ns(&self) -> u128 {
        self.latency.sum_ns()
    }

    /// Worst single-window latency (ns) — exact, from the histogram.
    pub fn max_latency_ns(&self) -> u64 {
        self.latency.max_ns()
    }

    /// Mean per-window latency in nanoseconds (0 before any window).
    pub fn mean_latency_ns(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.total_latency_ns() as f64 / self.windows as f64
        }
    }

    /// Sustained throughput implied by the summed window latencies —
    /// the **serial-equivalent** rate: windows divided by the total CPU
    /// time spent inside the per-window hot path, as if every window had
    /// run back to back on one core.
    ///
    /// On a single stream this is the stream's real throughput. On a
    /// [`StreamStats::merge`]d cohort it is **not**: summing
    /// `total_latency_ns` across concurrent streams treats parallel work
    /// as serial, so the pooled figure *under-reports* fleet throughput
    /// by up to the concurrency factor. For cohort-level rates use the
    /// wall-clock figures instead ([`StreamOutcome::wall_windows_per_sec`]
    /// per stream, `CohortAlarmReport::pooled_windows_per_sec` /
    /// [`crate::fleet::FleetStats::wall_windows_per_sec`] fleet-wide).
    /// The serial-equivalent number remains meaningful on merged stats as
    /// a *per-core cost* metric — windows per CPU-second — just not as a
    /// wall-clock rate.
    ///
    /// `0.0` before any window completes. When windows completed but the
    /// coarse clock recorded zero total latency (sub-resolution windows),
    /// the true throughput is unmeasurably high, not zero — reported as
    /// `f64::INFINITY` so bench harnesses never under-report it.
    pub fn windows_per_sec(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else if self.total_latency_ns() == 0 {
            f64::INFINITY
        } else {
            self.windows as f64 * 1e9 / self.total_latency_ns() as f64
        }
    }

    /// Merges another stream's accounting into this one.
    ///
    /// Counters add up and histograms fold bucket-wise (exact and
    /// order-independent); `total_latency_ns` therefore becomes a
    /// **summed CPU-time** figure across streams that may have run
    /// concurrently — see [`StreamStats::windows_per_sec`] for what the
    /// merged rate does (and does not) mean.
    pub fn merge(&mut self, other: &StreamStats) {
        self.samples_in += other.samples_in;
        self.windows += other.windows;
        self.dropped += other.dropped;
        self.seizure_windows += other.seizure_windows;
        self.alarms += other.alarms;
        self.latency.merge(&other.latency);
    }
}

/// One patient stream: ring + scheduler + scratch-reusing extraction +
/// a shared [`ClassifierEngine`].
pub struct StreamingSession {
    cfg: StreamConfig,
    engine: SharedEngine,
    ring: SampleRing,
    sched: WindowScheduler,
    extractor: WindowExtractor,
    scratch: ExtractScratch,
    /// Pooled copies of completed windows awaiting lane-batched
    /// extraction: up to [`LANE_GROUP`] windows side by side
    /// (`window_len` samples each), drained whenever the group fills or
    /// the chunk ends.
    batch_buf: Vec<f64>,
    /// `(window index, start sample)` of each pooled window.
    batch_spans: Vec<(u64, u64)>,
    row_buf: Vec<f64>,
    stats: StreamStats,
    /// Optional alarm stage folding decisions into alarms online.
    alarm: Option<AlarmStateMachine>,
    /// Alarms raised since the last [`StreamingSession::take_alarms`].
    pending_alarms: Vec<AlarmEvent>,
    /// Reused pending-window buffer of the solo extract+decide loop.
    pending_scratch: Vec<PendingWindow>,
    /// Recycled row allocations (see [`StreamingSession::recycle_row`]).
    row_pool: Vec<Vec<f64>>,
    /// Next window index handed out by [`StreamingSession::pend_row`].
    next_row_window: u64,
}

/// Recycled row allocations a session keeps at most (a row is 53 `f64`s;
/// the cap only matters for a fleet that buffers many windows of one
/// patient between flushes).
const ROW_POOL_CAP: usize = 64;

/// Completed windows pooled between lane-batched extraction drains —
/// the widest SoA lane group ([`WindowExtractor::extract_batch_into`]
/// packs 8/4/2 lanes greedily), and therefore also the cap on a
/// session's pooled window copies (`LANE_GROUP × window_len` samples).
const LANE_GROUP: usize = 8;

// `dyn ClassifierEngine` has no Debug of its own; show its cost metadata.
impl std::fmt::Debug for StreamingSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingSession")
            .field("cfg", &self.cfg)
            .field("engine", &self.engine.info())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl StreamingSession {
    /// Builds a session over a shared engine.
    ///
    /// The engine must consume **raw** 53-feature rows (the float
    /// pipeline or the quantised engine — not a bare [`svm::SvmModel`],
    /// which expects already-normalised, feature-selected rows).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a non-positive sampling
    /// rate, zero window/stride, or an engine that wants more features
    /// than extraction produces.
    pub fn new(engine: SharedEngine, cfg: StreamConfig) -> Result<Self, CoreError> {
        let wanted = engine.info().n_features;
        if wanted > N_FEATURES {
            return Err(CoreError::InvalidConfig(format!(
                "engine consumes {wanted} features but extraction produces {N_FEATURES}"
            )));
        }
        if !cfg.fs.is_finite() || cfg.fs <= 0.0 {
            return Err(CoreError::InvalidConfig(
                "stream sampling rate must be positive".into(),
            ));
        }
        let sched = WindowScheduler::new(cfg.window_len, cfg.stride)
            .map_err(|e| CoreError::InvalidConfig(format!("stream windowing: {e}")))?;
        let ring = SampleRing::new(sched.min_ring_capacity())
            .map_err(|e| CoreError::InvalidConfig(format!("stream ring: {e}")))?;
        Ok(StreamingSession {
            cfg,
            extractor: WindowExtractor::with_precision(cfg.fs, cfg.precision),
            engine,
            ring,
            sched,
            scratch: ExtractScratch::default(),
            batch_buf: Vec::new(),
            batch_spans: Vec::new(),
            row_buf: Vec::with_capacity(N_FEATURES),
            stats: StreamStats::default(),
            alarm: None,
            pending_alarms: Vec::new(),
            pending_scratch: Vec::new(),
            row_pool: Vec::new(),
            next_row_window: 0,
        })
    }

    /// Builds a session with the alarm stage enabled from the start.
    ///
    /// # Errors
    ///
    /// The [`StreamingSession::new`] failure modes plus
    /// [`CoreError::InvalidConfig`] for an invalid [`AlarmConfig`].
    pub fn with_alarms(
        engine: SharedEngine,
        cfg: StreamConfig,
        alarm_cfg: AlarmConfig,
    ) -> Result<Self, CoreError> {
        let mut session = StreamingSession::new(engine, cfg)?;
        session.enable_alarms(alarm_cfg)?;
        Ok(session)
    }

    /// Enables (or reconfigures) the alarm stage: every completed window
    /// from now on also feeds a k-of-n [`AlarmStateMachine`], and raised
    /// alarms surface through [`StreamingSession::take_alarms`] next to
    /// the window decisions. Replacing an existing stage resets its
    /// voting state and discards pending alarms.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid
    /// [`AlarmConfig`].
    pub fn enable_alarms(&mut self, alarm_cfg: AlarmConfig) -> Result<(), CoreError> {
        self.alarm = Some(AlarmStateMachine::new(alarm_cfg)?);
        self.pending_alarms.clear();
        Ok(())
    }

    /// Alarms raised since the last call, in firing order (empty when
    /// the alarm stage is disabled). Drains the internal buffer.
    pub fn take_alarms(&mut self) -> Vec<AlarmEvent> {
        std::mem::take(&mut self.pending_alarms)
    }

    /// Borrow of the alarms raised since the last
    /// [`StreamingSession::take_alarms`], without draining.
    pub fn pending_alarms(&self) -> &[AlarmEvent] {
        &self.pending_alarms
    }

    /// Windowing configuration.
    pub fn config(&self) -> StreamConfig {
        self.cfg
    }

    /// Cost metadata of the engine behind this stream.
    pub fn engine_info(&self) -> svm::EngineInfo {
        self.engine.info()
    }

    /// Running stats.
    pub fn stats(&self) -> StreamStats {
        self.stats.clone()
    }

    /// Ingests one chunk of any length and returns the decisions of every
    /// window that completed inside it (often none, several after a large
    /// chunk). Allocation-convenient twin of
    /// [`StreamingSession::push_samples_into`].
    pub fn push_samples(&mut self, chunk: &[f64]) -> Vec<WindowDecision> {
        let mut out = Vec::new();
        self.push_samples_into(chunk, &mut out);
        out
    }

    /// Ingests one chunk, clearing and refilling `out` with the decisions
    /// of every window that completed — the allocation-light hot-loop
    /// entry point. Equivalent to the extract stage followed immediately
    /// by a per-window decide stage (`engine.decision` on each extracted
    /// row).
    pub fn push_samples_into(&mut self, chunk: &[f64], out: &mut Vec<WindowDecision>) {
        out.clear();
        let mut pending = std::mem::take(&mut self.pending_scratch);
        pending.clear();
        self.extract_windows_into(chunk, &mut pending);
        for w in pending.drain(..) {
            let t0 = Instant::now();
            let decision = w.row.as_deref().map(|r| self.engine.decision(r));
            let classify_ns = t0.elapsed().as_nanos() as u64;
            out.push(self.decide_window(&w, decision, classify_ns));
            if let Some(row) = w.row {
                self.recycle_row(row);
            }
        }
        self.pending_scratch = pending;
    }

    /// **Extract stage**: ingests one chunk and appends a
    /// [`PendingWindow`] (extracted feature row, or `None` when
    /// extraction dropped the window) for every window that completed
    /// inside it. Decisions, stats beyond `samples_in`, and the alarm
    /// stage are deferred to [`StreamingSession::decide_window`] — feed
    /// every pending window there, **in order**, exactly once.
    ///
    /// # Panics
    ///
    /// Panics when the session has already ingested pre-extracted rows
    /// ([`StreamingSession::push_row`] / [`StreamingSession::pend_row`])
    /// — the two ingest modes number windows independently, so mixing
    /// them would silently corrupt window indices. (`pend_row` rejects
    /// the opposite mixing order with an error; this direction can only
    /// arise from caller code, so it fails loudly.)
    pub fn extract_windows_into(&mut self, chunk: &[f64], pending: &mut Vec<PendingWindow>) {
        // lint: allow(hot-panic) — documented `# Panics` contract: mixing
        // ingest modes would silently fork window numbering, so it fails
        // loudly; the reverse order is rejected with a typed error.
        assert!(
            self.next_row_window == 0,
            "session already ingested pre-extracted rows; cannot mix raw-sample ingestion \
             (window numbering would fork)"
        );
        self.stats.samples_in += chunk.len() as u64;
        debug_assert!(self.batch_spans.is_empty());
        let wl = self.cfg.window_len;
        // Sub-feed at most `stride` samples between drains so the ring
        // bound of `WindowScheduler::min_ring_capacity` always holds.
        // Completed windows are copied out immediately (the ring may
        // overwrite them on the next sub-feed) but *extracted* in
        // lane groups of up to [`LANE_GROUP`]: the dense DSP phases run
        // lock-step across the group (`WindowExtractor::extract_batch`),
        // bit-identical per window to the one-at-a-time path.
        for sub in chunk.chunks(self.sched.stride()) {
            self.ring.push(sub);
            for idx in self.sched.on_samples(sub.len()) {
                let span = self.sched.span(idx);
                let pooled = self.batch_spans.len();
                self.batch_buf.resize((pooled + 1) * wl, 0.0);
                self.ring
                    .copy_into(span.start, &mut self.batch_buf[pooled * wl..][..wl])
                    // lint: allow(hot-panic) — invariant: the ring is built
                    // with `WindowScheduler::min_ring_capacity` and sub-feeds
                    // are capped at `stride`, so completed spans are in range.
                    .expect("ring sized for the scheduler's drain contract");
                self.batch_spans.push((span.index, span.start));
                if self.batch_spans.len() == LANE_GROUP {
                    self.drain_window_batch(pending);
                }
            }
        }
        self.drain_window_batch(pending);
    }

    /// Extracts the pooled window copies (one lane group at most) into
    /// `pending` rows and empties the pool. Rows are handed out in
    /// recycled allocations (see [`StreamingSession::recycle_row`]), so
    /// the hot loop stays free of per-window heap churn after warm-up.
    ///
    /// `extract_ns` accounting: the group runs as one lane-batched unit,
    /// so each window carries an even share of the group's wall clock
    /// (the first window absorbs the remainder) — per-window latency
    /// stays meaningful while the sum stays exact.
    fn drain_window_batch(&mut self, pending: &mut Vec<PendingWindow>) {
        let nw = self.batch_spans.len();
        if nw == 0 {
            return;
        }
        let wl = self.cfg.window_len;
        let base = pending.len();
        let t0 = Instant::now();
        if nw == 1 {
            let row = match self.extractor.extract_into(
                &self.batch_buf[..wl],
                &mut self.scratch,
                &mut self.row_buf,
            ) {
                Ok(()) => {
                    let mut row = self.row_pool.pop().unwrap_or_default();
                    row.clear();
                    row.extend_from_slice(&self.row_buf);
                    Some(row)
                }
                Err(_) => None,
            };
            pending.push(PendingWindow {
                window_index: self.batch_spans[0].0,
                start_sample: self.batch_spans[0].1,
                row,
                extract_ns: 0,
            });
        } else {
            let mut refs: [&[f64]; LANE_GROUP] = [&[]; LANE_GROUP];
            for (slot, w) in refs.iter_mut().zip(self.batch_buf.chunks_exact(wl)) {
                *slot = w;
            }
            let spans = &self.batch_spans;
            let row_pool = &mut self.row_pool;
            self.extractor.extract_batch(&refs[..nw], |j, r| {
                let row = match r {
                    Ok(slice) => {
                        let mut row = row_pool.pop().unwrap_or_default();
                        row.clear();
                        row.extend_from_slice(slice);
                        Some(row)
                    }
                    Err(_) => None,
                };
                pending.push(PendingWindow {
                    window_index: spans[j].0,
                    start_sample: spans[j].1,
                    row,
                    extract_ns: 0,
                });
            });
        }
        let total = t0.elapsed().as_nanos() as u64;
        let share = total / nw as u64;
        let rem = total % nw as u64;
        for (k, w) in pending[base..].iter_mut().enumerate() {
            w.extract_ns = share + if k == 0 { rem } else { 0 };
        }
        self.batch_spans.clear();
        self.batch_buf.clear();
    }

    /// **Decide stage**: folds one pending window's decision into the
    /// session — stats (windows, drops, seizure count, latency =
    /// `extract_ns + classify_ns`), the optional alarm state machine and
    /// the pending-alarm buffer — and returns the finished
    /// [`WindowDecision`].
    ///
    /// `decision` must be `None` exactly when `pending.row` is `None`
    /// (the dropped-window contract), and windows of one session must be
    /// decided in extraction order — both hold by construction on the
    /// solo and fleet paths. `classify_ns` is the window's share of the
    /// classification cost (per-row time solo, `batch time / batch rows`
    /// under the fleet).
    pub fn decide_window(
        &mut self,
        pending: &PendingWindow,
        decision: Option<f64>,
        classify_ns: u64,
    ) -> WindowDecision {
        let latency_ns = pending.extract_ns.saturating_add(classify_ns);
        let is_seizure = matches!(decision, Some(d) if decision_is_seizure(d));
        self.stats.windows += 1;
        if decision.is_none() {
            self.stats.dropped += 1;
        }
        if is_seizure {
            self.stats.seizure_windows += 1;
        }
        self.stats.latency.record(latency_ns);
        let wd = WindowDecision {
            window_index: pending.window_index,
            start_sample: pending.start_sample,
            decision,
            is_seizure,
            latency_ns,
        };
        if let Some(sm) = &mut self.alarm {
            if let Some(alarm) = sm.on_window(&wd) {
                self.stats.alarms += 1;
                self.pending_alarms.push(alarm);
            }
        }
        wd
    }

    /// Ingests one **pre-extracted** feature row as the session's next
    /// window — the on-device-extraction topology, where wearables run
    /// the DSP/feature chain locally and ship 53-float rows instead of
    /// raw ECG. `row = None` records a dropped window (on-device
    /// extraction failed). Row-fed windows are numbered 0, 1, 2, … with
    /// `stride`-spaced start samples; a session is either row-fed or
    /// sample-fed, never both — mixing is rejected, because the two
    /// modes number windows independently.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `row` is not exactly
    /// [`N_FEATURES`] wide, or when the session has already ingested
    /// raw samples.
    pub fn push_row(&mut self, row: Option<&[f64]>) -> Result<WindowDecision, CoreError> {
        let pending = self.pend_row(row)?;
        let t0 = Instant::now();
        let decision = pending.row.as_deref().map(|r| self.engine.decision(r));
        let classify_ns = t0.elapsed().as_nanos() as u64;
        let wd = self.decide_window(&pending, decision, classify_ns);
        if let Some(row) = pending.row {
            self.recycle_row(row);
        }
        Ok(wd)
    }

    /// Builds the [`PendingWindow`] for one pre-extracted row without
    /// deciding it — the fleet's row-ingest entry point. Same contract
    /// as [`StreamingSession::push_row`]; the caller owes the session a
    /// matching [`StreamingSession::decide_window`] call (and must count
    /// queued-but-undecided windows itself when interleaving). The row
    /// is copied into a recycled allocation when one is available.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `row` is not exactly
    /// [`N_FEATURES`] wide, or when the session has already ingested
    /// raw samples (the ingest modes must not mix — see
    /// [`StreamingSession::push_row`]).
    pub fn pend_row(&mut self, row: Option<&[f64]>) -> Result<PendingWindow, CoreError> {
        if self.stats.samples_in > 0 {
            return Err(CoreError::InvalidConfig(
                "session already ingested raw samples; cannot mix pre-extracted rows \
                 (window numbering would fork)"
                    .into(),
            ));
        }
        if let Some(r) = row {
            if r.len() != N_FEATURES {
                return Err(CoreError::InvalidConfig(format!(
                    "pre-extracted row has {} features, extraction produces {N_FEATURES}",
                    r.len()
                )));
            }
        }
        let window_index = self.next_row_window;
        self.next_row_window += 1;
        Ok(PendingWindow {
            window_index,
            start_sample: window_index * self.cfg.stride as u64,
            row: row.map(|r| {
                let mut owned = self.row_pool.pop().unwrap_or_default();
                owned.clear();
                owned.extend_from_slice(r);
                owned
            }),
            extract_ns: 0,
        })
    }

    /// Whether this session has ingested pre-extracted rows. A session
    /// is either row-fed or sample-fed, never both (see
    /// [`StreamingSession::push_row`]); schedulers check this to reject
    /// raw samples on a row-fed session with an error instead of the
    /// extract stage's panic.
    pub fn is_row_fed(&self) -> bool {
        self.next_row_window > 0
    }

    /// Returns a decided [`PendingWindow`]'s row allocation to the
    /// session's recycle pool, keeping the extract/pend hot paths free
    /// of per-window heap churn. The solo entry points recycle
    /// automatically; staged drivers (the fleet scheduler) call this
    /// after [`StreamingSession::decide_window`].
    pub fn recycle_row(&mut self, row: Vec<f64>) {
        if self.row_pool.len() < ROW_POOL_CAP {
            self.row_pool.push(row);
        }
    }
}

/// Everything one finished stream produced.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// Per-window decisions in window order.
    pub decisions: Vec<WindowDecision>,
    /// Alarms raised by the alarm stage, in firing order (empty when the
    /// stage was not enabled for the run).
    pub alarms: Vec<AlarmEvent>,
    /// The stream's latency/throughput accounting.
    pub stats: StreamStats,
    /// Wall-clock nanoseconds the whole replay of this stream took
    /// (chunk feeding included) — the honest denominator for this
    /// stream's throughput, unlike the summed per-window latencies of
    /// [`StreamStats`].
    pub wall_ns: u64,
}

impl StreamOutcome {
    /// Wall-clock throughput of this stream's replay (`0.0` before any
    /// window; `INFINITY` when windows completed under a zero-latency
    /// coarse clock, mirroring [`StreamStats::windows_per_sec`]).
    pub fn wall_windows_per_sec(&self) -> f64 {
        pooled_windows_per_sec(self.stats.windows, u128::from(self.wall_ns))
    }
}

/// Wall-clock pooled throughput: `windows` completed across any number
/// of concurrent streams over `wall_ns` of real time. This is the
/// cohort-level rate [`StreamStats::windows_per_sec`] cannot provide
/// (summed latencies treat parallel work as serial); `0.0` without
/// windows, `INFINITY` when windows completed in sub-resolution time.
pub fn pooled_windows_per_sec(windows: u64, wall_ns: u128) -> f64 {
    if windows == 0 {
        0.0
    } else if wall_ns == 0 {
        f64::INFINITY
    } else {
        windows as f64 * 1e9 / wall_ns as f64
    }
}

/// Runs many patient streams concurrently over one shared engine: each
/// stream gets its own [`StreamingSession`] (ring, scratch, stats) and is
/// fed in `chunk_len`-sample chunks; sessions fan out on
/// [`par_map_mut`], and results come back in input order.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for an invalid `cfg` or
/// `chunk_len == 0`.
pub fn run_streams_parallel(
    engine: &SharedEngine,
    cfg: StreamConfig,
    streams: &[Vec<f64>],
    chunk_len: usize,
) -> Result<Vec<StreamOutcome>, CoreError> {
    run_streams_parallel_alarmed(engine, cfg, None, streams, chunk_len)
}

/// [`run_streams_parallel`] with an optional per-stream alarm stage:
/// with `Some(alarm_cfg)` every session folds its decisions through its
/// own k-of-n [`AlarmStateMachine`] and the outcomes carry the raised
/// [`AlarmEvent`]s.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for an invalid `cfg`, an invalid
/// `alarm_cfg` or `chunk_len == 0`.
pub fn run_streams_parallel_alarmed(
    engine: &SharedEngine,
    cfg: StreamConfig,
    alarm_cfg: Option<AlarmConfig>,
    streams: &[Vec<f64>],
    chunk_len: usize,
) -> Result<Vec<StreamOutcome>, CoreError> {
    if chunk_len == 0 {
        return Err(CoreError::InvalidConfig(
            "stream chunk length must be >= 1".into(),
        ));
    }
    if streams.is_empty() {
        // Still surface configuration errors for a zero-stream cohort.
        StreamingSession::new(Arc::clone(engine), cfg)?;
        if let Some(a) = alarm_cfg {
            a.validate()?;
        }
        return Ok(Vec::new());
    }
    // Build every session up front so configuration errors propagate as
    // typed results instead of panicking inside the parallel region.
    let mut work = streams
        .iter()
        .map(|samples| {
            let mut session = StreamingSession::new(Arc::clone(engine), cfg)?;
            if let Some(a) = alarm_cfg {
                session.enable_alarms(a)?;
            }
            Ok((session, samples.as_slice()))
        })
        .collect::<Result<Vec<_>, CoreError>>()?;
    Ok(par_map_mut(&mut work, |(session, samples)| {
        let t0 = Instant::now();
        let mut decisions = Vec::new();
        let mut fresh = Vec::new();
        for chunk in samples.chunks(chunk_len) {
            session.push_samples_into(chunk, &mut fresh);
            decisions.append(&mut fresh);
        }
        StreamOutcome {
            decisions,
            alarms: session.take_alarms(),
            stats: session.stats(),
            wall_ns: t0.elapsed().as_nanos() as u64,
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use svm::EngineInfo;

    /// Deterministic toy backend: decision = Σ row (53 raw features in,
    /// no training needed) — lets the chunking tests run on synthetic ECG
    /// without fitting an SVM.
    struct SumEngine;

    impl ClassifierEngine for SumEngine {
        fn decision(&self, row: &[f64]) -> f64 {
            row.iter().sum()
        }
        fn n_features(&self) -> usize {
            N_FEATURES
        }
        fn info(&self) -> EngineInfo {
            EngineInfo {
                kind: "sum-test",
                n_support_vectors: 1,
                n_features: N_FEATURES,
                d_bits: None,
                a_bits: None,
            }
        }
    }

    #[test]
    fn sessions_are_send() {
        // The fleet's sharded extract stage moves `&mut` sessions onto
        // pool workers; pin the auto-trait so a future non-Send field
        // (Rc, raw pointer) fails here, not deep in the fleet.
        fn is_send<T: Send>() {}
        is_send::<StreamingSession>();
        is_send::<PendingWindow>();
    }

    #[test]
    fn windows_in_matches_scheduler_geometry() {
        for (window_len, stride) in [(3840usize, 3840usize), (3840, 1920), (100, 37)] {
            let cfg = StreamConfig {
                fs: 128.0,
                window_len,
                stride,
                precision: ExtractPrecision::default(),
            };
            let mut sched = WindowScheduler::new(window_len, stride).unwrap();
            let mut emitted = 0u64;
            for samples in 0..(3 * window_len as u64 + 1) {
                if samples > 0 {
                    let fresh = sched.on_samples(1);
                    emitted += fresh.end - fresh.start;
                }
                assert_eq!(
                    cfg.windows_in(samples),
                    emitted,
                    "at {samples} samples ({window_len}/{stride})"
                );
            }
        }
    }

    /// Beat-accurate synthetic ECG (same shape as the extractor tests).
    fn synth_ecg(fs: f64, dur_s: f64, rr: f64) -> Vec<f64> {
        let n = (fs * dur_s) as usize;
        let mut sig = vec![0.0f64; n];
        let mut bt = 0.5;
        while bt < dur_s {
            let amp = 1.0 + 0.2 * (std::f64::consts::TAU * 0.25 * bt).sin();
            let centre = (bt * fs) as isize;
            for k in -15..=15isize {
                let idx = centre + k;
                if idx >= 0 && (idx as usize) < n {
                    let dt = k as f64 / fs;
                    sig[idx as usize] += amp * (-dt * dt / (2.0 * 0.012f64.powi(2))).exp();
                }
            }
            bt += rr * (1.0 + 0.03 * (std::f64::consts::TAU * 0.25 * bt).sin());
        }
        sig
    }

    fn engine() -> SharedEngine {
        Arc::new(SumEngine)
    }

    #[test]
    fn config_validation() {
        let bad_fs = StreamConfig {
            fs: 0.0,
            window_len: 10,
            stride: 10,
            precision: ExtractPrecision::default(),
        };
        assert!(StreamingSession::new(engine(), bad_fs).is_err());
        let bad_window = StreamConfig {
            fs: 128.0,
            window_len: 0,
            stride: 1,
            precision: ExtractPrecision::default(),
        };
        assert!(StreamingSession::new(engine(), bad_window).is_err());
        let cfg = StreamConfig::non_overlapping(128.0, 30.0).unwrap();
        assert_eq!(cfg.window_len, 3840);
        assert_eq!(cfg.stride, 3840);
        assert!(StreamingSession::new(engine(), cfg).is_ok());
    }

    #[test]
    fn non_overlapping_validates_up_front_and_rounds() {
        // Degenerate inputs are rejected at construction with a clear
        // error, not later as a zero-length-window failure.
        for (fs, window_s) in [
            (128.0, f64::NAN),
            (128.0, f64::INFINITY),
            (128.0, -30.0),
            (128.0, 0.0),
            (f64::NAN, 30.0),
            (0.0, 30.0),
            (-128.0, 30.0),
            (128.0, 1e-9), // rounds to zero samples
        ] {
            assert!(
                matches!(
                    StreamConfig::non_overlapping(fs, window_s),
                    Err(CoreError::InvalidConfig(_))
                ),
                "fs={fs} window_s={window_s} must be rejected"
            );
        }
        // Rounds to the nearest sample, matching
        // `SessionRecording::window_labels` (which rounds too) instead of
        // silently truncating.
        let down = StreamConfig::non_overlapping(128.0, 30.0 - 0.25 / 128.0).unwrap();
        assert_eq!(down.window_len, 3840);
        let up = StreamConfig::non_overlapping(128.0, 30.0 + 0.75 / 128.0).unwrap();
        assert_eq!(up.window_len, 3841);
        // Sub-sample windows that round to >= 1 are fine.
        assert_eq!(
            StreamConfig::non_overlapping(128.0, 0.005)
                .unwrap()
                .window_len,
            1
        );
    }

    #[test]
    fn windows_per_sec_guards_the_coarse_clock() {
        let idle = StreamStats::default();
        assert_eq!(idle.windows_per_sec(), 0.0);
        // Windows completed but the coarse clock recorded zero latency:
        // throughput is unmeasurably high, not zero.
        let sub_resolution = StreamStats {
            windows: 7,
            ..StreamStats::default()
        };
        assert_eq!(sub_resolution.windows_per_sec(), f64::INFINITY);
        assert_eq!(sub_resolution.mean_latency_ns(), 0.0);
        let mut measured = StreamStats {
            windows: 4,
            ..StreamStats::default()
        };
        for _ in 0..4 {
            measured.latency.record(500_000_000);
        }
        assert_eq!(measured.total_latency_ns(), 2_000_000_000);
        assert!((measured.windows_per_sec() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn over_wide_engines_are_rejected_at_construction() {
        struct WideEngine;
        impl ClassifierEngine for WideEngine {
            fn decision(&self, row: &[f64]) -> f64 {
                row.iter().sum()
            }
            fn n_features(&self) -> usize {
                N_FEATURES + 1
            }
            fn info(&self) -> EngineInfo {
                EngineInfo {
                    kind: "wide-test",
                    n_support_vectors: 1,
                    n_features: N_FEATURES + 1,
                    d_bits: None,
                    a_bits: None,
                }
            }
        }
        let cfg = StreamConfig::non_overlapping(128.0, 30.0).unwrap();
        assert!(matches!(
            StreamingSession::new(Arc::new(WideEngine), cfg),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn chunking_does_not_change_decisions() {
        let fs = 128.0;
        let ecg = synth_ecg(fs, 150.0, 0.8);
        let cfg = StreamConfig::non_overlapping(fs, 30.0).unwrap();

        let mut whole = StreamingSession::new(engine(), cfg).unwrap();
        let reference = whole.push_samples(&ecg);
        assert_eq!(reference.len(), 5);
        assert!(reference.iter().all(|d| d.decision.is_some()));

        for chunk_len in [1usize, 7, 128, 1000, 3840, 4096] {
            let mut s = StreamingSession::new(engine(), cfg).unwrap();
            let mut got = Vec::new();
            for chunk in ecg.chunks(chunk_len) {
                got.extend(s.push_samples(chunk));
            }
            assert_eq!(got.len(), reference.len(), "chunk {chunk_len}");
            for (a, b) in got.iter().zip(reference.iter()) {
                assert_eq!(a.window_index, b.window_index);
                assert_eq!(a.start_sample, b.start_sample);
                assert_eq!(
                    a.decision.map(f64::to_bits),
                    b.decision.map(f64::to_bits),
                    "chunk {chunk_len} window {}",
                    a.window_index
                );
                assert_eq!(a.is_seizure, b.is_seizure);
            }
            let stats = s.stats();
            assert_eq!(stats.windows, 5);
            assert_eq!(stats.samples_in, ecg.len() as u64);
            assert_eq!(stats.dropped, 0);
            assert!(stats.mean_latency_ns() > 0.0);
            assert!(stats.windows_per_sec() > 0.0);
            assert!(stats.max_latency_ns() >= stats.mean_latency_ns() as u64);
            assert!(stats.latency.p99_ns() >= stats.latency.p50_ns());
        }
    }

    /// Engine pinned to a constant decision value — drives boundary and
    /// alarm tests without training.
    struct ConstEngine(f64);

    impl ClassifierEngine for ConstEngine {
        fn decision(&self, _row: &[f64]) -> f64 {
            self.0
        }
        fn n_features(&self) -> usize {
            N_FEATURES
        }
        fn info(&self) -> EngineInfo {
            EngineInfo {
                kind: "const-test",
                n_support_vectors: 1,
                n_features: N_FEATURES,
                d_bits: None,
                a_bits: None,
            }
        }
    }

    #[test]
    fn zero_decision_window_is_seizure() {
        // Regression: the stream marks `decision == 0.0` seizure, in
        // agreement with `classify` and `Confusion` (shared
        // `decision_is_seizure` boundary).
        let fs = 128.0;
        let cfg = StreamConfig::non_overlapping(fs, 30.0).unwrap();
        let ecg = synth_ecg(fs, 35.0, 0.8);
        let mut s = StreamingSession::new(Arc::new(ConstEngine(0.0)), cfg).unwrap();
        let decisions = s.push_samples(&ecg);
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].decision, Some(0.0));
        assert!(decisions[0].is_seizure);
        assert_eq!(s.stats().seizure_windows, 1);
        let mut s = StreamingSession::new(Arc::new(ConstEngine(-1e-300)), cfg).unwrap();
        assert!(!s.push_samples(&ecg)[0].is_seizure);
    }

    #[test]
    fn alarm_stage_surfaces_alarms_next_to_decisions() {
        let fs = 128.0;
        let cfg = StreamConfig::non_overlapping(fs, 30.0).unwrap();
        let ecg = synth_ecg(fs, 150.0, 0.8); // 5 windows, all seizure votes
        let alarm_cfg = crate::alarm::AlarmConfig {
            k: 2,
            n: 3,
            refractory_windows: 2,
            dropped: crate::alarm::DroppedPolicy::VoteNonSeizure,
        };
        let mut s =
            StreamingSession::with_alarms(Arc::new(ConstEngine(1.0)), cfg, alarm_cfg).unwrap();
        assert!(s.pending_alarms().is_empty());
        let decisions = s.push_samples(&ecg);
        assert_eq!(decisions.len(), 5);
        // Persistent seizure votes: alarm at window 1, refractory 2
        // suppresses windows 2–3, alarm again at window 4.
        let alarms = s.take_alarms();
        assert_eq!(
            alarms.iter().map(|a| a.window_index).collect::<Vec<_>>(),
            vec![1, 4]
        );
        assert_eq!(alarms[0].start_sample, cfg.stride as u64);
        assert_eq!(s.stats().alarms, 2);
        // take_alarms drained the buffer.
        assert!(s.take_alarms().is_empty());
        // The online alarms equal a batch scan over the decision stream.
        let seq: Vec<Option<f64>> = decisions.iter().map(|d| d.decision).collect();
        let batch = crate::alarm::AlarmStateMachine::scan(alarm_cfg, &seq, cfg.stride).unwrap();
        assert_eq!(alarms, batch);
        // Invalid alarm configs are rejected.
        assert!(s
            .enable_alarms(crate::alarm::AlarmConfig::k_of_n(9, 3))
            .is_err());
        // A plain session never raises alarms.
        let mut plain = StreamingSession::new(Arc::new(ConstEngine(1.0)), cfg).unwrap();
        plain.push_samples(&ecg);
        assert_eq!(plain.stats().alarms, 0);
        assert!(plain.take_alarms().is_empty());
    }

    #[test]
    fn parallel_alarmed_streams_match_solo_sessions() {
        let fs = 128.0;
        let cfg = StreamConfig::non_overlapping(fs, 30.0).unwrap();
        let alarm_cfg = crate::alarm::AlarmConfig::k_of_n(1, 2);
        let streams: Vec<Vec<f64>> = [0.7, 0.9]
            .iter()
            .map(|&rr| synth_ecg(fs, 95.0, rr))
            .collect();
        let e: SharedEngine = Arc::new(ConstEngine(1.0));
        let outcomes =
            run_streams_parallel_alarmed(&e, cfg, Some(alarm_cfg), &streams, 640).unwrap();
        for (outcome, samples) in outcomes.iter().zip(streams.iter()) {
            let mut solo = StreamingSession::with_alarms(Arc::clone(&e), cfg, alarm_cfg).unwrap();
            for chunk in samples.chunks(640) {
                solo.push_samples(chunk);
            }
            assert_eq!(outcome.alarms, solo.take_alarms());
            assert!(!outcome.alarms.is_empty());
            assert_eq!(outcome.stats.alarms, outcome.alarms.len() as u64);
        }
        // Without an alarm stage the outcomes stay alarm-free.
        let plain = run_streams_parallel(&e, cfg, &streams, 640).unwrap();
        assert!(plain.iter().all(|o| o.alarms.is_empty()));
        // Invalid alarm config is rejected up front.
        assert!(run_streams_parallel_alarmed(
            &e,
            cfg,
            Some(crate::alarm::AlarmConfig::k_of_n(0, 1)),
            &streams,
            640
        )
        .is_err());
    }

    #[test]
    fn push_row_ingests_pre_extracted_rows() {
        let cfg = StreamConfig::non_overlapping(128.0, 30.0).unwrap();
        let mut s = StreamingSession::new(engine(), cfg).unwrap();
        // Wrong width is rejected; the window counter does not advance.
        assert!(s.push_row(Some(&[1.0; 3])).is_err());
        let mut row = vec![0.0; N_FEATURES];
        row[0] = 2.5;
        let d0 = s.push_row(Some(&row)).unwrap();
        assert_eq!(d0.window_index, 0);
        assert_eq!(d0.start_sample, 0);
        assert_eq!(d0.decision, Some(2.5));
        assert!(d0.is_seizure);
        // A device-side dropped window: decided as dropped, in order.
        let d1 = s.push_row(None).unwrap();
        assert_eq!(d1.window_index, 1);
        assert_eq!(d1.start_sample, cfg.stride as u64);
        assert_eq!(d1.decision, None);
        row[0] = -1.0;
        let d2 = s.push_row(Some(&row)).unwrap();
        assert_eq!(d2.window_index, 2);
        assert!(!d2.is_seizure);
        let stats = s.stats();
        assert_eq!(
            (stats.windows, stats.dropped, stats.seizure_windows),
            (3, 1, 1)
        );
        // The alarm stage sees row-fed windows exactly like sample-fed
        // ones.
        let mut s =
            StreamingSession::with_alarms(engine(), cfg, crate::alarm::AlarmConfig::k_of_n(1, 1))
                .unwrap();
        row[0] = 1.0;
        s.push_row(Some(&row)).unwrap();
        assert_eq!(s.take_alarms().len(), 1);
    }

    #[test]
    fn ingest_modes_do_not_mix() {
        // Row-after-sample is rejected with an error: the two modes
        // number windows independently.
        let cfg = StreamConfig::non_overlapping(128.0, 30.0).unwrap();
        let mut s = StreamingSession::new(engine(), cfg).unwrap();
        s.push_samples(&[0.0; 16]);
        assert!(!s.is_row_fed());
        let row = vec![0.0; N_FEATURES];
        assert!(matches!(
            s.push_row(Some(&row)),
            Err(CoreError::InvalidConfig(_))
        ));
        // A row-fed session reports itself as such.
        let mut r = StreamingSession::new(engine(), cfg).unwrap();
        r.push_row(Some(&row)).unwrap();
        assert!(r.is_row_fed());
    }

    #[test]
    #[should_panic(expected = "cannot mix raw-sample ingestion")]
    fn sample_ingest_after_rows_panics() {
        let cfg = StreamConfig::non_overlapping(128.0, 30.0).unwrap();
        let mut s = StreamingSession::new(engine(), cfg).unwrap();
        s.push_row(None).unwrap();
        s.push_samples(&[0.0; 16]);
    }

    #[test]
    fn pooled_throughput_is_wall_clock_not_summed_latency() {
        // Edge cases mirror windows_per_sec.
        assert_eq!(pooled_windows_per_sec(0, 0), 0.0);
        assert_eq!(pooled_windows_per_sec(5, 0), f64::INFINITY);
        assert!((pooled_windows_per_sec(4, 2_000_000_000) - 2.0).abs() < 1e-12);
        // Two concurrent streams, each 100 windows of 1 ms: the merged
        // serial-equivalent rate halves, the wall-clock pooled rate does
        // not — the distinction the fleet metrics are built on.
        let mut one = StreamStats {
            windows: 100,
            ..StreamStats::default()
        };
        for _ in 0..100 {
            one.latency.record(1_000_000);
        }
        let mut merged = one.clone();
        merged.merge(&one);
        assert!((one.windows_per_sec() - 1000.0).abs() < 1e-9);
        assert!((merged.windows_per_sec() - 1000.0).abs() < 1e-9);
        // 200 windows in the same 100 ms of wall time (perfect overlap):
        let pooled = pooled_windows_per_sec(merged.windows, 100_000_000);
        assert!((pooled - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn stream_outcomes_carry_wall_clock_time() {
        let fs = 128.0;
        let cfg = StreamConfig::non_overlapping(fs, 30.0).unwrap();
        let streams: Vec<Vec<f64>> = vec![synth_ecg(fs, 95.0, 0.8)];
        let outcomes = run_streams_parallel(&engine(), cfg, &streams, 640).unwrap();
        let o = &outcomes[0];
        assert!(o.wall_ns > 0);
        assert!(o.wall_windows_per_sec() > 0.0);
        // Wall time covers at least the summed per-window latencies of a
        // serial replay.
        assert!(u128::from(o.wall_ns) >= o.stats.total_latency_ns());
    }

    #[test]
    fn flat_windows_are_dropped_like_the_batch_path() {
        let fs = 128.0;
        let cfg = StreamConfig::non_overlapping(fs, 30.0).unwrap();
        let mut s = StreamingSession::new(engine(), cfg).unwrap();
        let flat = vec![0.0; cfg.window_len * 2];
        let decisions = s.push_samples(&flat);
        assert_eq!(decisions.len(), 2);
        assert!(decisions.iter().all(|d| d.decision.is_none()));
        assert!(decisions.iter().all(|d| !d.is_seizure));
        assert_eq!(s.stats().dropped, 2);
    }

    #[test]
    fn parallel_streams_match_single_stream_runs() {
        let fs = 128.0;
        let cfg = StreamConfig::non_overlapping(fs, 30.0).unwrap();
        let streams: Vec<Vec<f64>> = [0.7, 0.85, 1.0]
            .iter()
            .map(|&rr| synth_ecg(fs, 95.0, rr))
            .collect();
        let e = engine();
        let outcomes = run_streams_parallel(&e, cfg, &streams, 640).unwrap();
        assert_eq!(outcomes.len(), 3);
        for (outcome, samples) in outcomes.iter().zip(streams.iter()) {
            let mut solo = StreamingSession::new(Arc::clone(&e), cfg).unwrap();
            let mut reference = Vec::new();
            for chunk in samples.chunks(640) {
                reference.extend(solo.push_samples(chunk));
            }
            assert_eq!(outcome.decisions.len(), reference.len());
            for (a, b) in outcome.decisions.iter().zip(reference.iter()) {
                assert_eq!(a.decision.map(f64::to_bits), b.decision.map(f64::to_bits));
            }
            assert_eq!(outcome.stats.windows, solo.stats().windows);
            assert_eq!(outcome.stats.samples_in, solo.stats().samples_in);
        }
        // Merged stats cover the cohort.
        let mut merged = StreamStats::default();
        for o in &outcomes {
            merged.merge(&o.stats);
        }
        assert_eq!(merged.windows, 9);
        assert!(run_streams_parallel(&e, cfg, &streams, 0).is_err());
    }
}
