//! Fleet-scale session multiplexing: thousands of patient streams, one
//! staged multi-core inference pipeline.
//!
//! [`crate::stream::run_streams_parallel`] fans patient sessions out
//! across threads but still classifies **one window at a time** per
//! session — the tiled [`ClassifierEngine::decision_batch`] kernels
//! never run on the serving path. [`FleetScheduler`] closes that gap: it
//! owns N per-patient [`StreamingSession`]s, accepts
//! [`FleetScheduler::ingest`] calls in arbitrary patient interleavings,
//! and each [`FleetScheduler::flush`] drives a three-stage pipeline over
//! the fleet's [`crate::parallel::WorkerPool`] executors:
//!
//! ```text
//! ingest(p, chunk) ──► inbox p      (raw samples buffered, O(len) copy)
//! ingest_row(p, r) ──► queue p      (pre-extracted rows buffered eagerly)
//!                          │ flush()
//!   ┌──────────────────────┴──────────────────────────────────────┐
//!   │ stage 1 · sharded extraction                                │
//!   │   sessions with buffered samples are claimed per-slot by    │
//!   │   pool workers (par_map_mut); each extracts its windows     │
//!   │   into its own slot's staging buffer — no locks, no shared  │
//!   │   state on the hot path — then the staged windows join the  │
//!   │   pending queues replayed in ingest order (overload policy) │
//!   │ stage 2 · parallel panel fan-out                            │
//!   │   ready rows across all queues → panels of 256 row refs →   │
//!   │   decision_rows_into fanned across the pool via par_map     │
//!   │   (order-preserving, so panel k's values land at offset     │
//!   │   256·k exactly as a serial loop would place them)          │
//!   │ stage 3 · ordered route-back                                │
//!   │   decisions scatter to each session's decide stage (stats,  │
//!   │   alarm state machine) in (patient asc, window) order       │
//!   └─────────────────────────────────────────────────────────────┘
//! ```
//!
//! Decisions come back **bit-identical** to solo streaming at every
//! worker count because each stage preserves order: extraction is
//! per-session state with no cross-session dependence, the panel map is
//! order-preserving by construction, and route-back is a single ordered
//! scatter — so the alarm state machines, drop accounting and window
//! geometry cannot diverge (the `fleet_equivalence` suite pins this on a
//! real cohort for both engines, under random interleavings, both
//! [`crate::alarm::DroppedPolicy`] variants and worker counts
//! {1, 2, machine default}).
//!
//! ## Eager scheduling on a serial executor set
//!
//! When the fleet resolves to **one** executor (`workers = Some(1)`, or
//! `None` on a single-core machine) there is nothing to fan out, so
//! deferring work to the flush would only let its inputs go cold: the
//! extract stage runs inside [`FleetScheduler::ingest`] while the chunk
//! is cache-warm, and each [`FLUSH_PANEL_ROWS`]-row panel is classified
//! incrementally the moment it fills (rows straight out of extraction
//! or [`FleetScheduler::ingest_row`] are L1/L2-hot; a flush-time sweep
//! over a 1024-patient backlog re-reads megabytes of cold rows). On a
//! parallel set both stages defer to the flush so they can shard. The
//! executor set only ever moves work between ingest and flush — same
//! windows, same kernels, same order, bit-identical results.
//!
//! ## Backpressure
//!
//! A fleet taking live traffic can be offered more windows than it can
//! classify. [`FleetConfig::max_pending_rows`] bounds the feature rows
//! buffered between flushes; when the bound is hit,
//! [`OverloadPolicy`] decides who pays: `Reject` sheds the **newest**
//! window, `DropOldest` sheds the **oldest pending** row fleet-wide,
//! and `Watermark` runs a high/low hysteresis gate with **per-patient
//! fair shedding**: when pending rows exceed the high watermark the
//! gate sheds down to the low watermark in one pass, picking victims
//! round-robin among the patients holding more than their fair share
//! (`⌈pending / active patients⌉`) — a single flooding patient pays
//! first, and no patient is ever starved to protect another (patients
//! at or under fair share are only shed once *everyone* is at fair
//! share). Whatever the policy, the shed window stays in its session's
//! queue as a *dropped* window (decision `None`) — it is still decided
//! in order at the next flush, so per-session window accounting and the
//! alarm dropped-window semantics stay exact — and the shed count
//! surfaces in [`FleetStats`]. Raw-sample windows reach the bounded
//! buffer when their extraction runs, at the head of `flush` — replayed
//! in the exact fleet-wide ingest order, so a pure raw-sample workload
//! sheds exactly as the old eager-extraction scheduler did; in a
//! *mixed* raw+row fleet under a bound, eagerly buffered rows are
//! simply already present when the raw windows replay.
//!
//! ## Tick-driven serving
//!
//! Production serving is cadence-driven, not caller-driven: configure
//! [`FleetConfig::tick`] and drive the fleet with
//! [`FleetScheduler::tick`] / [`FleetScheduler::run_ticks`] instead of
//! ad-hoc `flush` calls. Each tick is one flush wrapped in
//! [`crate::clock::FleetClock`] deadline accounting (met/missed/slack
//! vs the fixed cadence), and every ingested window carries an arrival
//! timestamp so the fleet can histogram true **decision latency**
//! (arrival → decision) in [`FleetStats::decision_latency`], alongside
//! per-tick work in [`FleetStats::tick_work`]. Under the deterministic
//! virtual clock the whole tick schedule — timestamps, histograms,
//! deadline verdicts — is bit-identical across runs and worker counts;
//! a tick performs exactly the flush a caller would have performed, so
//! tick-driven and caller-driven serving produce identical decisions
//! (pinned by the `tick_equivalence` suite).
//!
//! ## Ingest modes
//!
//! * [`FleetScheduler::ingest`] — raw ECG chunks; samples are buffered
//!   per session and extracted shard-parallel inside the next flush (the
//!   monitor-parity mode the equivalence tests drive).
//! * [`FleetScheduler::ingest_row`] — pre-extracted 53-feature rows; the
//!   on-device-extraction topology where wearables run DSP locally and
//!   the fleet spends its cycles purely on classification, which is
//!   where cross-patient batching pays (see `BENCH_fleet.json`).

// lint: allow-file(hot-index) — scheduler bookkeeping: slot/queue offsets are
// maintained by the fleet's own maps and cursors; each is re-derived from the
// structure it indexes in the same scope.
use crate::alarm::{AlarmConfig, AlarmEvent};
use crate::clock::{FleetClock, LatencyHistogram, TickConfig, TickOutcome};
use crate::error::CoreError;
use crate::parallel::WorkerPool;
use crate::stream::{
    pooled_windows_per_sec, PendingWindow, SharedEngine, StreamConfig, StreamStats,
    StreamingSession, WindowDecision,
};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Identifies one patient stream within a fleet.
pub type PatientId = u64;

/// Rows per [`ClassifierEngine::decision_rows_into`] panel inside
/// [`FleetScheduler::flush`]. Panelling keeps a huge fleet's flush
/// working set cache-sized (256 rows × 53 features ≈ 106 KiB) instead
/// of streaming one multi-megabyte batch through the kernels, and is
/// the grain the parallel fan-out distributes across pool workers and
/// the increment at which a serial executor set classifies eagerly as
/// rows arrive; it cannot change results because batch decisions are
/// bit-identical to per-row decisions.
pub const FLUSH_PANEL_ROWS: usize = 256;

/// Who pays when the fleet's pending-row buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// The **newest** window is shed: its feature row is discarded and
    /// the window is decided as dropped at the next flush. Established
    /// work is never thrown away — latecomers queue-fail first.
    #[default]
    Reject,
    /// The **oldest** pending row fleet-wide is shed to make room for
    /// the new window — freshest-data-wins, for deployments where a
    /// stale window is worth less than a current one.
    DropOldest,
    /// High/low watermark admission gate with per-patient fair
    /// shedding: rows are admitted freely until pending rows exceed
    /// [`Watermarks::high`], then the gate sheds down to
    /// [`Watermarks::low`] in one pass, oldest-first per victim,
    /// victims chosen round-robin among patients above their fair share
    /// (see the module's *Backpressure* section). The hysteresis band
    /// keeps shedding bursty instead of per-row once saturated, and the
    /// fair-share rule means one flooding patient cannot crowd out the
    /// rest of the fleet. `Reject`/`DropOldest` remain the degenerate
    /// single-threshold configurations.
    Watermark(Watermarks),
}

/// The hysteresis band of [`OverloadPolicy::Watermark`]. Validated by
/// [`FleetConfig::validate`]: `low < high <= max_pending_rows`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermarks {
    /// Shedding, once triggered, stops at this many pending rows.
    pub low: usize,
    /// Admitting a row beyond this many pending rows triggers shedding.
    pub high: usize,
}

/// Configuration of a fleet: shared window geometry, optional per-patient
/// alarm stage, the overload policy, and the flush executor count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Windowing every patient session runs under.
    pub stream: StreamConfig,
    /// Per-patient alarm stage (`None` = decisions only).
    pub alarms: Option<AlarmConfig>,
    /// Feature rows the fleet may buffer between flushes (`>= 1`).
    /// Bounds flush batch size and row memory; windows beyond it are
    /// shed per [`OverloadPolicy`].
    pub max_pending_rows: usize,
    /// What to shed when `max_pending_rows` is reached.
    pub overload: OverloadPolicy,
    /// Executors for the flush pipeline's parallel stages (sharded
    /// extraction, panel fan-out). `None` = size to the machine via the
    /// shared global pool; `Some(n)` = exactly `n` executors (`1` runs
    /// fully serial on the caller; `n ≥ 2` builds a fleet-owned pool of
    /// `n − 1` persistent workers, the submitting caller being the
    /// n-th). Must be `>= 1`; the count cannot change results, only
    /// wall-clock.
    pub workers: Option<usize>,
    /// Serving clock for the tick-driven runtime
    /// ([`FleetScheduler::tick`] / [`FleetScheduler::run_ticks`]):
    /// `Some` gives the fleet a [`FleetClock`] at the configured
    /// cadence/time source and turns on arrival stamping + decision
    /// latency histograms. `None` (the default) is pure caller-driven
    /// serving with zero clock overhead.
    pub tick: Option<TickConfig>,
}

impl FleetConfig {
    /// A fleet without practical backpressure (buffer bound
    /// `usize::MAX` — the default that disables shedding entirely), no
    /// alarm stage, machine-default executors, caller-driven flushes —
    /// the configuration the equivalence suite compares against solo
    /// sessions.
    pub fn unbounded(stream: StreamConfig) -> Self {
        FleetConfig {
            stream,
            alarms: None,
            max_pending_rows: usize::MAX,
            overload: OverloadPolicy::Reject,
            workers: None,
            tick: None,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for `max_pending_rows == 0`,
    /// `workers == Some(0)`, watermark bands that are not
    /// `low < high <= max_pending_rows`, a zero tick cadence, or an
    /// invalid alarm configuration (the stream configuration is
    /// validated when the first session is built, and once up front by
    /// [`FleetScheduler::new`]).
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.max_pending_rows == 0 {
            return Err(CoreError::InvalidConfig(
                "fleet needs max_pending_rows >= 1 (0 would shed every window)".into(),
            ));
        }
        if self.workers == Some(0) {
            return Err(CoreError::InvalidConfig(
                "fleet needs workers >= 1 (the flush caller is an executor; \
                 None sizes to the machine)"
                    .into(),
            ));
        }
        if let OverloadPolicy::Watermark(wm) = self.overload {
            if wm.low >= wm.high || wm.high > self.max_pending_rows {
                return Err(CoreError::InvalidConfig(format!(
                    "watermark gate needs low < high <= max_pending_rows, \
                     got low {} / high {} / max_pending_rows {}",
                    wm.low, wm.high, self.max_pending_rows
                )));
            }
        }
        if let Some(t) = self.tick {
            t.validate()?;
        }
        if let Some(a) = self.alarms {
            a.validate()?;
        }
        Ok(())
    }
}

/// Fleet-level accounting — the scheduler's own counters, on top of the
/// per-session [`StreamStats`] (merge those via
/// [`FleetScheduler::stream_stats`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Sessions currently admitted.
    pub patients: usize,
    /// Admissions over the fleet's lifetime.
    pub admitted: u64,
    /// Removals over the fleet's lifetime.
    pub removed: u64,
    /// Session restarts over the fleet's lifetime.
    pub restarted: u64,
    /// Ingest calls accepted (chunks + rows).
    pub ingests: u64,
    /// Windows currently awaiting a decision: queued rows, shed and
    /// extraction-dropped windows, plus raw-sample windows whose
    /// deferred extraction has not run yet (counted by geometry).
    pub pending_windows: usize,
    /// Feature rows currently buffered for the next flush. Raw-sample
    /// windows contribute only once their deferred extraction runs, at
    /// the head of that flush.
    pub pending_rows: usize,
    /// Flushes performed.
    pub flushes: u64,
    /// Rows driven through the batch kernel across all flushes.
    pub rows_classified: u64,
    /// Windows decided (classified + dropped) across all flushes.
    pub windows_decided: u64,
    /// Windows shed by the overload policy (decided as dropped).
    pub shed_windows: u64,
    /// Pending windows discarded undecided by [`FleetScheduler::remove`].
    pub discarded_windows: u64,
    /// Wall-clock nanoseconds spent inside raw-sample ingestion and
    /// flushes — the denominator of the fleet's serving throughput.
    /// [`FleetScheduler::ingest_row`] is deliberately not timed: it is
    /// a plain buffered copy, and a per-row clock read would cost as
    /// much as the work it measures; the rows' real cost (the batch
    /// kernels, the route-back) is all timed inside the flush.
    pub busy_ns: u128,
    /// Nanoseconds attributed to feature extraction across every decided
    /// window — the per-window `extract_ns` figures summed at route-back.
    /// Together with [`FleetStats::classify_ns`] this splits the serving
    /// pipeline's cost into its two kernel phases, so reports can show
    /// where the wall actually is (extraction dominates; see
    /// `fleet_sim`'s throughput table).
    pub extract_ns: u128,
    /// Nanoseconds attributed to classification across every decided
    /// window — the evenly-attributed batch-kernel shares summed at
    /// route-back. Counterpart of [`FleetStats::extract_ns`].
    pub classify_ns: u128,
    /// Ticks completed by the tick-driven runtime (0 when serving is
    /// caller-driven).
    pub ticks: u64,
    /// Ticks that finished within their cadence deadline.
    pub deadlines_met: u64,
    /// Ticks that overran their cadence deadline.
    pub deadlines_missed: u64,
    /// Worst single-tick overrun (ns past the deadline; 0 when every
    /// deadline was met).
    pub worst_overrun_ns: u64,
    /// Distribution of per-tick flush work (`end − start` ns per tick).
    pub tick_work: LatencyHistogram,
    /// Distribution of end-to-end **decision latency** — window arrival
    /// at the fleet to the end of the tick that decided it. Only
    /// recorded under the tick-driven runtime (arrival stamps need the
    /// serving clock); deterministic and worker-count-invariant under a
    /// virtual clock.
    pub decision_latency: LatencyHistogram,
}

impl FleetStats {
    /// Wall-clock serving throughput: windows decided per second of
    /// fleet busy time. This is the pooled figure the summed per-window
    /// latencies of a merged [`StreamStats`] cannot provide (they treat
    /// concurrent work as serial — see [`StreamStats::windows_per_sec`]).
    pub fn wall_windows_per_sec(&self) -> f64 {
        pooled_windows_per_sec(self.windows_decided, self.busy_ns)
    }
}

/// What [`FleetScheduler::remove`] hands back: the session's final
/// accounting plus anything still buffered.
#[derive(Debug, Clone, PartialEq)]
pub struct RemovedPatient {
    /// The removed session's lifetime stats (buffered raw samples are
    /// settled through the extractor first, so `samples_in` is exact).
    pub stats: StreamStats,
    /// Alarms the session had raised but nobody had collected.
    pub alarms: Vec<AlarmEvent>,
    /// Pending windows discarded undecided (flush before removing to
    /// decide them instead).
    pub discarded_windows: usize,
}

/// One decided window of a flush, tagged with its patient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetDecision {
    /// The patient whose window this is.
    pub patient: PatientId,
    /// The decided window.
    pub decision: WindowDecision,
}

/// Everything one [`FleetScheduler::flush`] decided: windows grouped by
/// ascending patient id (window order within a patient), the alarms
/// those windows raised, and the batch size that produced them.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetFlush {
    /// Decided windows, grouped by ascending patient id.
    pub decisions: Vec<FleetDecision>,
    /// Alarms raised by this flush, in the same patient-grouped order.
    pub alarms: Vec<(PatientId, AlarmEvent)>,
    /// Feature rows classified through the batch-kernel panels.
    pub rows_classified: usize,
    /// Extraction nanoseconds attributed to this flush's decided
    /// windows (summed per-window `extract_ns`).
    pub extract_ns: u128,
    /// Classification nanoseconds attributed to this flush's decided
    /// windows (summed per-row batch-kernel shares).
    pub classify_ns: u128,
}

/// One raw-sample ingest call that completed windows — the replay unit
/// that reconstructs the fleet-wide arrival order after the deferred,
/// shard-parallel extract stage has run.
struct ChunkRecord {
    patient: PatientId,
    /// Windows the chunk completed (by geometry, exactly what the
    /// extractor will stage).
    windows: u64,
    /// Serving-clock reading when the chunk was ingested (0 without a
    /// clock); stamped onto every window the chunk completed when the
    /// record replays.
    arrival_ns: u64,
}

/// One buffered window awaiting its decision: the pending window plus,
/// when the serial fleet has already run it through an incremental
/// panel (see [`FleetScheduler::classify_hot`]), its decision value.
struct QueuedWindow {
    window: PendingWindow,
    /// `Some` once an incremental panel classified the row (serial
    /// executor mode only); cleared if the overload policy later sheds
    /// the row, so a shed window is decided as dropped either way.
    value: Option<f64>,
    /// Serving-clock reading when the window arrived at the fleet (0
    /// without a clock); the tick runtime turns this into decision
    /// latency at route-back.
    arrival_ns: u64,
}

/// One admitted patient: the session, its raw-sample inbox (deferred
/// extract-stage input), the per-flush staging buffer the shard workers
/// fill, and its queue of extracted, not-yet-decided windows.
struct Slot {
    session: StreamingSession,
    /// Raw samples buffered since the last flush; drained by the
    /// sharded extract stage (or settled inline on remove/restart).
    inbox: Vec<f64>,
    /// Raw samples ever fed to this session (inbox included) — drives
    /// geometry-based window accounting at ingest time and the
    /// sample-fed/row-fed mode guard.
    fed_samples: u64,
    /// Windows the extract stage produced this flush, awaiting ordered
    /// replay into `queue`; empty between flushes.
    staged: Vec<PendingWindow>,
    /// Replay cursor into `staged`.
    staged_next: usize,
    queue: VecDeque<QueuedWindow>,
    /// Queue index before which every window is known rowless — rows
    /// are only shed front-to-back between flushes, so `DropOldest`
    /// resumes its victim scan here instead of re-walking the already-
    /// shed prefix (keeps sustained overload O(1) per shed). Reset
    /// whenever the queue empties (flush / restart).
    shed_cursor: usize,
    /// Row-bearing windows currently queued on this slot — the
    /// watermark gate's per-patient pending count, maintained
    /// incrementally (enqueue +1, shed −1, reset when the queue
    /// settles) so fair-share victim selection never walks the queues.
    pending_rows: usize,
}

impl Slot {
    fn new(session: StreamingSession) -> Self {
        Slot {
            session,
            inbox: Vec::new(),
            fed_samples: 0,
            staged: Vec::new(),
            staged_next: 0,
            queue: VecDeque::new(),
            shed_cursor: 0,
            pending_rows: 0,
        }
    }

    /// Runs the deferred extract stage for this slot: every buffered
    /// raw sample flows through the session's ring/scheduler/extractor
    /// and the completed windows land in `staged`. Self-contained per
    /// slot (no fleet state touched), which is what makes the stage
    /// safely shardable across pool workers.
    fn settle_inbox(&mut self) {
        if self.inbox.is_empty() {
            return;
        }
        self.session
            .extract_windows_into(&self.inbox, &mut self.staged);
        self.inbox.clear();
    }

    /// Moves the next staged window out (replay order).
    fn take_staged(&mut self) -> PendingWindow {
        let i = self.staged_next;
        self.staged_next += 1;
        std::mem::replace(
            &mut self.staged[i],
            PendingWindow {
                window_index: 0,
                start_sample: 0,
                row: None,
                extract_ns: 0,
            },
        )
    }
}

/// Where a flush's parallel stages run, resolved once from
/// [`FleetConfig::workers`].
#[derive(Debug)]
enum FlushExec {
    /// `workers = Some(1)`: everything on the flushing caller.
    Serial,
    /// `workers = Some(n ≥ 2)`: a fleet-owned pool of `n − 1` workers
    /// (the caller participates as the n-th executor).
    Owned(WorkerPool),
    /// `workers = None`: the machine-sized global pool.
    Global,
}

impl FlushExec {
    /// Total executors a dispatch uses (pool workers + the caller).
    fn executors(&self) -> usize {
        match self {
            FlushExec::Serial => 1,
            FlushExec::Owned(pool) => pool.workers() + 1,
            FlushExec::Global => crate::parallel::global_pool().workers() + 1,
        }
    }

    /// Order-preserving map over shared items on this executor set.
    fn par_map<T, R>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        match self {
            FlushExec::Serial => items.iter().map(f).collect(),
            FlushExec::Owned(pool) => pool.par_map(items, f),
            FlushExec::Global => crate::parallel::par_map(items, f),
        }
    }

    /// Order-preserving map over mutable items on this executor set.
    fn par_map_mut<T, R>(&self, items: &mut [T], f: impl Fn(&mut T) -> R + Sync) -> Vec<R>
    where
        T: Send,
        R: Send,
    {
        match self {
            FlushExec::Serial => items.iter_mut().map(f).collect(),
            FlushExec::Owned(pool) => pool.par_map_mut(items, f),
            FlushExec::Global => crate::parallel::par_map_mut(items, f),
        }
    }
}

/// Multiplexes N per-patient [`StreamingSession`]s over one shared
/// engine, micro-batching ready feature rows across patients into
/// panelled [`ClassifierEngine::decision_rows_into`] calls fanned across
/// a persistent worker pool (see the module docs for the staged
/// pipeline).
///
/// ```no_run
/// use seizure_core::fleet::{FleetConfig, FleetScheduler};
/// use seizure_core::stream::StreamConfig;
/// # fn engine() -> seizure_core::stream::SharedEngine { unimplemented!() }
///
/// let cfg = FleetConfig::unbounded(StreamConfig::non_overlapping(128.0, 30.0)?);
/// let mut fleet = FleetScheduler::new(engine(), cfg)?;
/// fleet.admit(7)?;
/// fleet.admit(12)?;
/// fleet.ingest(7, &vec![0.0; 4096])?;   // any interleaving
/// fleet.ingest(12, &vec![0.0; 8192])?;
/// for d in fleet.flush().decisions {     // one staged pipeline run
///     println!("patient {} window {}", d.patient, d.decision.window_index);
/// }
/// # Ok::<(), seizure_core::error::CoreError>(())
/// ```
pub struct FleetScheduler {
    engine: SharedEngine,
    cfg: FleetConfig,
    /// Admitted patient ids, ascending — index-parallel with `slots`,
    /// so lookups are a binary search and every flush iterates in
    /// deterministic patient order without tree-walking overhead on the
    /// row-serving hot path.
    ids: Vec<PatientId>,
    slots: Vec<Slot>,
    /// Slot index of the most recent lookup — live traffic arrives in
    /// per-patient bursts (consecutive rows/chunks of one device), so
    /// this one-entry cache turns most ingest lookups into a single
    /// compare. Invalidated whenever `ids` shifts (admit/remove).
    last_idx: usize,
    /// Raw-sample ingest calls (in fleet-wide order) whose windows are
    /// still awaiting the deferred extract stage — the replay script
    /// that reconstructs eager-extraction enqueue order at flush time.
    pending_chunks: Vec<ChunkRecord>,
    /// Fleet-wide arrival order of pending rows (one entry per buffered
    /// row; front = oldest) — what `DropOldest` sheds from. Only
    /// maintained when `max_pending_rows` actually bounds the buffer.
    arrival: VecDeque<PatientId>,
    stats: FleetStats,
    /// Reused decision-value buffer of the flush classify stage.
    values: Vec<f64>,
    /// Executors for the flush pipeline's parallel stages.
    exec: FlushExec,
    /// Cache-aware panel scheduling: on a **serial** executor set
    /// (`flush_executors() == 1`) panels classify incrementally, as
    /// soon as [`FLUSH_PANEL_ROWS`] rows are buffered — the rows are
    /// still cache-warm from ingestion, where a deferred flush over a
    /// large fleet would re-read megabytes of cold row data. On a
    /// parallel set classification defers to flush so whole panels fan
    /// out across the pool. Decisions are bit-identical either way;
    /// only memory traffic differs.
    eager: bool,
    /// (slot index, queue position) of each row buffered but not yet
    /// incrementally classified, in arrival order; only populated in
    /// `eager` mode, and drained every [`FLUSH_PANEL_ROWS`] rows.
    /// Queue positions stay valid because shedding strips a window's
    /// row without removing the window; slot indices are protected by
    /// draining before any admit/remove reshuffle.
    hot: Vec<(usize, usize)>,
    /// Kernel nanoseconds spent in incremental panels since the last
    /// flush; folded into that flush's accounting.
    eager_kernel_ns: u128,
    /// The serving clock when the fleet is tick-driven
    /// ([`FleetConfig::tick`]); `None` = caller-driven flushes, no
    /// arrival stamping.
    clock: Option<FleetClock>,
    /// Watermark round-robin cursor: slot index where the next
    /// fair-share victim scan starts, so sustained shedding rotates
    /// across patients instead of always hitting the lowest slot.
    /// Reset whenever slot indices shift (admit/remove).
    fair_cursor: usize,
    /// Reused scratch: arrival stamps of the windows the current flush
    /// decided, drained by [`FleetScheduler::tick_into`] into
    /// [`FleetStats::decision_latency`] once the tick's end time is
    /// known. Only populated while a clock is configured.
    tick_arrivals: Vec<u64>,
}

impl std::fmt::Debug for FleetScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetScheduler")
            .field("cfg", &self.cfg)
            .field("engine", &self.engine.info())
            .field("exec", &self.exec)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl FleetScheduler {
    /// Builds an empty fleet over a shared engine. `Some(n ≥ 2)` flush
    /// workers spawn the fleet's own persistent pool here, up front.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid
    /// [`FleetConfig`] (stream geometry, alarm operating point, a zero
    /// row buffer or a zero worker count).
    pub fn new(engine: SharedEngine, cfg: FleetConfig) -> Result<Self, CoreError> {
        cfg.validate()?;
        // Validate the stream configuration once, up front, with a probe
        // session — admits can then only fail on duplicate ids.
        StreamingSession::new(Arc::clone(&engine), cfg.stream)?;
        let exec = match cfg.workers {
            None => FlushExec::Global,
            Some(1) => FlushExec::Serial,
            Some(n) => FlushExec::Owned(WorkerPool::new(n - 1)),
        };
        let eager = exec.executors() == 1;
        let clock = match cfg.tick {
            Some(t) => Some(FleetClock::new(t)?),
            None => None,
        };
        Ok(FleetScheduler {
            engine,
            cfg,
            ids: Vec::new(),
            slots: Vec::new(),
            last_idx: usize::MAX,
            pending_chunks: Vec::new(),
            arrival: VecDeque::new(),
            stats: FleetStats::default(),
            values: Vec::new(),
            exec,
            eager,
            hot: Vec::new(),
            eager_kernel_ns: 0,
            clock,
            fair_cursor: 0,
            tick_arrivals: Vec::new(),
        })
    }

    /// The fleet's configuration.
    pub fn config(&self) -> FleetConfig {
        self.cfg
    }

    /// Executors the flush pipeline's parallel stages use (pool workers
    /// plus the flushing caller) — resolved from
    /// [`FleetConfig::workers`], so `None` reports the machine-default
    /// pool's width.
    pub fn flush_executors(&self) -> usize {
        self.exec.executors()
    }

    /// Fleet-level counters.
    pub fn stats(&self) -> FleetStats {
        self.stats.clone()
    }

    /// Cost metadata of the shared engine behind every session.
    pub fn engine_info(&self) -> svm::EngineInfo {
        self.engine.info()
    }

    /// Admitted patient count.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no patient is admitted.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether `patient` is admitted.
    pub fn contains(&self, patient: PatientId) -> bool {
        self.slot_index(patient).is_some()
    }

    /// Admitted patient ids in ascending order.
    pub fn patients(&self) -> impl Iterator<Item = PatientId> + '_ {
        self.ids.iter().copied()
    }

    /// Index of `patient` in the sorted id/slot vectors.
    fn slot_index(&self, patient: PatientId) -> Option<usize> {
        self.ids.binary_search(&patient).ok()
    }

    /// [`FleetScheduler::slot_index`] through the one-entry burst cache
    /// — the ingest/replay hot path.
    fn slot_index_cached(&mut self, patient: PatientId) -> Option<usize> {
        if self.ids.get(self.last_idx) == Some(&patient) {
            return Some(self.last_idx);
        }
        let idx = self.slot_index(patient)?;
        self.last_idx = idx;
        Some(idx)
    }

    /// Admits a new patient with a fresh session (alarm stage per the
    /// fleet configuration).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `patient` is already
    /// admitted.
    pub fn admit(&mut self, patient: PatientId) -> Result<(), CoreError> {
        // Slot indices shift below; settle the incremental-panel index
        // first (classifying a partial panel early is always sound).
        self.classify_hot();
        let Err(pos) = self.ids.binary_search(&patient) else {
            return Err(CoreError::InvalidConfig(format!(
                "patient {patient} is already admitted"
            )));
        };
        let session = self.fresh_session()?;
        self.ids.insert(pos, patient);
        self.slots.insert(pos, Slot::new(session));
        self.last_idx = usize::MAX; // indices shifted
        self.fair_cursor = 0; // indices shifted
        self.stats.admitted += 1;
        self.stats.patients = self.ids.len();
        Ok(())
    }

    /// Removes a patient, handing back the session's final stats, any
    /// uncollected alarms and the count of pending windows discarded
    /// undecided (flush first to decide them). Buffered raw samples are
    /// settled through the extractor so the final `samples_in` is
    /// exact; windows they complete are discarded undecided too.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown patient.
    pub fn remove(&mut self, patient: PatientId) -> Result<RemovedPatient, CoreError> {
        let Some(idx) = self.slot_index(patient) else {
            return Err(CoreError::InvalidConfig(format!(
                "patient {patient} is not admitted"
            )));
        };
        // Slot indices shift below; settle the incremental-panel index
        // first so its (slot, position) entries stay valid.
        self.classify_hot();
        self.ids.remove(idx);
        let mut slot = self.slots.remove(idx);
        self.last_idx = usize::MAX; // indices shifted
        self.fair_cursor = 0; // indices shifted
        slot.settle_inbox();
        let discarded_rows = slot.queue.iter().filter(|e| e.window.row.is_some()).count();
        let discarded = slot.queue.len() + slot.staged.len();
        self.pending_chunks.retain(|r| r.patient != patient);
        self.forget_arrivals(patient, discarded_rows);
        self.stats.pending_windows -= discarded;
        self.stats.pending_rows -= discarded_rows;
        self.stats.discarded_windows += discarded as u64;
        self.stats.removed += 1;
        self.stats.patients = self.ids.len();
        Ok(RemovedPatient {
            stats: slot.session.stats(),
            alarms: slot.session.take_alarms(),
            discarded_windows: discarded,
        })
    }

    /// Restarts a patient's session in place — fresh ring, scheduler,
    /// stats and alarm state, pending windows discarded — the device
    /// reconnect / session rollover lifecycle. Returns what
    /// [`FleetScheduler::remove`] would have.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown patient.
    pub fn restart(&mut self, patient: PatientId) -> Result<RemovedPatient, CoreError> {
        let fresh = self.fresh_session()?;
        let Some(idx) = self.slot_index(patient) else {
            return Err(CoreError::InvalidConfig(format!(
                "patient {patient} is not admitted"
            )));
        };
        // The restarted slot's queue entries die; settle the
        // incremental-panel index so no entry dangles.
        self.classify_hot();
        let slot = &mut self.slots[idx];
        slot.settle_inbox();
        let discarded_rows = slot.queue.iter().filter(|e| e.window.row.is_some()).count();
        let discarded = slot.queue.len() + slot.staged.len();
        slot.queue.clear();
        slot.staged.clear();
        slot.staged_next = 0;
        slot.shed_cursor = 0;
        slot.pending_rows = 0;
        slot.fed_samples = 0;
        let mut old = std::mem::replace(&mut slot.session, fresh);
        self.pending_chunks.retain(|r| r.patient != patient);
        self.forget_arrivals(patient, discarded_rows);
        self.stats.pending_windows -= discarded;
        self.stats.pending_rows -= discarded_rows;
        self.stats.discarded_windows += discarded as u64;
        self.stats.restarted += 1;
        Ok(RemovedPatient {
            stats: old.stats(),
            alarms: old.take_alarms(),
            discarded_windows: discarded,
        })
    }

    /// Ingests one raw-sample chunk for `patient` and returns how many
    /// windows it completed (by geometry). On a parallel executor set
    /// the samples are buffered on the patient's slot (an O(len) copy)
    /// and the sharded extract stage runs them all at the next
    /// [`FleetScheduler::flush`]; on a serial set the slot's extract
    /// stage runs right here, while the chunk is cache-warm (there is
    /// nothing to shard). Either way the extracted windows replay into
    /// the pending queues at flush, in fleet-wide ingest order — the
    /// executor set moves work between ingest and flush, never results.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown patient, or a
    /// patient already fed through [`FleetScheduler::ingest_row`] (the
    /// two ingest modes number windows independently and must not mix
    /// on one session).
    pub fn ingest(&mut self, patient: PatientId, chunk: &[f64]) -> Result<usize, CoreError> {
        let t0 = Instant::now();
        let Some(idx) = self.slot_index_cached(patient) else {
            return Err(CoreError::InvalidConfig(format!(
                "patient {patient} is not admitted"
            )));
        };
        let slot = &mut self.slots[idx];
        if slot.session.is_row_fed() {
            return Err(CoreError::InvalidConfig(format!(
                "patient {patient} is row-fed; cannot mix raw-sample ingestion \
                 (window numbering would fork)"
            )));
        }
        let before = self.cfg.stream.windows_in(slot.fed_samples);
        slot.fed_samples += chunk.len() as u64;
        let completed = (self.cfg.stream.windows_in(slot.fed_samples) - before) as usize;
        if self.eager {
            // Serial executor set: run this slot's extract stage now,
            // while the chunk is cache-warm on the ingesting caller —
            // there is no shard parallelism to defer for. The windows
            // still stage here and replay at the next flush in
            // fleet-wide ingest order (the chunk records), so the
            // overload policy sees exactly the schedule the deferred
            // path would give it — identical results, warmer cache.
            slot.session.extract_windows_into(chunk, &mut slot.staged);
        } else {
            slot.inbox.extend_from_slice(chunk);
        }
        if completed > 0 {
            self.pending_chunks.push(ChunkRecord {
                patient,
                windows: completed as u64,
                arrival_ns: self.clock.as_ref().map_or(0, FleetClock::now_ns),
            });
            self.stats.pending_windows += completed;
        }
        self.stats.ingests += 1;
        self.stats.busy_ns += t0.elapsed().as_nanos();
        Ok(completed)
    }

    /// Ingests one **pre-extracted** feature row for `patient` (`None` =
    /// the device reported a dropped window) — the on-device-extraction
    /// topology; see [`StreamingSession::push_row`] for the contract.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown patient, a
    /// row that is not exactly [`ecg_features::N_FEATURES`] wide, or a
    /// patient already fed through [`FleetScheduler::ingest`] (the
    /// ingest modes must not mix on one session).
    pub fn ingest_row(&mut self, patient: PatientId, row: Option<&[f64]>) -> Result<(), CoreError> {
        // Deliberately no per-call timer here: row ingestion is a plain
        // buffered copy, and on the row-serving hot path two clock
        // reads per row would cost as much as the bookkeeping they
        // measure — batching amortizes the clock per panel at flush
        // time instead (see `FleetStats::busy_ns`). A *serving* clock
        // (`FleetConfig::tick`) does stamp each row's arrival — that
        // single read is what decision-latency histograms are made of,
        // and a virtual clock reads for free.
        let Some(idx) = self.slot_index_cached(patient) else {
            return Err(CoreError::InvalidConfig(format!(
                "patient {patient} is not admitted"
            )));
        };
        let slot = &mut self.slots[idx];
        if slot.fed_samples > 0 {
            return Err(CoreError::InvalidConfig(format!(
                "patient {patient} is sample-fed; cannot mix pre-extracted rows \
                 (window numbering would fork)"
            )));
        }
        let pending = slot.session.pend_row(row)?;
        let arrival_ns = self.clock.as_ref().map_or(0, FleetClock::now_ns);
        self.stats.pending_windows += 1;
        self.enqueue_at(idx, patient, pending, arrival_ns);
        self.stats.ingests += 1;
        Ok(())
    }

    /// Decides every pending window across the fleet through the staged
    /// pipeline: (1) sessions with buffered raw samples run their
    /// extract stage shard-parallel on the worker pool, each into its
    /// own slot (their windows then replay into the pending queues in
    /// fleet-wide ingest order, under the overload policy); (2) every
    /// buffered feature row is gathered by reference into
    /// [`FLUSH_PANEL_ROWS`]-row panels and the panels fan out across
    /// the pool through [`ClassifierEngine::decision_rows_into`];
    /// (3) decisions scatter back through each session's decide stage
    /// (stats, alarm state machine, pending-alarm buffer) in
    /// (patient asc, window) order. Windows without a row
    /// (extraction-dropped or shed) are decided as dropped. No stage
    /// reorders anything, so results are bit-identical at every worker
    /// count — and identical to solo streaming.
    pub fn flush(&mut self) -> FleetFlush {
        let mut out = FleetFlush::default();
        self.flush_into(&mut out);
        out
    }

    /// [`FleetScheduler::flush`] into a caller-owned buffer (cleared
    /// first), so steady-state serving loops reuse the decision/alarm
    /// allocations across flushes.
    pub fn flush_into(&mut self, out: &mut FleetFlush) {
        out.decisions.clear();
        out.alarms.clear();
        out.rows_classified = 0;
        out.extract_ns = 0;
        out.classify_ns = 0;
        // Eager panels classified inside `ingest_row` ran outside any
        // flush window; fold their kernel time into this flush's
        // accounting (busy_ns and the per-row classify share).
        let ingest_kernel_ns = std::mem::take(&mut self.eager_kernel_ns);
        self.stats.busy_ns += ingest_kernel_ns;
        let t0 = Instant::now();

        // Stage 1: sharded extraction + ordered replay.
        self.extract_stage();
        self.replay_stage();

        // Stage 2: classify whatever the eager path has not already
        // handled. On a serial executor set every row-bearing window
        // was (or now becomes) eagerly classified, so the gather below
        // comes up empty; on a parallel set it collects every pending
        // row in (patient asc, window) order and fans the panels across
        // the executors. The parallel map is order-preserving, so
        // `values` is laid out exactly as the serial loop would lay it
        // out.
        self.values.clear();
        if self.eager {
            self.classify_hot();
        }
        let panel_rows: Vec<&[f64]> = self
            .slots
            .iter()
            .flat_map(|slot| {
                slot.queue
                    .iter()
                    .filter(|e| e.value.is_none())
                    .filter_map(|e| e.window.row.as_deref())
            })
            // lint: allow(hot-alloc) — per-flush staging of borrowed row refs:
            // the borrows are tied to this flush's slot iteration so they
            // cannot live in persistent scratch; pointer-sized entries bounded
            // by the queue depth.
            .collect();
        let kt0 = Instant::now();
        if panel_rows.len() > FLUSH_PANEL_ROWS && self.exec.executors() > 1 {
            // lint: allow(hot-alloc) — same per-flush ref staging as above.
            let panels: Vec<&[&[f64]]> = panel_rows.chunks(FLUSH_PANEL_ROWS).collect();
            let engine = &self.engine;
            let panel_values = self.exec.par_map(&panels, |panel| {
                // lint: allow(hot-alloc) — per-executor output buffer; results
                // must be owned to cross the parallel boundary back to the
                // caller, so shared scratch cannot serve here.
                let mut v = Vec::with_capacity(panel.len());
                engine.decision_rows_into(panel, &mut v);
                v
            });
            for v in &panel_values {
                self.values.extend_from_slice(v);
            }
        } else {
            for panel in panel_rows.chunks(FLUSH_PANEL_ROWS) {
                self.engine.decision_rows_into(panel, &mut self.values);
            }
        }
        // The replay stage (raw path) and the remainder sweep above may
        // have run eager panels inside this flush's window: count their
        // kernel time toward the classify share (busy_ns already covers
        // them via `t0`).
        let kernel_ns =
            kt0.elapsed().as_nanos() + ingest_kernel_ns + std::mem::take(&mut self.eager_kernel_ns);
        drop(panel_rows);
        debug_assert!(self.hot.is_empty(), "every hot entry classified");
        // Every still-pending row was classified this cycle — eagerly
        // (value on the entry) or by the panel sweep (positional).
        let rows_classified = self.stats.pending_rows;
        // Attribute the batch kernels' cost evenly across their rows so
        // per-window latency accounting survives batching.
        let classify_share_ns = if rows_classified == 0 {
            0
        } else {
            (kernel_ns / rows_classified as u128) as u64
        };

        // Stage 3: ordered route-back — decide every window in order,
        // batch values consumed in step with the gather order.
        out.rows_classified = rows_classified;
        // Under a serving clock, remember each decided window's arrival
        // stamp: `tick_into` turns them into decision latencies once the
        // tick's end time is known.
        let stamp = self.clock.is_some();
        self.tick_arrivals.clear();
        let mut next = 0usize;
        for (&patient, slot) in self.ids.iter().zip(self.slots.iter_mut()) {
            if slot.queue.is_empty() {
                continue;
            }
            for e in slot.queue.drain(..) {
                if stamp {
                    self.tick_arrivals.push(e.arrival_ns);
                }
                let (decision, share) = match (e.value, &e.window.row) {
                    // Eagerly classified (a shed row clears its value,
                    // so a Some here always still carries its row).
                    (Some(v), _) => (Some(v), classify_share_ns),
                    (None, Some(_)) => {
                        let v = self.values[next];
                        next += 1;
                        (Some(v), classify_share_ns)
                    }
                    (None, None) => (None, 0),
                };
                out.extract_ns += e.window.extract_ns as u128;
                out.classify_ns += share as u128;
                out.decisions.push(FleetDecision {
                    patient,
                    decision: slot.session.decide_window(&e.window, decision, share),
                });
                // Recycle the row allocation into the owning session's
                // pool, where both ingest modes draw from.
                if let Some(row) = e.window.row {
                    slot.session.recycle_row(row);
                }
            }
            slot.shed_cursor = 0;
            slot.pending_rows = 0;
            for alarm in slot.session.take_alarms() {
                out.alarms.push((patient, alarm));
            }
        }
        debug_assert_eq!(next, self.values.len());
        self.arrival.clear();
        self.stats.pending_windows = 0;
        self.stats.pending_rows = 0;
        self.stats.flushes += 1;
        self.stats.rows_classified += rows_classified as u64;
        self.stats.windows_decided += out.decisions.len() as u64;
        self.stats.extract_ns += out.extract_ns;
        self.stats.classify_ns += out.classify_ns;
        self.stats.busy_ns += t0.elapsed().as_nanos();
    }

    /// The serving clock, or an error when the fleet is caller-driven.
    fn clock_required(&mut self) -> Result<&mut FleetClock, CoreError> {
        self.clock.as_mut().ok_or_else(|| {
            CoreError::InvalidConfig(
                "tick-driven serving needs FleetConfig::tick (a cadence and \
                 a wall or virtual clock source)"
                    .into(),
            )
        })
    }

    /// Current serving-clock reading (`None` when caller-driven).
    pub fn clock_now_ns(&self) -> Option<u64> {
        self.clock.as_ref().map(FleetClock::now_ns)
    }

    /// Nominal due time of the next tick (`None` when caller-driven).
    pub fn next_tick_ns(&self) -> Option<u64> {
        self.clock.as_ref().map(FleetClock::next_tick_ns)
    }

    /// Advances a **virtual** serving clock by `ns` — how simulations
    /// model inter-tick time passing (device arrivals land at distinct
    /// timestamps). A documented no-op on a wall clock, which advances
    /// itself.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the fleet has no
    /// serving clock.
    pub fn advance_clock(&mut self, ns: u64) -> Result<(), CoreError> {
        self.clock_required()?.advance(ns);
        Ok(())
    }

    /// One serving tick: exactly one [`FleetScheduler::flush`] wrapped
    /// in the serving clock's deadline accounting. The tick starts at
    /// `max(now, scheduled)`, performs the flush (identical decisions
    /// to a caller-driven flush — the clock never reorders work), and
    /// ends measured (wall) or modeled (virtual, `rows × ns_per_row`).
    /// Deadline verdicts land in [`FleetStats`]
    /// (`ticks`/`deadlines_met`/`deadlines_missed`/`worst_overrun_ns`,
    /// plus the [`FleetStats::tick_work`] histogram), and each decided
    /// window's arrival→decision time lands in
    /// [`FleetStats::decision_latency`]. Never sleeps — pacing belongs
    /// to [`FleetScheduler::run_ticks`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the fleet has no
    /// serving clock ([`FleetConfig::tick`] is `None`).
    pub fn tick(&mut self) -> Result<(FleetFlush, TickOutcome), CoreError> {
        let mut out = FleetFlush::default();
        let outcome = self.tick_into(&mut out)?;
        Ok((out, outcome))
    }

    /// [`FleetScheduler::tick`] into a caller-owned buffer (cleared
    /// first) — the steady-state serving loop's allocation-reusing
    /// form.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the fleet has no
    /// serving clock.
    pub fn tick_into(&mut self, out: &mut FleetFlush) -> Result<TickOutcome, CoreError> {
        let timing = self.clock_required()?.begin_tick();
        self.flush_into(out);
        let rows = out.rows_classified as u64;
        let outcome = self.clock_required()?.end_tick(&timing, rows);
        self.stats.ticks += 1;
        if outcome.met {
            self.stats.deadlines_met += 1;
        } else {
            self.stats.deadlines_missed += 1;
            let overrun = outcome.slack_ns.unsigned_abs();
            self.stats.worst_overrun_ns = self.stats.worst_overrun_ns.max(overrun);
        }
        self.stats.tick_work.record(outcome.work_ns);
        // Decision latency = arrival at the fleet → end of the deciding
        // tick. Arrival stamps were stashed by the flush's route-back;
        // windows that arrived with no clock reading (stamp 0 before
        // the clock's epoch is impossible — stamps come from this
        // clock) saturate harmlessly.
        for &arrival in &self.tick_arrivals {
            self.stats
                .decision_latency
                .record(outcome.end_ns.saturating_sub(arrival));
        }
        self.tick_arrivals.clear();
        Ok(outcome)
    }

    /// Runs `n` cadence-paced ticks: before each tick the wall clock
    /// sleeps until the tick is due (a virtual clock jumps to its
    /// schedule instead), then the tick runs and `on_tick` sees its
    /// flush and outcome. `scratch` is reused across ticks — decisions
    /// from tick *k* are only valid inside `on_tick` until tick *k+1*
    /// starts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the fleet has no
    /// serving clock.
    pub fn run_ticks(
        &mut self,
        n: usize,
        scratch: &mut FleetFlush,
        mut on_tick: impl FnMut(&FleetFlush, &TickOutcome),
    ) -> Result<(), CoreError> {
        for _ in 0..n {
            self.clock_required()?.wait_until_due();
            let outcome = self.tick_into(scratch)?;
            on_tick(scratch, &outcome);
        }
        Ok(())
    }

    /// Flush stage 1a: every slot with buffered raw samples runs its
    /// extract stage, shard-parallel across the executors. Each slot is
    /// claimed whole by one executor and extracts into its own staging
    /// buffer — per-session state only, no locks. Dynamic claiming
    /// load-balances uneven inboxes; the claim order cannot matter
    /// because extraction output is a pure function of per-session
    /// state.
    fn extract_stage(&mut self) {
        let mut dirty: Vec<&mut Slot> = self
            .slots
            .iter_mut()
            .filter(|s| !s.inbox.is_empty())
            .collect();
        if dirty.is_empty() {
            return;
        }
        self.exec
            .par_map_mut(&mut dirty, |slot| slot.settle_inbox());
    }

    /// Flush stage 1b: replays the staged windows into the pending
    /// queues in fleet-wide ingest order (the chunk records), applying
    /// the overload policy exactly as eager per-ingest extraction would
    /// have.
    fn replay_stage(&mut self) {
        if self.pending_chunks.is_empty() {
            return;
        }
        let records = std::mem::take(&mut self.pending_chunks);
        for rec in &records {
            let idx = self
                .slot_index_cached(rec.patient)
                // lint: allow(hot-panic) — invariant: `pending_chunks` records
                // are purged in `remove_patient`, so a live record always has
                // a slot.
                .expect("chunk records are dropped with their patient");
            for _ in 0..rec.windows {
                let w = self.slots[idx].take_staged();
                self.enqueue_at(idx, rec.patient, w, rec.arrival_ns);
            }
        }
        // Keep the records allocation for the next ingest burst.
        self.pending_chunks = records;
        self.pending_chunks.clear();
        for slot in &mut self.slots {
            debug_assert_eq!(
                slot.staged_next,
                slot.staged.len(),
                "every staged window replayed"
            );
            slot.staged.clear();
            slot.staged_next = 0;
        }
    }

    /// Merged per-session accounting across the currently admitted
    /// sessions (sessions already removed are not included — collect
    /// their stats from [`RemovedPatient`]). Raw samples still buffered
    /// for the deferred extract stage are not in `samples_in` yet; they
    /// settle at the next flush. Remember the merged `windows_per_sec`
    /// is serial-equivalent, not wall-clock — see
    /// [`StreamStats::windows_per_sec`] and
    /// [`FleetStats::wall_windows_per_sec`].
    pub fn stream_stats(&self) -> StreamStats {
        let mut merged = StreamStats::default();
        for slot in &self.slots {
            merged.merge(&slot.session.stats());
        }
        merged
    }

    /// One admitted patient's session stats (same settling caveat as
    /// [`FleetScheduler::stream_stats`]).
    pub fn patient_stats(&self, patient: PatientId) -> Option<StreamStats> {
        self.slot_index(patient)
            .map(|i| self.slots[i].session.stats())
    }

    fn fresh_session(&self) -> Result<StreamingSession, CoreError> {
        match self.cfg.alarms {
            Some(a) => StreamingSession::with_alarms(Arc::clone(&self.engine), self.cfg.stream, a),
            None => StreamingSession::new(Arc::clone(&self.engine), self.cfg.stream),
        }
    }

    /// Applies the overload policy and queues one extracted window for
    /// the slot at `idx` (which must be `patient`'s). The caller has
    /// already counted the window in `pending_windows` (at ingest time
    /// — rows eagerly, raw windows by geometry).
    fn enqueue_at(
        &mut self,
        idx: usize,
        patient: PatientId,
        mut w: PendingWindow,
        arrival_ns: u64,
    ) {
        // Row freed by the overload policy, recycled into the owning
        // session's pool below so sustained overload stays
        // allocation-free.
        let mut recycled: Option<Vec<f64>> = None;
        if w.row.is_some() {
            let at_cap = self.stats.pending_rows >= self.cfg.max_pending_rows;
            match self.cfg.overload {
                OverloadPolicy::Reject if at_cap => {
                    // Shed the newcomer: it queues as a dropped
                    // window so per-session order stays intact.
                    recycled = w.row.take();
                    self.stats.shed_windows += 1;
                }
                OverloadPolicy::Reject => {
                    self.stats.pending_rows += 1;
                }
                OverloadPolicy::DropOldest => {
                    if at_cap {
                        self.shed_oldest_row();
                    }
                    self.stats.pending_rows += 1;
                    // The arrival deque exists only to pick DropOldest
                    // victims; an unbounded fleet never sheds, so skip
                    // the bookkeeping on its hot path.
                    if self.cfg.max_pending_rows != usize::MAX {
                        self.arrival.push_back(patient);
                    }
                }
                OverloadPolicy::Watermark(_) => {
                    // Admit unconditionally; the gate sheds *after* the
                    // newcomer queues (below), so it is a candidate like
                    // every other pending row.
                    self.stats.pending_rows += 1;
                }
            }
        }
        let slot = &mut self.slots[idx];
        if let Some(row) = recycled {
            slot.session.recycle_row(row);
        }
        let has_row = w.row.is_some();
        let pos = slot.queue.len();
        slot.queue.push_back(QueuedWindow {
            window: w,
            value: None,
            arrival_ns,
        });
        if has_row {
            slot.pending_rows += 1;
        }
        // Serial executor set: index the row for incremental panel
        // classification, and classify the moment a full panel is hot —
        // while its rows are still cache-warm from extraction.
        if has_row && self.eager {
            self.hot.push((idx, pos));
            if self.hot.len() >= FLUSH_PANEL_ROWS {
                self.classify_hot();
            }
        }
        // Watermark gate: crossing the high watermark sheds down to the
        // low watermark in one fair round-robin pass (the hysteresis
        // band keeps shedding bursty once saturated).
        if let OverloadPolicy::Watermark(wm) = self.cfg.overload {
            if self.stats.pending_rows > wm.high {
                self.shed_to_low(wm.low);
            }
        }
    }

    /// Classifies every hot (row-bearing, not yet classified) window
    /// indexed in `self.hot`, writing each decision value onto its
    /// queue entry. Serial-executor path only: panels run incrementally
    /// as they fill, while their rows are still cache-warm from
    /// extraction — a deferred flush-time sweep would re-read megabytes
    /// of cold rows at fleet scale. Entries whose row was shed after
    /// indexing are skipped (they decide as dropped). Bit-identical to
    /// the deferred sweep: same rows, same kernel, same order.
    fn classify_hot(&mut self) {
        if self.hot.is_empty() {
            return;
        }
        let mut values = std::mem::take(&mut self.values);
        values.clear();
        let t0 = Instant::now();
        let rows: Vec<&[f64]> = self
            .hot
            .iter()
            .filter_map(|&(s, p)| self.slots[s].queue[p].window.row.as_deref())
            .collect();
        self.engine.decision_rows_into(&rows, &mut values);
        drop(rows);
        self.eager_kernel_ns += t0.elapsed().as_nanos();
        let mut vi = 0usize;
        for &(s, p) in &self.hot {
            let entry = &mut self.slots[s].queue[p];
            if entry.window.row.is_some() {
                entry.value = Some(values[vi]);
                vi += 1;
            }
        }
        debug_assert_eq!(vi, values.len());
        self.hot.clear();
        values.clear();
        self.values = values;
    }

    /// Sheds the oldest pending row fleet-wide (`DropOldest`): the
    /// window stays queued, rowless, and will be decided as dropped;
    /// its row allocation returns to the victim session's pool. The
    /// per-slot cursor skips the already-shed rowless prefix, so a
    /// sustained overload burst sheds in O(1) per window instead of
    /// re-scanning the queue front every time.
    fn shed_oldest_row(&mut self) {
        let Some(victim) = self.arrival.pop_front() else {
            return;
        };
        let idx = self
            .slot_index(victim)
            // lint: allow(hot-panic) — invariant: `remove_patient` drops the
            // patient's arrival entries before its slot.
            .expect("arrival entries are cleared when their patient leaves");
        self.shed_row_at(idx);
    }

    /// Sheds the oldest pending row of the slot at `idx`: the window
    /// stays queued, rowless, and will be decided as dropped; the row
    /// allocation returns to the session's pool. Shared mechanics of
    /// `DropOldest` (victim picked by the arrival deque) and the
    /// watermark gate (victim picked by fair share). No-op on a slot
    /// with no pending rows.
    fn shed_row_at(&mut self, idx: usize) {
        let slot = &mut self.slots[idx];
        let Some((offset, entry)) = slot
            .queue
            .iter_mut()
            .skip(slot.shed_cursor)
            .enumerate()
            .find(|(_, e)| e.window.row.is_some())
        else {
            debug_assert_eq!(slot.pending_rows, 0, "victims are picked by pending_rows");
            return;
        };
        // lint: allow(hot-panic) — `find` matched on `row.is_some()` above.
        let row = entry.window.row.take().expect("found by row.is_some()");
        // A row the eager path already classified still sheds: its
        // value is discarded and the window decides as dropped.
        entry.value = None;
        slot.shed_cursor += offset + 1;
        slot.pending_rows -= 1;
        slot.session.recycle_row(row);
        self.stats.pending_rows -= 1;
        self.stats.shed_windows += 1;
    }

    /// The watermark gate's shed pass: sheds pending rows down to `low`,
    /// one victim at a time, each victim the next patient (round-robin
    /// from `fair_cursor`) holding **more than its fair share**
    /// (`⌈pending / patients-with-rows⌉`). When every patient is at or
    /// under fair share — an exactly even spread — the rotation falls
    /// back to any patient with rows, so shedding stays strictly
    /// round-robin and no patient is ever starved to protect another.
    fn shed_to_low(&mut self, low: usize) {
        while self.stats.pending_rows > low {
            let active = self.slots.iter().filter(|s| s.pending_rows > 0).count();
            if active == 0 {
                return;
            }
            let fair = self.stats.pending_rows.div_ceil(active);
            let n = self.slots.len();
            let scan = |threshold: usize, from: usize| -> Option<usize> {
                (0..n)
                    .map(|step| (from + step) % n)
                    .find(|&i| self.slots[i].pending_rows > threshold)
            };
            let Some(victim) = scan(fair, self.fair_cursor).or_else(|| scan(0, self.fair_cursor))
            else {
                return;
            };
            self.fair_cursor = (victim + 1) % n;
            self.shed_row_at(victim);
        }
    }

    /// Drops `rows` arrival entries of a departing/restarting patient.
    fn forget_arrivals(&mut self, patient: PatientId, rows: usize) {
        if rows == 0 {
            return;
        }
        let mut left = rows;
        self.arrival.retain(|&p| {
            if p == patient && left > 0 {
                left -= 1;
                false
            } else {
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alarm::DroppedPolicy;
    use biodsp::ExtractPrecision;
    use ecg_features::N_FEATURES;
    use svm::{ClassifierEngine, EngineInfo};

    /// Toy backend: decision = Σ row — deterministic, no training.
    struct SumEngine;

    impl ClassifierEngine for SumEngine {
        fn decision(&self, row: &[f64]) -> f64 {
            row.iter().sum()
        }
        fn n_features(&self) -> usize {
            N_FEATURES
        }
        fn info(&self) -> EngineInfo {
            EngineInfo {
                kind: "sum-test",
                n_support_vectors: 1,
                n_features: N_FEATURES,
                d_bits: None,
                a_bits: None,
            }
        }
    }

    fn engine() -> SharedEngine {
        Arc::new(SumEngine)
    }

    fn cfg() -> FleetConfig {
        FleetConfig::unbounded(StreamConfig::non_overlapping(128.0, 30.0).unwrap())
    }

    /// A row whose SumEngine decision equals `v`.
    fn row(v: f64) -> Vec<f64> {
        let mut r = vec![0.0; N_FEATURES];
        r[0] = v;
        r
    }

    #[test]
    fn config_and_lifecycle_validation() {
        assert!(FleetConfig {
            max_pending_rows: 0,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(FleetConfig {
            alarms: Some(AlarmConfig::k_of_n(5, 2)),
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(FleetConfig {
            workers: Some(0),
            ..cfg()
        }
        .validate()
        .is_err());
        // Watermark bands must satisfy low < high <= max_pending_rows.
        for (low, high, max) in [(4, 4, 8), (5, 4, 8), (2, 9, 8)] {
            assert!(
                FleetConfig {
                    max_pending_rows: max,
                    overload: OverloadPolicy::Watermark(Watermarks { low, high }),
                    ..cfg()
                }
                .validate()
                .is_err(),
                "low {low} high {high} max {max}"
            );
        }
        assert!(FleetConfig {
            max_pending_rows: 8,
            overload: OverloadPolicy::Watermark(Watermarks { low: 2, high: 8 }),
            ..cfg()
        }
        .validate()
        .is_ok());
        // Tick cadence must be positive.
        assert!(FleetConfig {
            tick: Some(TickConfig::wall(0)),
            ..cfg()
        }
        .validate()
        .is_err());
        // A caller-driven fleet cannot tick.
        let mut untick = FleetScheduler::new(engine(), cfg()).unwrap();
        assert!(untick.tick().is_err());
        assert!(untick.advance_clock(1).is_err());
        assert_eq!(untick.clock_now_ns(), None);
        assert_eq!(untick.next_tick_ns(), None);
        let bad_stream = FleetConfig::unbounded(StreamConfig {
            fs: 0.0,
            window_len: 10,
            stride: 10,
            precision: ExtractPrecision::default(),
        });
        assert!(FleetScheduler::new(engine(), bad_stream).is_err());

        let mut fleet = FleetScheduler::new(engine(), cfg()).unwrap();
        assert!(fleet.is_empty());
        fleet.admit(3).unwrap();
        assert!(fleet.admit(3).is_err(), "duplicate admit");
        assert!(fleet.ingest(99, &[0.0; 16]).is_err(), "unknown patient");
        assert!(fleet.ingest_row(99, None).is_err());
        assert!(fleet.remove(99).is_err());
        assert!(fleet.restart(99).is_err());
        assert!(fleet.contains(3) && !fleet.contains(99));
        assert_eq!(fleet.len(), 1);
        assert_eq!(fleet.patients().collect::<Vec<_>>(), vec![3]);
        // Row width is validated.
        assert!(fleet.ingest_row(3, Some(&[1.0; 3])).is_err());
        let stats = fleet.stats();
        assert_eq!((stats.patients, stats.admitted), (1, 1));
    }

    #[test]
    fn worker_counts_resolve_and_cannot_change_results() {
        // The same workload at every executor configuration, including
        // enough rows for multiple panels, must produce identical
        // flushes.
        let run = |workers: Option<usize>| {
            let mut fleet =
                FleetScheduler::new(engine(), FleetConfig { workers, ..cfg() }).unwrap();
            for p in 0..3 {
                fleet.admit(p).unwrap();
            }
            for i in 0..(2 * FLUSH_PANEL_ROWS + 17) {
                let p = (i % 3) as PatientId;
                if i % 7 == 3 {
                    fleet.ingest_row(p, None).unwrap();
                } else {
                    fleet.ingest_row(p, Some(&row(i as f64 - 200.0))).unwrap();
                }
            }
            fleet.flush()
        };
        // Latency fields are wall-clock and differ run to run; the
        // decision payload must not.
        let payload = |flush: &FleetFlush| -> Vec<(PatientId, u64, u64, Option<f64>, bool)> {
            flush
                .decisions
                .iter()
                .map(|d| {
                    (
                        d.patient,
                        d.decision.window_index,
                        d.decision.start_sample,
                        d.decision.decision,
                        d.decision.is_seizure,
                    )
                })
                .collect()
        };
        let serial = run(Some(1));
        assert_eq!(serial.rows_classified, 2 * FLUSH_PANEL_ROWS + 17 - 76);
        for workers in [Some(2), Some(4), None] {
            let other = run(workers);
            assert_eq!(payload(&serial), payload(&other), "workers {workers:?}");
            assert_eq!(serial.alarms, other.alarms);
        }
        // The executor count resolves as configured.
        let f1 = FleetScheduler::new(
            engine(),
            FleetConfig {
                workers: Some(1),
                ..cfg()
            },
        )
        .unwrap();
        assert_eq!(f1.flush_executors(), 1);
        let f3 = FleetScheduler::new(
            engine(),
            FleetConfig {
                workers: Some(3),
                ..cfg()
            },
        )
        .unwrap();
        assert_eq!(f3.flush_executors(), 3);
        let fd = FleetScheduler::new(engine(), cfg()).unwrap();
        assert!(fd.flush_executors() >= 1);
    }

    #[test]
    fn raw_ingest_extraction_follows_the_executor_set() {
        // Parallel executor set: extraction defers to the flush so the
        // per-session shards can fan out across the pool.
        let mut par_cfg = cfg();
        par_cfg.workers = Some(2);
        let mut fleet = FleetScheduler::new(engine(), par_cfg).unwrap();
        fleet.admit(1).unwrap();
        // A full flat window completes by geometry at ingest time…
        assert_eq!(fleet.ingest(1, &[0.0; 3840]).unwrap(), 1);
        assert_eq!(fleet.stats().pending_windows, 1);
        // …but extraction has not run yet: the session has seen no
        // samples and no rows are buffered.
        assert_eq!(fleet.patient_stats(1).unwrap().samples_in, 0);
        assert_eq!(fleet.stats().pending_rows, 0);
        // Partial chunks complete nothing but still count their samples.
        assert_eq!(fleet.ingest(1, &[0.0; 100]).unwrap(), 0);
        // The flush settles everything: extraction runs, the window is
        // decided (dropped — a flat line has no beats), samples settle.
        let flush = fleet.flush();
        assert_eq!(flush.decisions.len(), 1);
        assert_eq!(flush.decisions[0].decision.decision, None);
        assert_eq!(fleet.patient_stats(1).unwrap().samples_in, 3940);
        assert_eq!(fleet.stats().pending_windows, 0);
        // Removing a patient with a dirty inbox settles it first so the
        // departing stats are exact.
        fleet.ingest(1, &[0.0; 4000]).unwrap();
        let removed = fleet.remove(1).unwrap();
        assert_eq!(removed.stats.samples_in, 3940 + 4000);
        assert_eq!(removed.discarded_windows, 1);
        assert_eq!(fleet.stats().discarded_windows, 1);
        assert_eq!(fleet.stats().pending_windows, 0);

        // Serial executor set: the extract stage runs inside `ingest`,
        // while the chunk is cache-warm (nothing to shard) — but the
        // windows still replay and decide at the flush, so only the
        // schedule moves, never results.
        let mut ser_cfg = cfg();
        ser_cfg.workers = Some(1);
        let mut fleet = FleetScheduler::new(engine(), ser_cfg).unwrap();
        fleet.admit(1).unwrap();
        assert_eq!(fleet.ingest(1, &[0.0; 3840]).unwrap(), 1);
        // Samples settle immediately…
        assert_eq!(fleet.patient_stats(1).unwrap().samples_in, 3840);
        // …but the window stays staged (not queued) until the flush.
        assert_eq!(fleet.stats().pending_windows, 1);
        assert_eq!(fleet.stats().pending_rows, 0);
        let flush = fleet.flush();
        assert_eq!(flush.decisions.len(), 1);
        assert_eq!(flush.decisions[0].decision.decision, None);
        assert_eq!(fleet.stats().pending_windows, 0);
        // Removal discards staged-but-unflushed windows too.
        assert_eq!(fleet.ingest(1, &[0.0; 3840]).unwrap(), 1);
        let removed = fleet.remove(1).unwrap();
        assert_eq!(removed.stats.samples_in, 2 * 3840);
        assert_eq!(removed.discarded_windows, 1);
    }

    #[test]
    fn ingest_modes_cannot_mix_per_patient() {
        let mut fleet = FleetScheduler::new(engine(), cfg()).unwrap();
        fleet.admit(1).unwrap();
        fleet.admit(2).unwrap();
        // Patient 1 is sample-fed: rows are rejected.
        fleet.ingest(1, &[0.0; 64]).unwrap();
        assert!(matches!(
            fleet.ingest_row(1, Some(&row(1.0))),
            Err(CoreError::InvalidConfig(_))
        ));
        // Patient 2 is row-fed: raw samples are rejected (with an
        // error, not the session's panic).
        fleet.ingest_row(2, Some(&row(2.0))).unwrap();
        assert!(matches!(
            fleet.ingest(2, &[0.0; 64]),
            Err(CoreError::InvalidConfig(_))
        ));
        // Each patient keeps working in its own mode.
        fleet.ingest(1, &[0.0; 64]).unwrap();
        fleet.ingest_row(2, Some(&row(3.0))).unwrap();
        let flush = fleet.flush();
        assert_eq!(flush.rows_classified, 2);
        // The sample-fed guard persists across the flush (the inbox
        // settled, but the session keeps its sample history).
        assert!(fleet.ingest_row(1, Some(&row(4.0))).is_err());
        // …until a restart wipes the mode.
        fleet.restart(1).unwrap();
        fleet.ingest_row(1, Some(&row(5.0))).unwrap();
    }

    #[test]
    fn flush_batches_across_patients_in_id_order() {
        let mut fleet = FleetScheduler::new(engine(), cfg()).unwrap();
        for p in [9, 2, 5] {
            fleet.admit(p).unwrap();
        }
        // Arbitrary interleaving: rows arrive out of patient order.
        fleet.ingest_row(9, Some(&row(90.0))).unwrap();
        fleet.ingest_row(2, Some(&row(20.0))).unwrap();
        fleet.ingest_row(5, None).unwrap(); // device-side drop
        fleet.ingest_row(2, Some(&row(21.0))).unwrap();
        fleet.ingest_row(5, Some(&row(50.0))).unwrap();
        assert_eq!(fleet.stats().pending_windows, 5);
        assert_eq!(fleet.stats().pending_rows, 4);

        let flush = fleet.flush();
        assert_eq!(flush.rows_classified, 4);
        let got: Vec<(PatientId, u64, Option<f64>)> = flush
            .decisions
            .iter()
            .map(|d| (d.patient, d.decision.window_index, d.decision.decision))
            .collect();
        // Ascending patient id, window order within a patient, dropped
        // windows decided as None in place.
        assert_eq!(
            got,
            vec![
                (2, 0, Some(20.0)),
                (2, 1, Some(21.0)),
                (5, 0, None),
                (5, 1, Some(50.0)),
                (9, 0, Some(90.0)),
            ]
        );
        // Window geometry: stride-spaced start samples.
        assert_eq!(flush.decisions[1].decision.start_sample, 3840);
        // Stats settled.
        let stats = fleet.stats();
        assert_eq!(stats.pending_windows, 0);
        assert_eq!(stats.pending_rows, 0);
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.rows_classified, 4);
        assert_eq!(stats.windows_decided, 5);
        assert!(stats.wall_windows_per_sec() > 0.0);
        // Per-session accounting flowed through the decide stage.
        let p5 = fleet.patient_stats(5).unwrap();
        assert_eq!((p5.windows, p5.dropped), (2, 1));
        let merged = fleet.stream_stats();
        assert_eq!((merged.windows, merged.dropped), (5, 1));
        // An empty flush is a no-op that still counts.
        let empty = fleet.flush();
        assert!(empty.decisions.is_empty() && empty.rows_classified == 0);
        assert_eq!(fleet.stats().flushes, 2);
    }

    #[test]
    fn flush_into_reuses_the_output_buffers() {
        let mut fleet = FleetScheduler::new(engine(), cfg()).unwrap();
        fleet.admit(1).unwrap();
        let mut out = FleetFlush::default();
        for round in 0..3 {
            fleet.ingest_row(1, Some(&row(f64::from(round)))).unwrap();
            fleet.flush_into(&mut out);
            assert_eq!(out.decisions.len(), 1, "cleared between flushes");
            assert_eq!(out.rows_classified, 1);
            assert_eq!(out.decisions[0].decision.decision, Some(f64::from(round)));
        }
    }

    #[test]
    fn reject_policy_sheds_the_newest_window() {
        let mut fleet = FleetScheduler::new(
            engine(),
            FleetConfig {
                max_pending_rows: 2,
                overload: OverloadPolicy::Reject,
                ..cfg()
            },
        )
        .unwrap();
        fleet.admit(1).unwrap();
        fleet.admit(2).unwrap();
        fleet.ingest_row(1, Some(&row(10.0))).unwrap();
        fleet.ingest_row(2, Some(&row(20.0))).unwrap();
        fleet.ingest_row(2, Some(&row(21.0))).unwrap(); // over capacity
        assert_eq!(fleet.stats().shed_windows, 1);
        assert_eq!(fleet.stats().pending_rows, 2);
        assert_eq!(fleet.stats().pending_windows, 3);
        let flush = fleet.flush();
        assert_eq!(flush.rows_classified, 2);
        let got: Vec<(PatientId, Option<f64>)> = flush
            .decisions
            .iter()
            .map(|d| (d.patient, d.decision.decision))
            .collect();
        // The newcomer (patient 2's second window) was shed; the
        // established rows survived, and the shed window is still
        // decided — as dropped, in order.
        assert_eq!(got, vec![(1, Some(10.0)), (2, Some(20.0)), (2, None)],);
    }

    #[test]
    fn drop_oldest_policy_sheds_the_oldest_row_fleet_wide() {
        let mut fleet = FleetScheduler::new(
            engine(),
            FleetConfig {
                max_pending_rows: 2,
                overload: OverloadPolicy::DropOldest,
                ..cfg()
            },
        )
        .unwrap();
        fleet.admit(1).unwrap();
        fleet.admit(2).unwrap();
        fleet.ingest_row(1, Some(&row(10.0))).unwrap(); // oldest
        fleet.ingest_row(2, Some(&row(20.0))).unwrap();
        fleet.ingest_row(2, Some(&row(21.0))).unwrap(); // evicts patient 1's row
        assert_eq!(fleet.stats().shed_windows, 1);
        assert_eq!(fleet.stats().pending_rows, 2);
        let flush = fleet.flush();
        assert_eq!(flush.rows_classified, 2);
        let got: Vec<(PatientId, Option<f64>)> = flush
            .decisions
            .iter()
            .map(|d| (d.patient, d.decision.decision))
            .collect();
        // Freshest data wins: the newcomer kept its row, the oldest
        // pending window (patient 1's) was decided as dropped.
        assert_eq!(got, vec![(1, None), (2, Some(20.0)), (2, Some(21.0))],);
    }

    #[test]
    fn sustained_drop_oldest_burst_sheds_front_to_back() {
        // Capacity 1 under a burst: every new row evicts the previous
        // oldest, marching the shed cursor through a growing rowless
        // prefix; only the newest row survives to the flush. A second
        // burst after the flush must start shedding from the front
        // again (cursor reset).
        let mut fleet = FleetScheduler::new(
            engine(),
            FleetConfig {
                max_pending_rows: 1,
                overload: OverloadPolicy::DropOldest,
                ..cfg()
            },
        )
        .unwrap();
        fleet.admit(1).unwrap();
        for v in 0..5 {
            fleet.ingest_row(1, Some(&row(f64::from(v)))).unwrap();
        }
        assert_eq!(fleet.stats().shed_windows, 4);
        assert_eq!(fleet.stats().pending_rows, 1);
        let got: Vec<Option<f64>> = fleet
            .flush()
            .decisions
            .iter()
            .map(|d| d.decision.decision)
            .collect();
        assert_eq!(got, vec![None, None, None, None, Some(4.0)]);
        for v in 5..8 {
            fleet.ingest_row(1, Some(&row(f64::from(v)))).unwrap();
        }
        let got: Vec<Option<f64>> = fleet
            .flush()
            .decisions
            .iter()
            .map(|d| d.decision.decision)
            .collect();
        assert_eq!(got, vec![None, None, Some(7.0)]);
        assert_eq!(fleet.stats().shed_windows, 6);
    }

    #[test]
    fn watermark_gate_sheds_to_low_with_per_patient_fairness() {
        // 3 patients, high = 6, low = 3. Patient 1 floods (6 rows),
        // patients 2 and 3 each queue one row. Crossing high must shed
        // down to low by taking from the flooder — the fair share is
        // ⌈7/3⌉ = 3, so only patient 1 (6 > 3) is above it — and never
        // from the patients at one row each.
        let wm = OverloadPolicy::Watermark(Watermarks { low: 3, high: 6 });
        let mut fleet = FleetScheduler::new(
            engine(),
            FleetConfig {
                max_pending_rows: 64,
                overload: wm,
                ..cfg()
            },
        )
        .unwrap();
        for p in 1..=3 {
            fleet.admit(p).unwrap();
        }
        for v in 0..5 {
            fleet.ingest_row(1, Some(&row(f64::from(v)))).unwrap();
        }
        fleet.ingest_row(2, Some(&row(20.0))).unwrap();
        assert_eq!(fleet.stats().shed_windows, 0, "at high, not over it");
        fleet.ingest_row(1, Some(&row(5.0))).unwrap(); // 7 rows: gate trips
        let stats = fleet.stats();
        assert_eq!(stats.pending_rows, 3, "shed down to low");
        assert_eq!(stats.shed_windows, 4);
        fleet.ingest_row(3, Some(&row(30.0))).unwrap(); // back under high: admitted freely
        assert_eq!(fleet.stats().shed_windows, 4);
        let got: Vec<(PatientId, Option<f64>)> = fleet
            .flush()
            .decisions
            .iter()
            .map(|d| (d.patient, d.decision.decision))
            .collect();
        // All four shed windows are patient 1's oldest; patients 2 and 3
        // kept their single rows (they were never above fair share).
        assert_eq!(
            got,
            vec![
                (1, None),
                (1, None),
                (1, None),
                (1, None),
                (1, Some(4.0)),
                (1, Some(5.0)),
                (2, Some(20.0)),
                (3, Some(30.0)),
            ],
        );
    }

    #[test]
    fn watermark_fairness_rotates_when_everyone_is_at_fair_share() {
        // An exactly even spread over the low..=high band: the shed
        // pass falls back to strict round-robin, so the pain spreads
        // one row per patient instead of emptying whoever sorts first.
        let wm = OverloadPolicy::Watermark(Watermarks { low: 6, high: 8 });
        let mut fleet = FleetScheduler::new(
            engine(),
            FleetConfig {
                max_pending_rows: 64,
                overload: wm,
                ..cfg()
            },
        )
        .unwrap();
        for p in 1..=3 {
            fleet.admit(p).unwrap();
        }
        // 3 rows each, round-robin: 9 rows > high = 8 trips the gate at
        // the last admit; fair share is ⌈9/3⌉ = 3 with nobody above it,
        // so the fallback rotation sheds 9 − 6 = 3 rows, one per
        // patient.
        for v in 0..3 {
            for p in 1..=3 {
                fleet
                    .ingest_row(p, Some(&row(f64::from(v) + 10.0 * p as f64)))
                    .unwrap();
            }
        }
        let stats = fleet.stats();
        assert_eq!(stats.pending_rows, 6);
        assert_eq!(stats.shed_windows, 3);
        let rows_kept: Vec<PatientId> = fleet
            .flush()
            .decisions
            .iter()
            .filter(|d| d.decision.decision.is_some())
            .map(|d| d.patient)
            .collect();
        // Every patient lost exactly one row — nobody was emptied.
        for p in 1..=3 {
            assert_eq!(
                rows_kept.iter().filter(|&&q| q == p).count(),
                2,
                "patient {p} keeps 2 of 3 rows"
            );
        }
    }

    #[test]
    fn tick_is_one_flush_with_deadline_accounting() {
        // Virtual clock: 1000 ns cadence, 10 ns per row — everything
        // below is exact arithmetic, reproducible run to run.
        let mut fleet = FleetScheduler::new(
            engine(),
            FleetConfig {
                tick: Some(TickConfig::deterministic(1_000, 10)),
                ..cfg()
            },
        )
        .unwrap();
        fleet.admit(1).unwrap();
        fleet.admit(2).unwrap();
        // Two rows arrive at t = 0; the first tick runs at its schedule
        // (t = 1000), classifies both (20 ns of modeled work) and meets
        // its deadline.
        fleet.ingest_row(1, Some(&row(1.0))).unwrap();
        fleet.ingest_row(2, Some(&row(2.0))).unwrap();
        let (flush, o) = fleet.tick().unwrap();
        assert_eq!(flush.decisions.len(), 2);
        assert_eq!(flush.rows_classified, 2);
        assert_eq!((o.start_ns, o.end_ns, o.work_ns), (1_000, 1_020, 20));
        assert!(o.met);
        let stats = fleet.stats();
        assert_eq!(
            (stats.ticks, stats.deadlines_met, stats.deadlines_missed),
            (1, 1, 0)
        );
        assert_eq!(stats.worst_overrun_ns, 0);
        // Decision latency = arrival (t = 0) → tick end (t = 1020),
        // for both windows, exactly.
        assert_eq!(stats.decision_latency.count(), 2);
        assert_eq!(stats.decision_latency.min_ns(), 1_020);
        assert_eq!(stats.decision_latency.max_ns(), 1_020);
        assert_eq!(stats.tick_work.max_ns(), 20);
        // An overloaded tick (200 rows × 10 ns = 2000 ns > cadence)
        // misses its deadline and records the overrun.
        for i in 0..200 {
            fleet.ingest_row(1, Some(&row(f64::from(i)))).unwrap();
        }
        let (_, o) = fleet.tick().unwrap();
        assert!(!o.met);
        assert!(o.slack_ns < 0);
        let stats = fleet.stats();
        assert_eq!((stats.ticks, stats.deadlines_missed), (2, 1));
        assert_eq!(stats.worst_overrun_ns, o.slack_ns.unsigned_abs());
        // An idle tick decides nothing and is a zero-work deadline met.
        let (flush, o) = fleet.tick().unwrap();
        assert!(flush.decisions.is_empty());
        assert_eq!(o.work_ns, 0);
        assert!(o.met);
    }

    #[test]
    fn run_ticks_paces_and_reuses_the_scratch_buffer() {
        let mut fleet = FleetScheduler::new(
            engine(),
            FleetConfig {
                tick: Some(TickConfig::deterministic(1_000, 10)),
                ..cfg()
            },
        )
        .unwrap();
        fleet.admit(1).unwrap();
        fleet.ingest_row(1, Some(&row(1.0))).unwrap();
        let mut scratch = FleetFlush::default();
        let mut seen = Vec::new();
        fleet
            .run_ticks(3, &mut scratch, |flush, o| {
                seen.push((o.index, flush.decisions.len()));
            })
            .unwrap();
        // Tick 0 decides the row; the rest are idle but still tick on
        // schedule.
        assert_eq!(seen, vec![(0, 1), (1, 0), (2, 0)]);
        assert_eq!(fleet.stats().ticks, 3);
        // Caller-driven flush interleaves fine with ticking.
        fleet.ingest_row(1, Some(&row(2.0))).unwrap();
        assert_eq!(fleet.flush().decisions.len(), 1);
    }

    #[test]
    fn tick_decisions_match_caller_driven_flush_when_unsaturated() {
        // Same interleaved workload, one fleet ticked and one flushed:
        // unsaturated (no shedding), the decision payloads must be
        // bit-identical — a tick is exactly one flush.
        let workload = |fleet: &mut FleetScheduler| {
            for p in 1..=3 {
                fleet.admit(p).unwrap();
            }
            for i in 0..40 {
                let p = (i % 3 + 1) as PatientId;
                if i % 11 == 5 {
                    fleet.ingest_row(p, None).unwrap();
                } else {
                    fleet.ingest_row(p, Some(&row(i as f64 - 15.0))).unwrap();
                }
            }
        };
        let payload = |flush: &FleetFlush| -> Vec<(PatientId, u64, Option<f64>)> {
            flush
                .decisions
                .iter()
                .map(|d| (d.patient, d.decision.window_index, d.decision.decision))
                .collect()
        };
        let mut ticked = FleetScheduler::new(
            engine(),
            FleetConfig {
                tick: Some(TickConfig::deterministic(1_000_000, 10)),
                ..cfg()
            },
        )
        .unwrap();
        let mut flushed = FleetScheduler::new(engine(), cfg()).unwrap();
        workload(&mut ticked);
        workload(&mut flushed);
        let (tick_flush, outcome) = ticked.tick().unwrap();
        assert!(outcome.met, "40 rows × 10 ns is far inside the cadence");
        assert_eq!(payload(&tick_flush), payload(&flushed.flush()));
    }

    #[test]
    fn alarms_route_through_per_patient_state_machines() {
        let alarm_cfg = AlarmConfig {
            k: 2,
            n: 2,
            refractory_windows: 0,
            dropped: DroppedPolicy::VoteNonSeizure,
        };
        let mut fleet = FleetScheduler::new(
            engine(),
            FleetConfig {
                alarms: Some(alarm_cfg),
                ..cfg()
            },
        )
        .unwrap();
        fleet.admit(1).unwrap();
        fleet.admit(2).unwrap();
        // Patient 1: two seizure votes (positive sums) → alarm at its
        // second window. Patient 2: seizure then non-seizure → silent.
        for (p, v) in [(1, 1.0), (2, 1.0), (1, 2.0), (2, -1.0)] {
            fleet.ingest_row(p, Some(&row(v))).unwrap();
        }
        let flush = fleet.flush();
        assert_eq!(flush.alarms.len(), 1);
        let (patient, alarm) = flush.alarms[0];
        assert_eq!(patient, 1);
        assert_eq!(alarm.window_index, 1);
        assert_eq!(alarm.votes, 2);
        assert_eq!(fleet.patient_stats(1).unwrap().alarms, 1);
        assert_eq!(fleet.patient_stats(2).unwrap().alarms, 0);
    }

    #[test]
    fn remove_and_restart_settle_pending_state() {
        let mut fleet = FleetScheduler::new(
            engine(),
            FleetConfig {
                max_pending_rows: 2,
                overload: OverloadPolicy::DropOldest,
                ..cfg()
            },
        )
        .unwrap();
        fleet.admit(1).unwrap();
        fleet.admit(2).unwrap();
        fleet.ingest_row(1, Some(&row(1.0))).unwrap();
        fleet.ingest_row(2, Some(&row(2.0))).unwrap();
        // Removing patient 1 discards its pending window undecided and
        // forgets its arrival entry.
        let removed = fleet.remove(1).unwrap();
        assert_eq!(removed.discarded_windows, 1);
        assert_eq!(removed.stats.windows, 0, "never decided");
        assert_eq!(fleet.stats().pending_rows, 1);
        assert_eq!(fleet.stats().pending_windows, 1);
        assert_eq!(fleet.stats().discarded_windows, 1);
        // The freed arrival slot belongs to patient 2 now: filling to
        // capacity and overflowing must evict patient 2's oldest row,
        // not chase the departed patient 1.
        fleet.ingest_row(2, Some(&row(3.0))).unwrap();
        fleet.ingest_row(2, Some(&row(4.0))).unwrap();
        assert_eq!(fleet.stats().shed_windows, 1);
        let flush = fleet.flush();
        let got: Vec<Option<f64>> = flush
            .decisions
            .iter()
            .map(|d| d.decision.decision)
            .collect();
        assert_eq!(got, vec![None, Some(3.0), Some(4.0)]);
        // Restart: stats and window numbering begin again.
        fleet.ingest_row(2, Some(&row(5.0))).unwrap();
        let restarted = fleet.restart(2).unwrap();
        assert_eq!(restarted.discarded_windows, 1);
        assert_eq!(restarted.stats.windows, 3);
        assert_eq!(fleet.stats().restarted, 1);
        fleet.ingest_row(2, Some(&row(6.0))).unwrap();
        let flush = fleet.flush();
        assert_eq!(flush.decisions.len(), 1);
        assert_eq!(flush.decisions[0].decision.window_index, 0);
        assert_eq!(flush.decisions[0].decision.decision, Some(6.0));
        // Re-admitting a removed id works.
        fleet.admit(1).unwrap();
        assert_eq!(fleet.len(), 2);
    }
}
