//! Fleet-scale session multiplexing: thousands of patient streams, one
//! batched inference path.
//!
//! [`crate::stream::run_streams_parallel`] fans patient sessions out
//! across threads but still classifies **one window at a time** per
//! session — the tiled [`ClassifierEngine::decision_batch`] kernels
//! never run on the serving path. [`FleetScheduler`] closes that gap: it
//! owns N per-patient [`StreamingSession`]s, accepts
//! [`FleetScheduler::ingest`] calls in arbitrary patient interleavings,
//! and on each [`FleetScheduler::flush`] gathers every ready feature row
//! across **all** sessions into one [`DenseMatrix`] driven through a
//! single `decision_batch` call:
//!
//! ```text
//! ingest(p1, chunk) ─► session p1 ─ extract ─► pending rows ─┐
//! ingest(p7, chunk) ─► session p7 ─ extract ─► pending rows ─┤   flush
//! ingest(p3, chunk) ─► session p3 ─ extract ─► pending rows ─┼──────────►
//!        …                                                   │ one DenseMatrix
//!                                                            │ one decision_batch
//!  decisions / alarms / stats routed back per session ◄──────┘
//! ```
//!
//! Decisions come back **bit-identical** to solo streaming because the
//! batch kernels are pinned bit-identical to per-row `decision` calls,
//! and each session's windows are decided in extraction order — so the
//! alarm state machines, drop accounting and window geometry cannot
//! diverge (the `fleet_equivalence` suite pins this on a real cohort for
//! both engines, under random interleavings and both
//! [`crate::alarm::DroppedPolicy`] variants).
//!
//! ## Backpressure
//!
//! A fleet taking live traffic can be offered more windows than it can
//! classify. [`FleetConfig::max_pending_rows`] bounds the feature rows
//! buffered between flushes; when the bound is hit,
//! [`OverloadPolicy`] decides who pays: `Reject` sheds the **newest**
//! window, `DropOldest` sheds the **oldest pending** row fleet-wide.
//! Either way the shed window stays in its session's queue as a
//! *dropped* window (decision `None`) — it is still decided in order at
//! the next flush, so per-session window accounting and the alarm
//! dropped-window semantics stay exact — and the shed count surfaces in
//! [`FleetStats`].
//!
//! ## Ingest modes
//!
//! * [`FleetScheduler::ingest`] — raw ECG chunks; the session extracts
//!   windows server-side (the monitor-parity mode the equivalence tests
//!   drive).
//! * [`FleetScheduler::ingest_row`] — pre-extracted 53-feature rows; the
//!   on-device-extraction topology where wearables run DSP locally and
//!   the fleet spends its cycles purely on classification, which is
//!   where cross-patient batching pays (see `BENCH_fleet.json`).

use crate::alarm::{AlarmConfig, AlarmEvent};
use crate::error::CoreError;
use crate::stream::{
    pooled_windows_per_sec, PendingWindow, SharedEngine, StreamConfig, StreamStats,
    StreamingSession, WindowDecision,
};
use ecg_features::{DenseMatrix, N_FEATURES};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Identifies one patient stream within a fleet.
pub type PatientId = u64;

/// Rows per [`ClassifierEngine::decision_batch`] panel inside
/// [`FleetScheduler::flush`]. Panelling keeps a huge fleet's flush
/// working set cache-sized (256 rows × 53 features ≈ 106 KiB) instead
/// of streaming one multi-megabyte batch through the kernels; it cannot
/// change results because batch decisions are bit-identical to per-row
/// decisions.
pub const FLUSH_PANEL_ROWS: usize = 256;

/// Who pays when the fleet's pending-row buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// The **newest** window is shed: its feature row is discarded and
    /// the window is decided as dropped at the next flush. Established
    /// work is never thrown away — latecomers queue-fail first.
    #[default]
    Reject,
    /// The **oldest** pending row fleet-wide is shed to make room for
    /// the new window — freshest-data-wins, for deployments where a
    /// stale window is worth less than a current one.
    DropOldest,
}

/// Configuration of a fleet: shared window geometry, optional per-patient
/// alarm stage, and the overload policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Windowing every patient session runs under.
    pub stream: StreamConfig,
    /// Per-patient alarm stage (`None` = decisions only).
    pub alarms: Option<AlarmConfig>,
    /// Feature rows the fleet may buffer between flushes (`>= 1`).
    /// Bounds flush batch size and row memory; windows beyond it are
    /// shed per [`OverloadPolicy`].
    pub max_pending_rows: usize,
    /// What to shed when `max_pending_rows` is reached.
    pub overload: OverloadPolicy,
}

impl FleetConfig {
    /// A fleet without practical backpressure (buffer bound
    /// `usize::MAX`), no alarm stage — the configuration the equivalence
    /// suite compares against solo sessions.
    pub fn unbounded(stream: StreamConfig) -> Self {
        FleetConfig {
            stream,
            alarms: None,
            max_pending_rows: usize::MAX,
            overload: OverloadPolicy::Reject,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for `max_pending_rows == 0`
    /// or an invalid alarm configuration (the stream configuration is
    /// validated when the first session is built, and once up front by
    /// [`FleetScheduler::new`]).
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.max_pending_rows == 0 {
            return Err(CoreError::InvalidConfig(
                "fleet needs max_pending_rows >= 1 (0 would shed every window)".into(),
            ));
        }
        if let Some(a) = self.alarms {
            a.validate()?;
        }
        Ok(())
    }
}

/// Fleet-level accounting — the scheduler's own counters, on top of the
/// per-session [`StreamStats`] (merge those via
/// [`FleetScheduler::stream_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Sessions currently admitted.
    pub patients: usize,
    /// Admissions over the fleet's lifetime.
    pub admitted: u64,
    /// Removals over the fleet's lifetime.
    pub removed: u64,
    /// Session restarts over the fleet's lifetime.
    pub restarted: u64,
    /// Ingest calls accepted (chunks + rows).
    pub ingests: u64,
    /// Windows currently awaiting a decision (shed and
    /// extraction-dropped windows included).
    pub pending_windows: usize,
    /// Feature rows currently buffered for the next flush.
    pub pending_rows: usize,
    /// Flushes performed.
    pub flushes: u64,
    /// Rows driven through the batch kernel across all flushes.
    pub rows_classified: u64,
    /// Windows decided (classified + dropped) across all flushes.
    pub windows_decided: u64,
    /// Windows shed by the overload policy (decided as dropped).
    pub shed_windows: u64,
    /// Pending windows discarded undecided by [`FleetScheduler::remove`].
    pub discarded_windows: u64,
    /// Wall-clock nanoseconds spent inside `ingest`/`flush` — the
    /// denominator of the fleet's honest serving throughput.
    pub busy_ns: u128,
}

impl FleetStats {
    /// Wall-clock serving throughput: windows decided per second of
    /// fleet busy time. This is the pooled figure the summed per-window
    /// latencies of a merged [`StreamStats`] cannot provide (they treat
    /// concurrent work as serial — see [`StreamStats::windows_per_sec`]).
    pub fn wall_windows_per_sec(&self) -> f64 {
        pooled_windows_per_sec(self.windows_decided, self.busy_ns)
    }
}

/// What [`FleetScheduler::remove`] hands back: the session's final
/// accounting plus anything still buffered.
#[derive(Debug, Clone, PartialEq)]
pub struct RemovedPatient {
    /// The removed session's lifetime stats.
    pub stats: StreamStats,
    /// Alarms the session had raised but nobody had collected.
    pub alarms: Vec<AlarmEvent>,
    /// Pending windows discarded undecided (flush before removing to
    /// decide them instead).
    pub discarded_windows: usize,
}

/// One decided window of a flush, tagged with its patient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetDecision {
    /// The patient whose window this is.
    pub patient: PatientId,
    /// The decided window.
    pub decision: WindowDecision,
}

/// Everything one [`FleetScheduler::flush`] decided: windows grouped by
/// ascending patient id (window order within a patient), the alarms
/// those windows raised, and the batch size that produced them.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetFlush {
    /// Decided windows, grouped by ascending patient id.
    pub decisions: Vec<FleetDecision>,
    /// Alarms raised by this flush, in the same patient-grouped order.
    pub alarms: Vec<(PatientId, AlarmEvent)>,
    /// Feature rows classified through the single batch-kernel call.
    pub rows_classified: usize,
}

/// One admitted patient: the session plus its queue of extracted,
/// not-yet-decided windows.
struct Slot {
    session: StreamingSession,
    queue: VecDeque<PendingWindow>,
    /// Queue index before which every window is known rowless — rows
    /// are only shed front-to-back between flushes, so `DropOldest`
    /// resumes its victim scan here instead of re-walking the already-
    /// shed prefix (keeps sustained overload O(1) per shed). Reset
    /// whenever the queue empties (flush / restart).
    shed_cursor: usize,
}

/// Multiplexes N per-patient [`StreamingSession`]s over one shared
/// engine, micro-batching ready feature rows across patients into single
/// [`ClassifierEngine::decision_batch`] calls.
///
/// ```no_run
/// use seizure_core::fleet::{FleetConfig, FleetScheduler};
/// use seizure_core::stream::StreamConfig;
/// # fn engine() -> seizure_core::stream::SharedEngine { unimplemented!() }
///
/// let cfg = FleetConfig::unbounded(StreamConfig::non_overlapping(128.0, 30.0)?);
/// let mut fleet = FleetScheduler::new(engine(), cfg)?;
/// fleet.admit(7)?;
/// fleet.admit(12)?;
/// fleet.ingest(7, &vec![0.0; 4096])?;   // any interleaving
/// fleet.ingest(12, &vec![0.0; 8192])?;
/// for d in fleet.flush().decisions {     // one batched kernel call
///     println!("patient {} window {}", d.patient, d.decision.window_index);
/// }
/// # Ok::<(), seizure_core::error::CoreError>(())
/// ```
pub struct FleetScheduler {
    engine: SharedEngine,
    cfg: FleetConfig,
    /// Admitted sessions, iterated in ascending patient order so every
    /// flush is deterministic.
    slots: BTreeMap<PatientId, Slot>,
    /// Fleet-wide arrival order of pending rows (one entry per buffered
    /// row; front = oldest) — what `DropOldest` sheds from.
    arrival: VecDeque<PatientId>,
    stats: FleetStats,
    /// Reused batch buffer of the flush gather stage (one panel).
    batch: DenseMatrix<f64>,
    /// Reused decision-value buffer of the flush stage.
    values: Vec<f64>,
    /// Reused extract-stage output buffer of `ingest`.
    extract_scratch: Vec<PendingWindow>,
}

impl std::fmt::Debug for FleetScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetScheduler")
            .field("cfg", &self.cfg)
            .field("engine", &self.engine.info())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl FleetScheduler {
    /// Builds an empty fleet over a shared engine.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid
    /// [`FleetConfig`] (stream geometry, alarm operating point or a zero
    /// row buffer).
    pub fn new(engine: SharedEngine, cfg: FleetConfig) -> Result<Self, CoreError> {
        cfg.validate()?;
        // Validate the stream configuration once, up front, with a probe
        // session — admits can then only fail on duplicate ids.
        StreamingSession::new(Arc::clone(&engine), cfg.stream)?;
        Ok(FleetScheduler {
            engine,
            cfg,
            slots: BTreeMap::new(),
            arrival: VecDeque::new(),
            stats: FleetStats::default(),
            batch: DenseMatrix::with_cols(N_FEATURES),
            values: Vec::new(),
            extract_scratch: Vec::new(),
        })
    }

    /// The fleet's configuration.
    pub fn config(&self) -> FleetConfig {
        self.cfg
    }

    /// Fleet-level counters.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// Cost metadata of the shared engine behind every session.
    pub fn engine_info(&self) -> svm::EngineInfo {
        self.engine.info()
    }

    /// Admitted patient count.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no patient is admitted.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether `patient` is admitted.
    pub fn contains(&self, patient: PatientId) -> bool {
        self.slots.contains_key(&patient)
    }

    /// Admitted patient ids in ascending order.
    pub fn patients(&self) -> impl Iterator<Item = PatientId> + '_ {
        self.slots.keys().copied()
    }

    /// Admits a new patient with a fresh session (alarm stage per the
    /// fleet configuration).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `patient` is already
    /// admitted.
    pub fn admit(&mut self, patient: PatientId) -> Result<(), CoreError> {
        if self.slots.contains_key(&patient) {
            return Err(CoreError::InvalidConfig(format!(
                "patient {patient} is already admitted"
            )));
        }
        let session = self.fresh_session()?;
        self.slots.insert(
            patient,
            Slot {
                session,
                queue: VecDeque::new(),
                shed_cursor: 0,
            },
        );
        self.stats.admitted += 1;
        self.stats.patients = self.slots.len();
        Ok(())
    }

    /// Removes a patient, handing back the session's final stats, any
    /// uncollected alarms and the count of pending windows discarded
    /// undecided (flush first to decide them).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown patient.
    pub fn remove(&mut self, patient: PatientId) -> Result<RemovedPatient, CoreError> {
        let Some(mut slot) = self.slots.remove(&patient) else {
            return Err(CoreError::InvalidConfig(format!(
                "patient {patient} is not admitted"
            )));
        };
        let discarded_rows = slot.queue.iter().filter(|w| w.row.is_some()).count();
        self.forget_arrivals(patient, discarded_rows);
        self.stats.pending_windows -= slot.queue.len();
        self.stats.pending_rows -= discarded_rows;
        self.stats.discarded_windows += slot.queue.len() as u64;
        self.stats.removed += 1;
        self.stats.patients = self.slots.len();
        Ok(RemovedPatient {
            stats: slot.session.stats(),
            alarms: slot.session.take_alarms(),
            discarded_windows: slot.queue.len(),
        })
    }

    /// Restarts a patient's session in place — fresh ring, scheduler,
    /// stats and alarm state, pending windows discarded — the device
    /// reconnect / session rollover lifecycle. Returns what
    /// [`FleetScheduler::remove`] would have.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown patient.
    pub fn restart(&mut self, patient: PatientId) -> Result<RemovedPatient, CoreError> {
        let fresh = self.fresh_session()?;
        let Some(slot) = self.slots.get_mut(&patient) else {
            return Err(CoreError::InvalidConfig(format!(
                "patient {patient} is not admitted"
            )));
        };
        let discarded_rows = slot.queue.iter().filter(|w| w.row.is_some()).count();
        let discarded = slot.queue.len();
        slot.queue.clear();
        slot.shed_cursor = 0;
        let mut old = std::mem::replace(&mut slot.session, fresh);
        self.forget_arrivals(patient, discarded_rows);
        self.stats.pending_windows -= discarded;
        self.stats.pending_rows -= discarded_rows;
        self.stats.discarded_windows += discarded as u64;
        self.stats.restarted += 1;
        Ok(RemovedPatient {
            stats: old.stats(),
            alarms: old.take_alarms(),
            discarded_windows: discarded,
        })
    }

    /// Ingests one raw-sample chunk for `patient`: the session's extract
    /// stage runs immediately (ring, scheduler, feature extraction) and
    /// every window that completed joins the pending buffer, subject to
    /// the overload policy. Returns how many windows completed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown patient, or a
    /// patient already fed through [`FleetScheduler::ingest_row`] (the
    /// two ingest modes number windows independently and must not mix
    /// on one session).
    pub fn ingest(&mut self, patient: PatientId, chunk: &[f64]) -> Result<usize, CoreError> {
        let t0 = Instant::now();
        let mut fresh = std::mem::take(&mut self.extract_scratch);
        fresh.clear();
        match self.slots.get_mut(&patient) {
            Some(slot) if slot.session.is_row_fed() => {
                self.extract_scratch = fresh;
                return Err(CoreError::InvalidConfig(format!(
                    "patient {patient} is row-fed; cannot mix raw-sample ingestion \
                     (window numbering would fork)"
                )));
            }
            Some(slot) => slot.session.extract_windows_into(chunk, &mut fresh),
            None => {
                self.extract_scratch = fresh;
                return Err(CoreError::InvalidConfig(format!(
                    "patient {patient} is not admitted"
                )));
            }
        }
        let completed = fresh.len();
        for w in fresh.drain(..) {
            self.enqueue(patient, w);
        }
        self.extract_scratch = fresh;
        self.stats.ingests += 1;
        self.stats.busy_ns += t0.elapsed().as_nanos();
        Ok(completed)
    }

    /// Ingests one **pre-extracted** feature row for `patient` (`None` =
    /// the device reported a dropped window) — the on-device-extraction
    /// topology; see [`StreamingSession::push_row`] for the contract.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown patient, a
    /// row that is not exactly [`N_FEATURES`] wide, or a patient already
    /// fed through [`FleetScheduler::ingest`] (the ingest modes must not
    /// mix on one session).
    pub fn ingest_row(&mut self, patient: PatientId, row: Option<&[f64]>) -> Result<(), CoreError> {
        let t0 = Instant::now();
        let Some(slot) = self.slots.get_mut(&patient) else {
            return Err(CoreError::InvalidConfig(format!(
                "patient {patient} is not admitted"
            )));
        };
        let pending = slot.session.pend_row(row)?;
        self.enqueue(patient, pending);
        self.stats.ingests += 1;
        self.stats.busy_ns += t0.elapsed().as_nanos();
        Ok(())
    }

    /// Decides every pending window across the fleet: gathers buffered
    /// feature rows into a [`DenseMatrix`] and drives them through
    /// [`ClassifierEngine::decision_batch`] — in cache-friendly panels
    /// of up to [`FLUSH_PANEL_ROWS`] rows — then routes each decision
    /// back through its session's decide stage (stats, alarm state
    /// machine, pending-alarm buffer) in per-session window order.
    /// Windows without a row (extraction-dropped or shed) are decided as
    /// dropped. Patients appear in ascending id order. Panelling does
    /// not change results: batch decisions are bit-identical to per-row
    /// decisions, so any split of the batch is too.
    pub fn flush(&mut self) -> FleetFlush {
        let t0 = Instant::now();
        // Gather: all pending rows in (patient asc, window order),
        // panel-tiled so a huge fleet's flush stays inside the cache
        // instead of streaming one multi-megabyte batch.
        self.batch.clear();
        self.values.clear();
        let mut kernel_ns = 0u128;
        for slot in self.slots.values() {
            for w in &slot.queue {
                if let Some(row) = &w.row {
                    self.batch.push_row(row);
                    if self.batch.n_rows() == FLUSH_PANEL_ROWS {
                        let kt0 = Instant::now();
                        self.values.extend(self.engine.decision_batch(&self.batch));
                        kernel_ns += kt0.elapsed().as_nanos();
                        self.batch.clear();
                    }
                }
            }
        }
        if self.batch.n_rows() > 0 {
            let kt0 = Instant::now();
            self.values.extend(self.engine.decision_batch(&self.batch));
            kernel_ns += kt0.elapsed().as_nanos();
            self.batch.clear();
        }
        let rows_classified = self.values.len();
        // Attribute the batch kernels' cost evenly across their rows so
        // per-window latency accounting survives batching.
        let classify_share_ns = if rows_classified == 0 {
            0
        } else {
            (kernel_ns / rows_classified as u128) as u64
        };
        // Scatter: decide every window in order, batch values in step
        // with the gather order.
        let mut out = FleetFlush {
            rows_classified,
            ..FleetFlush::default()
        };
        let mut next = 0usize;
        for (&patient, slot) in &mut self.slots {
            if slot.queue.is_empty() {
                continue;
            }
            for w in slot.queue.drain(..) {
                let (decision, share) = match &w.row {
                    Some(_) => {
                        let v = self.values[next];
                        next += 1;
                        (Some(v), classify_share_ns)
                    }
                    None => (None, 0),
                };
                out.decisions.push(FleetDecision {
                    patient,
                    decision: slot.session.decide_window(&w, decision, share),
                });
                // Recycle the row allocation into the owning session's
                // pool, where both ingest modes draw from.
                if let Some(row) = w.row {
                    slot.session.recycle_row(row);
                }
            }
            slot.shed_cursor = 0;
            for alarm in slot.session.take_alarms() {
                out.alarms.push((patient, alarm));
            }
        }
        debug_assert_eq!(next, rows_classified);
        self.arrival.clear();
        self.stats.pending_windows = 0;
        self.stats.pending_rows = 0;
        self.stats.flushes += 1;
        self.stats.rows_classified += rows_classified as u64;
        self.stats.windows_decided += out.decisions.len() as u64;
        self.stats.busy_ns += t0.elapsed().as_nanos();
        out
    }

    /// Merged per-session accounting across the currently admitted
    /// sessions (sessions already removed are not included — collect
    /// their stats from [`RemovedPatient`]). Remember the merged
    /// `windows_per_sec` is serial-equivalent, not wall-clock — see
    /// [`StreamStats::windows_per_sec`] and
    /// [`FleetStats::wall_windows_per_sec`].
    pub fn stream_stats(&self) -> StreamStats {
        let mut merged = StreamStats::default();
        for slot in self.slots.values() {
            merged.merge(&slot.session.stats());
        }
        merged
    }

    /// One admitted patient's session stats.
    pub fn patient_stats(&self, patient: PatientId) -> Option<StreamStats> {
        self.slots.get(&patient).map(|s| s.session.stats())
    }

    fn fresh_session(&self) -> Result<StreamingSession, CoreError> {
        match self.cfg.alarms {
            Some(a) => StreamingSession::with_alarms(Arc::clone(&self.engine), self.cfg.stream, a),
            None => StreamingSession::new(Arc::clone(&self.engine), self.cfg.stream),
        }
    }

    /// Applies the overload policy and queues one extracted window.
    fn enqueue(&mut self, patient: PatientId, mut w: PendingWindow) {
        // Row freed by the overload policy, recycled into the owning
        // session's pool below so sustained overload stays
        // allocation-free.
        let mut recycled: Option<Vec<f64>> = None;
        if w.row.is_some() {
            if self.stats.pending_rows >= self.cfg.max_pending_rows {
                match self.cfg.overload {
                    OverloadPolicy::Reject => {
                        // Shed the newcomer: it queues as a dropped
                        // window so per-session order stays intact.
                        recycled = w.row.take();
                        self.stats.shed_windows += 1;
                    }
                    OverloadPolicy::DropOldest => {
                        self.shed_oldest_row();
                        self.stats.pending_rows += 1;
                        self.arrival.push_back(patient);
                    }
                }
            } else {
                self.stats.pending_rows += 1;
                self.arrival.push_back(patient);
            }
        }
        self.stats.pending_windows += 1;
        let slot = self
            .slots
            .get_mut(&patient)
            .expect("enqueue only called for admitted patients");
        if let Some(row) = recycled {
            slot.session.recycle_row(row);
        }
        slot.queue.push_back(w);
    }

    /// Sheds the oldest pending row fleet-wide (`DropOldest`): the
    /// window stays queued, rowless, and will be decided as dropped;
    /// its row allocation returns to the victim session's pool. The
    /// per-slot cursor skips the already-shed rowless prefix, so a
    /// sustained overload burst sheds in O(1) per window instead of
    /// re-scanning the queue front every time.
    fn shed_oldest_row(&mut self) {
        let Some(victim) = self.arrival.pop_front() else {
            return;
        };
        let slot = self
            .slots
            .get_mut(&victim)
            .expect("arrival entries are cleared when their patient leaves");
        let (offset, w) = slot
            .queue
            .iter_mut()
            .skip(slot.shed_cursor)
            .enumerate()
            .find(|(_, w)| w.row.is_some())
            .expect("arrival counts one entry per buffered row");
        let row = w.row.take().expect("found by row.is_some()");
        slot.shed_cursor += offset + 1;
        slot.session.recycle_row(row);
        self.stats.pending_rows -= 1;
        self.stats.shed_windows += 1;
    }

    /// Drops `rows` arrival entries of a departing/restarting patient.
    fn forget_arrivals(&mut self, patient: PatientId, rows: usize) {
        if rows == 0 {
            return;
        }
        let mut left = rows;
        self.arrival.retain(|&p| {
            if p == patient && left > 0 {
                left -= 1;
                false
            } else {
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alarm::DroppedPolicy;
    use svm::{ClassifierEngine, EngineInfo};

    /// Toy backend: decision = Σ row — deterministic, no training.
    struct SumEngine;

    impl ClassifierEngine for SumEngine {
        fn decision(&self, row: &[f64]) -> f64 {
            row.iter().sum()
        }
        fn n_features(&self) -> usize {
            N_FEATURES
        }
        fn info(&self) -> EngineInfo {
            EngineInfo {
                kind: "sum-test",
                n_support_vectors: 1,
                n_features: N_FEATURES,
                d_bits: None,
                a_bits: None,
            }
        }
    }

    fn engine() -> SharedEngine {
        Arc::new(SumEngine)
    }

    fn cfg() -> FleetConfig {
        FleetConfig::unbounded(StreamConfig::non_overlapping(128.0, 30.0).unwrap())
    }

    /// A row whose SumEngine decision equals `v`.
    fn row(v: f64) -> Vec<f64> {
        let mut r = vec![0.0; N_FEATURES];
        r[0] = v;
        r
    }

    #[test]
    fn config_and_lifecycle_validation() {
        assert!(FleetConfig {
            max_pending_rows: 0,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(FleetConfig {
            alarms: Some(AlarmConfig::k_of_n(5, 2)),
            ..cfg()
        }
        .validate()
        .is_err());
        let bad_stream = FleetConfig::unbounded(StreamConfig {
            fs: 0.0,
            window_len: 10,
            stride: 10,
        });
        assert!(FleetScheduler::new(engine(), bad_stream).is_err());

        let mut fleet = FleetScheduler::new(engine(), cfg()).unwrap();
        assert!(fleet.is_empty());
        fleet.admit(3).unwrap();
        assert!(fleet.admit(3).is_err(), "duplicate admit");
        assert!(fleet.ingest(99, &[0.0; 16]).is_err(), "unknown patient");
        assert!(fleet.ingest_row(99, None).is_err());
        assert!(fleet.remove(99).is_err());
        assert!(fleet.restart(99).is_err());
        assert!(fleet.contains(3) && !fleet.contains(99));
        assert_eq!(fleet.len(), 1);
        assert_eq!(fleet.patients().collect::<Vec<_>>(), vec![3]);
        // Row width is validated.
        assert!(fleet.ingest_row(3, Some(&[1.0; 3])).is_err());
        let stats = fleet.stats();
        assert_eq!((stats.patients, stats.admitted), (1, 1));
    }

    #[test]
    fn ingest_modes_cannot_mix_per_patient() {
        let mut fleet = FleetScheduler::new(engine(), cfg()).unwrap();
        fleet.admit(1).unwrap();
        fleet.admit(2).unwrap();
        // Patient 1 is sample-fed: rows are rejected.
        fleet.ingest(1, &[0.0; 64]).unwrap();
        assert!(matches!(
            fleet.ingest_row(1, Some(&row(1.0))),
            Err(CoreError::InvalidConfig(_))
        ));
        // Patient 2 is row-fed: raw samples are rejected (with an
        // error, not the session's panic).
        fleet.ingest_row(2, Some(&row(2.0))).unwrap();
        assert!(matches!(
            fleet.ingest(2, &[0.0; 64]),
            Err(CoreError::InvalidConfig(_))
        ));
        // Each patient keeps working in its own mode.
        fleet.ingest(1, &[0.0; 64]).unwrap();
        fleet.ingest_row(2, Some(&row(3.0))).unwrap();
        let flush = fleet.flush();
        assert_eq!(flush.rows_classified, 2);
    }

    #[test]
    fn flush_batches_across_patients_in_id_order() {
        let mut fleet = FleetScheduler::new(engine(), cfg()).unwrap();
        for p in [9, 2, 5] {
            fleet.admit(p).unwrap();
        }
        // Arbitrary interleaving: rows arrive out of patient order.
        fleet.ingest_row(9, Some(&row(90.0))).unwrap();
        fleet.ingest_row(2, Some(&row(20.0))).unwrap();
        fleet.ingest_row(5, None).unwrap(); // device-side drop
        fleet.ingest_row(2, Some(&row(21.0))).unwrap();
        fleet.ingest_row(5, Some(&row(50.0))).unwrap();
        assert_eq!(fleet.stats().pending_windows, 5);
        assert_eq!(fleet.stats().pending_rows, 4);

        let flush = fleet.flush();
        assert_eq!(flush.rows_classified, 4);
        let got: Vec<(PatientId, u64, Option<f64>)> = flush
            .decisions
            .iter()
            .map(|d| (d.patient, d.decision.window_index, d.decision.decision))
            .collect();
        // Ascending patient id, window order within a patient, dropped
        // windows decided as None in place.
        assert_eq!(
            got,
            vec![
                (2, 0, Some(20.0)),
                (2, 1, Some(21.0)),
                (5, 0, None),
                (5, 1, Some(50.0)),
                (9, 0, Some(90.0)),
            ]
        );
        // Window geometry: stride-spaced start samples.
        assert_eq!(flush.decisions[1].decision.start_sample, 3840);
        // Stats settled.
        let stats = fleet.stats();
        assert_eq!(stats.pending_windows, 0);
        assert_eq!(stats.pending_rows, 0);
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.rows_classified, 4);
        assert_eq!(stats.windows_decided, 5);
        assert!(stats.wall_windows_per_sec() > 0.0);
        // Per-session accounting flowed through the decide stage.
        let p5 = fleet.patient_stats(5).unwrap();
        assert_eq!((p5.windows, p5.dropped), (2, 1));
        let merged = fleet.stream_stats();
        assert_eq!((merged.windows, merged.dropped), (5, 1));
        // An empty flush is a no-op that still counts.
        let empty = fleet.flush();
        assert!(empty.decisions.is_empty() && empty.rows_classified == 0);
        assert_eq!(fleet.stats().flushes, 2);
    }

    #[test]
    fn reject_policy_sheds_the_newest_window() {
        let mut fleet = FleetScheduler::new(
            engine(),
            FleetConfig {
                max_pending_rows: 2,
                overload: OverloadPolicy::Reject,
                ..cfg()
            },
        )
        .unwrap();
        fleet.admit(1).unwrap();
        fleet.admit(2).unwrap();
        fleet.ingest_row(1, Some(&row(10.0))).unwrap();
        fleet.ingest_row(2, Some(&row(20.0))).unwrap();
        fleet.ingest_row(2, Some(&row(21.0))).unwrap(); // over capacity
        assert_eq!(fleet.stats().shed_windows, 1);
        assert_eq!(fleet.stats().pending_rows, 2);
        assert_eq!(fleet.stats().pending_windows, 3);
        let flush = fleet.flush();
        assert_eq!(flush.rows_classified, 2);
        let got: Vec<(PatientId, Option<f64>)> = flush
            .decisions
            .iter()
            .map(|d| (d.patient, d.decision.decision))
            .collect();
        // The newcomer (patient 2's second window) was shed; the
        // established rows survived, and the shed window is still
        // decided — as dropped, in order.
        assert_eq!(got, vec![(1, Some(10.0)), (2, Some(20.0)), (2, None)],);
    }

    #[test]
    fn drop_oldest_policy_sheds_the_oldest_row_fleet_wide() {
        let mut fleet = FleetScheduler::new(
            engine(),
            FleetConfig {
                max_pending_rows: 2,
                overload: OverloadPolicy::DropOldest,
                ..cfg()
            },
        )
        .unwrap();
        fleet.admit(1).unwrap();
        fleet.admit(2).unwrap();
        fleet.ingest_row(1, Some(&row(10.0))).unwrap(); // oldest
        fleet.ingest_row(2, Some(&row(20.0))).unwrap();
        fleet.ingest_row(2, Some(&row(21.0))).unwrap(); // evicts patient 1's row
        assert_eq!(fleet.stats().shed_windows, 1);
        assert_eq!(fleet.stats().pending_rows, 2);
        let flush = fleet.flush();
        assert_eq!(flush.rows_classified, 2);
        let got: Vec<(PatientId, Option<f64>)> = flush
            .decisions
            .iter()
            .map(|d| (d.patient, d.decision.decision))
            .collect();
        // Freshest data wins: the newcomer kept its row, the oldest
        // pending window (patient 1's) was decided as dropped.
        assert_eq!(got, vec![(1, None), (2, Some(20.0)), (2, Some(21.0))],);
    }

    #[test]
    fn sustained_drop_oldest_burst_sheds_front_to_back() {
        // Capacity 1 under a burst: every new row evicts the previous
        // oldest, marching the shed cursor through a growing rowless
        // prefix; only the newest row survives to the flush. A second
        // burst after the flush must start shedding from the front
        // again (cursor reset).
        let mut fleet = FleetScheduler::new(
            engine(),
            FleetConfig {
                max_pending_rows: 1,
                overload: OverloadPolicy::DropOldest,
                ..cfg()
            },
        )
        .unwrap();
        fleet.admit(1).unwrap();
        for v in 0..5 {
            fleet.ingest_row(1, Some(&row(f64::from(v)))).unwrap();
        }
        assert_eq!(fleet.stats().shed_windows, 4);
        assert_eq!(fleet.stats().pending_rows, 1);
        let got: Vec<Option<f64>> = fleet
            .flush()
            .decisions
            .iter()
            .map(|d| d.decision.decision)
            .collect();
        assert_eq!(got, vec![None, None, None, None, Some(4.0)]);
        for v in 5..8 {
            fleet.ingest_row(1, Some(&row(f64::from(v)))).unwrap();
        }
        let got: Vec<Option<f64>> = fleet
            .flush()
            .decisions
            .iter()
            .map(|d| d.decision.decision)
            .collect();
        assert_eq!(got, vec![None, None, Some(7.0)]);
        assert_eq!(fleet.stats().shed_windows, 6);
    }

    #[test]
    fn alarms_route_through_per_patient_state_machines() {
        let alarm_cfg = AlarmConfig {
            k: 2,
            n: 2,
            refractory_windows: 0,
            dropped: DroppedPolicy::VoteNonSeizure,
        };
        let mut fleet = FleetScheduler::new(
            engine(),
            FleetConfig {
                alarms: Some(alarm_cfg),
                ..cfg()
            },
        )
        .unwrap();
        fleet.admit(1).unwrap();
        fleet.admit(2).unwrap();
        // Patient 1: two seizure votes (positive sums) → alarm at its
        // second window. Patient 2: seizure then non-seizure → silent.
        for (p, v) in [(1, 1.0), (2, 1.0), (1, 2.0), (2, -1.0)] {
            fleet.ingest_row(p, Some(&row(v))).unwrap();
        }
        let flush = fleet.flush();
        assert_eq!(flush.alarms.len(), 1);
        let (patient, alarm) = flush.alarms[0];
        assert_eq!(patient, 1);
        assert_eq!(alarm.window_index, 1);
        assert_eq!(alarm.votes, 2);
        assert_eq!(fleet.patient_stats(1).unwrap().alarms, 1);
        assert_eq!(fleet.patient_stats(2).unwrap().alarms, 0);
    }

    #[test]
    fn remove_and_restart_settle_pending_state() {
        let mut fleet = FleetScheduler::new(
            engine(),
            FleetConfig {
                max_pending_rows: 2,
                overload: OverloadPolicy::DropOldest,
                ..cfg()
            },
        )
        .unwrap();
        fleet.admit(1).unwrap();
        fleet.admit(2).unwrap();
        fleet.ingest_row(1, Some(&row(1.0))).unwrap();
        fleet.ingest_row(2, Some(&row(2.0))).unwrap();
        // Removing patient 1 discards its pending window undecided and
        // forgets its arrival entry.
        let removed = fleet.remove(1).unwrap();
        assert_eq!(removed.discarded_windows, 1);
        assert_eq!(removed.stats.windows, 0, "never decided");
        assert_eq!(fleet.stats().pending_rows, 1);
        assert_eq!(fleet.stats().pending_windows, 1);
        assert_eq!(fleet.stats().discarded_windows, 1);
        // The freed arrival slot belongs to patient 2 now: filling to
        // capacity and overflowing must evict patient 2's oldest row,
        // not chase the departed patient 1.
        fleet.ingest_row(2, Some(&row(3.0))).unwrap();
        fleet.ingest_row(2, Some(&row(4.0))).unwrap();
        assert_eq!(fleet.stats().shed_windows, 1);
        let flush = fleet.flush();
        let got: Vec<Option<f64>> = flush
            .decisions
            .iter()
            .map(|d| d.decision.decision)
            .collect();
        assert_eq!(got, vec![None, Some(3.0), Some(4.0)]);
        // Restart: stats and window numbering begin again.
        fleet.ingest_row(2, Some(&row(5.0))).unwrap();
        let restarted = fleet.restart(2).unwrap();
        assert_eq!(restarted.discarded_windows, 1);
        assert_eq!(restarted.stats.windows, 3);
        assert_eq!(fleet.stats().restarted, 1);
        fleet.ingest_row(2, Some(&row(6.0))).unwrap();
        let flush = fleet.flush();
        assert_eq!(flush.decisions.len(), 1);
        assert_eq!(flush.decisions[0].decision.window_index, 0);
        assert_eq!(flush.decisions[0].decision.decision, Some(6.0));
        // Re-admitting a removed id works.
        fleet.admit(1).unwrap();
        assert_eq!(fleet.len(), 2);
    }
}
