//! Serving clock: tick cadence, deadline accounting and log-bucketed
//! latency histograms — the measurement substrate of the tick-driven
//! runtime ([`crate::fleet::FleetScheduler::tick`]).
//!
//! ## Why a histogram and not an average
//!
//! [`crate::stream::StreamStats`] used to carry only a latency *sum* and
//! *max*; an SLO cares about the tail (p99), which no sum can recover.
//! [`LatencyHistogram`] records every sample into logarithmic buckets —
//! allocation-free (one inline array, no heap), mergeable (bucket-wise
//! add, so per-session histograms fold into cohort histograms exactly),
//! and quantile-queryable with a bounded relative error.
//!
//! ## Bucket scheme
//!
//! Values below 16 ns index their own exact bucket. From 16 ns up, each
//! power-of-two octave splits into 8 sub-buckets ([`SUB_BITS`] = 3), so
//! a reported quantile overestimates the true value by at most one
//! sub-bucket width: **12.5 %** relative error, constant across the
//! whole `u64` range. 16 exact + 60 octaves × 8 = [`BUCKETS`] = 496
//! `u64` counters ≈ 4 KiB per histogram. Quantiles are additionally
//! clamped to the exactly-tracked `[min, max]`, so single-sample and
//! extreme quantiles are exact.
//!
//! ## The tick driver
//!
//! [`FleetClock`] turns "flush whenever the caller feels like it" into a
//! fixed cadence: every [`TickConfig::cadence_ns`] the fleet owes one
//! flush, and the clock accounts for whether the tick finished before
//! the next one was due (met/missed/slack, [`TickOutcome`]). The time
//! source is either the wall ([`ClockSource::Wall`]) or a deterministic
//! virtual clock ([`ClockSource::Virtual`]) in which tick work is
//! *modeled* as `rows × ns_per_row` — the mode the overload simulations
//! and the bit-identity tests run under, because it is exactly
//! reproducible across runs and worker counts. The schedule slides: a
//! tick is due one cadence after the previous tick's *nominal* start,
//! but never before the previous tick actually ended (an overrunning
//! fleet ticks as fast as it can instead of accumulating a catch-up
//! burst).

use crate::error::CoreError;
use std::time::Instant;

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` buckets, bounding quantile overestimation at
/// `2^-SUB_BITS` (12.5 %) relative error.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave (`2^SUB_BITS`).
const SUBS: usize = 1 << SUB_BITS;
/// Values below this are exact (one bucket per nanosecond).
const LINEAR: usize = 1 << (SUB_BITS + 1);
/// Total buckets: [`LINEAR`] exact + one octave of [`SUBS`] sub-buckets
/// per leading-bit position from `SUB_BITS + 1` to 63.
const BUCKETS: usize = LINEAR + (64 - (SUB_BITS as usize + 1)) * SUBS;

/// Bucket index of a value (always `< BUCKETS`).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR as u64 {
        return v as usize;
    }
    // v >= LINEAR = 2^(SUB_BITS+1), so the leading bit position is at
    // least SUB_BITS + 1 and the shift below is non-negative.
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    LINEAR + (msb - (SUB_BITS + 1)) as usize * SUBS + sub
}

/// Inclusive upper bound of a bucket (what a quantile in this bucket
/// reports, before the exact min/max clamp).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i < LINEAR {
        return i as u64;
    }
    let msb = SUB_BITS + 1 + ((i - LINEAR) / SUBS) as u32;
    let sub = ((i - LINEAR) % SUBS) as u64;
    let lower = (1u64 << msb) | (sub << (msb - SUB_BITS));
    // `(width - 1)` first: the top bucket's upper bound is exactly
    // `u64::MAX`, so `lower + width` would overflow.
    lower + ((1u64 << (msb - SUB_BITS)) - 1)
}

/// Allocation-free log-bucketed latency histogram: p50/p99/max + jitter
/// with ≤ 12.5 % quantile error, mergeable across sessions and fleets
/// (see the module docs for the bucket scheme).
///
/// `record` is a handful of integer ops on an inline array — cheap
/// enough for the per-window serving path. Equality is exact (all
/// fields are integers), so bit-identity tests can compare histograms
/// directly.
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    count: u64,
    sum_ns: u128,
    /// Exact minimum; `u64::MAX` while empty.
    min_ns: u64,
    /// Exact maximum; 0 while empty.
    max_ns: u64,
    buckets: [u64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; BUCKETS],
        }
    }
}

// 496 bucket counters are noise in debug output; show the shape instead.
impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("p50_ns", &self.p50_ns())
            .field("p99_ns", &self.p99_ns())
            .field("max_ns", &self.max_ns())
            .finish()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        // `bucket_index` is always in range by construction; `get_mut`
        // keeps the hot path free of a bounds-check panic site.
        if let Some(b) = self.buckets.get_mut(bucket_index(ns)) {
            *b += 1;
        }
    }

    /// Folds another histogram in (bucket-wise add — associative and
    /// commutative, so any merge order yields the same histogram).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples (ns).
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Exact mean (0.0 while empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Exact minimum sample (0 while empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Exact maximum sample (0 while empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The `q`-quantile (`q` in `[0, 1]`), overestimating by at most
    /// 12.5 % and clamped to the exact observed `[min, max]`; 0 while
    /// empty. `quantile_ns(1.0)` is the exact maximum.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median (see [`LatencyHistogram::quantile_ns`]).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 99th percentile (see [`LatencyHistogram::quantile_ns`]).
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Tail jitter: p99 − p50 — how much worse the tail is than the
    /// typical window, the number a cadence budget has to absorb.
    pub fn jitter_ns(&self) -> u64 {
        self.p99_ns().saturating_sub(self.p50_ns())
    }
}

/// Where a [`FleetClock`] reads time from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockSource {
    /// Real time: tick work is measured on the monotonic wall clock.
    Wall,
    /// Deterministic virtual time: the clock only moves when advanced
    /// explicitly ([`FleetClock::advance`]) or by the *modeled* cost of
    /// a tick — `rows_classified × ns_per_row`. Runs are exactly
    /// reproducible: same ingest schedule ⇒ same timestamps, same
    /// histograms, at every worker count.
    Virtual {
        /// Modeled classification cost per feature row (virtual ns).
        ns_per_row: u64,
    },
}

/// Tick cadence + time source of a tick-driven fleet
/// ([`crate::fleet::FleetConfig::tick`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickConfig {
    /// Fixed flush cadence: one tick is due every `cadence_ns` (> 0).
    pub cadence_ns: u64,
    /// Wall or deterministic virtual time.
    pub source: ClockSource,
}

impl TickConfig {
    /// Wall-clock ticks at `cadence_ns`.
    pub fn wall(cadence_ns: u64) -> Self {
        TickConfig {
            cadence_ns,
            source: ClockSource::Wall,
        }
    }

    /// Deterministic virtual-clock ticks at `cadence_ns`, tick work
    /// modeled as `ns_per_row` virtual nanoseconds per classified row.
    pub fn deterministic(cadence_ns: u64, ns_per_row: u64) -> Self {
        TickConfig {
            cadence_ns,
            source: ClockSource::Virtual { ns_per_row },
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a zero cadence (a tick
    /// every 0 ns is not a schedule).
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.cadence_ns == 0 {
            return Err(CoreError::InvalidConfig(
                "tick cadence must be > 0 ns".into(),
            ));
        }
        Ok(())
    }
}

/// Start-of-tick timing handed from [`FleetClock::begin_tick`] to
/// [`FleetClock::end_tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickTiming {
    /// 0-based tick index.
    pub index: u64,
    /// Nominal due time of this tick.
    pub scheduled_ns: u64,
    /// Actual start: `max(now, scheduled)` — late when the fleet is
    /// behind schedule.
    pub start_ns: u64,
    /// The tick must end by here (one cadence after its nominal due
    /// time) to count as met.
    pub deadline_ns: u64,
}

/// One completed tick's deadline accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickOutcome {
    /// 0-based tick index.
    pub index: u64,
    /// Nominal due time.
    pub scheduled_ns: u64,
    /// Actual start (`max(now, scheduled)`).
    pub start_ns: u64,
    /// When the tick's flush finished (measured or modeled).
    pub end_ns: u64,
    /// `scheduled + cadence`.
    pub deadline_ns: u64,
    /// `end − start`: the flush work this tick performed.
    pub work_ns: u64,
    /// Whether the tick ended by its deadline.
    pub met: bool,
    /// `deadline − end`: headroom when positive, overrun when negative.
    pub slack_ns: i64,
}

/// Fixed-cadence tick driver over a wall or virtual time source (see
/// the module docs). Owned by a tick-driven
/// [`crate::fleet::FleetScheduler`]; usable standalone for any
/// cadence-driven loop.
#[derive(Debug, Clone)]
pub struct FleetClock {
    cfg: TickConfig,
    /// Wall-mode time base.
    epoch: Instant,
    /// Virtual-mode reading ("now"); unused under [`ClockSource::Wall`].
    vnow_ns: u64,
    /// Nominal due time of the next tick.
    next_tick_ns: u64,
    /// Ticks completed.
    ticks: u64,
}

impl FleetClock {
    /// Builds a clock; the first tick is due one cadence after now.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid
    /// [`TickConfig`].
    pub fn new(cfg: TickConfig) -> Result<Self, CoreError> {
        cfg.validate()?;
        Ok(FleetClock {
            cfg,
            epoch: Instant::now(),
            vnow_ns: 0,
            next_tick_ns: cfg.cadence_ns,
            ticks: 0,
        })
    }

    /// The clock's configuration.
    pub fn config(&self) -> TickConfig {
        self.cfg
    }

    /// Current reading (ns since the clock was built / virtual zero).
    pub fn now_ns(&self) -> u64 {
        match self.cfg.source {
            ClockSource::Wall => self.epoch.elapsed().as_nanos() as u64,
            ClockSource::Virtual { .. } => self.vnow_ns,
        }
    }

    /// Nominal due time of the next tick.
    pub fn next_tick_ns(&self) -> u64 {
        self.next_tick_ns
    }

    /// Ticks completed.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Advances a virtual clock by `ns` (models inter-tick time passing
    /// — device arrivals, idle waits). A no-op on a wall clock, which
    /// advances itself.
    pub fn advance(&mut self, ns: u64) {
        if matches!(self.cfg.source, ClockSource::Virtual { .. }) {
            self.vnow_ns = self.vnow_ns.saturating_add(ns);
        }
    }

    /// Blocks until the next tick is due (wall source only; a virtual
    /// clock jumps to the schedule inside [`FleetClock::begin_tick`]).
    pub fn wait_until_due(&self) {
        if matches!(self.cfg.source, ClockSource::Wall) {
            let now = self.now_ns();
            if self.next_tick_ns > now {
                std::thread::sleep(std::time::Duration::from_nanos(self.next_tick_ns - now));
            }
        }
    }

    /// Starts a tick: the tick begins at `max(now, scheduled)` and must
    /// end within one cadence of its *nominal* due time to meet its
    /// deadline.
    pub fn begin_tick(&mut self) -> TickTiming {
        let scheduled = self.next_tick_ns;
        TickTiming {
            index: self.ticks,
            scheduled_ns: scheduled,
            start_ns: self.now_ns().max(scheduled),
            deadline_ns: scheduled.saturating_add(self.cfg.cadence_ns),
        }
    }

    /// Ends a tick that classified `rows` feature rows: computes the
    /// tick's end (wall: measured; virtual: `start + rows × ns_per_row`,
    /// and the clock advances to it), scores the deadline and slides the
    /// schedule (`next = max(scheduled + cadence, end)` — an overrun
    /// delays the schedule instead of queueing a catch-up burst).
    pub fn end_tick(&mut self, t: &TickTiming, rows: u64) -> TickOutcome {
        let end_ns = match self.cfg.source {
            ClockSource::Wall => self.now_ns().max(t.start_ns),
            ClockSource::Virtual { ns_per_row } => {
                t.start_ns.saturating_add(rows.saturating_mul(ns_per_row))
            }
        };
        if matches!(self.cfg.source, ClockSource::Virtual { .. }) {
            self.vnow_ns = end_ns;
        }
        self.next_tick_ns = t
            .scheduled_ns
            .saturating_add(self.cfg.cadence_ns)
            .max(end_ns);
        self.ticks += 1;
        TickOutcome {
            index: t.index,
            scheduled_ns: t.scheduled_ns,
            start_ns: t.start_ns,
            end_ns,
            deadline_ns: t.deadline_ns,
            work_ns: end_ns - t.start_ns,
            met: end_ns <= t.deadline_ns,
            slack_ns: (i128::from(t.deadline_ns) - i128::from(end_ns))
                .clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_then_log() {
        // Linear region: every value below LINEAR is its own bucket.
        for v in 0..LINEAR as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
        // Octave boundaries land on fresh buckets and the index is
        // monotone non-decreasing with an in-range result everywhere.
        let mut prev = 0usize;
        for shift in 0..64 {
            let v = 1u64 << shift;
            for probe in [v.saturating_sub(1), v, v.saturating_add(1)] {
                let i = bucket_index(probe);
                assert!(i < BUCKETS, "index {i} out of range for {probe}");
                assert!(bucket_upper(i) >= probe, "upper bound covers the value");
                assert!(i >= prev || probe < prev as u64, "monotone");
                prev = i.max(prev);
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
        // Sub-bucket width bounds the relative error at 12.5 %.
        for &v in &[17u64, 100, 1_000, 123_456, 7_777_777, u64::MAX / 3] {
            let upper = bucket_upper(bucket_index(v));
            assert!(upper >= v);
            assert!((upper - v) as f64 <= v as f64 * 0.125, "12.5% bound at {v}");
        }
    }

    #[test]
    fn histogram_empty_and_one_sample_edges() {
        let h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!((h.min_ns(), h.max_ns()), (0, 0));
        assert_eq!((h.p50_ns(), h.p99_ns(), h.jitter_ns()), (0, 0, 0));

        // One sample: every quantile is exact (min/max clamp).
        let mut h = LatencyHistogram::new();
        h.record(1_234_567);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min_ns(), 1_234_567);
        assert_eq!(h.max_ns(), 1_234_567);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ns(q), 1_234_567, "q={q}");
        }
        assert_eq!(h.jitter_ns(), 0);
        assert_eq!(h.mean_ns(), 1_234_567.0);
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        // 1..=1000 in a scrambled order (order cannot matter).
        let mut v = 1u64;
        for _ in 0..1000 {
            v = (v * 7919) % 1009;
            h.record(v + 1);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.p50_ns();
        let p99 = h.p99_ns();
        assert!(p50 <= p99 && p99 <= h.max_ns());
        assert!(h.min_ns() >= 1 && h.max_ns() <= 1009);
        // p50 of ~uniform 1..=1009 sits near 505, within the 12.5 %
        // bucket error.
        assert!((400..=600).contains(&p50), "p50 = {p50}");
        assert_eq!(h.jitter_ns(), p99 - p50);
        assert_eq!(h.quantile_ns(1.0), h.max_ns());
    }

    #[test]
    fn histogram_merge_is_associative_and_exact() {
        let fill = |seed: u64, n: u64| {
            let mut h = LatencyHistogram::new();
            let mut x = seed;
            for _ in 0..n {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                h.record(x >> 40);
            }
            h
        };
        let (a, b, c) = (fill(1, 100), fill(2, 57), fill(3, 3));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge is associative");
        assert_eq!(left.count(), 160);
        assert_eq!(left.sum_ns(), a.sum_ns() + b.sum_ns() + c.sum_ns());
        assert_eq!(left.max_ns(), a.max_ns().max(b.max_ns()).max(c.max_ns()));
        assert_eq!(left.min_ns(), a.min_ns().min(b.min_ns()).min(c.min_ns()));
        // Merging an empty histogram is the identity.
        let mut id = left.clone();
        id.merge(&LatencyHistogram::default());
        assert_eq!(id, left);
    }

    #[test]
    fn tick_config_validates() {
        assert!(TickConfig::wall(0).validate().is_err());
        assert!(TickConfig::wall(1).validate().is_ok());
        assert!(TickConfig::deterministic(1_000_000, 500).validate().is_ok());
        assert!(FleetClock::new(TickConfig::wall(0)).is_err());
    }

    #[test]
    fn virtual_clock_ticks_deterministically() {
        let cfg = TickConfig::deterministic(1_000, 10);
        let mut c = FleetClock::new(cfg).unwrap();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.next_tick_ns(), 1_000);

        // Unsaturated tick: 50 rows × 10 ns = 500 ns work, inside the
        // 1000 ns budget.
        let t = c.begin_tick();
        assert_eq!((t.index, t.scheduled_ns, t.start_ns), (0, 1_000, 1_000));
        let o = c.end_tick(&t, 50);
        assert_eq!((o.end_ns, o.work_ns), (1_500, 500));
        assert!(o.met);
        assert_eq!(o.slack_ns, 500);
        assert_eq!(c.now_ns(), 1_500);
        assert_eq!(c.next_tick_ns(), 2_000);
        assert_eq!(c.ticks(), 1);

        // Overrunning tick: 300 rows × 10 ns = 3000 ns blows the
        // deadline; the schedule slides to the tick's end instead of
        // bursting to catch up.
        let t = c.begin_tick();
        assert_eq!(t.start_ns, 2_000);
        let o = c.end_tick(&t, 300);
        assert_eq!(o.end_ns, 5_000);
        assert!(!o.met);
        assert_eq!(o.slack_ns, -2_000);
        assert_eq!(c.next_tick_ns(), 5_000);

        // `advance` models inter-tick time passing (relative to now =
        // 5000). Sleeping through whole periods makes the next tick
        // late-by-schedule: it starts at the advanced now, not the
        // nominal due time, and the deadline verdict reflects the slip
        // even though the tick itself did zero work.
        c.advance(10_000);
        let t = c.begin_tick();
        assert_eq!(
            (t.scheduled_ns, t.start_ns, t.deadline_ns),
            (5_000, 15_000, 6_000)
        );
        let o = c.end_tick(&t, 0);
        assert_eq!(o.work_ns, 0);
        assert!(!o.met);
        assert_eq!(o.slack_ns, -9_000);
        // The schedule re-anchors at the late tick's end, not at the
        // stale nominal time.
        assert_eq!(c.next_tick_ns(), 15_000);
        // Identical runs are bit-identical.
        let rerun = |rows: &[u64]| {
            let mut c = FleetClock::new(cfg).unwrap();
            rows.iter()
                .map(|&r| {
                    let t = c.begin_tick();
                    c.end_tick(&t, r)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(rerun(&[50, 300, 0, 7]), rerun(&[50, 300, 0, 7]));
    }

    #[test]
    fn wall_clock_measures_real_time() {
        let mut c = FleetClock::new(TickConfig::wall(1)).unwrap();
        let n0 = c.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(c.now_ns() > n0);
        // `advance` is a documented no-op on the wall source.
        c.advance(u64::MAX);
        let t = c.begin_tick();
        let o = c.end_tick(&t, 1);
        assert!(o.end_ns >= o.start_ns);
        assert_eq!(c.ticks(), 1);
        // With a 1 ns cadence the wait is a no-op and the deadline is
        // hopeless — accounting still adds up.
        c.wait_until_due();
        assert_eq!(o.work_ns, o.end_ns - o.start_ns);
    }
}
