//! Pipeline configuration.

use svm::Kernel;

/// Configuration of one training run of the detection pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FitConfig {
    /// Kernel (the paper settles on quadratic after Table I).
    pub kernel: Kernel,
    /// Soft-margin cost for the SMO trainer.
    pub c: f64,
    /// Optional feature subset (original 0-based indices); `None` keeps
    /// all features.
    pub features: Option<Vec<usize>>,
    /// Optional support-vector budget (Eq 5 pruning with re-training).
    pub sv_budget: Option<usize>,
    /// When `true`, one global power-of-two scale replaces the per-feature
    /// scales — the paper's sub-optimal homogeneous baseline (Fig 7
    /// right).
    pub homogeneous_scale: bool,
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig {
            kernel: Kernel::Polynomial { degree: 2 },
            c: 16.0,
            features: None,
            sv_budget: None,
            homogeneous_scale: false,
        }
    }
}

impl FitConfig {
    /// Returns a copy using the given kernel.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Returns a copy restricted to the given features.
    pub fn with_features(mut self, features: Vec<usize>) -> Self {
        self.features = Some(features);
        self
    }

    /// Returns a copy with an SV budget.
    pub fn with_sv_budget(mut self, budget: usize) -> Self {
        self.sv_budget = Some(budget);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_quadratic() {
        let c = FitConfig::default();
        assert_eq!(c.kernel, Kernel::Polynomial { degree: 2 });
        assert!(c.features.is_none());
        assert!(c.sv_budget.is_none());
        assert!(!c.homogeneous_scale);
    }

    #[test]
    fn builder_methods() {
        let c = FitConfig::default()
            .with_kernel(Kernel::Linear)
            .with_features(vec![1, 2, 3])
            .with_sv_budget(50);
        assert_eq!(c.kernel, Kernel::Linear);
        assert_eq!(c.features.as_deref(), Some(&[1, 2, 3][..]));
        assert_eq!(c.sv_budget, Some(50));
    }
}
