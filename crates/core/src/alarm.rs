//! Event-level alarm subsystem: per-window decisions in, clinical alarms
//! out.
//!
//! Per-window labels are how the paper *trains*, but a wearable monitor
//! is judged on **events**: did an alarm fire for each seizure (event
//! sensitivity), how often does it cry wolf (false alarms per 24 h), and
//! how long after electrographic onset does it speak (detection
//! latency)? This module folds the window-decision stream into
//! [`AlarmEvent`]s and scores them against ground-truth seizure
//! intervals:
//!
//! ```text
//!             vote = decision_is_seizure(d)      k of last n?   refractory
//! decisions ──────────────────────────────► ring ───────────► ⏲ ───► AlarmEvent
//!   (Option<f64>, dropped = None)           (n votes)          (hold-off)
//! ```
//!
//! The state machine is deliberately tiny and **chunking-independent**:
//! it consumes one window at a time, so driving it online from
//! [`crate::stream::StreamingSession`] produces alarms bit-identical to
//! scanning the batch decision sequence — the property the
//! `alarm_equivalence` suite pins for both engine backends.
//!
//! Everything on the class side of a decision goes through the single
//! shared [`decision_is_seizure`] boundary helper (`d >= 0.0` ⇒
//! seizure), so the alarm layer can never disagree with batch metrics or
//! streaming about boundary windows.

use crate::error::CoreError;
use ecg_features::extract::{ExtractScratch, WindowExtractor};
use ecg_features::{DenseMatrix, N_FEATURES};
use ecg_sim::seizure::SeizureEvent;
use ecg_sim::session::SessionRecording;
use svm::ClassifierEngine;

pub use svm::classifier::decision_is_seizure;

/// What the alarm state machine does with a **dropped** window (feature
/// extraction failed, so there is no decision value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DroppedPolicy {
    /// The dropped window casts a non-seizure vote: it enters the k-of-n
    /// history and counts down the refractory hold-off, exactly like a
    /// classified non-seizure window. This is the conservative default —
    /// a monitor that cannot see the signal should not keep an alarm
    /// streak alive.
    #[default]
    VoteNonSeizure,
    /// The dropped window is invisible: it neither enters the history
    /// nor counts down the refractory hold-off, as if the window never
    /// completed. Use when drops are rare artefacts and the surrounding
    /// context should carry over.
    Skip,
}

/// Operating point of the alarm state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlarmConfig {
    /// Seizure votes required among the last `n` windows to raise an
    /// alarm (`1 <= k <= n`).
    pub k: usize,
    /// Voting-history length in windows (`n >= 1`).
    pub n: usize,
    /// Hold-off after an alarm: this many subsequent voting windows are
    /// suppressed before another alarm may fire (0 = no refractory).
    pub refractory_windows: usize,
    /// Dropped-window policy.
    pub dropped: DroppedPolicy,
}

impl Default for AlarmConfig {
    /// 2-of-3 voting with a one-history refractory — a sensible starting
    /// point the sweep binary refines per cohort.
    fn default() -> Self {
        AlarmConfig {
            k: 2,
            n: 3,
            refractory_windows: 3,
            dropped: DroppedPolicy::VoteNonSeizure,
        }
    }
}

impl AlarmConfig {
    /// `k`-of-`n` voting with a refractory of `n` windows and the default
    /// dropped-window policy.
    pub fn k_of_n(k: usize, n: usize) -> Self {
        AlarmConfig {
            k,
            n,
            refractory_windows: n,
            dropped: DroppedPolicy::default(),
        }
    }

    /// Validates the operating point.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `1 <= k <= n`.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.k == 0 || self.n == 0 || self.k > self.n {
            return Err(CoreError::InvalidConfig(format!(
                "alarm voting needs 1 <= k <= n, got k={} n={}",
                self.k, self.n
            )));
        }
        Ok(())
    }
}

/// One raised alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlarmEvent {
    /// 0-based index of this alarm in the stream.
    pub alarm_index: u64,
    /// Index of the window whose vote completed the alarm.
    pub window_index: u64,
    /// First sample of that window (absolute stream coordinates).
    pub start_sample: u64,
    /// Seizure votes in the history when the alarm fired (`>= k`).
    pub votes: usize,
}

/// Online k-of-n alarm state machine with refractory hold-off.
///
/// Feed it windows in stream order — [`AlarmStateMachine::on_window`]
/// from a live stream, [`AlarmStateMachine::on_decision`] from a batch
/// decision sequence — and it returns the alarm raised by that window,
/// if any. The machine is pure state: no clocks, no allocation after
/// construction, bit-identical between online and batch driving.
#[derive(Debug, Clone)]
pub struct AlarmStateMachine {
    cfg: AlarmConfig,
    /// Circular vote history of the last `n` voting windows.
    history: Vec<bool>,
    /// Next write position in `history`.
    head: usize,
    /// Votes currently stored (saturates at `n`).
    stored: usize,
    /// Seizure votes currently stored.
    positive: usize,
    /// Voting windows left before another alarm may fire.
    refractory_left: usize,
    alarms_raised: u64,
}

impl AlarmStateMachine {
    /// Builds the machine at an operating point.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid
    /// [`AlarmConfig`].
    pub fn new(cfg: AlarmConfig) -> Result<Self, CoreError> {
        cfg.validate()?;
        Ok(AlarmStateMachine {
            cfg,
            history: vec![false; cfg.n],
            head: 0,
            stored: 0,
            positive: 0,
            refractory_left: 0,
            alarms_raised: 0,
        })
    }

    /// The operating point.
    pub fn config(&self) -> AlarmConfig {
        self.cfg
    }

    /// Alarms raised so far.
    pub fn alarms_raised(&self) -> u64 {
        self.alarms_raised
    }

    /// Clears all state (history, refractory, alarm count).
    pub fn reset(&mut self) {
        self.history.fill(false);
        self.head = 0;
        self.stored = 0;
        self.positive = 0;
        self.refractory_left = 0;
        self.alarms_raised = 0;
    }

    /// Feeds one completed window from a live stream.
    pub fn on_window(&mut self, d: &crate::stream::WindowDecision) -> Option<AlarmEvent> {
        self.on_decision(d.window_index, d.start_sample, d.decision)
    }

    /// Feeds one window of a decision sequence: `decision` is `None` for
    /// a dropped window. Returns the alarm this window raised, if any.
    pub fn on_decision(
        &mut self,
        window_index: u64,
        start_sample: u64,
        decision: Option<f64>,
    ) -> Option<AlarmEvent> {
        let vote = match decision {
            Some(d) => decision_is_seizure(d),
            None => match self.cfg.dropped {
                DroppedPolicy::VoteNonSeizure => false,
                DroppedPolicy::Skip => return None,
            },
        };
        // Ring update: evict the oldest vote once `n` are stored.
        if self.stored == self.cfg.n && self.history[self.head] {
            self.positive -= 1;
        }
        self.history[self.head] = vote;
        self.head = (self.head + 1) % self.cfg.n;
        if self.stored < self.cfg.n {
            self.stored += 1;
        }
        if vote {
            self.positive += 1;
        }
        // Refractory hold-off counts voting windows only.
        if self.refractory_left > 0 {
            self.refractory_left -= 1;
            return None;
        }
        if self.positive >= self.cfg.k {
            self.refractory_left = self.cfg.refractory_windows;
            let event = AlarmEvent {
                alarm_index: self.alarms_raised,
                window_index,
                start_sample,
                votes: self.positive,
            };
            self.alarms_raised += 1;
            return Some(event);
        }
        None
    }

    /// Scans a whole batch decision sequence (window `i` starts at
    /// `i × stride` samples) and returns every alarm — the batch twin the
    /// streaming path is pinned bit-identical against.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid `cfg` or
    /// `stride == 0`.
    pub fn scan(
        cfg: AlarmConfig,
        decisions: &[Option<f64>],
        stride: usize,
    ) -> Result<Vec<AlarmEvent>, CoreError> {
        if stride == 0 {
            return Err(CoreError::InvalidConfig(
                "alarm scan stride must be >= 1".into(),
            ));
        }
        let mut sm = AlarmStateMachine::new(cfg)?;
        Ok(decisions
            .iter()
            .enumerate()
            .filter_map(|(w, &d)| sm.on_decision(w as u64, (w * stride) as u64, d))
            .collect())
    }
}

/// Per-window decision sequence of a rendered session: extract every
/// window (tracking drops exactly like the batch assembly path),
/// batch-classify the survivors through the engine's batch entry point
/// and scatter back in window order (`None` = dropped window). Returns
/// the sequence plus the window length in samples — the stride to scan
/// alarms with. Empty (`window_len == 0`) when the session is shorter
/// than one window.
///
/// This is **the** batch twin of the streaming decision path: the LOSO
/// event evaluator, the operating-point sweep and the
/// streaming-vs-batch alarm equivalence tests all drive
/// [`AlarmStateMachine::scan`] from this one routine, so drop tracking
/// and window geometry cannot fork between them.
pub fn session_decision_sequence(
    rec: &SessionRecording,
    window_s: f64,
    engine: &dyn ClassifierEngine,
) -> (Vec<Option<f64>>, usize) {
    let labels = rec.window_labels(window_s);
    let Some(window_len) = labels.first().map(|l| l.len_samples) else {
        return (Vec::new(), 0);
    };
    let extractor = WindowExtractor::new(rec.fs);
    let mut scratch = ExtractScratch::default();
    let mut row = Vec::with_capacity(N_FEATURES);
    let mut kept_rows = DenseMatrix::with_cols(N_FEATURES);
    let mut kept_at = Vec::new();
    for (w, label) in labels.iter().enumerate() {
        if extractor
            .extract_into(rec.window_samples(label), &mut scratch, &mut row)
            .is_ok()
        {
            kept_rows.push_row(&row);
            kept_at.push(w);
        }
    }
    let kept = engine.decision_batch(&kept_rows);
    let mut decisions = vec![None; labels.len()];
    for (&w, &d) in kept_at.iter().zip(kept.iter()) {
        decisions[w] = Some(d);
    }
    (decisions, window_len)
}

/// One ground-truth seizure interval, in seconds from stream start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruthEvent {
    /// Electrographic onset.
    pub onset_s: f64,
    /// Electrographic offset.
    pub offset_s: f64,
}

/// Extracts the ground-truth event list from session seizure
/// annotations, sorted by onset.
pub fn truth_events(seizures: &[SeizureEvent]) -> Vec<TruthEvent> {
    let mut events: Vec<TruthEvent> = seizures
        .iter()
        .map(|s| TruthEvent {
            onset_s: s.onset_s,
            offset_s: s.offset_s(),
        })
        .collect();
    events.sort_by(|a, b| a.onset_s.total_cmp(&b.onset_s));
    events
}

/// Alarm↔event matching rules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventScoring {
    /// Sampling rate (converts alarm sample coordinates to seconds).
    pub fs: f64,
    /// Window length in samples; an alarm's clock time is the *end* of
    /// its firing window — the moment the decision exists.
    pub window_len: usize,
    /// How early before onset an alarm still credits the event. Covers
    /// the pre-ictal autonomic ramp the detector legitimately picks up.
    pub pre_tolerance_s: f64,
    /// How late after offset an alarm still credits the event (post-ictal
    /// recovery tail).
    pub post_tolerance_s: f64,
}

impl EventScoring {
    /// Default clinical tolerances at a given window geometry: one window
    /// of pre-onset credit plus the simulator's 20 s autonomic ramp, one
    /// window of post-offset credit.
    pub fn for_windows(fs: f64, window_len: usize) -> Self {
        let window_s = window_len as f64 / fs;
        EventScoring {
            fs,
            window_len,
            pre_tolerance_s: window_s + 20.0,
            post_tolerance_s: window_s,
        }
    }

    /// The stream-clock time of an alarm: the end of its firing window.
    pub fn alarm_time_s(&self, alarm: &AlarmEvent) -> f64 {
        (alarm.start_sample + self.window_len as u64) as f64 / self.fs
    }
}

/// Event-level detection metrics — the clinical counterpart of the
/// window-level [`crate::eval::Confusion`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventMetrics {
    /// Ground-truth seizure events.
    pub n_events: usize,
    /// Events credited with at least one matching alarm.
    pub detected: usize,
    /// Alarms matching no event.
    pub false_alarms: usize,
    /// Monitored time in seconds (denominator of the false-alarm rate).
    pub monitored_s: f64,
    /// Detection latency of each detected event, seconds from onset to
    /// the first matching alarm (negative = pre-onset detection inside
    /// the tolerance).
    pub latencies_s: Vec<f64>,
}

impl EventMetrics {
    /// Detected fraction of ground-truth events; `None` without events.
    pub fn event_sensitivity(&self) -> Option<f64> {
        (self.n_events > 0).then(|| self.detected as f64 / self.n_events as f64)
    }

    /// False alarms normalised to a 24 h day; `None` without monitored
    /// time.
    pub fn false_alarms_per_24h(&self) -> Option<f64> {
        (self.monitored_s > 0.0).then(|| self.false_alarms as f64 * 86_400.0 / self.monitored_s)
    }

    /// Median detection latency over detected events; `None` when
    /// nothing was detected. Even counts average the middle pair.
    pub fn median_latency_s(&self) -> Option<f64> {
        if self.latencies_s.is_empty() {
            return None;
        }
        let mut sorted = self.latencies_s.clone();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        Some(if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            0.5 * (sorted[mid - 1] + sorted[mid])
        })
    }

    /// Merges another recording's metrics into this one (pooled view).
    pub fn merge(&mut self, other: &EventMetrics) {
        self.n_events += other.n_events;
        self.detected += other.detected;
        self.false_alarms += other.false_alarms;
        self.monitored_s += other.monitored_s;
        self.latencies_s.extend_from_slice(&other.latencies_s);
    }
}

/// Scores an alarm sequence against ground-truth events.
///
/// An alarm *matches* an event when its clock time (window end) falls in
/// `[onset − pre_tolerance, offset + post_tolerance]`. An alarm inside
/// an event's actual `[onset, offset]` interval is assigned to that
/// event; otherwise, among the events whose tolerance band covers it,
/// it goes to a **still-undetected** event when one exists, nearest
/// onset first (earlier event on a tie) — so when two seizures sit
/// closer together than the tolerances, an alarm between them credits
/// the seizure it plausibly announces instead of leaking onto an
/// earlier, already-detected one just because that event sorts first.
/// Events with at least one matching alarm count as detected, with
/// latency measured to the first such alarm; alarms matching no event
/// are false alarms.
///
/// Because the undetected-first preference depends on which alarms came
/// before, alarms are scored in ascending clock time regardless of the
/// slice's order — one state machine emits them sorted anyway, but a
/// list merged from several sources scores identically too.
pub fn score_events(
    alarms: &[AlarmEvent],
    truth: &[TruthEvent],
    monitored_s: f64,
    scoring: &EventScoring,
) -> EventMetrics {
    let mut order: Vec<usize> = (0..alarms.len()).collect();
    order.sort_by(|&a, &b| {
        scoring
            .alarm_time_s(&alarms[a])
            .total_cmp(&scoring.alarm_time_s(&alarms[b]))
    });
    let mut first_alarm_time: Vec<Option<f64>> = vec![None; truth.len()];
    let mut false_alarms = 0usize;
    for alarm in order.into_iter().map(|i| &alarms[i]) {
        let t = scoring.alarm_time_s(alarm);
        let matched = truth
            .iter()
            .position(|e| t >= e.onset_s && t <= e.offset_s)
            .or_else(|| {
                // Tolerance-band fallback: prefer an undetected event,
                // then the nearest onset, then the earlier event. (It
                // used to credit the earliest-position event even when a
                // later, still-undetected event's onset was nearer —
                // under-reporting event sensitivity on close seizures.)
                truth
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| {
                        t >= e.onset_s - scoring.pre_tolerance_s
                            && t <= e.offset_s + scoring.post_tolerance_s
                    })
                    .min_by(|(i, a), (j, b)| {
                        first_alarm_time[*i]
                            .is_some()
                            .cmp(&first_alarm_time[*j].is_some())
                            .then_with(|| (t - a.onset_s).abs().total_cmp(&(t - b.onset_s).abs()))
                            .then_with(|| i.cmp(j))
                    })
                    .map(|(i, _)| i)
            });
        match matched {
            Some(i) => {
                let slot = &mut first_alarm_time[i];
                if slot.is_none_or(|prev| t < prev) {
                    *slot = Some(t);
                }
            }
            None => false_alarms += 1,
        }
    }
    let latencies_s: Vec<f64> = truth
        .iter()
        .zip(first_alarm_time.iter())
        .filter_map(|(e, t)| t.map(|t| t - e.onset_s))
        .collect();
    EventMetrics {
        n_events: truth.len(),
        detected: latencies_s.len(),
        false_alarms,
        monitored_s,
        latencies_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(votes: &[i8]) -> Vec<Option<f64>> {
        // 1 → seizure decision, 0 → non-seizure, -1 → dropped window.
        votes
            .iter()
            .map(|&v| match v {
                1 => Some(1.0),
                0 => Some(-1.0),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(AlarmConfig::k_of_n(0, 3).validate().is_err());
        assert!(AlarmConfig::k_of_n(4, 3).validate().is_err());
        assert!(AlarmConfig::k_of_n(1, 1).validate().is_ok());
        assert!(AlarmStateMachine::new(AlarmConfig::k_of_n(5, 2)).is_err());
        assert!(AlarmStateMachine::scan(AlarmConfig::default(), &[], 0).is_err());
    }

    #[test]
    fn k_of_n_voting_fires_on_kth_vote() {
        let cfg = AlarmConfig {
            k: 2,
            n: 3,
            refractory_windows: 0,
            dropped: DroppedPolicy::VoteNonSeizure,
        };
        let alarms = AlarmStateMachine::scan(cfg, &seq(&[1, 0, 1, 0, 0, 1, 1]), 100).unwrap();
        // Window 2 completes {1,0,1} → 2 votes; windows 3–5 never hold
        // two votes; window 6 completes {0,1,1} → 2 votes again.
        assert_eq!(
            alarms.iter().map(|a| a.window_index).collect::<Vec<_>>(),
            vec![2, 6]
        );
        assert_eq!(alarms[0].start_sample, 200);
        assert_eq!(alarms[0].votes, 2);
        assert_eq!(alarms[0].alarm_index, 0);
        assert_eq!(alarms[1].alarm_index, 1);
    }

    #[test]
    fn alarm_sustains_without_refractory_and_holds_off_with_it() {
        // Persistent seizure votes: without refractory every window from
        // the k-th on fires; with refractory r, alarms are r+1 apart.
        let votes = seq(&[1; 10]);
        let free = AlarmStateMachine::scan(
            AlarmConfig {
                k: 2,
                n: 3,
                refractory_windows: 0,
                dropped: DroppedPolicy::VoteNonSeizure,
            },
            &votes,
            10,
        )
        .unwrap();
        assert_eq!(
            free.iter().map(|a| a.window_index).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9]
        );
        let held = AlarmStateMachine::scan(
            AlarmConfig {
                k: 2,
                n: 3,
                refractory_windows: 3,
                dropped: DroppedPolicy::VoteNonSeizure,
            },
            &votes,
            10,
        )
        .unwrap();
        assert_eq!(
            held.iter().map(|a| a.window_index).collect::<Vec<_>>(),
            vec![1, 5, 9]
        );
    }

    #[test]
    fn dropped_policies_differ() {
        // seizure, dropped, seizure with k=2, n=2.
        let votes = seq(&[1, -1, 1]);
        let vote_cfg = AlarmConfig {
            k: 2,
            n: 2,
            refractory_windows: 0,
            dropped: DroppedPolicy::VoteNonSeizure,
        };
        // Dropped window votes non-seizure: history at w2 is {dropped, 1}
        // → 1 vote → silent.
        assert!(AlarmStateMachine::scan(vote_cfg, &votes, 10)
            .unwrap()
            .is_empty());
        let skip_cfg = AlarmConfig {
            dropped: DroppedPolicy::Skip,
            ..vote_cfg
        };
        // Skipped window is invisible: history at w2 is {1, 1} → alarm.
        let alarms = AlarmStateMachine::scan(skip_cfg, &votes, 10).unwrap();
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].window_index, 2);
    }

    #[test]
    fn skip_policy_freezes_refractory() {
        // Alarm at w1, then dropped windows: under Skip they do not count
        // down the hold-off, so the next alarm needs 2 voting windows.
        let votes = seq(&[1, 1, -1, -1, 1, 1]);
        let cfg = AlarmConfig {
            k: 2,
            n: 2,
            refractory_windows: 1,
            dropped: DroppedPolicy::Skip,
        };
        let alarms = AlarmStateMachine::scan(cfg, &votes, 10).unwrap();
        // w1 fires; w4 is the refractory count-down vote; w5 fires again.
        assert_eq!(
            alarms.iter().map(|a| a.window_index).collect::<Vec<_>>(),
            vec![1, 5]
        );
    }

    #[test]
    fn boundary_zero_decision_votes_seizure() {
        // decision == 0.0 is a seizure vote — the shared convention.
        let cfg = AlarmConfig {
            k: 1,
            n: 1,
            refractory_windows: 0,
            dropped: DroppedPolicy::VoteNonSeizure,
        };
        let alarms = AlarmStateMachine::scan(cfg, &[Some(0.0)], 10).unwrap();
        assert_eq!(alarms.len(), 1);
        let none = AlarmStateMachine::scan(cfg, &[Some(-1e-300)], 10).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn online_driving_matches_scan() {
        let votes = seq(&[0, 1, 1, -1, 0, 1, 1, 1, 0, 0, 1]);
        let cfg = AlarmConfig::k_of_n(2, 4);
        let batch = AlarmStateMachine::scan(cfg, &votes, 7).unwrap();
        let mut sm = AlarmStateMachine::new(cfg).unwrap();
        let online: Vec<AlarmEvent> = votes
            .iter()
            .enumerate()
            .filter_map(|(w, &d)| sm.on_decision(w as u64, (w * 7) as u64, d))
            .collect();
        assert_eq!(batch, online);
        assert_eq!(sm.alarms_raised(), batch.len() as u64);
        sm.reset();
        assert_eq!(sm.alarms_raised(), 0);
    }

    #[test]
    fn truth_events_sorted_from_annotations() {
        let events = truth_events(&[
            SeizureEvent::new(100.0, 20.0, 1.0),
            SeizureEvent::new(40.0, 10.0, 0.5),
        ]);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].onset_s, 40.0);
        assert_eq!(events[0].offset_s, 50.0);
        assert_eq!(events[1].onset_s, 100.0);
    }

    #[test]
    fn scoring_credits_detections_and_counts_false_alarms() {
        let fs = 10.0;
        let scoring = EventScoring {
            fs,
            window_len: 100, // 10 s windows
            pre_tolerance_s: 5.0,
            post_tolerance_s: 5.0,
        };
        let truth = [
            TruthEvent {
                onset_s: 100.0,
                offset_s: 130.0,
            },
            TruthEvent {
                onset_s: 300.0,
                offset_s: 320.0,
            },
        ];
        let alarm_at = |start_s: f64, i: u64| AlarmEvent {
            alarm_index: i,
            window_index: (start_s / 10.0) as u64,
            start_sample: (start_s * fs) as u64,
            votes: 1,
        };
        // Alarm windows ending at 110 s (hits event 0, latency 10 s),
        // 120 s (same event, later — ignored for latency), 200 s (false),
        // 97 s pre-onset within tolerance would also hit event 0; event 1
        // gets nothing.
        let alarms = [alarm_at(100.0, 0), alarm_at(110.0, 1), alarm_at(190.0, 2)];
        let m = score_events(&alarms, &truth, 3600.0, &scoring);
        assert_eq!(m.n_events, 2);
        assert_eq!(m.detected, 1);
        assert_eq!(m.false_alarms, 1);
        assert_eq!(m.latencies_s, vec![10.0]);
        assert_eq!(m.event_sensitivity(), Some(0.5));
        assert_eq!(m.false_alarms_per_24h(), Some(24.0));
        assert_eq!(m.median_latency_s(), Some(10.0));
    }

    #[test]
    fn alarm_inside_a_later_seizure_credits_that_seizure() {
        // Two seizures closer together than the tolerance bands: an
        // alarm fired *during* the second must be assigned to the
        // second, not leaked onto the first via its post-tolerance.
        let scoring = EventScoring {
            fs: 1.0,
            window_len: 10,
            pre_tolerance_s: 60.0,
            post_tolerance_s: 40.0,
        };
        let truth = [
            TruthEvent {
                onset_s: 100.0,
                offset_s: 130.0,
            },
            TruthEvent {
                onset_s: 160.0, // event 1's band reaches 170 s
                offset_s: 180.0,
            },
        ];
        // One alarm, window ending at t = 165 s: inside seizure 2's
        // actual interval, also inside seizure 1's post-tolerance.
        let alarms = [AlarmEvent {
            alarm_index: 0,
            window_index: 15,
            start_sample: 155,
            votes: 1,
        }];
        let m = score_events(&alarms, &truth, 600.0, &scoring);
        assert_eq!(m.detected, 1);
        assert_eq!(m.false_alarms, 0);
        // Latency is measured from seizure 2's onset (165 − 160), not
        // seizure 1's (165 − 100).
        assert_eq!(m.latencies_s, vec![5.0]);
    }

    #[test]
    fn band_fallback_prefers_nearest_onset_between_close_seizures() {
        // Regression: two seizures closer together than the tolerance
        // bands, one alarm *between* them (inside neither interval). The
        // alarm's window ends 10 s before seizure B's onset but 60 s
        // after seizure A's — it announces B. The old earliest-position
        // rule credited A, leaving B undetected.
        let scoring = EventScoring {
            fs: 1.0,
            window_len: 10,
            pre_tolerance_s: 80.0,
            post_tolerance_s: 80.0,
        };
        let truth = [
            TruthEvent {
                onset_s: 100.0,
                offset_s: 130.0,
            },
            TruthEvent {
                onset_s: 200.0,
                offset_s: 230.0,
            },
        ];
        let alarm = |end_s: f64, i: u64| AlarmEvent {
            alarm_index: i,
            window_index: (end_s as u64 - 10) / 10,
            start_sample: end_s as u64 - 10,
            votes: 1,
        };
        // Both bands cover t = 190 ([20, 210] and [120, 310]); B's onset
        // is 10 s away, A's 90 s.
        let m = score_events(&[alarm(190.0, 0)], &truth, 600.0, &scoring);
        assert_eq!(m.detected, 1);
        assert_eq!(m.false_alarms, 0);
        assert_eq!(m.latencies_s, vec![-10.0], "credited to B, not A");
        // With a second alarm inside A, both seizures are detected and
        // each latency is measured from its own onset.
        let m = score_events(&[alarm(110.0, 0), alarm(190.0, 1)], &truth, 600.0, &scoring);
        assert_eq!(m.detected, 2);
        assert_eq!(m.latencies_s, vec![10.0, -10.0]);
    }

    #[test]
    fn band_fallback_prefers_undetected_event_over_nearer_onset() {
        // A already detected (alarm inside it). A later band alarm at
        // t = 135 is nearer A's onset (35 s) than B's (65 s), but A is
        // detected and B is not — credit B, the event the alarm can
        // still newly announce.
        let scoring = EventScoring {
            fs: 1.0,
            window_len: 10,
            pre_tolerance_s: 80.0,
            post_tolerance_s: 80.0,
        };
        let truth = [
            TruthEvent {
                onset_s: 100.0,
                offset_s: 130.0,
            },
            TruthEvent {
                onset_s: 200.0,
                offset_s: 230.0,
            },
        ];
        let alarm = |end_s: f64, i: u64| AlarmEvent {
            alarm_index: i,
            window_index: (end_s as u64 - 10) / 10,
            start_sample: end_s as u64 - 10,
            votes: 1,
        };
        let m = score_events(&[alarm(110.0, 0), alarm(135.0, 1)], &truth, 600.0, &scoring);
        assert_eq!(m.detected, 2, "second alarm credits undetected B");
        assert_eq!(m.latencies_s, vec![10.0, -65.0]);
        // Same geometry but both already detected: the nearest onset
        // wins (t = 160 is 60 s from A, 40 s from B → credited to B,
        // whose first-alarm time improves to 160; nothing becomes a
        // false alarm).
        let m = score_events(
            &[alarm(110.0, 0), alarm(195.0, 1), alarm(160.0, 2)],
            &truth,
            600.0,
            &scoring,
        );
        assert_eq!(m.detected, 2);
        assert_eq!(m.false_alarms, 0);
        assert_eq!(m.latencies_s, vec![10.0, -40.0]);
    }

    #[test]
    fn scoring_is_independent_of_alarm_slice_order() {
        // The undetected-first preference is stateful, so score_events
        // sorts by clock time internally: a merged, out-of-order alarm
        // list scores exactly like the sorted one.
        let scoring = EventScoring {
            fs: 1.0,
            window_len: 10,
            pre_tolerance_s: 80.0,
            post_tolerance_s: 80.0,
        };
        let truth = [
            TruthEvent {
                onset_s: 100.0,
                offset_s: 130.0,
            },
            TruthEvent {
                onset_s: 200.0,
                offset_s: 230.0,
            },
        ];
        let alarm = |end_s: f64, i: u64| AlarmEvent {
            alarm_index: i,
            window_index: (end_s as u64 - 10) / 10,
            start_sample: end_s as u64 - 10,
            votes: 1,
        };
        // Band-only alarms at t = 140 and t = 150 (inside neither
        // interval, both bands cover both).
        let sorted = [alarm(140.0, 0), alarm(150.0, 1)];
        let reversed = [alarm(150.0, 1), alarm(140.0, 0)];
        let a = score_events(&sorted, &truth, 600.0, &scoring);
        let b = score_events(&reversed, &truth, 600.0, &scoring);
        assert_eq!(a, b);
        // Time order decides: 140 credits A (nearest onset among the
        // undetected), then 150 credits the still-undetected B.
        assert_eq!(a.detected, 2);
        assert_eq!(a.latencies_s, vec![40.0, -50.0]);
    }

    #[test]
    fn pre_onset_alarm_yields_negative_latency() {
        let scoring = EventScoring {
            fs: 1.0,
            window_len: 10,
            pre_tolerance_s: 15.0,
            post_tolerance_s: 0.0,
        };
        let truth = [TruthEvent {
            onset_s: 100.0,
            offset_s: 120.0,
        }];
        let alarms = [AlarmEvent {
            alarm_index: 0,
            window_index: 8,
            start_sample: 80, // window ends at t = 90 s, 10 s pre-onset
            votes: 1,
        }];
        let m = score_events(&alarms, &truth, 600.0, &scoring);
        assert_eq!(m.detected, 1);
        assert_eq!(m.latencies_s, vec![-10.0]);
    }

    #[test]
    fn metrics_merge_and_edge_cases() {
        let empty = EventMetrics::default();
        assert_eq!(empty.event_sensitivity(), None);
        assert_eq!(empty.false_alarms_per_24h(), None);
        assert_eq!(empty.median_latency_s(), None);
        let mut a = EventMetrics {
            n_events: 2,
            detected: 1,
            false_alarms: 3,
            monitored_s: 43_200.0,
            latencies_s: vec![4.0],
        };
        let b = EventMetrics {
            n_events: 1,
            detected: 1,
            false_alarms: 1,
            monitored_s: 43_200.0,
            latencies_s: vec![10.0],
        };
        a.merge(&b);
        assert_eq!(a.n_events, 3);
        assert_eq!(a.detected, 2);
        assert_eq!(a.false_alarms, 4);
        assert_eq!(a.event_sensitivity(), Some(2.0 / 3.0));
        assert_eq!(a.false_alarms_per_24h(), Some(4.0));
        // Even count → mean of the middle pair.
        assert_eq!(a.median_latency_s(), Some(7.0));
        // for_windows derives tolerances from the geometry.
        let s = EventScoring::for_windows(128.0, 5120);
        assert_eq!(s.pre_tolerance_s, 60.0);
        assert_eq!(s.post_tolerance_s, 40.0);
    }
}
