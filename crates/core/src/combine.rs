//! Sequential combination of all three optimisations (paper Fig 7).

use crate::bitwidth::homogeneous_evaluate;
use crate::config::FitConfig;
use crate::engine::{BitConfig, QuantizedEngine};
use crate::eval::{loso_evaluate, loso_evaluate_engine, BoxedEngine, LosoResult};
use crate::featsel::select_features;
use crate::trained::FloatPipeline;
use ecg_features::FeatureMatrix;
use hwmodel::pipeline::AcceleratorConfig;
use hwmodel::TechParams;

/// Parameters of the combined sequence; defaults are the paper's choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CombineParams {
    /// Feature-set size after reduction (paper: 30).
    pub n_features: usize,
    /// SV budget (paper: 68).
    pub sv_budget: usize,
    /// Feature bits (paper: 9).
    pub d_bits: u32,
    /// Coefficient bits (paper: 15).
    pub a_bits: u32,
}

impl Default for CombineParams {
    fn default() -> Self {
        CombineParams {
            n_features: 30,
            sv_budget: 68,
            d_bits: 9,
            a_bits: 15,
        }
    }
}

impl CombineParams {
    /// Selects the stage parameters from this dataset's own trade-off
    /// knees, the way the paper picked 30 features / 68 SVs off its
    /// Figs 4–5: the smallest feature count whose GM stays within
    /// `tol_gm` of the full set, then the smallest SV budget whose GM
    /// stays within `tol_gm` of the reduced-feature model. Bit widths
    /// stay at the paper's 9/15 (our Fig 6 plateau matches).
    pub fn auto(m: &FeatureMatrix, base_cfg: &FitConfig, tol_gm: f64) -> CombineParams {
        let base = loso_evaluate(m, base_cfg);
        let candidates_feat = [45usize, 40, 35, 30, 26, 23, 20, 15, 12]
            .into_iter()
            .filter(|&n| n < m.n_cols());
        let mut n_features = m.n_cols();
        let mut feat_gm = base.mean_gm;
        for n in candidates_feat {
            let kept = select_features(m, n);
            let cfg = FitConfig {
                features: Some(kept),
                ..base_cfg.clone()
            };
            let r = loso_evaluate(m, &cfg);
            if r.mean_gm >= base.mean_gm - tol_gm {
                n_features = n;
                feat_gm = r.mean_gm;
            } else {
                break;
            }
        }
        let kept = select_features(m, n_features);
        let cfg_feat = FitConfig {
            features: Some(kept),
            ..base_cfg.clone()
        };
        let free = loso_evaluate(m, &cfg_feat);
        let full_sv = free.mean_n_sv.max(4.0).round() as usize;
        let mut sv_budget = full_sv;
        for frac in [0.9, 0.75, 0.6, 0.5, 0.4, 0.3] {
            let budget = ((full_sv as f64 * frac).round() as usize).max(3);
            let cfg = FitConfig {
                sv_budget: Some(budget),
                ..cfg_feat.clone()
            };
            let r = loso_evaluate(m, &cfg);
            if r.mean_gm >= feat_gm - tol_gm {
                sv_budget = budget;
            } else {
                break;
            }
        }
        CombineParams {
            n_features,
            sv_budget,
            d_bits: 9,
            a_bits: 15,
        }
    }
}

/// One stage of the Fig 7 bar chart.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name (e.g. "feat. reduction").
    pub name: String,
    /// Mean GM over folds.
    pub gm: f64,
    /// Mean sensitivity.
    pub se: f64,
    /// Mean specificity.
    pub sp: f64,
    /// Energy per classification (nJ).
    pub energy_nj: f64,
    /// Area (mm²).
    pub area_mm2: f64,
    /// Mean SV count.
    pub n_sv: f64,
    /// Feature count.
    pub n_feat: usize,
    /// Feature bits of the costed design.
    pub d_bits: u32,
    /// Coefficient bits of the costed design.
    pub a_bits: u32,
}

impl StageReport {
    /// (gm, energy, area) normalised against a baseline stage — Fig 7
    /// plots everything relative to the 64-bit implementation.
    pub fn normalized_to(&self, base: &StageReport) -> (f64, f64, f64) {
        (
            self.gm / base.gm,
            self.energy_nj / base.energy_nj,
            self.area_mm2 / base.area_mm2,
        )
    }
}

/// One stage of the Fig 7 sequence, before costing.
enum StageSpec {
    /// Float pipeline at a uniform reference width.
    Float {
        name: &'static str,
        cfg: FitConfig,
        n_feat: usize,
        bits: u32,
    },
    /// Bit-accurate quantised engine at tailored widths.
    Quantized {
        name: &'static str,
        cfg: FitConfig,
        n_feat: usize,
        d_bits: u32,
        a_bits: u32,
    },
}

fn report_from(
    name: &str,
    r: &LosoResult,
    hw: AcceleratorConfig,
    tech: &TechParams,
) -> StageReport {
    let n_sv = if r.mean_n_sv.is_nan() {
        0.0
    } else {
        r.mean_n_sv
    };
    let cost = hw.cost(tech);
    StageReport {
        name: name.to_string(),
        gm: r.mean_gm,
        se: r.mean_se,
        sp: r.mean_sp,
        energy_nj: cost.energy_nj,
        area_mm2: cost.area_mm2,
        n_sv,
        n_feat: hw.n_feat,
        d_bits: hw.d_bits,
        a_bits: hw.a_bits,
    }
}

fn evaluate_stage(m: &FeatureMatrix, spec: &StageSpec, tech: &TechParams) -> StageReport {
    match spec {
        StageSpec::Float {
            name,
            cfg,
            n_feat,
            bits,
        } => {
            let r = crate::eval::loso_evaluate(m, cfg);
            report_from(
                name,
                &r,
                AcceleratorConfig::uniform(r.mean_n_sv_rounded(), *n_feat, *bits),
                tech,
            )
        }
        StageSpec::Quantized {
            name,
            cfg,
            n_feat,
            d_bits,
            a_bits,
        } => {
            let bits = BitConfig::new(*d_bits, *a_bits);
            let r = loso_evaluate_engine(m, |train| {
                let p = FloatPipeline::fit(train, cfg)?;
                Ok(Box::new(QuantizedEngine::from_pipeline(&p, bits)?) as BoxedEngine)
            });
            let n_sv = r.mean_n_sv_rounded();
            let hw = AcceleratorConfig {
                n_sv,
                n_feat: *n_feat,
                d_bits: *d_bits,
                a_bits: *a_bits,
                post_dot_truncate: 10,
                post_square_truncate: 10,
                lanes: 1,
            };
            report_from(name, &r, hw, tech)
        }
    }
}

/// Runs the full Fig 7 (left) sequence and returns one report per stage:
///
/// 1. 64-bit baseline (all features, un-budgeted),
/// 2. feature reduction (`n_features`),
/// 3. feature + SV reduction (`sv_budget`),
/// 4. feature + SV + bitwidth reduction (`d_bits`/`a_bits`, quantised
///    engine evaluated bit-accurately).
///
/// Stages run one after another with fold-parallel LOSO inside each: the
/// fold count is the larger grain (≥ core count on real cohorts), and
/// keeping a single parallel level avoids oversubscribing threads.
pub fn combined_sequence(
    m: &FeatureMatrix,
    base_cfg: &FitConfig,
    params: &CombineParams,
    tech: &TechParams,
) -> Vec<StageReport> {
    let kept = select_features(m, params.n_features.min(m.n_cols()));
    let cfg_feat = FitConfig {
        features: Some(kept.clone()),
        ..base_cfg.clone()
    };
    let cfg_sv = FitConfig {
        sv_budget: Some(params.sv_budget),
        ..cfg_feat.clone()
    };
    let stages = [
        StageSpec::Float {
            name: "64-bit baseline",
            cfg: base_cfg.clone(),
            n_feat: m.n_cols(),
            bits: 64,
        },
        StageSpec::Float {
            name: "feat. reduction",
            cfg: cfg_feat,
            n_feat: kept.len(),
            bits: 64,
        },
        StageSpec::Float {
            name: "feat., SVs reduction",
            cfg: cfg_sv.clone(),
            n_feat: kept.len(),
            bits: 64,
        },
        StageSpec::Quantized {
            name: "feat., SVs, bit reduction",
            cfg: cfg_sv,
            n_feat: kept.len(),
            d_bits: params.d_bits,
            a_bits: params.a_bits,
        },
    ];
    stages
        .iter()
        .map(|spec| evaluate_stage(m, spec, tech))
        .collect()
}

/// Fig 7 (right): homogeneous-scaling pipelines at the given uniform
/// widths (paper: 32 and 16, normalised against 64). Widths run one after
/// another; [`homogeneous_evaluate`] parallelises over folds internally,
/// which is the larger grain.
pub fn homogeneous_pipelines(
    m: &FeatureMatrix,
    base_cfg: &FitConfig,
    widths: &[u32],
    tech: &TechParams,
) -> Vec<StageReport> {
    widths
        .iter()
        .map(|&bits| {
            let (r, energy_nj, area_mm2) = homogeneous_evaluate(m, base_cfg, bits, tech);
            StageReport {
                name: format!("{bits}-bit homogeneous"),
                gm: r.mean_gm,
                se: r.mean_se,
                sp: r.mean_sp,
                energy_nj,
                area_mm2,
                n_sv: r.mean_n_sv,
                n_feat: m.n_cols(),
                d_bits: bits,
                a_bits: bits,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quickfeat::{synthetic_matrix, QuickFeatConfig};

    fn matrix() -> FeatureMatrix {
        synthetic_matrix(&QuickFeatConfig {
            n_sessions: 4,
            windows_per_session: 30,
            seed: 31,
            ..Default::default()
        })
    }

    #[test]
    fn sequence_produces_four_stages_with_shrinking_cost() {
        let m = matrix();
        let tech = TechParams::default();
        // Pick a budget that actually binds on this dataset.
        let free = crate::eval::loso_evaluate(&m, &FitConfig::default());
        let budget = ((free.mean_n_sv / 2.0).round() as usize).max(4);
        let params = CombineParams {
            n_features: 20,
            sv_budget: budget,
            d_bits: 9,
            a_bits: 15,
        };
        let stages = combined_sequence(&m, &FitConfig::default(), &params, &tech);
        assert_eq!(stages.len(), 4);
        // Energy and area must shrink at every stage.
        for w in stages.windows(2) {
            assert!(
                w[1].energy_nj < w[0].energy_nj,
                "{} -> {}: {} !< {}",
                w[0].name,
                w[1].name,
                w[1].energy_nj,
                w[0].energy_nj
            );
            assert!(w[1].area_mm2 < w[0].area_mm2);
        }
        // GM loss bounded (paper: ≤ 3.2 points; generous margin for the
        // tiny synthetic set).
        let (gm_ratio, e_ratio, a_ratio) = stages[3].normalized_to(&stages[0]);
        assert!(gm_ratio > 0.7, "gm ratio {gm_ratio}");
        assert!(e_ratio < 0.25, "energy ratio {e_ratio}");
        assert!(a_ratio < 0.25, "area ratio {a_ratio}");
    }

    #[test]
    fn homogeneous_pipelines_report_costs() {
        let m = matrix();
        let tech = TechParams::default();
        let reports = homogeneous_pipelines(&m, &FitConfig::default(), &[32, 16], &tech);
        assert_eq!(reports.len(), 2);
        assert!(reports[0].energy_nj > reports[1].energy_nj); // 32 > 16 bits
        assert!(reports[0].name.contains("32"));
    }

    #[test]
    fn default_params_are_papers() {
        let p = CombineParams::default();
        assert_eq!(
            (p.n_features, p.sv_budget, p.d_bits, p.a_bits),
            (30, 68, 9, 15)
        );
    }

    #[test]
    fn auto_params_respect_knees() {
        let m = matrix();
        let p = CombineParams::auto(&m, &FitConfig::default(), 0.05);
        assert!(p.n_features <= m.n_cols());
        assert!(p.n_features >= 12);
        assert!(p.sv_budget >= 3);
        assert_eq!((p.d_bits, p.a_bits), (9, 15));
        // The auto-selected sequence must not lose more GM than a
        // generous multiple of the tolerance at the pre-bit stages.
        let tech = TechParams::default();
        let stages = combined_sequence(&m, &FitConfig::default(), &p, &tech);
        assert!(stages[2].gm >= stages[0].gm - 0.25);
    }
}
