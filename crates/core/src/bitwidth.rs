//! Bitwidth exploration (paper Fig 6) and the homogeneous-scaling
//! reference pipelines (Fig 7, right).

use crate::config::FitConfig;
use crate::engine::{BitConfig, QuantizedEngine};
use crate::eval::{loso_evaluate_engine, Confusion, LosoResult};
use crate::parallel::par_map;
use crate::trained::FloatPipeline;
use ecg_features::FeatureMatrix;
use hwmodel::pipeline::AcceleratorConfig;
use hwmodel::TechParams;
use svm::ClassifierEngine;

/// One evaluated point of the (D_bits × A_bits) grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitPoint {
    /// Feature width.
    pub d_bits: u32,
    /// Coefficient width.
    pub a_bits: u32,
    /// Mean GM over folds.
    pub gm: f64,
    /// Mean sensitivity.
    pub se: f64,
    /// Mean specificity.
    pub sp: f64,
    /// Energy per classification (nJ) at the mean SV count.
    pub energy_nj: f64,
    /// Accelerator area (mm²).
    pub area_mm2: f64,
}

/// Per-fold grid evaluation payload: SV count, selected width and the
/// confusion of every (D, A) point on that fold's test session.
struct FoldGrid {
    n_sv: usize,
    n_feat: usize,
    cells: Vec<((u32, u32), Confusion)>,
}

/// Evaluates the full (D, A) grid under leave-one-session-out folds.
///
/// The float pipeline is trained **once per fold** and every grid point
/// re-quantises the same model, matching the paper's methodology (bitwidth
/// reduction does not retrain). Folds run on the parallel layer; per-point
/// confusions are merged in fixed session order, so the result is
/// independent of scheduling.
///
/// Folds whose training fails are skipped; the function returns an empty
/// vector if no fold trains.
pub fn bit_grid_evaluate(
    m: &FeatureMatrix,
    cfg: &FitConfig,
    d_values: &[u32],
    a_values: &[u32],
    tech: &TechParams,
) -> Vec<BitPoint> {
    let sessions = m.session_list();
    let fold_grids: Vec<Option<FoldGrid>> = par_map(&sessions, |&sid| {
        let (train, test) = m.split_by_session(sid);
        if train.n_rows() == 0 || test.n_rows() == 0 {
            return None;
        }
        let p = FloatPipeline::fit(&train, cfg).ok()?;
        let mut cells = Vec::with_capacity(d_values.len() * a_values.len());
        for &d in d_values {
            for &a in a_values {
                let Ok(engine) = QuantizedEngine::from_pipeline(&p, BitConfig::new(d, a)) else {
                    continue;
                };
                // Classify through the unified engine seam — the grid does
                // not care which backend produced the predictions.
                let engine: &dyn ClassifierEngine = &engine;
                let predictions = engine.classify_batch(&test.features);
                cells.push(((d, a), Confusion::from_batch(&test.labels, &predictions)));
            }
        }
        Some(FoldGrid {
            n_sv: p.model().n_support_vectors(),
            n_feat: p.feature_indices().len(),
            cells,
        })
    });

    // Per-(d,a): one confusion per fold (so GM can be fold-averaged),
    // merged in session order.
    let mut per_point: std::collections::HashMap<(u32, u32), Vec<Confusion>> =
        std::collections::HashMap::new();
    let mut n_sv_sum = 0usize;
    let mut n_folds = 0usize;
    let mut n_feat = m.n_cols();
    for grid in fold_grids.into_iter().flatten() {
        n_sv_sum += grid.n_sv;
        n_feat = grid.n_feat;
        n_folds += 1;
        for (key, confusion) in grid.cells {
            per_point.entry(key).or_default().push(confusion);
        }
    }
    if n_folds == 0 {
        return Vec::new();
    }
    let mean_sv = (n_sv_sum as f64 / n_folds as f64).round() as usize;
    let mut points: Vec<BitPoint> = per_point
        .into_iter()
        .map(|((d, a), folds)| {
            let mean = |vals: Vec<f64>| {
                if vals.is_empty() {
                    f64::NAN
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                }
            };
            let gm = mean(folds.iter().filter_map(|c| c.geometric_mean()).collect());
            let se = mean(folds.iter().filter_map(|c| c.sensitivity()).collect());
            let sp = mean(folds.iter().filter_map(|c| c.specificity()).collect());
            let hw = AcceleratorConfig {
                n_sv: mean_sv,
                n_feat,
                d_bits: d,
                a_bits: a,
                post_dot_truncate: 10,
                post_square_truncate: 10,
                lanes: 1,
            };
            let cost = hw.cost(tech);
            BitPoint {
                d_bits: d,
                a_bits: a,
                gm,
                se,
                sp,
                energy_nj: cost.energy_nj,
                area_mm2: cost.area_mm2,
            }
        })
        .collect();
    points.sort_by_key(|p| (p.d_bits, p.a_bits));
    points
}

/// Evaluates a homogeneous-scaling pipeline (single global feature scale,
/// uniform width, no truncation) at the given width — the paper's Fig 7
/// (right) comparison. Returns the LOSO result plus the HW cost.
pub fn homogeneous_evaluate(
    m: &FeatureMatrix,
    cfg: &FitConfig,
    bits: u32,
    tech: &TechParams,
) -> (LosoResult, f64, f64) {
    let hom_cfg = FitConfig {
        homogeneous_scale: true,
        ..cfg.clone()
    };
    // Same LOSO driver as the float path, different engine backend — the
    // interchangeability the ClassifierEngine seam exists for.
    let result = loso_evaluate_engine(m, |train| {
        let p = FloatPipeline::fit(train, &hom_cfg)?;
        let engine = QuantizedEngine::from_pipeline(&p, BitConfig::uniform(bits))?;
        Ok(Box::new(engine) as crate::eval::BoxedEngine)
    });
    let n_feat = hom_cfg
        .features
        .as_ref()
        .map(Vec::len)
        .unwrap_or(m.n_cols());
    let n_sv = result.mean_n_sv_rounded();
    let cost = AcceleratorConfig::uniform(n_sv, n_feat, bits).cost(tech);
    (result, cost.energy_nj, cost.area_mm2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quickfeat::{synthetic_matrix, QuickFeatConfig};

    fn matrix() -> FeatureMatrix {
        synthetic_matrix(&QuickFeatConfig {
            n_sessions: 4,
            windows_per_session: 30,
            seed: 5,
            ..Default::default()
        })
    }

    #[test]
    fn grid_shape_and_monotonicity() {
        let m = matrix();
        let tech = TechParams::default();
        let points = bit_grid_evaluate(&m, &FitConfig::default(), &[4, 9, 16], &[8, 15], &tech);
        assert_eq!(points.len(), 6);
        // Energy grows with D at fixed A.
        let e = |d: u32, a: u32| {
            points
                .iter()
                .find(|p| p.d_bits == d && p.a_bits == a)
                .unwrap()
                .energy_nj
        };
        assert!(e(16, 15) > e(9, 15));
        assert!(e(9, 15) > e(4, 15));
        // GM at generous widths beats the starved 4-bit point (or ties).
        let gm = |d: u32, a: u32| {
            points
                .iter()
                .find(|p| p.d_bits == d && p.a_bits == a)
                .unwrap()
                .gm
        };
        assert!(gm(16, 15) >= gm(4, 8) - 0.02);
    }

    #[test]
    fn homogeneous_needs_more_bits() {
        let m = matrix();
        let tech = TechParams::default();
        let (r16, _, _) = homogeneous_evaluate(&m, &FitConfig::default(), 16, &tech);
        let (r63, _, _) = homogeneous_evaluate(&m, &FitConfig::default(), 63, &tech);
        // Wide homogeneous pipeline ≈ float quality; narrow loses (or at
        // best ties) because small-range features starve.
        assert!(
            r63.mean_gm >= r16.mean_gm - 0.02,
            "{} vs {}",
            r63.mean_gm,
            r16.mean_gm
        );
    }

    #[test]
    fn homogeneous_cost_scales_with_bits() {
        let m = matrix();
        let tech = TechParams::default();
        let (_, e16, a16) = homogeneous_evaluate(&m, &FitConfig::default(), 16, &tech);
        let (_, e32, a32) = homogeneous_evaluate(&m, &FitConfig::default(), 32, &tech);
        assert!(e32 > e16);
        assert!(a32 > a16);
    }

    #[test]
    fn empty_matrix_gives_empty_grid() {
        let m = FeatureMatrix::default();
        let tech = TechParams::default();
        let pts = bit_grid_evaluate(&m, &FitConfig::default(), &[9], &[15], &tech);
        assert!(pts.is_empty());
    }
}
