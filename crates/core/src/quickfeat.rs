//! Fast synthetic feature matrices for tests and benchmarks.
//!
//! Generating the real 53-feature dataset requires rendering ECG and
//! running the full extraction chain, which is the right thing for the
//! experiment binaries but far too slow for unit tests. This module draws
//! feature vectors *directly* from a parametric model that mimics the
//! statistical structure the tailoring passes rely on:
//!
//! * a handful of informative dimensions separated nonlinearly (so the
//!   quadratic kernel beats the linear one),
//! * per-session baseline shifts (so leave-one-session-out is meaningful),
//! * groups of noisy copies of other features (so correlation-driven
//!   selection has real redundancy to find),
//! * heterogeneous feature scales spanning several powers of two (so
//!   per-feature range tailoring beats a homogeneous scale).

use ecg_features::FeatureMatrix;

/// Simple xorshift64* PRNG so this module needs no dependencies.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn normal(&mut self) -> f64 {
        // Box–Muller.
        let u1 = self.uniform().max(1e-12);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Parameters for the synthetic feature generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuickFeatConfig {
    /// Number of sessions (fold groups).
    pub n_sessions: usize,
    /// Windows per session.
    pub windows_per_session: usize,
    /// Fraction of windows that are seizures (paper ≈ 2–5%).
    pub positive_rate: f64,
    /// Total feature count (≥ 8; first 6 are informative).
    pub n_features: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for QuickFeatConfig {
    fn default() -> Self {
        QuickFeatConfig {
            n_sessions: 8,
            windows_per_session: 40,
            positive_rate: 0.12,
            n_features: 53,
            seed: 7,
        }
    }
}

/// Generates a synthetic labelled feature matrix.
///
/// # Panics
///
/// Panics when `n_features < 8` or no rows are requested.
pub fn synthetic_matrix(cfg: &QuickFeatConfig) -> FeatureMatrix {
    assert!(cfg.n_features >= 8, "need at least 8 features");
    assert!(cfg.n_sessions * cfg.windows_per_session > 0, "need rows");
    let mut rng = XorShift::new(cfg.seed);
    let mut m = FeatureMatrix {
        feature_names: (0..cfg.n_features).map(|j| format!("synth_{j}")).collect(),
        ..Default::default()
    };
    // Heterogeneous scales: cycle through several powers of two.
    let scales: Vec<f64> = (0..cfg.n_features)
        .map(|j| match j % 5 {
            0 => 64.0, // HR-like
            1 => 1.0,
            2 => 0.05, // RR-std-like
            3 => 4.0,
            _ => 0.5,
        })
        .collect();
    for s in 0..cfg.n_sessions {
        // Patient/session baseline: where this session's "resting state"
        // sits in the informative subspace.
        let patient = s % ((cfg.n_sessions / 2).max(1));
        let base: Vec<f64> = (0..6).map(|_| rng.normal() * 0.8).collect();
        for _ in 0..cfg.windows_per_session {
            let positive = rng.uniform() < cfg.positive_rate;
            let label = if positive { 1i8 } else { -1i8 };
            // Informative dims: seizures move *radially* from the
            // patient baseline (norm grows), which a quadratic surface
            // separates but a single linear threshold cannot across
            // patients.
            let mut info = [0.0f64; 6];
            let shift = if positive {
                1.9 + 0.5 * rng.normal().abs()
            } else {
                0.0
            };
            for (k, v) in info.iter_mut().enumerate() {
                let dir = if k % 2 == 0 { 1.0 } else { -1.0 };
                *v = base[k] + dir * shift * (0.5 + 0.12 * k as f64) + 0.45 * rng.normal();
            }
            let mut row = vec![0.0f64; cfg.n_features];
            for (k, &v) in info.iter().enumerate() {
                row[k] = v;
            }
            // Dims 6..8: pure noise (irrelevant features).
            for v in row.iter_mut().take(8).skip(6) {
                *v = rng.normal();
            }
            // Remaining dims: noisy copies of earlier dims in blocks of 4
            // (high mutual correlation, like the paper's PSD block).
            for j in 8..cfg.n_features {
                let src = j % 6;
                row[j] = 0.92 * row[src] + 0.25 * rng.normal();
            }
            // Apply heterogeneous physical scales.
            for (v, &s) in row.iter_mut().zip(scales.iter()) {
                *v *= s;
            }
            m.push_row(&row, label, s, patient);
        }
    }
    // Guarantee at least one positive per session half (folds need both
    // classes in training); flip the first row of offending sessions.
    for s in 0..cfg.n_sessions {
        let any_pos = (0..m.n_rows()).any(|i| m.session_ids[i] == s && m.labels[i] > 0);
        if !any_pos {
            if let Some(i) = (0..m.n_rows()).find(|&i| m.session_ids[i] == s) {
                m.labels[i] = 1;
                for (k, v) in m.features.row_mut(i).iter_mut().take(6).enumerate() {
                    *v += if k % 2 == 0 { 2.0 } else { -2.0 } * scales[k];
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_and_reproducibility() {
        let cfg = QuickFeatConfig::default();
        let a = synthetic_matrix(&cfg);
        let b = synthetic_matrix(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.n_rows(), 8 * 40);
        assert_eq!(a.n_cols(), 53);
        assert_eq!(a.session_list().len(), 8);
        assert!(a.n_positive() > 0);
        assert!(a.n_positive() < a.n_rows() / 2);
    }

    #[test]
    fn every_session_has_a_positive() {
        let m = synthetic_matrix(&QuickFeatConfig {
            positive_rate: 0.02,
            seed: 3,
            ..Default::default()
        });
        for s in m.session_list() {
            let pos = (0..m.n_rows())
                .filter(|&i| m.session_ids[i] == s && m.labels[i] > 0)
                .count();
            assert!(pos >= 1, "session {s} has no positives");
        }
    }

    #[test]
    fn redundant_block_is_correlated() {
        let m = synthetic_matrix(&QuickFeatConfig::default());
        // Column 8 copies column 2 (8 % 6): expect strong correlation.
        let c8 = m.column(8);
        let c2 = m.column(2);
        let rho = biodsp::stats::pearson(&c8, &c2).unwrap();
        assert!(rho.abs() > 0.7, "rho {rho}");
    }

    #[test]
    fn scales_are_heterogeneous() {
        let m = synthetic_matrix(&QuickFeatConfig::default());
        let spread = |j: usize| biodsp::stats::std_dev(&m.column(j));
        // Feature 0 (scale 64) vs feature 2 (scale 0.05).
        assert!(spread(0) / spread(2) > 100.0);
    }

    #[test]
    #[should_panic(expected = "at least 8")]
    fn validates_feature_count() {
        let _ = synthetic_matrix(&QuickFeatConfig {
            n_features: 4,
            ..Default::default()
        });
    }
}
