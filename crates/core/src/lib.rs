#![deny(unsafe_op_in_unsafe_fn)]
//! # seizure-core — tailored SVM inference for ECG-based epilepsy monitors
//!
//! The primary contribution of Ferretti et al. (DATE 2019), reproduced in
//! full: a quadratic-kernel SVM seizure detector whose inference engine is
//! tailored along three composable approximation axes, each trading a
//! small amount of classification performance (geometric mean of
//! sensitivity and specificity) for large energy/area savings in the
//! accelerator of Fig 2:
//!
//! 1. **Feature-set reduction** ([`featsel`]) — Pearson-correlation-driven
//!    iterative removal of redundant features (paper Fig 3/4);
//! 2. **Support-vector budgeting** ([`budget`]) — Eq 5 norm-based removal
//!    of insignificant SVs with re-training (Fig 5);
//! 3. **Bitwidth tailoring** ([`bitwidth`], [`engine`]) — per-feature
//!    power-of-two ranges (Eq 6) with `D_bits` feature / `A_bits`
//!    coefficient quantisation and LSB truncation after the dot product
//!    and the squarer (Fig 6);
//!
//! plus their sequential combination (Fig 7) in [`combine`].
//!
//! ## Data layout and execution model
//!
//! Every layer operates on the workspace-wide dense row-major
//! [`DenseMatrix`](ecg_features::DenseMatrix) container — feature blocks,
//! normalised training sets, SV memories and quantised SV code images are
//! all single contiguous allocations. Every inference backend
//! ([`svm::SvmModel`], [`trained::FloatPipeline`],
//! [`engine::QuantizedEngine`]) implements the unified
//! [`svm::ClassifierEngine`] trait, whose batch entry points
//! (`decision_batch` / `classify_batch`) stream whole test batches over
//! contiguous rows instead of dispatching row by row — and whose row
//! entry points drive the streaming subsystem ([`stream`]), where chunked
//! samples become per-window decisions bit-identical to the batch path.
//!
//! On top of that layout sits the parallel evaluation layer
//! ([`parallel`]): leave-one-session-out folds ([`eval`]), design-space
//! sweep points ([`explore`]), bit-grid folds ([`bitwidth`]) and the
//! Fig 7 stages ([`combine`]) fan out across OS threads. Folds and points
//! are independent and aggregation order is fixed, so every parallel path
//! is bit-identical to its sequential twin ([`eval::loso_evaluate`] vs
//! [`eval::loso_evaluate_serial`] — pinned by the test suite).
//!
//! ## Module map
//!
//! * [`assemble`] — synthetic cohort ([`ecg_sim`]) → labelled 53-feature
//!   dataset ([`ecg_features`]);
//! * [`trained`] — the float reference pipeline ([`trained::FloatPipeline`]);
//! * [`engine`] — its bit-accurate integer twin
//!   ([`engine::QuantizedEngine`]) that [`hwmodel`] prices in 40 nm;
//! * [`eval`] — paper Eq 2 metrics under parallel LOSO cross-validation;
//! * [`explore`], [`bitwidth`], [`combine`] — the Figs 4–7 design-space
//!   machinery;
//! * [`parallel`] — the deterministic thread-fan-out substrate;
//! * [`stream`] — incremental inference: ring buffer → window scheduler →
//!   scratch-reusing extraction → any [`svm::ClassifierEngine`], with
//!   per-window latency histograms, an optional online alarm stage and
//!   parallel multi-patient fan-out;
//! * [`fleet`] — fleet-scale session multiplexing: N per-patient
//!   sessions behind one scheduler, ready feature rows micro-batched
//!   across patients into single `decision_batch` calls, with an
//!   explicit overload/backpressure policy (including watermark
//!   admission with per-patient fair shedding);
//! * [`clock`] — the serving clock: [`clock::FleetClock`] tick driver
//!   (fixed flush cadence over a wall or deterministic virtual time
//!   source, per-tick deadline accounting) and the allocation-free
//!   log-bucketed [`clock::LatencyHistogram`] behind every latency
//!   stat;
//! * [`alarm`] — the event-level alarm subsystem: k-of-n alarm state
//!   machine with refractory hold-off, ground-truth event extraction and
//!   event metrics (event sensitivity, FA/24h, detection latency), all on
//!   the single shared [`alarm::decision_is_seizure`] boundary;
//! * [`quickfeat`] — fast synthetic feature matrices for tests/benches.
//!
//! ## Example
//!
//! ```no_run
//! use ecg_sim::dataset::{DatasetSpec, Scale};
//! use seizure_core::assemble::build_feature_matrix;
//! use seizure_core::config::FitConfig;
//! use seizure_core::eval::loso_evaluate;
//!
//! let spec = DatasetSpec::new(Scale::Tiny, 42);
//! let matrix = build_feature_matrix(&spec);
//! // Folds run in parallel; the result is bit-identical to
//! // `loso_evaluate_serial`.
//! let result = loso_evaluate(&matrix, &FitConfig::default());
//! println!("GM = {:.1}%", result.mean_gm * 100.0);
//! ```

pub mod alarm;
pub mod assemble;
pub mod bitwidth;
pub mod budget;
pub mod clock;
pub mod combine;
pub mod config;
pub mod engine;
pub mod error;
pub mod eval;
pub mod explore;
pub mod featsel;
pub mod fleet;
pub mod kernels;
pub mod parallel;
pub mod quickfeat;
pub mod stream;
pub mod trained;

pub use alarm::{
    decision_is_seizure, AlarmConfig, AlarmEvent, AlarmStateMachine, DroppedPolicy, EventMetrics,
    EventScoring, TruthEvent,
};
pub use biodsp::ExtractPrecision;
pub use clock::{ClockSource, FleetClock, LatencyHistogram, TickConfig, TickOutcome};
pub use config::FitConfig;
pub use engine::{BitConfig, QuantizedEngine};
pub use error::CoreError;
pub use eval::{
    loso_evaluate, loso_evaluate_events, loso_evaluate_serial, LosoEventResult, LosoResult, Metrics,
};
pub use fleet::{
    FleetConfig, FleetDecision, FleetFlush, FleetScheduler, FleetStats, OverloadPolicy, PatientId,
    Watermarks,
};
pub use stream::{StreamConfig, StreamOutcome, StreamStats, StreamingSession, WindowDecision};
pub use trained::FloatPipeline;
