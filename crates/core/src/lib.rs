//! # seizure-core — tailored SVM inference for ECG-based epilepsy monitors
//!
//! The primary contribution of Ferretti et al. (DATE 2019), reproduced in
//! full: a quadratic-kernel SVM seizure detector whose inference engine is
//! tailored along three composable approximation axes, each trading a
//! small amount of classification performance (geometric mean of
//! sensitivity and specificity) for large energy/area savings in the
//! accelerator of Fig 2:
//!
//! 1. **Feature-set reduction** ([`featsel`]) — Pearson-correlation-driven
//!    iterative removal of redundant features (paper Fig 3/4);
//! 2. **Support-vector budgeting** ([`budget`]) — Eq 5 norm-based removal
//!    of insignificant SVs with re-training (Fig 5);
//! 3. **Bitwidth tailoring** ([`bitwidth`], [`engine`]) — per-feature
//!    power-of-two ranges (Eq 6) with `D_bits` feature / `A_bits`
//!    coefficient quantisation and LSB truncation after the dot product
//!    and the squarer (Fig 6);
//!
//! plus their sequential combination (Fig 7) in [`combine`].
//!
//! [`trained::FloatPipeline`] is the float reference implementation;
//! [`engine::QuantizedEngine`] is the bit-accurate integer twin that
//! [`hwmodel`] prices in 40 nm. [`eval`] implements the paper's Eq 2
//! metrics under leave-one-session-out cross-validation, and [`assemble`]
//! turns the synthetic cohort of [`ecg_sim`] into the 53-feature dataset
//! of [`ecg_features`].
//!
//! ## Example
//!
//! ```no_run
//! use ecg_sim::dataset::{DatasetSpec, Scale};
//! use seizure_core::assemble::build_feature_matrix;
//! use seizure_core::config::FitConfig;
//! use seizure_core::eval::loso_evaluate;
//!
//! let spec = DatasetSpec::new(Scale::Tiny, 42);
//! let matrix = build_feature_matrix(&spec);
//! let result = loso_evaluate(&matrix, &FitConfig::default());
//! println!("GM = {:.1}%", result.mean_gm * 100.0);
//! ```

pub mod assemble;
pub mod bitwidth;
pub mod budget;
pub mod combine;
pub mod config;
pub mod engine;
pub mod error;
pub mod eval;
pub mod explore;
pub mod featsel;
pub mod quickfeat;
pub mod trained;

pub use config::FitConfig;
pub use engine::{BitConfig, QuantizedEngine};
pub use error::CoreError;
pub use eval::{loso_evaluate, LosoResult, Metrics};
pub use trained::FloatPipeline;
