//! Design-space sweeps: feature count (paper Fig 4) and SV budget
//! (paper Fig 5).
//!
//! Sweep points are mutually independent, so both sweeps fan out on the
//! parallel layer; each point's LOSO evaluation runs serially inside its
//! worker to keep the total thread count bounded by the point count.

use crate::config::FitConfig;
use crate::eval::{loso_evaluate_serial, LosoResult};
use crate::featsel::{correlation_matrix, keep_n};
use crate::parallel::par_map;
use ecg_features::FeatureMatrix;
use hwmodel::pipeline::AcceleratorConfig;
use hwmodel::TechParams;

/// Hardware cost of one sweep point's matching design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCost {
    /// Energy per classification (nJ).
    pub energy_nj: f64,
    /// Accelerator area (mm²).
    pub area_mm2: f64,
}

/// One point of a 1-D sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Swept parameter value (feature count or SV budget).
    pub param: usize,
    /// LOSO evaluation at this point.
    pub result: LosoResult,
    /// Hardware cost of the matching design, or `None` when every fold of
    /// the point was skipped (no trained model ⇒ no meaningful design to
    /// cost). Skipped points carry no bogus energy/area numbers.
    pub cost: Option<SweepCost>,
}

impl SweepPoint {
    /// Whether this point evaluated at least one fold.
    pub fn is_costed(&self) -> bool {
        self.cost.is_some()
    }

    /// Energy per classification, when the point was costed.
    pub fn energy_nj(&self) -> Option<f64> {
        self.cost.map(|c| c.energy_nj)
    }

    /// Accelerator area, when the point was costed.
    pub fn area_mm2(&self) -> Option<f64> {
        self.cost.map(|c| c.area_mm2)
    }
}

/// Builds the hardware cost of a sweep point. Figs 4 and 5 use the paper's
/// 64-bit reference datapath, so that is the default width here.
///
/// Returns `None` — an explicit skipped-point marker — when the sweep
/// point has no successful folds (its `mean_n_sv` is NaN): rounding a
/// NaN-guarded placeholder into an SV count would price a design that was
/// never trained.
fn cost_of(result: &LosoResult, n_feat: usize, tech: &TechParams) -> Option<SweepCost> {
    if result.folds.is_empty() || !result.mean_n_sv.is_finite() {
        return None;
    }
    let n_sv = result.mean_n_sv.round() as usize;
    let cost = AcceleratorConfig::uniform(n_sv, n_feat, 64).cost(tech);
    Some(SweepCost {
        energy_nj: cost.energy_nj,
        area_mm2: cost.area_mm2,
    })
}

/// Fig 4: sweep the feature-set size using correlation-driven reduction,
/// points in parallel. The correlation matrix is computed once over the
/// full dataset (as the paper does) and each requested size retrains per
/// fold.
pub fn feature_sweep(
    m: &FeatureMatrix,
    sizes: &[usize],
    cfg: &FitConfig,
    tech: &TechParams,
) -> Vec<SweepPoint> {
    let corr = correlation_matrix(m);
    par_map(sizes, |&n| {
        let kept = keep_n(&corr, n);
        let fit = FitConfig {
            features: Some(kept),
            ..cfg.clone()
        };
        let result = loso_evaluate_serial(m, &fit);
        let cost = cost_of(&result, n, tech);
        SweepPoint {
            param: n,
            result,
            cost,
        }
    })
}

/// Fig 5: sweep the SV budget (Eq 5 pruning + re-training per fold),
/// points in parallel.
pub fn sv_budget_sweep(
    m: &FeatureMatrix,
    budgets: &[usize],
    cfg: &FitConfig,
    tech: &TechParams,
) -> Vec<SweepPoint> {
    let n_feat = cfg.features.as_ref().map(Vec::len).unwrap_or(m.n_cols());
    par_map(budgets, |&b| {
        let fit = FitConfig {
            sv_budget: Some(b),
            ..cfg.clone()
        };
        let result = loso_evaluate_serial(m, &fit);
        let cost = cost_of(&result, n_feat, tech);
        SweepPoint {
            param: b,
            result,
            cost,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::loso_evaluate;
    use crate::quickfeat::{synthetic_matrix, QuickFeatConfig};

    fn matrix() -> FeatureMatrix {
        synthetic_matrix(&QuickFeatConfig {
            n_sessions: 4,
            windows_per_session: 30,
            seed: 21,
            ..Default::default()
        })
    }

    #[test]
    fn feature_sweep_reduces_cost_monotonically() {
        let m = matrix();
        let tech = TechParams::default();
        let pts = feature_sweep(&m, &[53, 20, 8], &FitConfig::default(), &tech);
        assert_eq!(pts.len(), 3);
        let energy = |i: usize| pts[i].energy_nj().expect("costed point");
        let area = |i: usize| pts[i].area_mm2().expect("costed point");
        assert!(energy(0) > energy(2) * 0.8, "energy should shrink");
        assert!(area(0) > area(2));
        // Moderate reduction keeps GM in the same regime (plateau).
        assert!(
            pts[1].result.mean_gm > pts[0].result.mean_gm - 0.25,
            "{} vs {}",
            pts[1].result.mean_gm,
            pts[0].result.mean_gm
        );
    }

    #[test]
    fn sv_sweep_respects_budgets() {
        let m = matrix();
        let tech = TechParams::default();
        let free = loso_evaluate(&m, &FitConfig::default());
        let big = free.mean_n_sv.round() as usize;
        let budgets = [big.max(4), (big / 2).max(3)];
        let pts = sv_budget_sweep(&m, &budgets, &FitConfig::default(), &tech);
        assert_eq!(pts.len(), 2);
        assert!(pts[1].result.mean_n_sv <= budgets[1] as f64 + 1e-9);
        assert!(pts[1].energy_nj().unwrap() < pts[0].energy_nj().unwrap());
    }

    #[test]
    fn sweep_points_carry_fold_details() {
        let m = matrix();
        let tech = TechParams::default();
        let pts = feature_sweep(&m, &[10], &FitConfig::default(), &tech);
        assert!(!pts[0].result.folds.is_empty());
        assert_eq!(pts[0].param, 10);
        assert!(pts[0].is_costed());
    }

    #[test]
    fn zero_fold_points_are_marked_skipped_not_costed() {
        // Single-class labels: every fold's training fails, mean_n_sv is
        // NaN, and the point must carry no cost numbers at all.
        let mut m = matrix();
        for l in &mut m.labels {
            *l = -1;
        }
        let tech = TechParams::default();
        let pts = feature_sweep(&m, &[10], &FitConfig::default(), &tech);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].result.folds.is_empty());
        assert!(pts[0].result.mean_n_sv.is_nan());
        assert!(!pts[0].is_costed());
        assert_eq!(pts[0].energy_nj(), None);
        assert_eq!(pts[0].area_mm2(), None);
    }

    #[test]
    fn parallel_sweep_matches_serial_loso_points() {
        // Each sweep point must equal an independently-computed serial
        // evaluation of the same configuration.
        let m = matrix();
        let tech = TechParams::default();
        let sizes = [20usize, 8];
        let pts = feature_sweep(&m, &sizes, &FitConfig::default(), &tech);
        let corr = crate::featsel::correlation_matrix(&m);
        for (p, &n) in pts.iter().zip(sizes.iter()) {
            let cfg = FitConfig {
                features: Some(crate::featsel::keep_n(&corr, n)),
                ..FitConfig::default()
            };
            let reference = crate::eval::loso_evaluate_serial(&m, &cfg);
            assert_eq!(p.result, reference, "sweep point {n}");
        }
    }
}
