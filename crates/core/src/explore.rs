//! Design-space sweeps: feature count (paper Fig 4) and SV budget
//! (paper Fig 5).

use crate::config::FitConfig;
use crate::eval::{loso_evaluate, LosoResult};
use crate::featsel::{correlation_matrix, keep_n};
use ecg_features::FeatureMatrix;
use hwmodel::pipeline::AcceleratorConfig;
use hwmodel::TechParams;

/// One point of a 1-D sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Swept parameter value (feature count or SV budget).
    pub param: usize,
    /// LOSO evaluation at this point.
    pub result: LosoResult,
    /// Energy per classification (nJ) of the matching design.
    pub energy_nj: f64,
    /// Accelerator area (mm²).
    pub area_mm2: f64,
}

/// Builds the hardware cost of a sweep point. Figs 4 and 5 use the paper's
/// 64-bit reference datapath, so that is the default width here.
fn cost_of(result: &LosoResult, n_feat: usize, tech: &TechParams) -> (f64, f64) {
    let n_sv = if result.mean_n_sv.is_nan() { 0 } else { result.mean_n_sv.round() as usize };
    let cost = AcceleratorConfig::uniform(n_sv, n_feat, 64).cost(tech);
    (cost.energy_nj, cost.area_mm2)
}

/// Fig 4: sweep the feature-set size using correlation-driven reduction.
/// The correlation matrix is computed once over the full dataset (as the
/// paper does) and each requested size retrains per fold.
pub fn feature_sweep(
    m: &FeatureMatrix,
    sizes: &[usize],
    cfg: &FitConfig,
    tech: &TechParams,
) -> Vec<SweepPoint> {
    let corr = correlation_matrix(m);
    sizes
        .iter()
        .map(|&n| {
            let kept = keep_n(&corr, n);
            let fit = FitConfig { features: Some(kept), ..cfg.clone() };
            let result = loso_evaluate(m, &fit);
            let (energy_nj, area_mm2) = cost_of(&result, n, tech);
            SweepPoint { param: n, result, energy_nj, area_mm2 }
        })
        .collect()
}

/// Fig 5: sweep the SV budget (Eq 5 pruning + re-training per fold).
pub fn sv_budget_sweep(
    m: &FeatureMatrix,
    budgets: &[usize],
    cfg: &FitConfig,
    tech: &TechParams,
) -> Vec<SweepPoint> {
    let n_feat = cfg.features.as_ref().map(Vec::len).unwrap_or(m.n_cols());
    budgets
        .iter()
        .map(|&b| {
            let fit = FitConfig { sv_budget: Some(b), ..cfg.clone() };
            let result = loso_evaluate(m, &fit);
            let (energy_nj, area_mm2) = cost_of(&result, n_feat, tech);
            SweepPoint { param: b, result, energy_nj, area_mm2 }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quickfeat::{synthetic_matrix, QuickFeatConfig};

    fn matrix() -> FeatureMatrix {
        synthetic_matrix(&QuickFeatConfig {
            n_sessions: 4,
            windows_per_session: 30,
            seed: 21,
            ..Default::default()
        })
    }

    #[test]
    fn feature_sweep_reduces_cost_monotonically() {
        let m = matrix();
        let tech = TechParams::default();
        let pts = feature_sweep(&m, &[53, 20, 8], &FitConfig::default(), &tech);
        assert_eq!(pts.len(), 3);
        assert!(pts[0].energy_nj > pts[2].energy_nj * 0.8, "energy should shrink");
        assert!(pts[0].area_mm2 > pts[2].area_mm2);
        // Moderate reduction keeps GM in the same regime (plateau).
        assert!(
            pts[1].result.mean_gm > pts[0].result.mean_gm - 0.25,
            "{} vs {}",
            pts[1].result.mean_gm,
            pts[0].result.mean_gm
        );
    }

    #[test]
    fn sv_sweep_respects_budgets() {
        let m = matrix();
        let tech = TechParams::default();
        let free = loso_evaluate(&m, &FitConfig::default());
        let big = free.mean_n_sv.round() as usize;
        let budgets = [big.max(4), (big / 2).max(3)];
        let pts = sv_budget_sweep(&m, &budgets, &FitConfig::default(), &tech);
        assert_eq!(pts.len(), 2);
        assert!(pts[1].result.mean_n_sv <= budgets[1] as f64 + 1e-9);
        assert!(pts[1].energy_nj < pts[0].energy_nj);
    }

    #[test]
    fn sweep_points_carry_fold_details() {
        let m = matrix();
        let tech = TechParams::default();
        let pts = feature_sweep(&m, &[10], &FitConfig::default(), &tech);
        assert!(!pts[0].result.folds.is_empty());
        assert_eq!(pts[0].param, 10);
    }
}
