//! Integer micro-kernels for the quantised datapath.
//!
//! [`crate::engine::QuantizedEngine`] historically multiply-accumulated
//! every element in `i128`, which made the "cheap" quantised path ~3×
//! *slower* than the float one in software. This module supplies the fast
//! twin: when the worst-case dot-product accumulator provably fits in an
//! `i64` (true for every design point of the paper's 2–16-bit grid), the
//! per-SV dot runs as a 4-lane unrolled `i64` loop and widens to `i128`
//! only for the square-and-α stage. Integer addition is associative, so
//! the fast path is **bit-identical** to the `i128` reference by
//! construction — a property the exhaustive boundary sweep below pins.
//!
//! ## The threshold rule
//!
//! Feature codes are bounded by `|code| ≤ 2^(D_bits−1)`, so one product
//! is `≤ 2^(2(D_bits−1))` and the n-term dot is
//! `≤ 2^(2(D_bits−1) + ceil_log2(n_feat))`. The kernel's `+1` constant
//! lives at `2^(2(guard + D_bits − 1))`, which dominates, giving the
//! worst-case magnitude
//!
//! ```text
//! |dot + one| ≤ 2^(2·(guard + D_bits − 1) + ceil_log2(n_feat) + 1)
//! ```
//!
//! [`quant_dot_fits_i64`] checks the exact worst case that bound
//! abbreviates (`n_feat·2^(2(D_bits−1)) + 2^(2(guard+D_bits−1))` against
//! `i64::MAX`, in `u128`), so boundary widths the log form would round
//! away are admitted exactly. At the paper's shape (guard = 3,
//! n_feat = 53) the rule admits `D_bits ≤ 29` — the whole 2–16-bit
//! exploration grid runs on the fast path with headroom to spare.

// lint: allow-file(hot-index) — quantised-kernel idiom: subscripts walk
// same-length code/alpha panels whose widths are validated at engine build.
use ecg_features::DenseMatrix;
use fixedpoint::fixed::{truncate_lsbs, truncate_lsbs_i64};

/// `ceil(log2(n))` for accumulator-width bookkeeping (0 for `n ≤ 1`).
pub fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Whether the quantised dot accumulator (including the `+1` constant at
/// product scale) provably fits in an `i64` — the i64/i128 dispatch rule.
///
/// The readable form is `2·(guard + D_bits − 1) + ceil_log2(n_feat)`
/// fitting in 63 bits; what is actually checked is the exact worst case
/// that bound abbreviates,
///
/// ```text
/// n_feat · 2^(2(D_bits−1))  +  2^(2(guard + D_bits − 1))  ≤  i64::MAX
/// ```
///
/// (every code pinned at `±2^(D_bits−1)` with all products aligned, plus
/// the `+1` constant), evaluated in `u128` so the boundary width is
/// admitted exactly rather than rounded away.
pub fn quant_dot_fits_i64(guard: i32, d_bits: u32, n_feat: usize) -> bool {
    if guard < 0 || d_bits == 0 {
        return false;
    }
    let prod_exp = 2 * (d_bits - 1);
    let one_exp = 2 * (guard as u32 + d_bits - 1);
    if prod_exp > 62 || one_exp > 62 {
        return false;
    }
    let worst = (n_feat as u128) * (1u128 << prod_exp) + (1u128 << one_exp);
    worst <= i64::MAX as u128
}

/// 4-lane unrolled `i64` dot product over feature codes. Callers must
/// guarantee the accumulator bound ([`quant_dot_fits_i64`]); within it,
/// the lane split cannot overflow and the result equals [`dot_i128`]
/// bit for bit (integer addition is associative).
///
/// # Panics
///
/// Panics in debug builds when lengths differ.
#[inline]
pub fn dot_i64(a: &[i64], b: &[i64]) -> i64 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0i64, 0i64, 0i64, 0i64);
    for (x, y) in (&mut ca).zip(&mut cb) {
        s0 += x[0] * y[0];
        s1 += x[1] * y[1];
        s2 += x[2] * y[2];
        s3 += x[3] * y[3];
    }
    let mut tail = 0i64;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Exact `i128` reference dot over feature codes (the historical
/// accumulator, kept as the correctness oracle above the threshold).
///
/// # Panics
///
/// Panics in debug builds when lengths differ.
#[inline]
pub fn dot_i128(a: &[i64], b: &[i64]) -> i128 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc: i128 = 0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += (x as i128) * (y as i128);
    }
    acc
}

/// Fast-path decision accumulator: `i64` dots, widening to `i128` at the
/// squarer. `one` is the kernel's `+1` constant at product scale
/// (`2^(2(guard + D_bits − 1))`, guaranteed representable whenever
/// [`quant_dot_fits_i64`] holds); `t1`/`t2` are the post-dot/post-square
/// LSB truncations. Bit-identical to [`decision_code_i128`] within the
/// threshold.
pub fn decision_code_i64(
    codes: &[i64],
    sv_codes: &DenseMatrix<i64>,
    alpha_codes: &[i64],
    one: i64,
    t1: u32,
    t2: u32,
    bias_code: i128,
) -> i128 {
    let mut acc2: i128 = 0;
    for (sv, &ac) in sv_codes.rows().zip(alpha_codes.iter()) {
        let with_one = dot_i64(codes, sv) + one;
        let k_in = truncate_lsbs_i64(with_one, t1) as i128;
        let squared = truncate_lsbs(k_in * k_in, t2);
        acc2 += (ac as i128) * squared;
    }
    acc2 + bias_code
}

/// Exact `i128` reference decision accumulator — the historical datapath,
/// used above the i64 threshold and as the equivalence oracle.
pub fn decision_code_i128(
    codes: &[i64],
    sv_codes: &DenseMatrix<i64>,
    alpha_codes: &[i64],
    one: i128,
    t1: u32,
    t2: u32,
    bias_code: i128,
) -> i128 {
    let mut acc2: i128 = 0;
    for (sv, &ac) in sv_codes.rows().zip(alpha_codes.iter()) {
        let with_one = dot_i128(codes, sv) + one;
        let k_in = truncate_lsbs(with_one, t1);
        let squared = truncate_lsbs(k_in * k_in, t2);
        acc2 += (ac as i128) * squared;
    }
    acc2 + bias_code
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* code generator — deterministic sweeps, no `rand`.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform signed code in `[-2^(d-1), 2^(d-1) - 1]` — the exact
        /// range a `d`-bit saturating quantiser emits.
        fn code(&mut self, d_bits: u32) -> i64 {
            let span = 1u64 << d_bits;
            (self.next() % span) as i64 - (1i64 << (d_bits - 1))
        }

        fn codes(&mut self, d_bits: u32, n: usize) -> Vec<i64> {
            (0..n).map(|_| self.code(d_bits)).collect()
        }
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(53), 6);
        assert_eq!(ceil_log2(64), 6);
        assert_eq!(ceil_log2(65), 7);
    }

    #[test]
    fn threshold_rule_at_paper_shape() {
        // guard = 3, n_feat = 53: the rule admits D_bits ≤ 29 (the whole
        // 2..16 exploration grid with room to spare) and rejects 30+.
        for d in 2..=29 {
            assert!(quant_dot_fits_i64(3, d, 53), "d_bits {d} should fit");
        }
        for d in 30..=40 {
            assert!(!quant_dot_fits_i64(3, d, 53), "d_bits {d} should not fit");
        }
        // The exact u128 check catches the case the log form would round
        // away: guard 0, one feature, D_bits 32 sums to exactly 2^63.
        assert!(quant_dot_fits_i64(0, 31, 1));
        assert!(!quant_dot_fits_i64(0, 32, 1));
        assert!(!quant_dot_fits_i64(-1, 9, 53));
    }

    #[test]
    fn dot_i64_matches_reference_on_random_codes() {
        let mut rng = XorShift(0x5eed);
        for d_bits in [2u32, 9, 16, 28, 29] {
            for n in [1usize, 3, 4, 5, 8, 53] {
                if !quant_dot_fits_i64(0, d_bits, n) {
                    continue;
                }
                for _ in 0..50 {
                    let a = rng.codes(d_bits, n);
                    let b = rng.codes(d_bits, n);
                    assert_eq!(
                        dot_i64(&a, &b) as i128,
                        dot_i128(&a, &b),
                        "d_bits {d_bits}, n {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn dot_i64_survives_saturated_worst_case() {
        // Every code pinned at the extreme of its width, signs arranged
        // so all products align positive — the exact magnitude the
        // threshold rule budgets for. No overflow, bit-equal result.
        for d_bits in [2u32, 9, 16, 28, 29] {
            for n in [1usize, 2, 4, 53] {
                if !quant_dot_fits_i64(0, d_bits, n) {
                    continue;
                }
                let lo = -(1i64 << (d_bits - 1));
                let hi = (1i64 << (d_bits - 1)) - 1;
                for (a_val, b_val) in [(lo, lo), (hi, hi), (lo, hi), (hi, lo)] {
                    let a = vec![a_val; n];
                    let b = vec![b_val; n];
                    assert_eq!(
                        dot_i64(&a, &b) as i128,
                        dot_i128(&a, &b),
                        "d_bits {d_bits}, n {n}, pair ({a_val}, {b_val})"
                    );
                }
            }
        }
    }

    /// Whether the *i128* square-and-α stage itself stays representable
    /// at a worst-case shape — zero-truncation configs at wide `D_bits`
    /// can exceed even 128 bits (which is why the paper truncates);
    /// sweeps must stay inside this envelope on both paths.
    #[allow(clippy::too_many_arguments)]
    fn i128_envelope_ok(
        guard: u32,
        d_bits: u32,
        n_feat: usize,
        a_bits: u32,
        n_sv: usize,
        t1: u32,
        t2: u32,
    ) -> bool {
        let with_one_exp = (2 * (d_bits - 1) + ceil_log2(n_feat)).max(2 * (guard + d_bits - 1)) + 1;
        let k_exp = with_one_exp.saturating_sub(t1);
        let sq_exp = (2 * k_exp).saturating_sub(t2);
        sq_exp + a_bits + ceil_log2(n_sv) < 126
    }

    #[test]
    fn decision_fast_path_is_bit_identical_across_widths() {
        // Exhaustive equivalence sweep of the i64 fast path against the
        // i128 reference: xorshift-random code images at the issue's
        // width set, spanning the widening boundary (28/29 only fit at
        // narrow shapes; 30 at n_feat = 2 falls off the fast path).
        let mut rng = XorShift(0xD00D);
        for d_bits in [2u32, 9, 16, 28, 29] {
            for guard in [0i32, 3] {
                for n_feat in [1usize, 2, 7, 53] {
                    if !quant_dot_fits_i64(guard, d_bits, n_feat) {
                        continue;
                    }
                    let one_exp = 2 * (guard as u32 + d_bits - 1);
                    for n_sv in [1usize, 5, 17] {
                        let a_bits = 15.min(d_bits + 6);
                        let sv_codes = DenseMatrix::from_rows(
                            &(0..n_sv)
                                .map(|_| rng.codes(d_bits, n_feat))
                                .collect::<Vec<_>>(),
                        );
                        let alpha_codes = rng.codes(a_bits, n_sv);
                        let codes = rng.codes(d_bits, n_feat);
                        let bias = rng.next() as i64 as i128;
                        for (t1, t2) in [(0u32, 0u32), (10, 10), (3, 7)] {
                            if !i128_envelope_ok(guard as u32, d_bits, n_feat, a_bits, n_sv, t1, t2)
                            {
                                continue;
                            }
                            let fast = decision_code_i64(
                                &codes,
                                &sv_codes,
                                &alpha_codes,
                                1i64 << one_exp,
                                t1,
                                t2,
                                bias,
                            );
                            let exact = decision_code_i128(
                                &codes,
                                &sv_codes,
                                &alpha_codes,
                                1i128 << one_exp,
                                t1,
                                t2,
                                bias,
                            );
                            assert_eq!(
                                fast, exact,
                                "d_bits {d_bits} guard {guard} n_feat {n_feat} \
                                 n_sv {n_sv} t1 {t1} t2 {t2}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn decision_boundary_widths_are_exhaustively_pinned() {
        // For each (guard, n_feat) shape, find the widest D_bits the rule
        // admits and drive the fast path with fully saturated codes at
        // that exact boundary width — the worst representable input.
        let mut rng = XorShift(0xB0B);
        for guard in [0i32, 3] {
            for n_feat in [1usize, 2, 53] {
                let boundary = (2..=40u32)
                    .filter(|&d| quant_dot_fits_i64(guard, d, n_feat))
                    .max()
                    .expect("some width fits");
                assert!(!quant_dot_fits_i64(guard, boundary + 1, n_feat));
                assert!(i128_envelope_ok(
                    guard as u32,
                    boundary,
                    n_feat,
                    2,
                    2,
                    10,
                    10
                ));
                let lo = -(1i64 << (boundary - 1));
                let hi = (1i64 << (boundary - 1)) - 1;
                let one_exp = 2 * (guard as u32 + boundary - 1);
                for fill in [lo, hi] {
                    let codes = vec![fill; n_feat];
                    let sv_codes = DenseMatrix::from_rows(&[vec![lo; n_feat], vec![hi; n_feat]]);
                    let alpha_codes = rng.codes(2, 2);
                    let fast = decision_code_i64(
                        &codes,
                        &sv_codes,
                        &alpha_codes,
                        1i64 << one_exp,
                        10,
                        10,
                        -7,
                    );
                    let exact = decision_code_i128(
                        &codes,
                        &sv_codes,
                        &alpha_codes,
                        1i128 << one_exp,
                        10,
                        10,
                        -7,
                    );
                    assert_eq!(fast, exact, "guard {guard} n_feat {n_feat} d {boundary}");
                }
            }
        }
    }
}
