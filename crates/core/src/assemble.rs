//! Dataset assembly: synthetic cohort → labelled 53-feature matrix.

use ecg_features::extract::{feature_names, BatchExtractScratch, WindowExtractor};
use ecg_features::FeatureMatrix;
use ecg_sim::dataset::DatasetSpec;

/// Statistics from one assembly run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AssembleStats {
    /// Windows successfully converted to feature vectors.
    pub windows_ok: usize,
    /// Windows dropped because extraction failed (too few beats, etc.).
    pub windows_dropped: usize,
    /// Seizure windows in the final matrix.
    pub positives: usize,
}

/// Builds the feature matrix for a whole dataset specification, rendering
/// one session at a time so memory stays bounded. Windows whose extraction
/// fails are dropped (and counted), mirroring how unusable clinical
/// excerpts are excluded.
///
/// Each session's consecutive windows are packed into SoA lane groups
/// ([`WindowExtractor::extract_batch_into`]) so LOSO/sweep training
/// shares the lane-batched dense DSP phases; rows are bit-identical to
/// one-at-a-time extraction, in the same window order.
pub fn build_feature_matrix_with_stats(spec: &DatasetSpec) -> (FeatureMatrix, AssembleStats) {
    let mut m = FeatureMatrix {
        feature_names: feature_names(),
        ..Default::default()
    };
    let mut stats = AssembleStats::default();
    let window_s = spec.scale.window_s();
    // One batch scratch across every window of every session: the
    // extraction hot loop allocates nothing after the first lane group.
    let mut scratch = BatchExtractScratch::default();
    for session in &spec.sessions {
        let rec = session.synthesize();
        let extractor = WindowExtractor::new(rec.fs);
        let labels = rec.window_labels(window_s);
        // The window slices all borrow `rec`, so the whole session packs
        // into lane groups without copying a single sample.
        let windows: Vec<&[f64]> = labels.iter().map(|l| rec.window_samples(l)).collect();
        extractor.extract_batch_into(&windows, &mut scratch, |j, result| match result {
            Ok(row) => {
                let y: i8 = if labels[j].is_seizure { 1 } else { -1 };
                if y > 0 {
                    stats.positives += 1;
                }
                stats.windows_ok += 1;
                m.push_row(row, y, rec.session_index, rec.patient_id);
            }
            Err(_) => stats.windows_dropped += 1,
        });
    }
    (m, stats)
}

/// Builds the feature matrix, discarding the statistics.
pub fn build_feature_matrix(spec: &DatasetSpec) -> FeatureMatrix {
    build_feature_matrix_with_stats(spec).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecg_sim::dataset::Scale;

    #[test]
    fn tiny_dataset_assembles_with_labels() {
        let spec = DatasetSpec::new(Scale::Tiny, 42);
        let (m, stats) = build_feature_matrix_with_stats(&spec);
        assert_eq!(m.n_cols(), 53);
        assert!(m.n_rows() > 30, "rows {}", m.n_rows());
        assert!(stats.positives >= 4, "positives {}", stats.positives);
        assert!(stats.windows_dropped < stats.windows_ok / 4);
        assert_eq!(m.session_list().len(), 6);
        // All features finite.
        assert!(m.features.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn labels_align_with_seizure_annotations() {
        let spec = DatasetSpec::new(Scale::Tiny, 7);
        let m = build_feature_matrix(&spec);
        // Each session with a seizure must contribute at least one
        // positive window (seizures are placed away from edges).
        for s in &spec.sessions {
            if s.seizures.is_empty() {
                continue;
            }
            let pos = (0..m.n_rows())
                .filter(|&i| m.session_ids[i] == s.session_index && m.labels[i] > 0)
                .count();
            assert!(pos >= 1, "session {} lost its seizures", s.session_index);
        }
    }
}
