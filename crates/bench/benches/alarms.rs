//! Perf-trajectory baseline for the alarm subsystem: per-window alarm
//! state-machine overhead, batch decision-sequence scans, event scoring,
//! and the end-to-end stream→alarm path against the plain stream on the
//! same session.
//!
//! Run with `cargo bench -p bench --bench alarms`; results land in
//! `BENCH_alarms.json` (workspace root only when `BENCH_WRITE_BASELINE`
//! is set, `target/` otherwise).

use bench::{bb, Harness};
use ecg_sim::dataset::{DatasetSpec, Scale};
use seizure_core::alarm::{
    score_events, truth_events, AlarmConfig, AlarmStateMachine, EventScoring,
};
use seizure_core::config::FitConfig;
use seizure_core::stream::{SharedEngine, StreamConfig, StreamStats, StreamingSession};
use seizure_core::trained::FloatPipeline;
use std::sync::Arc;

/// Deterministic synthetic decision sequence: a long mostly-negative
/// stream with periodic seizure bursts and occasional drops — the shape
/// the state machine sees in production.
fn synthetic_decisions(n: usize) -> Vec<Option<f64>> {
    (0..n)
        .map(|w| {
            if w % 97 == 13 {
                None // dropped window
            } else if (w % 311) < 6 {
                Some(1.5) // seizure burst
            } else {
                Some(-2.0)
            }
        })
        .collect()
}

/// Replays a session through a stream (optionally alarmed) in
/// `chunk_len`-sample chunks; returns the final stats.
fn replay(
    engine: &SharedEngine,
    cfg: StreamConfig,
    alarm_cfg: Option<AlarmConfig>,
    ecg: &[f64],
    chunk_len: usize,
) -> StreamStats {
    let mut session = match alarm_cfg {
        Some(a) => StreamingSession::with_alarms(Arc::clone(engine), cfg, a),
        None => StreamingSession::new(Arc::clone(engine), cfg),
    }
    .expect("stream config");
    let mut out = Vec::new();
    for chunk in ecg.chunks(chunk_len) {
        session.push_samples_into(chunk, &mut out);
    }
    session.stats()
}

fn main() {
    let mut h = Harness::new();
    let alarm_cfg = AlarmConfig::default();

    // --- the state machine alone ---
    let decisions = synthetic_decisions(10_000);
    let per_window = h.bench("alarm_on_decision_per_window", || {
        let mut sm = AlarmStateMachine::new(alarm_cfg).expect("config");
        let mut fired = 0u64;
        for (w, &d) in decisions.iter().enumerate() {
            if sm.on_decision(w as u64, (w * 5120) as u64, d).is_some() {
                fired += 1;
            }
        }
        bb(fired)
    }) / decisions.len() as f64;
    h.bench("alarm_scan_10k_windows", || {
        bb(AlarmStateMachine::scan(alarm_cfg, &decisions, 5120).expect("scan"))
    });

    // --- event scoring over a day-scale alarm/truth set ---
    let scoring = EventScoring::for_windows(128.0, 5120);
    let alarms = AlarmStateMachine::scan(alarm_cfg, &decisions, 5120).expect("scan");
    let truth: Vec<_> = (0..24)
        .flat_map(|i| {
            truth_events(&[ecg_sim::seizure::SeizureEvent::new(
                600.0 + 3600.0 * i as f64,
                45.0,
                1.0,
            )])
        })
        .collect();
    h.bench("score_events_day_scale", || {
        bb(score_events(&alarms, &truth, 86_400.0, &scoring))
    });

    // --- end-to-end: alarmed stream vs plain stream, same session ---
    let need_streams = h.enabled("stream_plain_session_1s_chunks")
        || h.enabled("stream_alarmed_session_1s_chunks");
    let (stream_plain, stream_alarmed, alarmed_stats) = if need_streams {
        let spec = DatasetSpec::new(Scale::Tiny, 42);
        let cfg = StreamConfig::non_overlapping(spec.scale.fs(), spec.scale.window_s())
            .expect("stream config");
        let matrix = seizure_core::assemble::build_feature_matrix(&spec);
        let pipeline = FloatPipeline::fit(&matrix, &FitConfig::default()).expect("fit");
        let engine: SharedEngine = Arc::new(pipeline);
        // A seizure session and a sensitive operating point, so the
        // baseline exercises actual alarm traffic.
        let rec = spec
            .sessions
            .iter()
            .find(|s| !s.seizures.is_empty())
            .expect("Tiny cohort has seizures")
            .synthesize();
        let stream_alarm_cfg = AlarmConfig::k_of_n(1, 2);
        let chunk_1s = spec.scale.fs() as usize;
        let plain = h.bench("stream_plain_session_1s_chunks", || {
            bb(replay(&engine, cfg, None, &rec.ecg, chunk_1s))
        });
        let alarmed = h.bench("stream_alarmed_session_1s_chunks", || {
            bb(replay(
                &engine,
                cfg,
                Some(stream_alarm_cfg),
                &rec.ecg,
                chunk_1s,
            ))
        });
        let stats = replay(&engine, cfg, Some(stream_alarm_cfg), &rec.ecg, chunk_1s);
        (plain, alarmed, stats)
    } else {
        (f64::NAN, f64::NAN, StreamStats::default())
    };

    h.report();
    println!("\nalarm post-processing: {per_window:.1} ns/window on the synthetic stream");
    if need_streams {
        println!(
            "end-to-end alarmed vs plain stream: {:.3}x ({} windows, {} alarms)",
            stream_alarmed / stream_plain,
            alarmed_stats.windows,
            alarmed_stats.alarms
        );
    }

    // Smoke runs must not clobber the committed baseline: the repo-root
    // file is only rewritten when explicitly requested.
    let out = if std::env::var("BENCH_WRITE_BASELINE").is_ok() {
        assert!(
            !h.filter_active(),
            "refusing to write the committed baseline from a \
             BENCH_FILTER-restricted run (skipped benches would bake NaN \
             ratios into BENCH_alarms.json)"
        );
        format!("{}/../../BENCH_alarms.json", env!("CARGO_MANIFEST_DIR"))
    } else {
        let dir = format!("{}/../../target", env!("CARGO_MANIFEST_DIR"));
        std::fs::create_dir_all(&dir).expect("create target dir");
        format!("{dir}/BENCH_alarms.json")
    };
    h.write_json(
        &out,
        &[
            ("suite", "alarms".to_string()),
            ("alarm_overhead_ns_per_window", format!("{per_window:.1}")),
            (
                "alarmed_vs_plain_stream_ratio",
                format!("{:.3}", stream_alarmed / stream_plain),
            ),
            ("alarms_in_session", alarmed_stats.alarms.to_string()),
        ],
    );
}
