//! Perf-trajectory baseline for the micro-kernel layer: the quantised
//! i64 fast path against its i128 reference, the tiled float batch
//! kernel against the pre-micro-kernel naive path, persistent-pool
//! against spawn-per-call `par_map` dispatch, and SMO training time on a
//! real Tiny cohort (whose Gram fill runs on the same micro-kernel).
//!
//! Run with `cargo bench -p bench --bench kernels`; results land in
//! `BENCH_kernels.json` (workspace root only when `BENCH_WRITE_BASELINE`
//! is set, `target/` otherwise). `BENCH_FILTER=<substring>` runs a
//! subset — the CI smoke step uses it to time a single benchmark.

use bench::{bb, Harness};
use ecg_features::DenseMatrix;
use ecg_sim::dataset::{DatasetSpec, Scale};
use fixedpoint::quantize::Quantizer;
use seizure_core::config::FitConfig;
use seizure_core::engine::{BitConfig, QuantizedEngine};
use seizure_core::kernels;
use seizure_core::parallel::{par_map_spawn_n, WorkerPool};
use seizure_core::quickfeat::{synthetic_matrix, QuickFeatConfig};
use seizure_core::trained::FloatPipeline;
use svm::{ClassifierEngine, Kernel};

/// The pre-micro-kernel quantised batch path, replicated faithfully: a
/// fresh code vector per row, a `Quantizer` and per-element `exp2` and
/// division in the encode, and the i128 reference accumulator — the
/// "current i128 path" of the perf trajectory. Produces the same
/// classifications as `classify_batch` (asserted in `main`).
fn legacy_quantized_classify_batch(
    engine: &QuantizedEngine,
    pipeline: &FloatPipeline,
    rows: &DenseMatrix<f64>,
) -> Vec<f64> {
    let bits = engine.bits();
    let guard = pipeline.guard();
    let q = Quantizer::for_range_exponent(-guard, bits.d_bits);
    let bound = (-guard as f64).exp2();
    let one = 1i128 << (2 * (guard + bits.d_bits as i32 - 1));
    rows.rows()
        .map(|row| {
            let codes: Vec<i64> = pipeline
                .feature_indices()
                .iter()
                .zip(pipeline.scales().r.iter())
                .map(|(&j, &r)| {
                    q.encode((row[j] / ((r + guard) as f64).exp2()).clamp(-bound, bound))
                })
                .collect();
            let code = kernels::decision_code_i128(
                &codes,
                engine.sv_codes(),
                engine.alpha_codes(),
                one,
                bits.post_dot_truncate,
                bits.post_square_truncate,
                engine.bias_code(),
            );
            if code >= 0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect()
}

/// The pre-micro-kernel float batch path: normalise the block, then one
/// zip-fold dot per (row, SV) pair with strictly sequential accumulation
/// — kept here as the "naive" timing reference.
fn naive_decision_batch(p: &FloatPipeline, rows: &DenseMatrix<f64>) -> Vec<f64> {
    let normalized = p.normalize_batch(rows);
    let model = p.model();
    let naive_dot =
        |u: &[f64], v: &[f64]| -> f64 { u.iter().zip(v.iter()).map(|(a, b)| a * b).sum() };
    let naive_eval = |u: &[f64], v: &[f64]| -> f64 {
        match model.kernel() {
            Kernel::Linear => naive_dot(u, v),
            Kernel::Polynomial { degree } => (naive_dot(u, v) + 1.0).powi(degree as i32),
            Kernel::Rbf { gamma } => {
                let d2: f64 = u.iter().zip(v.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
                (-gamma * d2).exp()
            }
        }
    };
    normalized
        .rows()
        .map(|x| {
            let mut acc = model.bias();
            for (sv, &ay) in model.support_vectors().rows().zip(model.alpha_y().iter()) {
                acc += ay * naive_eval(x, sv);
            }
            acc
        })
        .collect()
}

fn main() {
    let mut h = Harness::new();

    let matrix = synthetic_matrix(&QuickFeatConfig {
        n_sessions: 6,
        windows_per_session: 50,
        ..Default::default()
    });
    let pipeline = FloatPipeline::fit(&matrix, &FitConfig::default()).expect("fit");
    let engine =
        QuantizedEngine::from_pipeline(&pipeline, BitConfig::paper_choice()).expect("engine");
    assert!(
        engine.uses_i64_fast_path(),
        "paper choice must sit under the i64 threshold"
    );

    // --- (1) quantised datapath: i64 micro-kernel vs i128 reference ---
    // `_i128` shares the new cached encode (isolates the datapath win);
    // `_legacy` is the full pre-micro-kernel path the perf trajectory
    // measures against.
    assert_eq!(
        legacy_quantized_classify_batch(&engine, &pipeline, &matrix.features),
        engine.classify_batch(&matrix.features),
        "legacy replica must classify identically"
    );
    let quant_fast = h.bench("quantized_classify_batch_300_i64", || {
        bb(engine.classify_batch(&matrix.features))
    });
    let quant_ref = h.bench("quantized_classify_batch_300_i128", || {
        bb(engine.classify_batch_i128_reference(&matrix.features))
    });
    let quant_legacy = h.bench("quantized_classify_batch_300_legacy", || {
        bb(legacy_quantized_classify_batch(
            &engine,
            &pipeline,
            &matrix.features,
        ))
    });

    // --- (2) float batch: SV-panel-tiled micro-kernel vs naive path ---
    let float_tiled = h.bench("float_decision_batch_300_tiled", || {
        bb(pipeline.decision_batch(&matrix.features))
    });
    let float_naive = h.bench("float_decision_batch_300_naive", || {
        bb(naive_decision_batch(&pipeline, &matrix.features))
    });

    // --- (3) par_map dispatch: persistent pool vs spawn-per-call ---
    // Fixed executor counts (3 workers + caller vs 4 spawned threads) so
    // the comparison is dispatch overhead, not machine width. The items
    // are deliberately cheap: this times the harness, not the work.
    let pool = WorkerPool::new(3);
    let items: Vec<u64> = (0..64).collect();
    let busy = |&i: &u64| -> u64 {
        let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for _ in 0..32 {
            x ^= x >> 29;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        }
        x
    };
    let pool_ns = h.bench("par_map_pool_64_items", || bb(pool.par_map(&items, busy)));
    let spawn_ns = h.bench("par_map_spawn_64_items", || {
        bb(par_map_spawn_n(&items, 4, busy))
    });

    // --- (4) SMO training on a real Tiny cohort (micro-kernel Gram) ---
    // The cohort build is itself expensive; skip it when the benchmark
    // is filtered out.
    let smo_train = if h.enabled("smo_train_tiny") {
        let spec = DatasetSpec::new(Scale::Tiny, 42);
        let tiny = seizure_core::assemble::build_feature_matrix(&spec);
        h.bench("smo_train_tiny", || {
            bb(FloatPipeline::fit(&tiny, &FitConfig::default()).expect("fit tiny"))
        })
    } else {
        f64::NAN
    };

    h.report();
    println!("\nspeedups (median, >1 means the micro-kernel layer wins):");
    println!(
        "  quantized i64 vs i128 batch:   {:.2}x",
        quant_ref / quant_fast
    );
    println!(
        "  quantized i64 vs legacy batch: {:.2}x",
        quant_legacy / quant_fast
    );
    println!(
        "  float tiled vs naive batch:    {:.2}x",
        float_naive / float_tiled
    );
    println!(
        "  par_map pool vs spawn:         {:.2}x",
        spawn_ns / pool_ns
    );

    let workers = seizure_core::parallel::worker_count(usize::MAX);
    // Smoke runs must not clobber the committed perf-trajectory baseline:
    // the repo-root file is only rewritten when explicitly requested.
    let out = if std::env::var("BENCH_WRITE_BASELINE").is_ok() {
        assert!(
            !h.filter_active(),
            "refusing to write the committed baseline from a \
             BENCH_FILTER-restricted run (skipped benches would bake NaN \
             ratios into BENCH_kernels.json)"
        );
        format!("{}/../../BENCH_kernels.json", env!("CARGO_MANIFEST_DIR"))
    } else {
        let dir = format!("{}/../../target", env!("CARGO_MANIFEST_DIR"));
        std::fs::create_dir_all(&dir).expect("create target dir");
        format!("{dir}/BENCH_kernels.json")
    };
    h.write_json(
        &out,
        &[
            ("suite", "kernels".to_string()),
            ("workers", workers.to_string()),
            ("n_sv", engine.n_support_vectors().to_string()),
            (
                "n_feat",
                svm::ClassifierEngine::n_features(&engine).to_string(),
            ),
            (
                "quantized_i64_vs_i128_speedup",
                format!("{:.3}", quant_ref / quant_fast),
            ),
            (
                "quantized_i64_vs_legacy_speedup",
                format!("{:.3}", quant_legacy / quant_fast),
            ),
            (
                "float_tiled_vs_naive_speedup",
                format!("{:.3}", float_naive / float_tiled),
            ),
            (
                "par_map_pool_vs_spawn_speedup",
                format!("{:.3}", spawn_ns / pool_ns),
            ),
            ("smo_train_tiny_ms", format!("{:.2}", smo_train / 1e6)),
        ],
    );
}
