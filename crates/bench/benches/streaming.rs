//! Perf-trajectory baseline for the streaming inference subsystem:
//! chunked session replay through `StreamingSession` (float and quantised
//! engines) against the batch path on the same windows, plus the
//! multi-stream parallel fan-out.
//!
//! Run with `cargo bench -p bench --bench streaming`; results land in
//! `BENCH_streaming.json` (workspace root only when
//! `BENCH_WRITE_BASELINE` is set, `target/` otherwise) with windows/sec
//! and per-window latency metadata for float vs quantised engines.

use bench::{bb, Harness};
use ecg_features::extract::{ExtractScratch, WindowExtractor};
use ecg_features::{DenseMatrix, N_FEATURES};
use ecg_sim::dataset::{DatasetSpec, Scale};
use seizure_core::config::FitConfig;
use seizure_core::engine::{BitConfig, QuantizedEngine};
use seizure_core::stream::{
    run_streams_parallel, SharedEngine, StreamConfig, StreamStats, StreamingSession,
};
use seizure_core::trained::FloatPipeline;
use std::sync::Arc;

/// Replays a session through a fresh stream in `chunk_len`-sample chunks;
/// returns the final stats.
fn replay(engine: &SharedEngine, cfg: StreamConfig, ecg: &[f64], chunk_len: usize) -> StreamStats {
    let mut session = StreamingSession::new(Arc::clone(engine), cfg).expect("stream config");
    let mut out = Vec::new();
    for chunk in ecg.chunks(chunk_len) {
        session.push_samples_into(chunk, &mut out);
    }
    session.stats()
}

fn main() {
    let spec = DatasetSpec::new(Scale::Tiny, 42);
    let window_s = spec.scale.window_s();
    let fs = spec.scale.fs();
    let cfg = StreamConfig::non_overlapping(fs, window_s).expect("stream config");

    let matrix = seizure_core::assemble::build_feature_matrix(&spec);
    let pipeline = FloatPipeline::fit(&matrix, &FitConfig::default()).expect("fit");
    let quantized =
        QuantizedEngine::from_pipeline(&pipeline, BitConfig::paper_choice()).expect("engine");
    let float_engine: SharedEngine = Arc::new(pipeline.clone());
    let quant_engine: SharedEngine = Arc::new(quantized);

    let rec = spec.sessions[0].synthesize();
    let chunk_1s = fs as usize; // one-second "radio packets"

    let mut h = Harness::new();

    // --- streaming replay, float vs quantised engine ---
    let stream_float = h.bench("stream_float_session_1s_chunks", || {
        bb(replay(&float_engine, cfg, &rec.ecg, chunk_1s))
    });
    let stream_quant = h.bench("stream_quantized_session_1s_chunks", || {
        bb(replay(&quant_engine, cfg, &rec.ecg, chunk_1s))
    });
    // Chunk-size sensitivity: single samples vs whole-session pushes.
    h.bench("stream_float_session_single_sample_chunks", || {
        bb(replay(&float_engine, cfg, &rec.ecg, 1))
    });
    h.bench("stream_float_session_one_push", || {
        bb(replay(&float_engine, cfg, &rec.ecg, rec.ecg.len()))
    });

    // --- the batch twin on the same windows ---
    let batch_float = h.bench("batch_float_session", || {
        let extractor = WindowExtractor::new(rec.fs);
        let mut scratch = ExtractScratch::default();
        let mut row = Vec::with_capacity(N_FEATURES);
        let mut rows = DenseMatrix::with_cols(N_FEATURES);
        for label in rec.window_labels(window_s) {
            if extractor
                .extract_into(rec.window_samples(&label), &mut scratch, &mut row)
                .is_ok()
            {
                rows.push_row(&row);
            }
        }
        bb(float_engine.decision_batch(&rows))
    });

    // --- concurrent patient streams over one shared engine ---
    let streams: Vec<Vec<f64>> = spec
        .sessions
        .iter()
        .take(3)
        .map(|s| s.synthesize().ecg)
        .collect();
    h.bench("stream_parallel_3_patients_1s_chunks", || {
        bb(run_streams_parallel(&float_engine, cfg, &streams, chunk_1s).expect("cohort"))
    });

    h.report();

    // Steady-state per-window numbers: best (lowest mean latency) of
    // several instrumented replays per engine, alternating float and
    // quantised within each round so warm-up/frequency drift cannot
    // systematically favour whichever engine runs later — per-window
    // time is dominated by feature extraction, which both engines share.
    let better = |a: StreamStats, b: StreamStats| -> StreamStats {
        if a.mean_latency_ns() <= b.mean_latency_ns() {
            a
        } else {
            b
        }
    };
    let mut float_stats = replay(&float_engine, cfg, &rec.ecg, chunk_1s);
    let mut quant_stats = replay(&quant_engine, cfg, &rec.ecg, chunk_1s);
    for _ in 0..4 {
        float_stats = better(float_stats, replay(&float_engine, cfg, &rec.ecg, chunk_1s));
        quant_stats = better(quant_stats, replay(&quant_engine, cfg, &rec.ecg, chunk_1s));
    }
    println!("\nper-window streaming stats (one session replay):");
    for (name, s) in [("float", &float_stats), ("quantized", &quant_stats)] {
        println!(
            "  {name:<9} {} windows, {} dropped, {:.0} windows/s, mean {:.2} ms, \
             p50 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
            s.windows,
            s.dropped,
            s.windows_per_sec(),
            s.mean_latency_ns() / 1e6,
            s.latency.p50_ns() as f64 / 1e6,
            s.latency.p99_ns() as f64 / 1e6,
            s.max_latency_ns() as f64 / 1e6
        );
    }
    println!(
        "  stream vs batch (median, whole session): {:.2}x",
        stream_float / batch_float
    );

    let workers = seizure_core::parallel::worker_count(usize::MAX);
    // Smoke runs must not clobber the committed baseline: the repo-root
    // file is only rewritten when explicitly requested.
    let out = if std::env::var("BENCH_WRITE_BASELINE").is_ok() {
        assert!(
            !h.filter_active(),
            "refusing to write the committed baseline from a \
             BENCH_FILTER-restricted run (skipped benches would bake NaN \
             ratios into BENCH_streaming.json)"
        );
        format!("{}/../../BENCH_streaming.json", env!("CARGO_MANIFEST_DIR"))
    } else {
        let dir = format!("{}/../../target", env!("CARGO_MANIFEST_DIR"));
        std::fs::create_dir_all(&dir).expect("create target dir");
        format!("{dir}/BENCH_streaming.json")
    };
    h.write_json(
        &out,
        &[
            ("suite", "streaming".to_string()),
            ("workers", workers.to_string()),
            ("windows_per_session", float_stats.windows.to_string()),
            (
                "float_windows_per_sec",
                format!("{:.1}", float_stats.windows_per_sec()),
            ),
            (
                "quantized_windows_per_sec",
                format!("{:.1}", quant_stats.windows_per_sec()),
            ),
            (
                "float_mean_window_latency_ns",
                format!("{:.0}", float_stats.mean_latency_ns()),
            ),
            (
                "quantized_mean_window_latency_ns",
                format!("{:.0}", quant_stats.mean_latency_ns()),
            ),
            (
                "stream_vs_batch_session_ratio",
                format!("{:.3}", stream_float / batch_float),
            ),
            (
                "quantized_vs_float_stream_ratio",
                format!("{:.3}", stream_quant / stream_float),
            ),
        ],
    );
}
