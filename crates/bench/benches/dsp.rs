//! Perf-trajectory baseline for the DSP front-end: the fused micro-kernel
//! layer (cascade-fused filtfilt, fused derivative→squaring→integration,
//! bucket-grid peak filter, plan-cached real-input Welch) against the
//! staged pre-fusion reference path, per stage and end to end, plus the
//! opt-in f32 hot-loop variant.
//!
//! All rows run on one real `Tiny` analysis window (5120 samples at
//! 128 Hz) so the stage mix matches what a streaming monitor actually
//! pays per window.
//!
//! Run with `cargo bench -p bench --bench dsp`; results land in
//! `BENCH_dsp.json` (workspace root only when `BENCH_WRITE_BASELINE` is
//! set, `target/` otherwise). `BENCH_FILTER=<substring>` runs a subset —
//! the CI smoke step uses it to time a single benchmark.

use bench::{bb, Harness};
use biodsp::filter::{
    five_point_derivative_into, moving_average_into, FiltFiltScratch, SosCascade,
};
use biodsp::psd::{welch, welch_reference};
use biodsp::qrs::{DetectScratch, PanTompkins, QrsDetection};
use biodsp::window::WindowKind;
use biodsp::ExtractPrecision;
use ecg_features::ar_feats::ar_features;
use ecg_features::edr::extract_edr;
use ecg_features::extract::{BatchExtractScratch, ExtractScratch, WindowExtractor};
use ecg_features::hrv::{clean_rr, hrv_features};
use ecg_features::lorenz::lorenz_features;
use ecg_features::psd_feats::{psd_features, psd_features_reference};
use ecg_sim::dataset::{DatasetSpec, Scale};

fn main() {
    let mut h = Harness::new();

    // One real Tiny window: seeded session 0, first analysis window.
    let spec = DatasetSpec::new(Scale::Tiny, 42);
    let fs = spec.scale.fs();
    let window_s = spec.scale.window_s();
    let rec = spec.sessions[0].synthesize();
    let labels = rec.window_labels(window_s);
    let win: Vec<f64> = rec.window_samples(&labels[0]).to_vec();

    // --- (1) zero-phase band-pass: fused chain vs per-section sweeps ---
    let bp = SosCascade::butterworth_bandpass(5.0, 15.0, fs, 1).expect("band-pass");
    let mut ffs = FiltFiltScratch::default();
    let mut filtered = Vec::new();
    let filt_fused = h.bench("filtfilt_window_fused", || {
        bp.filtfilt_into(&win, &mut ffs, &mut filtered);
        bb(&filtered);
    });
    let filt_legacy = h.bench("filtfilt_window_legacy", || {
        bp.filtfilt_into_reference(&win, &mut ffs, &mut filtered);
        bb(&filtered);
    });

    // --- (2) QRS energy: fused single pass vs three staged passes ---
    bp.filtfilt_into(&win, &mut ffs, &mut filtered);
    let mwi_win = ((0.150 * fs).round() as usize).max(1);
    let mut ring = Vec::new();
    let mut mwi = Vec::new();
    let energy_fused = h.bench("qrs_energy_window_fused", || {
        biodsp::kernels::qrs_energy_into(&filtered, fs, mwi_win, &mut ring, &mut mwi);
        bb(&mwi);
    });
    let mut deriv = Vec::new();
    let mut squared: Vec<f64> = Vec::new();
    let energy_staged = h.bench("qrs_energy_window_staged", || {
        five_point_derivative_into(&filtered, fs, &mut deriv);
        squared.clear();
        squared.extend(deriv.iter().map(|v| v * v));
        moving_average_into(&squared, mwi_win, &mut mwi).expect("mwi");
        bb(&mwi);
    });

    // --- (3) whole QRS detection: fused vs reference vs f32 ---
    let det_cfg = PanTompkins::default();
    let mut dscr = DetectScratch::default();
    let mut det = QrsDetection::default();
    let detect_fused = h.bench("detect_window_fused_f64", || {
        det_cfg.detect_into(&win, fs, &mut dscr, &mut det).unwrap();
        bb(&det);
    });
    let detect_legacy = h.bench("detect_window_legacy_f64", || {
        det_cfg
            .detect_into_reference(&win, fs, &mut dscr, &mut det)
            .unwrap();
        bb(&det);
    });
    let detect_f32 = h.bench("detect_window_f32", || {
        det_cfg
            .detect_into_with(&win, fs, ExtractPrecision::F32, &mut dscr, &mut det)
            .unwrap();
        bb(&det);
    });

    // --- (4) beat-rate feature stages on the window's detection ---
    det_cfg.detect_into(&win, fs, &mut dscr, &mut det).unwrap();
    let rr = clean_rr(&det.rr_intervals());
    let edr = extract_edr(&det).expect("edr");
    h.bench("hrv_features_window", || bb(hrv_features(&rr)));
    h.bench("lorenz_features_window", || bb(lorenz_features(&rr)));
    h.bench("ar_burg_window", || bb(ar_features(&edr)));
    let psd_planned = h.bench("psd_features_window_planned", || bb(psd_features(&edr)));
    let psd_legacy = h.bench("psd_features_window_legacy", || {
        bb(psd_features_reference(&edr))
    });

    // --- (5) Welch on the raw EDR series: plan-cached rfft vs legacy ---
    let welch_planned = h.bench("welch_edr_planned", || {
        bb(welch(&edr.samples, edr.fs, 128, 0.5, WindowKind::Hann).expect("welch"))
    });
    let welch_legacy = h.bench("welch_edr_legacy", || {
        bb(welch_reference(&edr.samples, edr.fs, 128, 0.5, WindowKind::Hann).expect("welch"))
    });

    // --- (6) whole-window extraction: the end-to-end per-window cost ---
    let ext_fused = WindowExtractor::new(fs);
    let ext_f32 = WindowExtractor::with_precision(fs, ExtractPrecision::F32);
    let mut scratch = ExtractScratch::default();
    let mut row = Vec::new();
    let extract_fused = h.bench("extract_window_fused_f64", || {
        ext_fused
            .extract_into(&win, &mut scratch, &mut row)
            .unwrap();
        bb(&row);
    });
    let extract_legacy = h.bench("extract_window_legacy_f64", || {
        ext_fused
            .extract_into_reference(&win, &mut scratch, &mut row)
            .unwrap();
        bb(&row);
    });
    let extract_f32 = h.bench("extract_window_f32", || {
        ext_f32.extract_into(&win, &mut scratch, &mut row).unwrap();
        bb(&row);
    });

    // --- (7) lane-batched extraction: SoA lanes vs a scalar loop ---
    // The same 8 real windows per iteration in every row, so the medians
    // compare like for like: the scalar loop extracts them one at a
    // time, the lane rows split them into groups of 2, 4 or 8 and run
    // each group lock-step through the dense DSP phases.
    let group: Vec<&[f64]> = labels
        .iter()
        .take(8)
        .map(|l| rec.window_samples(l))
        .collect();
    assert_eq!(group.len(), 8, "Tiny session 0 must yield 8 windows");
    let mut batch = BatchExtractScratch::default();
    let extract_scalar_loop = h.bench("extract_batch_scalar_loop", || {
        for w in &group {
            ext_fused.extract_into(w, &mut scratch, &mut row).unwrap();
            bb(&row);
        }
    });
    let extract_lanes2 = h.bench("extract_batch_lanes2", || {
        for pair in group.chunks_exact(2) {
            ext_fused.extract_batch_into(pair, &mut batch, |_, r| {
                bb(r.unwrap());
            });
        }
    });
    let extract_lanes4 = h.bench("extract_batch_lanes4", || {
        for quad in group.chunks_exact(4) {
            ext_fused.extract_batch_into(quad, &mut batch, |_, r| {
                bb(r.unwrap());
            });
        }
    });
    let extract_lanes8 = h.bench("extract_batch_lanes8", || {
        ext_fused.extract_batch_into(&group, &mut batch, |_, r| {
            bb(r.unwrap());
        });
    });

    h.report();
    println!("\nspeedups (median, >1 means the fused front-end wins):");
    println!(
        "  filtfilt fused vs legacy:      {:.2}x",
        filt_legacy / filt_fused
    );
    println!(
        "  qrs energy fused vs staged:    {:.2}x",
        energy_staged / energy_fused
    );
    println!(
        "  detect fused vs legacy:        {:.2}x",
        detect_legacy / detect_fused
    );
    println!(
        "  detect f32 vs fused f64:       {:.2}x",
        detect_fused / detect_f32
    );
    println!(
        "  psd features planned vs legacy:{:.2}x",
        psd_legacy / psd_planned
    );
    println!(
        "  welch planned vs legacy:       {:.2}x",
        welch_legacy / welch_planned
    );
    println!(
        "  extract fused vs legacy:       {:.2}x",
        extract_legacy / extract_fused
    );
    println!(
        "  extract f32 vs fused f64:      {:.2}x",
        extract_fused / extract_f32
    );
    println!(
        "  extract lanes2 vs scalar loop: {:.2}x",
        extract_scalar_loop / extract_lanes2
    );
    println!(
        "  extract lanes4 vs scalar loop: {:.2}x",
        extract_scalar_loop / extract_lanes4
    );
    println!(
        "  extract lanes8 vs scalar loop: {:.2}x",
        extract_scalar_loop / extract_lanes8
    );

    // Smoke runs must not clobber the committed perf-trajectory baseline:
    // the repo-root file is only rewritten when explicitly requested.
    let out = if std::env::var("BENCH_WRITE_BASELINE").is_ok() {
        assert!(
            !h.filter_active(),
            "refusing to write the committed baseline from a \
             BENCH_FILTER-restricted run (skipped benches would bake NaN \
             ratios into BENCH_dsp.json)"
        );
        format!("{}/../../BENCH_dsp.json", env!("CARGO_MANIFEST_DIR"))
    } else {
        let dir = format!("{}/../../target", env!("CARGO_MANIFEST_DIR"));
        std::fs::create_dir_all(&dir).expect("create target dir");
        format!("{dir}/BENCH_dsp.json")
    };
    h.write_json(
        &out,
        &[
            ("suite", "dsp".to_string()),
            ("window_samples", win.len().to_string()),
            ("fs_hz", format!("{fs}")),
            (
                "filtfilt_fused_vs_legacy_speedup",
                format!("{:.3}", filt_legacy / filt_fused),
            ),
            (
                "qrs_energy_fused_vs_staged_speedup",
                format!("{:.3}", energy_staged / energy_fused),
            ),
            (
                "detect_fused_vs_legacy_speedup",
                format!("{:.3}", detect_legacy / detect_fused),
            ),
            (
                "welch_planned_vs_legacy_speedup",
                format!("{:.3}", welch_legacy / welch_planned),
            ),
            (
                "extract_fused_vs_legacy_speedup",
                format!("{:.3}", extract_legacy / extract_fused),
            ),
            (
                "extract_f32_vs_fused_speedup",
                format!("{:.3}", extract_fused / extract_f32),
            ),
            (
                "extract_lanes2_vs_scalar_speedup",
                format!("{:.3}", extract_scalar_loop / extract_lanes2),
            ),
            (
                "extract_lanes4_vs_scalar_speedup",
                format!("{:.3}", extract_scalar_loop / extract_lanes4),
            ),
            (
                "extract_lanes8_vs_scalar_speedup",
                format!("{:.3}", extract_scalar_loop / extract_lanes8),
            ),
        ],
    );
}
