//! Perf-trajectory baseline for fleet-scale session multiplexing:
//! cross-patient batched inference through `FleetScheduler` against the
//! `run_streams_parallel` per-row serving baseline, at 64 / 256 / 1024
//! simulated patients.
//!
//! Two serving shapes are measured:
//!
//! * **raw-sample ingest** (`fleet_ingest_flush_*` vs
//!   `streams_parallel_*`) — the server runs feature extraction; both
//!   paths pay the same extraction cost per window, so the fleet's edge
//!   here is amortised session state (persistent rings/scratch vs
//!   per-call construction) plus the batched kernel;
//! * **row ingest** (`fleet_rows_*` vs `perrow_rows_*`) — the
//!   on-device-extraction topology (wearables ship 53-float rows), where
//!   the server is classification-bound and cross-patient batching is
//!   the whole story.
//!
//! Run with `cargo bench -p bench --bench fleet`; results land in
//! `BENCH_fleet.json` (workspace root only when `BENCH_WRITE_BASELINE`
//! is set, `target/` otherwise) with windows/sec per fleet size and
//! fleet-vs-baseline ratios.

use bench::{bb, Harness};
use ecg_features::extract::{ExtractScratch, WindowExtractor};
use ecg_features::N_FEATURES;
use ecg_sim::dataset::{DatasetSpec, Scale};
use seizure_core::clock::TickConfig;
use seizure_core::config::FitConfig;
use seizure_core::engine::{BitConfig, QuantizedEngine};
use seizure_core::fleet::{FleetConfig, FleetScheduler};
use seizure_core::stream::{run_streams_parallel, SharedEngine, StreamConfig, StreamingSession};
use seizure_core::trained::FloatPipeline;
use std::sync::Arc;

const FLEET_SIZES: [usize; 3] = [64, 256, 1024];
/// Pre-extracted rows each patient contributes per flush cycle on the
/// row-serving path.
const ROWS_PER_PATIENT: usize = 4;
/// Pinned executor counts for the staged flush pipeline's multi-worker
/// rows (`*_w{k}` benches) — alongside the machine-default runs of the
/// unsuffixed benches. On a single-core container the pools just
/// oversubscribe the core, so these rows measure dispatch overhead, not
/// speedup; see the README's fleet bench note.
const WORKER_VARIANTS: [usize; 3] = [1, 2, 4];

/// One window-sized chunk per patient, sliced out of the cohort's real
/// sessions (cycled across patients, staggered so neighbours replay
/// different windows).
fn patient_chunks(ecgs: &[Vec<f64>], window_len: usize, n: usize) -> Vec<&[f64]> {
    (0..n)
        .map(|p| {
            let ecg = &ecgs[p % ecgs.len()];
            let windows = ecg.len() / window_len;
            let w = (p / ecgs.len()) % windows;
            &ecg[w * window_len..(w + 1) * window_len]
        })
        .collect()
}

fn main() {
    let spec = DatasetSpec::new(Scale::Tiny, 42);
    let window_s = spec.scale.window_s();
    let fs = spec.scale.fs();
    let cfg = StreamConfig::non_overlapping(fs, window_s).expect("stream config");

    let matrix = seizure_core::assemble::build_feature_matrix(&spec);
    let pipeline = FloatPipeline::fit(&matrix, &FitConfig::default()).expect("fit");
    let quantized =
        QuantizedEngine::from_pipeline(&pipeline, BitConfig::paper_choice()).expect("engine");
    let float_engine: SharedEngine = Arc::new(pipeline.clone());
    let quant_engine: SharedEngine = Arc::new(quantized);

    // Real session material, cycled across simulated patients.
    let ecgs: Vec<Vec<f64>> = spec.sessions.iter().map(|s| s.synthesize().ecg).collect();
    // Pre-extracted feature rows for the row-serving path.
    let rows: Vec<Vec<f64>> = {
        let rec = spec.sessions[0].synthesize();
        let extractor = WindowExtractor::new(rec.fs);
        let mut scratch = ExtractScratch::default();
        let mut row = Vec::with_capacity(N_FEATURES);
        let mut out = Vec::new();
        for label in rec.window_labels(window_s) {
            if extractor
                .extract_into(rec.window_samples(&label), &mut scratch, &mut row)
                .is_ok()
            {
                out.push(row.clone());
            }
        }
        out
    };
    assert!(rows.len() >= 4, "need a few extracted rows to cycle");

    let mut h = Harness::new();
    let mut meta: Vec<(&str, String)> = Vec::new();

    // --- row-serving path: classification-bound, both engines (float
    // first: it is the cloud-serving backend and the headline, since
    // the quantised engine's scratch-reusing per-row path already runs
    // at batch speed on one core) ---
    for (engine_name, engine) in [("float", &float_engine), ("quant", &quant_engine)] {
        for &n in &FLEET_SIZES {
            let windows_per_iter = (n * ROWS_PER_PATIENT) as f64;
            let fleet_name = format!("fleet_rows_{n}_{engine_name}");
            let perrow_name = format!("perrow_rows_{n}_{engine_name}");
            if !h.enabled(&fleet_name) && !h.enabled(&perrow_name) {
                continue;
            }
            // Persistent fleet: admit once, then ingest_row + flush per
            // iteration — one batched kernel call per cycle.
            let mut fleet = FleetScheduler::new(Arc::clone(engine), FleetConfig::unbounded(cfg))
                .expect("fleet");
            for p in 0..n as u64 {
                fleet.admit(p).expect("admit");
            }
            let mut flush = seizure_core::fleet::FleetFlush::default();
            let fleet_ns = h.bench(&fleet_name, || {
                for p in 0..n {
                    for r in 0..ROWS_PER_PATIENT {
                        let row = &rows[(p + r) % rows.len()];
                        fleet.ingest_row(p as u64, Some(row)).expect("ingest_row");
                    }
                }
                fleet.flush_into(&mut flush);
                bb(flush.rows_classified)
            });
            // Per-row baseline: the run_streams_parallel serving shape —
            // persistent per-patient sessions, one engine.decision per
            // window.
            let mut sessions: Vec<StreamingSession> = (0..n)
                .map(|_| StreamingSession::new(Arc::clone(engine), cfg).expect("session"))
                .collect();
            let perrow_ns = h.bench(&perrow_name, || {
                let mut last = 0u64;
                for (p, session) in sessions.iter_mut().enumerate() {
                    for r in 0..ROWS_PER_PATIENT {
                        let row = &rows[(p + r) % rows.len()];
                        last = session.push_row(Some(row)).expect("push_row").window_index;
                    }
                }
                bb(last)
            });
            if fleet_ns.is_finite() && perrow_ns.is_finite() {
                meta.push((
                    Box::leak(
                        format!("rows_{n}_{engine_name}_fleet_windows_per_sec").into_boxed_str(),
                    ),
                    format!("{:.1}", windows_per_iter * 1e9 / fleet_ns),
                ));
                meta.push((
                    Box::leak(
                        format!("rows_{n}_{engine_name}_perrow_windows_per_sec").into_boxed_str(),
                    ),
                    format!("{:.1}", windows_per_iter * 1e9 / perrow_ns),
                ));
                meta.push((
                    Box::leak(format!("rows_{n}_{engine_name}_fleet_vs_perrow").into_boxed_str()),
                    format!("{:.3}", perrow_ns / fleet_ns),
                ));
            }
            // Pinned executor counts (quantised serving is the
            // latency-critical backend): same workload through a fleet
            // whose flush pipeline runs serial / 2-wide / 4-wide.
            if engine_name == "quant" {
                for &w in &WORKER_VARIANTS {
                    let name = format!("fleet_rows_{n}_quant_w{w}");
                    if !h.enabled(&name) {
                        continue;
                    }
                    let mut fleet = FleetScheduler::new(
                        Arc::clone(engine),
                        FleetConfig {
                            workers: Some(w),
                            ..FleetConfig::unbounded(cfg)
                        },
                    )
                    .expect("fleet");
                    for p in 0..n as u64 {
                        fleet.admit(p).expect("admit");
                    }
                    let mut flush = seizure_core::fleet::FleetFlush::default();
                    let ns = h.bench(&name, || {
                        for p in 0..n {
                            for r in 0..ROWS_PER_PATIENT {
                                let row = &rows[(p + r) % rows.len()];
                                fleet.ingest_row(p as u64, Some(row)).expect("ingest_row");
                            }
                        }
                        fleet.flush_into(&mut flush);
                        bb(flush.rows_classified)
                    });
                    if ns.is_finite() {
                        meta.push((
                            Box::leak(
                                format!("rows_{n}_quant_w{w}_fleet_windows_per_sec")
                                    .into_boxed_str(),
                            ),
                            format!("{:.1}", windows_per_iter * 1e9 / ns),
                        ));
                        if perrow_ns.is_finite() {
                            meta.push((
                                Box::leak(
                                    format!("rows_{n}_quant_w{w}_fleet_vs_perrow").into_boxed_str(),
                                ),
                                format!("{:.3}", perrow_ns / ns),
                            ));
                        }
                    }
                }
            }
        }
    }

    // --- tick-path overhead: the serving-clock tick (deadline
    // accounting, per-row arrival stamping, latency histograms) vs a
    // caller-driven flush on the identical row workload ---
    {
        let n = 256;
        let flush_name = "fleet_rows_256_quant_flush_driven";
        let tick_name = "fleet_rows_256_quant_tick_driven";
        if h.enabled(flush_name) || h.enabled(tick_name) {
            let windows_per_iter = (n * ROWS_PER_PATIENT) as f64;
            let mut run = |name: &str, tick: Option<TickConfig>| {
                let ticked = tick.is_some();
                let mut fleet = FleetScheduler::new(
                    Arc::clone(&quant_engine),
                    FleetConfig {
                        tick,
                        ..FleetConfig::unbounded(cfg)
                    },
                )
                .expect("fleet");
                for p in 0..n as u64 {
                    fleet.admit(p).expect("admit");
                }
                let mut flush = seizure_core::fleet::FleetFlush::default();
                h.bench(name, || {
                    for p in 0..n {
                        for r in 0..ROWS_PER_PATIENT {
                            let row = &rows[(p + r) % rows.len()];
                            fleet.ingest_row(p as u64, Some(row)).expect("ingest_row");
                        }
                    }
                    if ticked {
                        fleet.tick_into(&mut flush).expect("tick");
                    } else {
                        fleet.flush_into(&mut flush);
                    }
                    bb(flush.rows_classified)
                })
            };
            let flush_ns = run(flush_name, None);
            // 1 ns cadence: the wall clock stamps arrivals and accounts
            // deadlines but tick() never sleeps, so the delta over the
            // flush-driven twin is pure tick-path bookkeeping.
            let tick_ns = run(tick_name, Some(TickConfig::wall(1)));
            if flush_ns.is_finite() && tick_ns.is_finite() {
                meta.push((
                    "rows_256_quant_tick_windows_per_sec",
                    format!("{:.1}", windows_per_iter * 1e9 / tick_ns),
                ));
                meta.push((
                    "rows_256_quant_tick_vs_flush",
                    format!("{:.3}", tick_ns / flush_ns),
                ));
            }
        }
    }

    // --- raw-sample ingest: extraction-bound end-to-end serving ---
    for &n in &FLEET_SIZES {
        let fleet_name = format!("fleet_ingest_flush_{n}_quant");
        let baseline_name = format!("streams_parallel_{n}_quant");
        if !h.enabled(&fleet_name) && !h.enabled(&baseline_name) {
            continue;
        }
        let chunks = patient_chunks(&ecgs, cfg.window_len, n);
        let mut fleet = FleetScheduler::new(Arc::clone(&quant_engine), FleetConfig::unbounded(cfg))
            .expect("fleet");
        for p in 0..n as u64 {
            fleet.admit(p).expect("admit");
        }
        let mut flush = seizure_core::fleet::FleetFlush::default();
        let fleet_ns = h.bench(&fleet_name, || {
            for (p, chunk) in chunks.iter().enumerate() {
                fleet.ingest(p as u64, chunk).expect("ingest");
            }
            fleet.flush_into(&mut flush);
            bb(flush.decisions.len())
        });
        // The named baseline: run_streams_parallel re-builds sessions
        // per call and classifies window by window.
        let streams: Vec<Vec<f64>> = chunks.iter().map(|c| c.to_vec()).collect();
        let baseline_ns = h.bench(&baseline_name, || {
            bb(
                run_streams_parallel(&quant_engine, cfg, &streams, cfg.window_len)
                    .expect("baseline"),
            )
        });
        if fleet_ns.is_finite() && baseline_ns.is_finite() {
            meta.push((
                Box::leak(format!("ingest_{n}_quant_fleet_windows_per_sec").into_boxed_str()),
                format!("{:.1}", n as f64 * 1e9 / fleet_ns),
            ));
            meta.push((
                Box::leak(format!("ingest_{n}_quant_baseline_windows_per_sec").into_boxed_str()),
                format!("{:.1}", n as f64 * 1e9 / baseline_ns),
            ));
            meta.push((
                Box::leak(format!("ingest_{n}_quant_fleet_vs_streams_parallel").into_boxed_str()),
                format!("{:.3}", baseline_ns / fleet_ns),
            ));
        }
        // Pinned executor counts: the sharded extract stage at serial /
        // 2-wide / 4-wide.
        for &w in &WORKER_VARIANTS {
            let name = format!("fleet_ingest_flush_{n}_quant_w{w}");
            if !h.enabled(&name) {
                continue;
            }
            let mut fleet = FleetScheduler::new(
                Arc::clone(&quant_engine),
                FleetConfig {
                    workers: Some(w),
                    ..FleetConfig::unbounded(cfg)
                },
            )
            .expect("fleet");
            for p in 0..n as u64 {
                fleet.admit(p).expect("admit");
            }
            let mut flush = seizure_core::fleet::FleetFlush::default();
            let ns = h.bench(&name, || {
                for (p, chunk) in chunks.iter().enumerate() {
                    fleet.ingest(p as u64, chunk).expect("ingest");
                }
                fleet.flush_into(&mut flush);
                bb(flush.decisions.len())
            });
            if ns.is_finite() {
                meta.push((
                    Box::leak(
                        format!("ingest_{n}_quant_w{w}_fleet_windows_per_sec").into_boxed_str(),
                    ),
                    format!("{:.1}", n as f64 * 1e9 / ns),
                ));
            }
        }
    }

    h.report();
    println!("\nfleet vs per-row baselines (ratio > 1 ⇒ fleet faster):");
    for (k, v) in &meta {
        if k.ends_with("_fleet_vs_perrow") || k.ends_with("_fleet_vs_streams_parallel") {
            println!("  {k:<44} {v}x");
        }
    }

    let workers = seizure_core::parallel::worker_count(usize::MAX);
    // Smoke runs must not clobber the committed baseline: the repo-root
    // file is only rewritten when explicitly requested.
    let out = if std::env::var("BENCH_WRITE_BASELINE").is_ok() {
        assert!(
            !h.filter_active(),
            "refusing to write the committed baseline from a \
             BENCH_FILTER-restricted run (skipped benches would bake NaN \
             ratios into BENCH_fleet.json)"
        );
        format!("{}/../../BENCH_fleet.json", env!("CARGO_MANIFEST_DIR"))
    } else {
        let dir = format!("{}/../../target", env!("CARGO_MANIFEST_DIR"));
        std::fs::create_dir_all(&dir).expect("create target dir");
        format!("{dir}/BENCH_fleet.json")
    };
    let mut metadata: Vec<(&str, String)> = vec![
        ("suite", "fleet".to_string()),
        ("workers", workers.to_string()),
        ("rows_per_patient", ROWS_PER_PATIENT.to_string()),
    ];
    metadata.extend(meta);
    h.write_json(&out, &metadata);
}
