//! Inference-engine latency: float reference vs bit-accurate quantised
//! pipeline at several design points, plus engine construction cost.
//!
//! The interesting comparison is not absolute speed (the quantised engine
//! emulates hardware in software) but the scaling with `N_SV × N_feat`,
//! which mirrors the accelerator's cycle count.

use bench::{bb, Harness};
use seizure_core::config::FitConfig;
use seizure_core::engine::{BitConfig, QuantizedEngine};
use seizure_core::quickfeat::{synthetic_matrix, QuickFeatConfig};
use seizure_core::trained::FloatPipeline;
use svm::ClassifierEngine;

fn main() {
    let matrix = synthetic_matrix(&QuickFeatConfig {
        n_sessions: 6,
        windows_per_session: 50,
        ..Default::default()
    });
    let pipeline = FloatPipeline::fit(&matrix, &FitConfig::default()).expect("fit");
    let row = matrix.row(0);

    let mut h = Harness::new();

    h.bench("float_pipeline_classify", || bb(pipeline.predict(row)));
    h.bench("float_pipeline_classify_batch_300", || {
        bb(pipeline.classify_batch(&matrix.features))
    });

    for bits in [
        BitConfig::new(9, 15),
        BitConfig::new(16, 16),
        BitConfig::uniform(32),
    ] {
        let engine = QuantizedEngine::from_pipeline(&pipeline, bits).expect("engine");
        h.bench(
            &format!("quantized_classify_d{}_a{}", bits.d_bits, bits.a_bits),
            || bb(engine.classify(row)),
        );
        h.bench(
            &format!("quantized_classify_batch_d{}_a{}", bits.d_bits, bits.a_bits),
            || bb(engine.classify_batch(&matrix.features)),
        );
    }

    h.bench("quantized_engine_build_9_15", || {
        bb(
            QuantizedEngine::from_pipeline(&pipeline, BitConfig::paper_choice())
                .map(|e| e.n_support_vectors()),
        )
    });

    let engine =
        QuantizedEngine::from_pipeline(&pipeline, BitConfig::paper_choice()).expect("engine");
    h.bench("encode_features_53", || bb(engine.encode_features(row)));

    h.report();
}
