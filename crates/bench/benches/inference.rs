//! Inference-engine latency: float reference vs bit-accurate quantised
//! pipeline at several design points, plus engine construction cost.
//!
//! The interesting comparison is not absolute speed (the quantised engine
//! emulates hardware in software) but the scaling with `N_SV × N_feat`,
//! which mirrors the accelerator's cycle count.

use criterion::{criterion_group, criterion_main, Criterion};
use seizure_core::config::FitConfig;
use seizure_core::engine::{BitConfig, QuantizedEngine};
use seizure_core::quickfeat::{synthetic_matrix, QuickFeatConfig};
use seizure_core::trained::FloatPipeline;
use std::hint::black_box;
use std::sync::OnceLock;

struct Fixture {
    matrix: ecg_features::FeatureMatrix,
    pipeline: FloatPipeline,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let matrix = synthetic_matrix(&QuickFeatConfig {
            n_sessions: 6,
            windows_per_session: 50,
            ..Default::default()
        });
        let pipeline = FloatPipeline::fit(&matrix, &FitConfig::default()).expect("fit");
        Fixture { matrix, pipeline }
    })
}

fn bench_float_inference(c: &mut Criterion) {
    let f = fixture();
    let row = &f.matrix.rows[0];
    c.bench_function("float_pipeline_classify", |b| {
        b.iter(|| black_box(f.pipeline.predict(row)))
    });
}

fn bench_quantized_inference(c: &mut Criterion) {
    let f = fixture();
    let row = &f.matrix.rows[0];
    let mut g = c.benchmark_group("quantized_classify");
    for bits in [BitConfig::new(9, 15), BitConfig::new(16, 16), BitConfig::uniform(32)] {
        let engine = QuantizedEngine::from_pipeline(&f.pipeline, bits).expect("engine");
        g.bench_function(format!("d{}_a{}", bits.d_bits, bits.a_bits), |b| {
            b.iter(|| black_box(engine.classify(row)))
        });
    }
    g.finish();
}

fn bench_engine_construction(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("quantized_engine_build_9_15", |b| {
        b.iter(|| {
            black_box(
                QuantizedEngine::from_pipeline(&f.pipeline, BitConfig::paper_choice())
                    .map(|e| e.n_support_vectors()),
            )
        })
    });
}

fn bench_feature_encoding(c: &mut Criterion) {
    let f = fixture();
    let engine =
        QuantizedEngine::from_pipeline(&f.pipeline, BitConfig::paper_choice()).expect("engine");
    let row = &f.matrix.rows[0];
    c.bench_function("encode_features_53", |b| {
        b.iter(|| black_box(engine.encode_features(row)))
    });
}

criterion_group!(
    inference,
    bench_float_inference,
    bench_quantized_inference,
    bench_engine_construction,
    bench_feature_encoding
);
criterion_main!(inference);
