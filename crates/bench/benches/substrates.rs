//! Micro-benchmarks of every substrate the reproduction is built on:
//! DSP kernels, ECG synthesis, feature extraction and SMO training.

use criterion::{criterion_group, criterion_main, Criterion};
use biodsp::fft::{fft, Complex};
use biodsp::qrs::PanTompkins;
use biodsp::window::WindowKind;
use ecg_sim::dataset::{DatasetSpec, Scale};
use ecg_features::extract::WindowExtractor;
use std::hint::black_box;
use std::sync::OnceLock;
use svm::smo::{SmoConfig, SmoTrainer};
use svm::Kernel;

fn session_ecg() -> &'static (Vec<f64>, f64) {
    static S: OnceLock<(Vec<f64>, f64)> = OnceLock::new();
    S.get_or_init(|| {
        let spec = DatasetSpec::new(Scale::Tiny, 42);
        let rec = spec.sessions[0].synthesize();
        (rec.ecg, rec.fs)
    })
}

fn bench_fft(c: &mut Criterion) {
    let sig: Vec<Complex> = (0..4096)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0))
        .collect();
    c.bench_function("fft_4096", |b| b.iter(|| black_box(fft(&sig))));
}

fn bench_welch(c: &mut Criterion) {
    let sig: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.37).sin()).collect();
    c.bench_function("welch_4096_nperseg256", |b| {
        b.iter(|| black_box(biodsp::psd::welch(&sig, 128.0, 256, 0.5, WindowKind::Hann)))
    });
}

fn bench_burg(c: &mut Criterion) {
    let sig: Vec<f64> = (0..720)
        .map(|i| (i as f64 * 0.41).sin() + 0.2 * (i as f64 * 1.3).cos())
        .collect();
    c.bench_function("burg_ar9_720", |b| {
        b.iter(|| black_box(biodsp::ar::burg(&sig, 9)))
    });
}

fn bench_pan_tompkins(c: &mut Criterion) {
    let (ecg, fs) = session_ecg();
    let window = &ecg[..(40.0 * fs) as usize];
    c.bench_function("pan_tompkins_40s", |b| {
        b.iter(|| black_box(PanTompkins::default().detect(window, *fs)))
    });
}

fn bench_session_synthesis(c: &mut Criterion) {
    let spec = DatasetSpec::new(Scale::Tiny, 42);
    let mut g = c.benchmark_group("ecg_synthesis");
    g.sample_size(10);
    g.bench_function("session_6min_128hz", |b| {
        b.iter(|| black_box(spec.sessions[0].synthesize().ecg.len()))
    });
    g.finish();
}

fn bench_feature_extraction(c: &mut Criterion) {
    let (ecg, fs) = session_ecg();
    let window = &ecg[..(40.0 * fs) as usize];
    let ex = WindowExtractor::new(*fs);
    c.bench_function("extract_53_features_40s_window", |b| {
        b.iter(|| black_box(ex.extract(window).map(|v| v.len())))
    });
}

fn bench_smo(c: &mut Criterion) {
    // A moderately hard 2-D training problem with overlap.
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..120 {
        let t = i as f64 * 0.37;
        x.push(vec![0.4 + 0.5 * t.sin(), 0.3 * (1.7 * t).cos()]);
        y.push(1.0);
        x.push(vec![-0.4 + 0.5 * (1.1 * t).cos(), 0.3 * (0.7 * t).sin()]);
        y.push(-1.0);
    }
    let mut g = c.benchmark_group("smo_training");
    g.sample_size(10);
    for kernel in [Kernel::Linear, Kernel::Polynomial { degree: 2 }] {
        g.bench_function(kernel.label(), |b| {
            let cfg = SmoConfig { c: 4.0, kernel, ..Default::default() };
            b.iter(|| black_box(SmoTrainer::new(cfg).train(&x, &y).map(|m| m.n_support_vectors())))
        });
    }
    g.finish();
}

criterion_group!(
    substrates,
    bench_fft,
    bench_welch,
    bench_burg,
    bench_pan_tompkins,
    bench_session_synthesis,
    bench_feature_extraction,
    bench_smo
);
criterion_main!(substrates);
