//! Micro-benchmarks of every substrate the reproduction is built on:
//! DSP kernels, ECG synthesis, feature extraction and SMO training.

use bench::{bb, Harness};
use biodsp::fft::{fft, Complex};
use biodsp::qrs::PanTompkins;
use biodsp::window::WindowKind;
use ecg_features::extract::WindowExtractor;
use ecg_features::DenseMatrix;
use ecg_sim::dataset::{DatasetSpec, Scale};
use svm::smo::{SmoConfig, SmoTrainer};
use svm::Kernel;

fn main() {
    let spec = DatasetSpec::new(Scale::Tiny, 42);
    let rec = spec.sessions[0].synthesize();
    let (ecg, fs) = (rec.ecg, rec.fs);

    let mut h = Harness::new();

    let sig: Vec<Complex> = (0..4096)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0))
        .collect();
    h.bench("fft_4096", || bb(fft(&sig)));

    let real: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.37).sin()).collect();
    h.bench("welch_4096_nperseg256", || {
        bb(biodsp::psd::welch(&real, 128.0, 256, 0.5, WindowKind::Hann))
    });

    let ar_sig: Vec<f64> = (0..720)
        .map(|i| (i as f64 * 0.41).sin() + 0.2 * (i as f64 * 1.3).cos())
        .collect();
    h.bench("burg_ar9_720", || bb(biodsp::ar::burg(&ar_sig, 9)));

    let window = &ecg[..(40.0 * fs) as usize];
    h.bench("pan_tompkins_40s", || {
        bb(PanTompkins::default().detect(window, fs))
    });

    h.bench("session_synthesis_6min_128hz", || {
        bb(spec.sessions[0].synthesize().ecg.len())
    });

    let ex = WindowExtractor::new(fs);
    h.bench("extract_53_features_40s_window", || {
        bb(ex.extract(window).map(|v| v.len()))
    });

    // A moderately hard 2-D training problem with overlap.
    let mut x = DenseMatrix::with_cols(2);
    let mut y = Vec::new();
    for i in 0..120 {
        let t = i as f64 * 0.37;
        x.push_row(&[0.4 + 0.5 * t.sin(), 0.3 * (1.7 * t).cos()]);
        y.push(1.0);
        x.push_row(&[-0.4 + 0.5 * (1.1 * t).cos(), 0.3 * (0.7 * t).sin()]);
        y.push(-1.0);
    }
    for kernel in [Kernel::Linear, Kernel::Polynomial { degree: 2 }] {
        let cfg = SmoConfig {
            c: 4.0,
            kernel,
            ..Default::default()
        };
        h.bench(&format!("smo_train_240_{}", kernel.label()), || {
            bb(SmoTrainer::new(cfg)
                .train(&x, &y)
                .map(|m| m.n_support_vectors()))
        });
    }

    h.report();
}
