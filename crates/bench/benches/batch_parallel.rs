//! Perf-trajectory baseline for the dense-matrix + parallel-evaluation
//! layer: per-row vs batch inference, sequential vs parallel LOSO, and
//! the Fig 4 feature sweep, all at `Scale::Tiny`-equivalent sizes.
//!
//! Run with `cargo bench -p bench --bench batch_parallel`; results land in
//! `BENCH_batch_parallel.json` at the workspace root so successive PRs can
//! track the trajectory.

use bench::{bb, Harness};
use hwmodel::TechParams;
use seizure_core::config::FitConfig;
use seizure_core::engine::{BitConfig, QuantizedEngine};
use seizure_core::eval::{loso_evaluate, loso_evaluate_serial};
use seizure_core::explore::feature_sweep;
use seizure_core::quickfeat::{synthetic_matrix, QuickFeatConfig};
use seizure_core::trained::FloatPipeline;
use svm::ClassifierEngine;

fn main() {
    let matrix = synthetic_matrix(&QuickFeatConfig {
        n_sessions: 6,
        windows_per_session: 50,
        ..Default::default()
    });
    let pipeline = FloatPipeline::fit(&matrix, &FitConfig::default()).expect("fit");
    let engine =
        QuantizedEngine::from_pipeline(&pipeline, BitConfig::paper_choice()).expect("engine");
    let cfg = FitConfig::default();
    let tech = TechParams::default();

    let mut h = Harness::new();

    // --- per-row vs batch inference (float pipeline) ---
    let row_float = h.bench("float_predict_per_row_300", || {
        let mut acc = 0.0;
        for row in matrix.rows() {
            acc += pipeline.predict(row);
        }
        acc
    });
    let batch_float = h.bench("float_predict_batch_300", || {
        bb(pipeline.classify_batch(&matrix.features))
    });

    // --- per-row vs batch inference (quantised engine) ---
    let row_quant = h.bench("quantized_classify_per_row_300", || {
        let mut acc = 0.0;
        for row in matrix.rows() {
            acc += engine.classify(row);
        }
        acc
    });
    let batch_quant = h.bench("quantized_classify_batch_300", || {
        bb(engine.classify_batch(&matrix.features))
    });

    // --- sequential vs parallel LOSO ---
    let serial = h.bench("loso_serial_6_sessions", || {
        bb(loso_evaluate_serial(&matrix, &cfg))
    });
    let parallel = h.bench("loso_parallel_6_sessions", || {
        bb(loso_evaluate(&matrix, &cfg))
    });

    // --- the Fig 4 headline workload: parallel feature sweep ---
    h.bench("feature_sweep_53_20_10", || {
        bb(feature_sweep(&matrix, &[53, 20, 10], &cfg, &tech))
    });

    h.report();
    println!("\nspeedups (median, >1 means the new path wins):");
    println!("  float  batch vs per-row: {:.2}x", row_float / batch_float);
    println!("  quant  batch vs per-row: {:.2}x", row_quant / batch_quant);
    println!("  LOSO parallel vs serial: {:.2}x", serial / parallel);

    let workers = seizure_core::parallel::worker_count(usize::MAX);
    // Smoke runs (CI, quick local checks) must not clobber the committed
    // perf-trajectory baseline: the repo-root file is only rewritten when
    // explicitly requested; otherwise results land under target/.
    let out = if std::env::var("BENCH_WRITE_BASELINE").is_ok() {
        assert!(
            !h.filter_active(),
            "refusing to write the committed baseline from a \
             BENCH_FILTER-restricted run (skipped benches would bake NaN \
             ratios into BENCH_batch_parallel.json)"
        );
        format!(
            "{}/../../BENCH_batch_parallel.json",
            env!("CARGO_MANIFEST_DIR")
        )
    } else {
        let dir = format!("{}/../../target", env!("CARGO_MANIFEST_DIR"));
        std::fs::create_dir_all(&dir).expect("create target dir");
        format!("{dir}/BENCH_batch_parallel.json")
    };
    h.write_json(
        &out,
        &[
            ("suite", "batch_parallel".to_string()),
            ("workers", workers.to_string()),
            (
                "float_batch_speedup_vs_per_row",
                format!("{:.3}", row_float / batch_float),
            ),
            (
                "quantized_batch_speedup_vs_per_row",
                format!("{:.3}", row_quant / batch_quant),
            ),
            (
                "loso_parallel_speedup_vs_serial",
                format!("{:.3}", serial / parallel),
            ),
        ],
    );
}
