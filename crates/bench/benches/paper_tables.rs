//! One benchmark per paper table/figure: times the regeneration workload
//! at test scale (synthetic quickfeat cohort), so `cargo bench` exercises
//! every experiment end to end. The printed rows of the actual
//! experiments come from `cargo run -p experiments --bin <table1|fig3..fig7>`.

use bench::{bb, Harness};
use hwmodel::TechParams;
use seizure_core::bitwidth::{bit_grid_evaluate, homogeneous_evaluate};
use seizure_core::combine::{combined_sequence, CombineParams};
use seizure_core::config::FitConfig;
use seizure_core::eval::loso_evaluate;
use seizure_core::explore::{feature_sweep, sv_budget_sweep};
use seizure_core::featsel::correlation_matrix;
use seizure_core::quickfeat::{synthetic_matrix, QuickFeatConfig};
use svm::Kernel;

fn main() {
    let m = synthetic_matrix(&QuickFeatConfig {
        n_sessions: 6,
        windows_per_session: 40,
        ..Default::default()
    });
    let tech = TechParams::default();

    let mut h = Harness::new();

    for kernel in [
        Kernel::Linear,
        Kernel::Polynomial { degree: 2 },
        Kernel::Polynomial { degree: 3 },
        Kernel::Rbf { gamma: 0.5 },
    ] {
        let cfg = FitConfig::default().with_kernel(kernel);
        h.bench(&format!("table1_loso_{}", kernel.label()), || {
            bb(loso_evaluate(&m, &cfg).mean_gm)
        });
    }

    h.bench("fig3_correlation_matrix", || bb(correlation_matrix(&m)));

    h.bench("fig4_feature_sweep_53_20_10", || {
        bb(feature_sweep(&m, &[53, 20, 10], &FitConfig::default(), &tech).len())
    });

    h.bench("fig5_sv_budget_sweep_30_15", || {
        bb(sv_budget_sweep(&m, &[30, 15], &FitConfig::default(), &tech).len())
    });

    h.bench("fig6_bit_grid_3x2", || {
        bb(bit_grid_evaluate(&m, &FitConfig::default(), &[7, 9, 16], &[12, 15], &tech).len())
    });

    h.bench("fig7_combined_sequence", || {
        let params = CombineParams {
            n_features: 20,
            sv_budget: 16,
            d_bits: 9,
            a_bits: 15,
        };
        bb(combined_sequence(&m, &FitConfig::default(), &params, &tech).len())
    });
    h.bench("fig7_homogeneous_16bit", || {
        bb(homogeneous_evaluate(&m, &FitConfig::default(), 16, &tech).1)
    });

    h.report();
}
