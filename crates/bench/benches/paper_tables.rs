//! One benchmark group per paper table/figure: times the regeneration
//! workload at test scale (Tiny cohort), so `cargo bench` exercises every
//! experiment end to end. The printed rows of the actual experiments come
//! from `cargo run -p experiments --bin <table1|fig3..fig7>`.

use criterion::{criterion_group, criterion_main, Criterion};
use ecg_sim::dataset::{DatasetSpec, Scale};
use hwmodel::TechParams;
use seizure_core::assemble::build_feature_matrix;
use seizure_core::bitwidth::{bit_grid_evaluate, homogeneous_evaluate};
use seizure_core::combine::{combined_sequence, CombineParams};
use seizure_core::config::FitConfig;
use seizure_core::eval::loso_evaluate;
use seizure_core::explore::{feature_sweep, sv_budget_sweep};
use seizure_core::featsel::correlation_matrix;
use std::hint::black_box;
use std::sync::OnceLock;
use svm::Kernel;

fn matrix() -> &'static ecg_features::FeatureMatrix {
    static M: OnceLock<ecg_features::FeatureMatrix> = OnceLock::new();
    M.get_or_init(|| build_feature_matrix(&DatasetSpec::new(Scale::Tiny, 42)))
}

fn bench_table1(c: &mut Criterion) {
    let m = matrix();
    let mut g = c.benchmark_group("table1_kernels");
    g.sample_size(10);
    for kernel in [
        Kernel::Linear,
        Kernel::Polynomial { degree: 2 },
        Kernel::Polynomial { degree: 3 },
        Kernel::Rbf { gamma: 0.5 },
    ] {
        g.bench_function(kernel.label(), |b| {
            b.iter(|| {
                let cfg = FitConfig::default().with_kernel(kernel);
                black_box(loso_evaluate(m, &cfg).mean_gm)
            })
        });
    }
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let m = matrix();
    c.bench_function("fig3_correlation_matrix", |b| {
        b.iter(|| black_box(correlation_matrix(m)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let m = matrix();
    let tech = TechParams::default();
    let mut g = c.benchmark_group("fig4_feature_sweep");
    g.sample_size(10);
    g.bench_function("sizes_53_20_10", |b| {
        b.iter(|| {
            black_box(feature_sweep(m, &[53, 20, 10], &FitConfig::default(), &tech).len())
        })
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let m = matrix();
    let tech = TechParams::default();
    let mut g = c.benchmark_group("fig5_sv_budget");
    g.sample_size(10);
    g.bench_function("budgets_30_15", |b| {
        b.iter(|| {
            black_box(sv_budget_sweep(m, &[30, 15], &FitConfig::default(), &tech).len())
        })
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let m = matrix();
    let tech = TechParams::default();
    let mut g = c.benchmark_group("fig6_bit_grid");
    g.sample_size(10);
    g.bench_function("grid_3x2", |b| {
        b.iter(|| {
            black_box(
                bit_grid_evaluate(m, &FitConfig::default(), &[7, 9, 16], &[12, 15], &tech)
                    .len(),
            )
        })
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let m = matrix();
    let tech = TechParams::default();
    let mut g = c.benchmark_group("fig7_combined");
    g.sample_size(10);
    g.bench_function("sequence", |b| {
        b.iter(|| {
            let params = CombineParams { n_features: 20, sv_budget: 16, d_bits: 9, a_bits: 15 };
            black_box(combined_sequence(m, &FitConfig::default(), &params, &tech).len())
        })
    });
    g.bench_function("homogeneous_16bit", |b| {
        b.iter(|| black_box(homogeneous_evaluate(m, &FitConfig::default(), 16, &tech).1))
    });
    g.finish();
}

criterion_group!(
    paper,
    bench_table1,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7
);
criterion_main!(paper);
