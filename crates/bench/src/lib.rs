#![forbid(unsafe_code)]
//! Minimal benchmark harness (offline stand-in for criterion).
//!
//! The container this workspace builds in has no registry access, so the
//! bench targets use this hand-rolled harness: auto-calibrated iteration
//! counts, multiple timed samples, median/mean/min reporting and a JSON
//! dump for the perf-trajectory baselines checked in at the repo root
//! (`BENCH_*.json`).
//!
//! Environment knobs:
//!
//! * `BENCH_SAMPLE_MS` — target wall-clock per sample in milliseconds
//!   (default 50; CI smoke runs set a small value);
//! * `BENCH_SAMPLES` — samples per benchmark (default 7);
//! * `BENCH_FILTER` — substring filter on benchmark names: non-matching
//!   benchmarks are skipped (recorded as nothing, returned as NaN), so a
//!   CI smoke run can execute a single benchmark out of a suite. Bench
//!   targets can pre-check [`Harness::enabled`] to skip expensive setup
//!   for filtered-out benchmarks.

use std::hint::black_box;
use std::time::Instant;

pub use std::hint::black_box as bb;

/// One benchmark's timing summary.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name.
    pub name: String,
    /// Iterations per timed sample.
    pub iters: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
}

/// Collects benchmark records and renders/report/serialises them.
#[derive(Debug, Default)]
pub struct Harness {
    records: Vec<BenchRecord>,
    /// Explicit per-sample budget override (else `BENCH_SAMPLE_MS`).
    sample_ms: Option<f64>,
    /// Explicit sample-count override (else `BENCH_SAMPLES`).
    samples: Option<usize>,
    /// Name-substring filter (else `BENCH_FILTER`); `Some` skips
    /// non-matching benchmarks.
    filter: Option<String>,
}

fn sample_ms() -> f64 {
    std::env::var("BENCH_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50.0)
}

fn n_samples() -> usize {
    std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
        .max(1)
}

fn env_filter() -> Option<String> {
    std::env::var("BENCH_FILTER").ok().filter(|f| !f.is_empty())
}

impl Harness {
    /// Empty harness; timing knobs and the name filter come from the
    /// environment (`BENCH_SAMPLE_MS`, `BENCH_SAMPLES`, `BENCH_FILTER`).
    pub fn new() -> Self {
        Harness {
            filter: env_filter(),
            ..Harness::default()
        }
    }

    /// Harness with explicit timing knobs, fully environment-independent
    /// (neither the timing variables nor `BENCH_FILTER` apply — explicit
    /// configuration means explicit behaviour).
    pub fn with_config(sample_ms: f64, samples: usize) -> Self {
        Harness {
            sample_ms: Some(sample_ms),
            samples: Some(samples.max(1)),
            ..Harness::default()
        }
    }

    /// Whether a `BENCH_FILTER` restriction is in effect — baseline
    /// writers check this so a filtered run (with NaN ratios for the
    /// skipped benchmarks) never overwrites a committed baseline.
    pub fn filter_active(&self) -> bool {
        self.filter.is_some()
    }

    /// Whether `name` passes the `BENCH_FILTER` substring filter — lets
    /// bench targets skip expensive setup for filtered-out benchmarks.
    pub fn enabled(&self, name: &str) -> bool {
        self.filter.as_ref().is_none_or(|f| name.contains(f))
    }

    /// Times `f`, auto-calibrating the per-sample iteration count so one
    /// sample takes roughly `BENCH_SAMPLE_MS`, and records the summary.
    /// Returns the median ns/iter for ad-hoc comparisons (NaN when the
    /// benchmark is filtered out by `BENCH_FILTER`).
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) -> f64 {
        if !self.enabled(name) {
            eprintln!("{name:<48} skipped (BENCH_FILTER)");
            return f64::NAN;
        }
        // Calibration: run once (warm-up), then scale to the target budget.
        let t0 = Instant::now();
        black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1) as f64;
        let budget_ns = self.sample_ms.unwrap_or_else(sample_ms) * 1e6;
        let iters = ((budget_ns / once_ns).ceil() as u64).clamp(1, 1_000_000);

        let samples = self.samples.unwrap_or_else(n_samples);
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        let median_ns = per_iter[per_iter.len() / 2];
        let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min_ns = per_iter[0];
        eprintln!("{name:<48} {:>12}/iter (x{iters} iters)", fmt_ns(median_ns));
        self.records.push(BenchRecord {
            name: name.to_string(),
            iters,
            samples,
            median_ns,
            mean_ns,
            min_ns,
        });
        median_ns
    }

    /// Recorded results so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Renders the summary table to stdout.
    pub fn report(&self) {
        println!(
            "\n{:<48} {:>14} {:>14} {:>14}",
            "benchmark", "median", "mean", "min"
        );
        for r in &self.records {
            println!(
                "{:<48} {:>14} {:>14} {:>14}",
                r.name,
                fmt_ns(r.median_ns),
                fmt_ns(r.mean_ns),
                fmt_ns(r.min_ns)
            );
        }
    }

    /// Serialises all records (plus free-form metadata pairs) as JSON.
    pub fn to_json(&self, metadata: &[(&str, String)]) -> String {
        let mut out = String::from("{\n");
        for (k, v) in metadata {
            out.push_str(&format!("  {}: {},\n", json_str(k), json_str(v)));
        }
        out.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"iters\": {}, \"samples\": {}, \
                 \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}}}{}\n",
                json_str(&r.name),
                r.iters,
                r.samples,
                r.median_ns,
                r.mean_ns,
                r.min_ns,
                if i + 1 == self.records.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON dump to `path`.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure (bench binaries want loud failures).
    pub fn write_json(&self, path: &str, metadata: &[(&str, String)]) {
        std::fs::write(path, self.to_json(metadata)).expect("write bench json");
        eprintln!("wrote {path}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_and_reports() {
        let mut h = Harness::with_config(1.0, 3);
        let mut acc = 0u64;
        let med = h.bench("noop_add", || {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(med > 0.0);
        assert_eq!(h.records().len(), 1);
        assert_eq!(h.records()[0].samples, 3);
        let json = h.to_json(&[("host", "test".to_string())]);
        assert!(json.contains("\"noop_add\""));
        assert!(json.contains("\"host\": \"test\""));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut h = Harness {
            filter: Some("keep".to_string()),
            ..Harness::with_config(1.0, 2)
        };
        assert!(h.enabled("keep_this"));
        assert!(!h.enabled("drop_this"));
        let skipped = h.bench("drop_this", || 1);
        assert!(skipped.is_nan());
        let ran = h.bench("keep_this", || 1);
        assert!(ran.is_finite());
        assert_eq!(h.records().len(), 1);
        assert_eq!(h.records()[0].name, "keep_this");
    }
}
