//! Benchmark harness crate: see the `benches/` directory.
