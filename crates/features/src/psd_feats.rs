//! Spectral EDR features (paper features 25–53): 29 band powers of the
//! EDR power spectral density.
//!
//! Bands are 0.15 Hz wide, centred every 0.05 Hz over `[0, 1.45)` Hz —
//! overlapping, as spectral-density features derived from smoothed
//! spectra are in practice. Adjacent bands therefore share two thirds of
//! their support and correlate strongly, reproducing the dominant red
//! block of the paper's Fig 3 correlation matrix that the
//! correlation-driven feature selection prunes first.

use crate::edr::EdrSeries;
use biodsp::kernels::ExtractPrecision;
use biodsp::psd::{welch_reference, welch_with};
use biodsp::window::WindowKind;

/// Number of PSD band features.
pub const N_PSD: usize = 29;

/// Band stride in Hz (band centres are `stride/2 + k*stride`).
pub const BAND_STRIDE_HZ: f64 = 0.025;

/// Band width in Hz (overlapping: width > stride).
pub const BAND_WIDTH_HZ: f64 = 0.10;

/// `[lo, hi)` limits of band `k` (clipped at 0 on the low side).
pub fn band_limits(k: usize) -> (f64, f64) {
    let centre = BAND_STRIDE_HZ / 2.0 + k as f64 * BAND_STRIDE_HZ;
    (
        (centre - BAND_WIDTH_HZ / 2.0).max(0.0),
        centre + BAND_WIDTH_HZ / 2.0,
    )
}

/// Feature names, `psd_band_0.03_0.10` style.
pub fn psd_names() -> Vec<String> {
    (0..N_PSD)
        .map(|k| {
            let (lo, hi) = band_limits(k);
            format!("psd_band_{lo:.2}_{hi:.2}")
        })
        .collect()
}

/// Computes the 29 log-power band features of the EDR spectrum.
///
/// Log-compression (`ln(1 + p)` on normalised powers) keeps the features'
/// dynamic range small, which matters for the fixed-point pipeline: a
/// power-of-two range per feature (Eq 6) must cover the feature's spread.
///
/// Degenerate series yield all zeros.
///
/// Uses the plan-cached real-input Welch path at
/// [`ExtractPrecision::F64`]; see [`psd_features_with`] and
/// [`psd_features_reference`].
pub fn psd_features(edr: &EdrSeries) -> [f64; N_PSD] {
    psd_features_with(edr, ExtractPrecision::F64)
}

/// Welch segment length for an EDR series of `n` samples.
fn edr_nperseg(n: usize) -> usize {
    n.next_power_of_two()
        .min(256)
        .min(n.next_power_of_two() / 2)
        .max(16)
}

/// Precision-dispatching twin of [`psd_features`]: the Welch
/// detrend/window/FFT arithmetic runs at `precision`, band integration and
/// log-compression stay `f64`.
pub fn psd_features_with(edr: &EdrSeries, precision: ExtractPrecision) -> [f64; N_PSD] {
    let mut out = [0.0; N_PSD];
    if edr.samples.len() < 16 {
        return out;
    }
    let nperseg = edr_nperseg(edr.samples.len());
    let spec = match welch_with(
        &edr.samples,
        edr.fs,
        nperseg,
        0.5,
        WindowKind::Hann,
        precision,
    ) {
        Ok(s) => s,
        Err(_) => return out,
    };
    band_log_powers(&spec, &mut out);
    out
}

/// Pre-fusion reference twin of [`psd_features`], built on
/// [`welch_reference`] (full complex FFT, window rebuilt per segment).
/// Kept for the `dsp_kernel_equivalence` suite and the legacy bench row.
pub fn psd_features_reference(edr: &EdrSeries) -> [f64; N_PSD] {
    let mut out = [0.0; N_PSD];
    if edr.samples.len() < 16 {
        return out;
    }
    let nperseg = edr_nperseg(edr.samples.len());
    let spec = match welch_reference(&edr.samples, edr.fs, nperseg, 0.5, WindowKind::Hann) {
        Ok(s) => s,
        Err(_) => return out,
    };
    band_log_powers(&spec, &mut out);
    out
}

fn band_log_powers(spec: &biodsp::psd::Spectrum, out: &mut [f64; N_PSD]) {
    let total = spec.total_power().max(f64::EPSILON);
    for (k, o) in out.iter_mut().enumerate() {
        let (lo, hi) = band_limits(k);
        // Share of total power: the modulation-depth common mode is
        // removed, so the *shape* of the spectrum (position and spread of
        // the respiratory peak) is what the features encode. Peak spread
        // is a concentration statistic — only quadratic combinations of
        // band shares can measure it, which is where the quadratic
        // kernel's Table I advantage comes from.
        let p = spec.band_power(lo, hi) / total;
        *o = (1.0 + 100.0 * p).ln();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edr::EdrSeries;

    fn tone_edr(f: f64, n: usize) -> EdrSeries {
        EdrSeries {
            fs: 4.0,
            samples: (0..n)
                .map(|i| (std::f64::consts::TAU * f * i as f64 / 4.0).sin())
                .collect(),
        }
    }

    #[test]
    fn band_containing_tone_dominates() {
        let edr = tone_edr(0.27, 720); // 3-minute window at 4 Hz
        let f = psd_features(&edr);
        let k_peak = biodsp::stats::argmax(&f).unwrap();
        let (lo, hi) = band_limits(k_peak);
        assert!(
            lo <= 0.27 && 0.27 < hi,
            "peak band [{lo},{hi}) should contain the tone"
        );
    }

    #[test]
    fn adjacent_bands_share_support() {
        // Overlap: band k and k+1 overlap by width - stride.
        for k in 1..N_PSD - 1 {
            let (_, hi_k) = band_limits(k);
            let (lo_next, _) = band_limits(k + 1);
            assert!(hi_k > lo_next, "bands {k} and {} must overlap", k + 1);
        }
    }

    #[test]
    fn neighbouring_features_are_correlated_over_varying_depth() {
        // Vary the modulation depth (the realistic dominant variance
        // source across windows): adjacent band features must co-vary
        // through the common mode.
        let mut f5 = Vec::new();
        let mut f6 = Vec::new();
        for i in 0..30 {
            let amp = 0.5 + 0.05 * i as f64;
            let f = 0.24 + 0.002 * i as f64;
            let samples: Vec<f64> = (0..600)
                .map(|k| amp * (std::f64::consts::TAU * f * k as f64 / 4.0).sin())
                .collect();
            let feats = psd_features(&EdrSeries { fs: 4.0, samples });
            f5.push(feats[5]);
            f6.push(feats[6]);
        }
        let rho = biodsp::stats::pearson(&f5, &f6).unwrap();
        assert!(rho > 0.5, "rho {rho}");
    }

    #[test]
    fn ictal_respiration_moves_power_up_in_frequency() {
        let calm = psd_features(&tone_edr(0.25, 720));
        let ictal = psd_features(&tone_edr(0.42, 720));
        let centroid = |f: &[f64; N_PSD]| {
            let tot: f64 = f.iter().sum();
            f.iter()
                .enumerate()
                .map(|(k, &v)| (k as f64 + 0.5) * BAND_STRIDE_HZ * v)
                .sum::<f64>()
                / tot
        };
        assert!(centroid(&ictal) > centroid(&calm) + 0.03);
    }

    #[test]
    fn degenerate_is_zeros() {
        let edr = EdrSeries {
            fs: 4.0,
            samples: vec![0.0; 8],
        };
        assert_eq!(psd_features(&edr), [0.0; N_PSD]);
    }

    #[test]
    fn features_are_bounded() {
        // Log of normalised power: bounded by ln(101).
        let edr = tone_edr(0.3, 500);
        let f = psd_features(&edr);
        assert!(f.iter().all(|&v| (0.0..=101f64.ln() + 1e-9).contains(&v)));
    }

    #[test]
    fn names_count() {
        let names = psd_names();
        assert_eq!(names.len(), N_PSD);
        assert!(names[0].starts_with("psd_band_0.00"));
    }
}
