//! Heart-rate-variability time-domain features (paper features 1–8).

use biodsp::stats;

/// Number of HRV features.
pub const N_HRV: usize = 8;

/// Names of the HRV features, index-aligned with [`hrv_features`].
pub const HRV_NAMES: [&str; N_HRV] = [
    "hrv_mean_nn_s",
    "hrv_sdnn_s",
    "hrv_rmssd_s",
    "hrv_pnn50",
    "hrv_mean_hr_bpm",
    "hrv_std_hr_bpm",
    "hrv_cvnn",
    "hrv_sdsd_s",
];

/// Computes the eight HRV time-domain features from an RR-interval series
/// (seconds). The series should already be cleaned of non-physiological
/// intervals.
///
/// Returns zeros for fewer than 3 intervals (degenerate window).
pub fn hrv_features(rr: &[f64]) -> [f64; N_HRV] {
    if rr.len() < 3 {
        return [0.0; N_HRV];
    }
    let mean_nn = stats::mean(rr);
    let sdnn = stats::sample_std_dev(rr);
    let d = stats::diff(rr);
    let rmssd = stats::rms(&d);
    let pnn50 = d.iter().filter(|v| v.abs() > 0.050).count() as f64 / d.len() as f64;
    let hr: Vec<f64> = rr.iter().map(|&r| 60.0 / r).collect();
    let mean_hr = stats::mean(&hr);
    let std_hr = stats::sample_std_dev(&hr);
    let cvnn = if mean_nn > 0.0 { sdnn / mean_nn } else { 0.0 };
    let sdsd = stats::sample_std_dev(&d);
    [mean_nn, sdnn, rmssd, pnn50, mean_hr, std_hr, cvnn, sdsd]
}

/// Removes non-physiological RR intervals: outside `[0.25, 2.5]` s or
/// jumping more than 40% from the running median of the last 5 kept
/// intervals (simple ectopic-beat rejection).
pub fn clean_rr(rr: &[f64]) -> Vec<f64> {
    let mut kept: Vec<f64> = Vec::with_capacity(rr.len());
    for &r in rr {
        if !(0.25..=2.5).contains(&r) {
            continue;
        }
        if kept.len() >= 3 {
            let tail = &kept[kept.len().saturating_sub(5)..];
            let med = biodsp::stats::median(tail).unwrap_or(r);
            if (r - med).abs() / med > 0.4 {
                continue;
            }
        }
        kept.push(r);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rhythm_has_zero_variability() {
        let rr = vec![0.8; 50];
        let f = hrv_features(&rr);
        assert!((f[0] - 0.8).abs() < 1e-12); // mean NN
        assert!(f[1].abs() < 1e-12); // SDNN
        assert!(f[2].abs() < 1e-12); // RMSSD
        assert!(f[3].abs() < 1e-12); // pNN50
        assert!((f[4] - 75.0).abs() < 1e-9); // mean HR
        assert!(f[5].abs() < 1e-9);
        assert!(f[6].abs() < 1e-12);
        assert!(f[7].abs() < 1e-12);
    }

    #[test]
    fn alternating_rhythm_exercises_all_features() {
        // 0.7 / 0.9 alternation: diffs are ±0.2 (all > 50 ms).
        let rr: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 0.7 } else { 0.9 })
            .collect();
        let f = hrv_features(&rr);
        assert!((f[0] - 0.8).abs() < 1e-12);
        assert!(f[1] > 0.09 && f[1] < 0.11);
        assert!((f[2] - 0.2).abs() < 1e-9);
        assert!((f[3] - 1.0).abs() < 1e-12);
        assert!(f[6] > 0.1); // CVNN
    }

    #[test]
    fn degenerate_input_is_zeros() {
        assert_eq!(hrv_features(&[]), [0.0; N_HRV]);
        assert_eq!(hrv_features(&[0.8, 0.8]), [0.0; N_HRV]);
    }

    #[test]
    fn tachycardia_raises_hr_lowers_nn() {
        let calm = hrv_features(&vec![0.9; 30]);
        let fast = hrv_features(&vec![0.5; 30]);
        assert!(fast[4] > calm[4]);
        assert!(fast[0] < calm[0]);
    }

    #[test]
    fn clean_rr_drops_nonphysiological() {
        let rr = vec![0.8, 0.82, 0.78, 5.0, 0.1, 0.81, 0.8];
        let cleaned = clean_rr(&rr);
        assert_eq!(cleaned.len(), 5);
        assert!(cleaned.iter().all(|&r| (0.25..=2.5).contains(&r)));
    }

    #[test]
    fn clean_rr_drops_ectopic_jumps() {
        let mut rr = vec![0.8; 20];
        rr[10] = 1.4; // +75% jump: ectopic
        let cleaned = clean_rr(&rr);
        assert_eq!(cleaned.len(), 19);
        assert!(cleaned.iter().all(|&r| (r - 0.8).abs() < 1e-12));
    }

    #[test]
    fn names_align() {
        assert_eq!(HRV_NAMES.len(), N_HRV);
        assert!(HRV_NAMES.iter().all(|n| n.starts_with("hrv_")));
    }
}
