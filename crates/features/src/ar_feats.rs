//! Auto-regressive EDR features (paper features 16–24): the nine linear
//! coefficients of an AR(9) model fitted to the EDR series with Burg's
//! method.

use crate::edr::EdrSeries;
use biodsp::ar::burg;

/// AR model order (nine coefficients → features 16–24 of the paper).
pub const AR_ORDER: usize = 9;

/// Number of AR features.
pub const N_AR: usize = AR_ORDER;

/// Feature names, `ar_coeff_1` … `ar_coeff_9`.
pub fn ar_names() -> Vec<String> {
    (1..=AR_ORDER).map(|k| format!("ar_coeff_{k}")).collect()
}

/// Computes the AR(9) coefficients of the EDR series.
///
/// Degenerate series (too short or zero power) yield all-zero features so
/// one bad window cannot poison a whole recording.
pub fn ar_features(edr: &EdrSeries) -> [f64; N_AR] {
    let mut out = [0.0; N_AR];
    if let Ok(model) = burg(&edr.samples, AR_ORDER) {
        for (o, &c) in out.iter_mut().zip(model.coeffs.iter()) {
            *o = c;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edr_from(samples: Vec<f64>) -> EdrSeries {
        EdrSeries { fs: 4.0, samples }
    }

    #[test]
    fn sinusoidal_edr_yields_resonant_ar() {
        // A clean 0.25 Hz tone at 4 Hz sampling: the AR model must place a
        // resonance there, i.e. a1 ≈ -2 cos(2π f/fs) for the dominant
        // pole pair.
        let fs = 4.0;
        let f = 0.25;
        let n = 512;
        let samples: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * f * i as f64 / fs).sin())
            .collect();
        let feats = ar_features(&edr_from(samples));
        assert!(feats.iter().any(|&c| c.abs() > 0.1), "{feats:?}");
        // The model PSD should peak at f: rebuild and check.
        let model = burg(
            &(0..n)
                .map(|i| (std::f64::consts::TAU * f * i as f64 / fs).sin())
                .collect::<Vec<_>>(),
            AR_ORDER,
        )
        .unwrap();
        let freqs: Vec<f64> = (1..100).map(|i| i as f64 * 2.0 / 100.0).collect();
        let p: Vec<f64> = freqs.iter().map(|&fr| model.psd_at(fr, fs)).collect();
        let peak = freqs[biodsp::stats::argmax(&p).unwrap()];
        assert!((peak - f).abs() < 0.05, "peak {peak}");
    }

    #[test]
    fn degenerate_edr_is_zeros() {
        assert_eq!(ar_features(&edr_from(vec![0.0; 64])), [0.0; N_AR]);
        assert_eq!(ar_features(&edr_from(vec![1.0, 2.0])), [0.0; N_AR]);
    }

    #[test]
    fn faster_respiration_changes_coefficients() {
        let make = |f: f64| {
            let samples: Vec<f64> = (0..400)
                .map(|i| (std::f64::consts::TAU * f * i as f64 / 4.0).sin())
                .collect();
            ar_features(&edr_from(samples))
        };
        let slow = make(0.2);
        let fast = make(0.45);
        let dist: f64 = slow
            .iter()
            .zip(fast.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.3, "dist {dist}");
    }

    #[test]
    fn names_count() {
        assert_eq!(ar_names().len(), N_AR);
        assert_eq!(ar_names()[0], "ar_coeff_1");
        assert_eq!(ar_names()[8], "ar_coeff_9");
    }
}
