//! Lorentz (Poincaré) plot features (paper features 9–15).
//!
//! The Lorentz plot scatters each RR interval against the next; its
//! short-axis dispersion SD1 measures beat-to-beat (vagal) variability and
//! its long-axis dispersion SD2 the longer-range variability. Ictal vagal
//! withdrawal collapses SD1, which is why these features carry seizure
//! information.

use biodsp::stats;

/// Number of Lorentz-plot features.
pub const N_LORENZ: usize = 7;

/// Names of the Lorentz features, index-aligned with [`lorenz_features`].
pub const LORENZ_NAMES: [&str; N_LORENZ] = [
    "lorenz_sd1_s",
    "lorenz_sd2_s",
    "lorenz_sd1_sd2_ratio",
    "lorenz_ellipse_area",
    "lorenz_csi",
    "lorenz_cvi",
    "lorenz_modified_csi",
];

/// Computes the seven Lorentz-plot features from an RR series (seconds).
///
/// Returns zeros for fewer than 4 intervals.
pub fn lorenz_features(rr: &[f64]) -> [f64; N_LORENZ] {
    if rr.len() < 4 {
        return [0.0; N_LORENZ];
    }
    // Rotated coordinates: u = (x2 - x1)/sqrt(2), v = (x2 + x1)/sqrt(2).
    let pairs: Vec<(f64, f64)> = rr.windows(2).map(|w| (w[0], w[1])).collect();
    let u: Vec<f64> = pairs
        .iter()
        .map(|(a, b)| (b - a) / std::f64::consts::SQRT_2)
        .collect();
    let v: Vec<f64> = pairs
        .iter()
        .map(|(a, b)| (b + a) / std::f64::consts::SQRT_2)
        .collect();
    let sd1 = stats::sample_std_dev(&u);
    let sd2 = stats::sample_std_dev(&v);
    let ratio = if sd2 > 0.0 { sd1 / sd2 } else { 0.0 };
    let area = std::f64::consts::PI * sd1 * sd2;
    let csi = if sd1 > 0.0 { sd2 / sd1 } else { 0.0 };
    // Cardiac Vagal Index: log10 of the (scaled) ellipse axes product;
    // the conventional 4SD scaling keeps values positive for sinus rhythm.
    let cvi = if sd1 > 0.0 && sd2 > 0.0 {
        ((4.0 * sd1) * (4.0 * sd2) * 1e6).log10() // axes in ms
    } else {
        0.0
    };
    let modified_csi = if sd1 > 0.0 { sd2 * sd2 / sd1 } else { 0.0 };
    [sd1, sd2, ratio, area, csi, cvi, modified_csi]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sd1_sd2(rr: &[f64]) -> (f64, f64) {
        let f = lorenz_features(rr);
        (f[0], f[1])
    }

    #[test]
    fn constant_rhythm_collapses_plot() {
        let f = lorenz_features(&vec![0.8; 30]);
        // SD1/SD2 collapse to (numerically) zero; derived ratios guard
        // against division by zero and stay finite.
        assert!(f.iter().all(|v| v.abs() < 1e-9 || v.is_finite()));
        assert!(f[0].abs() < 1e-12 && f[1].abs() < 1e-12);
        assert!(f[3].abs() < 1e-12);
    }

    #[test]
    fn alternating_rhythm_is_pure_sd1() {
        // Perfect alternation has large beat-to-beat change, but constant
        // pair sums: SD1 >> SD2.
        let rr: Vec<f64> = (0..60)
            .map(|i| if i % 2 == 0 { 0.7 } else { 0.9 })
            .collect();
        let (sd1, sd2) = sd1_sd2(&rr);
        assert!(sd1 > 10.0 * sd2.max(1e-12), "sd1 {sd1} sd2 {sd2}");
    }

    #[test]
    fn slow_trend_is_pure_sd2() {
        // Slow monotone drift: successive beats nearly equal (small SD1),
        // long-range spread large (SD2).
        let rr: Vec<f64> = (0..100).map(|i| 0.6 + 0.004 * i as f64).collect();
        let (sd1, sd2) = sd1_sd2(&rr);
        assert!(sd2 > 10.0 * sd1, "sd1 {sd1} sd2 {sd2}");
    }

    #[test]
    fn sd1_matches_rmssd_relation() {
        // Known identity: SD1^2 = 0.5 * var(diff(rr)) (sample variance).
        let rr = [0.8, 0.85, 0.78, 0.9, 0.82, 0.87, 0.79, 0.84];
        let (sd1, _) = sd1_sd2(&rr);
        let d = biodsp::stats::diff(&rr);
        let expect = (0.5 * biodsp::stats::sample_variance(&d)).sqrt();
        assert!((sd1 - expect).abs() < 1e-12);
    }

    #[test]
    fn derived_features_are_consistent() {
        let rr = [0.8, 0.85, 0.78, 0.9, 0.82, 0.87, 0.79, 0.84, 0.8, 0.86];
        let f = lorenz_features(&rr);
        let (sd1, sd2) = (f[0], f[1]);
        assert!((f[2] - sd1 / sd2).abs() < 1e-12);
        assert!((f[3] - std::f64::consts::PI * sd1 * sd2).abs() < 1e-12);
        assert!((f[4] - sd2 / sd1).abs() < 1e-12);
        assert!((f[6] - sd2 * sd2 / sd1).abs() < 1e-12);
        assert!(f[5] > 0.0); // CVI positive for ms-scaled sinus rhythm
    }

    #[test]
    fn vagal_withdrawal_reduces_sd1_and_raises_csi() {
        let mut seed = 77u64;
        let mut rand = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) - 0.5
        };
        let calm: Vec<f64> = (0..200).map(|_| 0.85 + 0.06 * rand()).collect();
        let ictal: Vec<f64> = (0..200).map(|_| 0.55 + 0.012 * rand()).collect();
        let fc = lorenz_features(&calm);
        let fi = lorenz_features(&ictal);
        assert!(fi[0] < fc[0]); // SD1 down
        assert!(fi[3] < fc[3]); // area down
    }

    #[test]
    fn too_short_is_zeros() {
        assert_eq!(lorenz_features(&[0.8, 0.9, 0.8]), [0.0; N_LORENZ]);
    }

    #[test]
    fn names_align() {
        assert_eq!(LORENZ_NAMES.len(), N_LORENZ);
    }
}
