//! ECG-derived respiration (EDR).
//!
//! Respiration rotates the heart's electrical axis, modulating the R-wave
//! amplitude. Sampling that amplitude at each beat and resampling to a
//! uniform grid recovers a surrogate respiration signal without a
//! dedicated sensor — the input to the paper's AR (features 16–24) and PSD
//! (features 25–53) families.

use crate::error::FeatureError;
use biodsp::qrs::QrsDetection;

/// Uniformly resampled EDR series.
#[derive(Debug, Clone, PartialEq)]
pub struct EdrSeries {
    /// Sampling rate of the resampled series (Hz).
    pub fs: f64,
    /// Normalised (z-scored) EDR samples.
    pub samples: Vec<f64>,
}

/// EDR sampling rate: 4 Hz is ample for respiration (< 1 Hz).
pub const EDR_FS: f64 = 4.0;

/// Extracts the EDR series from QRS detections.
///
/// Steps: take `(beat time, R amplitude)` pairs → remove the slow
/// amplitude baseline (running median) → resample to [`EDR_FS`].
///
/// The series is deliberately **not** amplitude-normalised: the
/// respiratory modulation depth is a common-mode factor across all PSD
/// band features, giving them the high mutual correlation the paper's
/// Fig 3 shows (and that the feature selection prunes). AR coefficients
/// are scale-invariant, so they are unaffected.
///
/// # Errors
///
/// Returns [`FeatureError::TooFewBeats`] with fewer than 8 beats, and
/// propagates DSP errors from resampling.
pub fn extract_edr(det: &QrsDetection) -> Result<EdrSeries, FeatureError> {
    const MIN_BEATS: usize = 8;
    if det.peaks.len() < MIN_BEATS {
        return Err(FeatureError::TooFewBeats {
            needed: MIN_BEATS,
            got: det.peaks.len(),
        });
    }
    let t: Vec<f64> = det.peaks.iter().map(|p| p.time_s).collect();
    let mut a: Vec<f64> = det.peaks.iter().map(|p| p.amplitude).collect();
    // Baseline removal: subtract the running median (5 beats) to keep the
    // respiratory modulation and drop slow gain drift.
    let baseline = biodsp::filter::median_filter(&a, 5).map_err(FeatureError::Dsp)?;
    for (v, b) in a.iter_mut().zip(baseline.iter()) {
        *v -= b;
    }
    // Strictly increasing times are guaranteed by the detector, but guard
    // against duplicates from pathological inputs.
    let mut tt = Vec::with_capacity(t.len());
    let mut aa = Vec::with_capacity(a.len());
    for i in 0..t.len() {
        if i == 0 || t[i] > tt[tt.len() - 1] {
            tt.push(t[i]);
            aa.push(a[i]);
        }
    }
    let samples =
        biodsp::resample::resample_uniform(&tt, &aa, EDR_FS).map_err(FeatureError::Dsp)?;
    Ok(EdrSeries {
        fs: EDR_FS,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use biodsp::qrs::RPeak;

    fn detection_with_modulation(f_resp: f64, n: usize, rr: f64) -> QrsDetection {
        let peaks = (0..n)
            .map(|i| {
                let t = i as f64 * rr;
                RPeak {
                    index: (t * 128.0) as usize,
                    time_s: t,
                    amplitude: 1.0 + 0.2 * (std::f64::consts::TAU * f_resp * t).sin(),
                }
            })
            .collect();
        QrsDetection { peaks }
    }

    #[test]
    fn edr_recovers_respiratory_frequency() {
        let det = detection_with_modulation(0.25, 300, 0.8);
        let edr = extract_edr(&det).unwrap();
        assert_eq!(edr.fs, EDR_FS);
        let spec = biodsp::psd::welch(
            &edr.samples,
            edr.fs,
            256,
            0.5,
            biodsp::window::WindowKind::Hann,
        )
        .unwrap();
        let peak = spec.peak_frequency().unwrap();
        assert!((peak - 0.25).abs() < 0.05, "peak {peak}");
    }

    #[test]
    fn edr_preserves_modulation_depth() {
        // Modulation depth is a common-mode carrier across PSD bands; a
        // 2x deeper modulation must yield ~2x the EDR amplitude.
        let shallow = extract_edr(&detection_with_modulation(0.3, 120, 0.75)).unwrap();
        let det_deep = {
            let mut d = detection_with_modulation(0.3, 120, 0.75);
            for p in &mut d.peaks {
                p.amplitude = 1.0 + 2.0 * (p.amplitude - 1.0);
            }
            d
        };
        let deep = extract_edr(&det_deep).unwrap();
        let r = biodsp::stats::rms(&deep.samples) / biodsp::stats::rms(&shallow.samples);
        assert!((r - 2.0).abs() < 0.3, "ratio {r}");
    }

    #[test]
    fn too_few_beats_is_an_error() {
        let det = detection_with_modulation(0.25, 5, 0.8);
        assert!(matches!(
            extract_edr(&det),
            Err(FeatureError::TooFewBeats { needed: 8, got: 5 })
        ));
    }

    #[test]
    fn gain_drift_is_removed() {
        // Linear amplitude drift should not dominate the EDR spectrum.
        let peaks: Vec<RPeak> = (0..200)
            .map(|i| {
                let t = i as f64 * 0.8;
                RPeak {
                    index: (t * 128.0) as usize,
                    time_s: t,
                    amplitude: 1.0
                        + 0.005 * i as f64
                        + 0.1 * (std::f64::consts::TAU * 0.25 * t).sin(),
                }
            })
            .collect();
        let edr = extract_edr(&QrsDetection { peaks }).unwrap();
        let spec = biodsp::psd::welch(
            &edr.samples,
            edr.fs,
            128,
            0.5,
            biodsp::window::WindowKind::Hann,
        )
        .unwrap();
        let resp_band = spec.band_power(0.2, 0.3);
        let drift_band = spec.band_power(0.0, 0.05);
        assert!(
            resp_band > drift_band,
            "resp {resp_band} drift {drift_band}"
        );
    }
}
