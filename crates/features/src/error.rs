//! Error type for feature extraction.

use std::fmt;

/// Errors produced during feature extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeatureError {
    /// The analysis window does not contain enough detected beats to
    /// compute rhythm features.
    TooFewBeats {
        /// Beats required.
        needed: usize,
        /// Beats found by the QRS detector.
        got: usize,
    },
    /// A DSP routine failed.
    Dsp(biodsp::DspError),
}

impl fmt::Display for FeatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureError::TooFewBeats { needed, got } => {
                write!(f, "window has too few beats: need {needed}, found {got}")
            }
            FeatureError::Dsp(e) => write!(f, "dsp failure: {e}"),
        }
    }
}

impl std::error::Error for FeatureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FeatureError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<biodsp::DspError> for FeatureError {
    fn from(e: biodsp::DspError) -> Self {
        FeatureError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FeatureError::TooFewBeats { needed: 8, got: 2 };
        assert!(e.to_string().contains("too few beats"));
        let d = FeatureError::from(biodsp::DspError::EmptyInput);
        assert!(d.to_string().contains("dsp"));
        use std::error::Error;
        assert!(d.source().is_some());
        assert!(e.source().is_none());
    }
}
