//! Window-level extraction of the full 53-feature vector.

use crate::ar_feats::{ar_features, ar_names, N_AR};
use crate::edr::extract_edr;
use crate::error::FeatureError;
use crate::hrv::{clean_rr, hrv_features, HRV_NAMES, N_HRV};
use crate::lorenz::{lorenz_features, LORENZ_NAMES, N_LORENZ};
use crate::psd_feats::{psd_features_reference, psd_features_with, psd_names, N_PSD};
use biodsp::kernels::ExtractPrecision;
use biodsp::qrs::{DetectScratch, PanTompkins, QrsDetection};
use std::cell::RefCell;

/// Total feature count (8 HRV + 7 Lorentz + 9 AR + 29 PSD = 53).
pub const N_FEATURES: usize = N_HRV + N_LORENZ + N_AR + N_PSD;

/// Feature families, in index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureFamily {
    /// Heart-rate-variability statistics (paper features 1–8).
    Hrv,
    /// Lorentz-plot geometry (9–15).
    Lorenz,
    /// EDR auto-regressive coefficients (16–24).
    Ar,
    /// EDR spectral band powers (25–53).
    Psd,
}

impl FeatureFamily {
    /// Family of 0-based feature index `j`.
    ///
    /// # Panics
    ///
    /// Panics when `j >= N_FEATURES`.
    pub fn of(j: usize) -> FeatureFamily {
        assert!(j < N_FEATURES, "feature index {j} out of range");
        if j < N_HRV {
            FeatureFamily::Hrv
        } else if j < N_HRV + N_LORENZ {
            FeatureFamily::Lorenz
        } else if j < N_HRV + N_LORENZ + N_AR {
            FeatureFamily::Ar
        } else {
            FeatureFamily::Psd
        }
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            FeatureFamily::Hrv => "HRV",
            FeatureFamily::Lorenz => "Lorenz",
            FeatureFamily::Ar => "AR",
            FeatureFamily::Psd => "PSD",
        }
    }
}

/// Names of all 53 features in index order.
pub fn feature_names() -> Vec<String> {
    let mut names: Vec<String> = Vec::with_capacity(N_FEATURES);
    names.extend(HRV_NAMES.iter().map(|s| s.to_string()));
    names.extend(LORENZ_NAMES.iter().map(|s| s.to_string()));
    names.extend(ar_names());
    names.extend(psd_names());
    names
}

/// Extracts the 53-feature vector from a raw ECG window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowExtractor {
    /// ECG sampling rate in Hz.
    pub fs: f64,
    /// QRS detector configuration.
    pub detector: PanTompkins,
    /// Arithmetic precision of the sample-rate hot loops (band-pass
    /// filtering, QRS energy, Welch FFTs). [`ExtractPrecision::F64`] —
    /// the default — is bit-identical to the historical pipeline;
    /// [`ExtractPrecision::F32`] trades last-bits feature accuracy for
    /// speed, with classification identity pinned by the
    /// `dsp_kernel_equivalence` suite. Beat-rate stages (HRV, Lorenz, AR,
    /// EDR resampling) always run in `f64` — they are two orders of
    /// magnitude off the hot path.
    pub precision: ExtractPrecision,
}

thread_local! {
    /// Scratch for [`WindowExtractor::extract`] one-shots, so ad-hoc
    /// callers (matrix builders, tests, tools) get warm buffers instead of
    /// re-allocating a full [`ExtractScratch`] per window.
    static ONE_SHOT_SCRATCH: RefCell<ExtractScratch> = RefCell::new(ExtractScratch::default());
}

impl WindowExtractor {
    /// Extractor with default Pan–Tompkins settings at
    /// [`ExtractPrecision::F64`].
    pub fn new(fs: f64) -> Self {
        WindowExtractor {
            fs,
            detector: PanTompkins::default(),
            precision: ExtractPrecision::default(),
        }
    }

    /// Extractor with default Pan–Tompkins settings at the given
    /// precision.
    pub fn with_precision(fs: f64, precision: ExtractPrecision) -> Self {
        WindowExtractor {
            precision,
            ..WindowExtractor::new(fs)
        }
    }

    /// Extracts all 53 features from one ECG window.
    ///
    /// One-shot convenience over [`WindowExtractor::extract_into`], which
    /// window-matrix builders and the streaming path use with a persistent
    /// [`ExtractScratch`]; both produce bit-identical feature vectors.
    /// Routes through a thread-local scratch, so repeated one-shot calls
    /// on one thread reuse warm buffers.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::TooFewBeats`] when the window contains fewer
    /// than 8 usable beats, and propagates DSP errors (window shorter than
    /// the detector's 2-second learning phase, etc.).
    pub fn extract(&self, ecg: &[f64]) -> Result<Vec<f64>, FeatureError> {
        let mut out = Vec::with_capacity(N_FEATURES);
        ONE_SHOT_SCRATCH
            .with(|scratch| self.extract_into(ecg, &mut scratch.borrow_mut(), &mut out))?;
        Ok(out)
    }

    /// Scratch-reusing extraction: clears and refills `out` with the
    /// 53-feature vector. The sample-rate-proportional work (QRS
    /// detection over the raw window) runs entirely in `scratch`'s
    /// buffers, so a hot loop that keeps one scratch per stream allocates
    /// nothing there after warm-up; the remaining beat-rate allocations
    /// (RR cleaning, EDR resampling) are two orders of magnitude smaller.
    /// Bit-identical to [`WindowExtractor::extract`].
    ///
    /// # Errors
    ///
    /// Same contract as [`WindowExtractor::extract`]; on error `out` is
    /// left cleared.
    pub fn extract_into(
        &self,
        ecg: &[f64],
        scratch: &mut ExtractScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), FeatureError> {
        out.clear();
        self.detector
            .detect_into_with(
                ecg,
                self.fs,
                self.precision,
                &mut scratch.detect,
                &mut scratch.detection,
            )
            .map_err(FeatureError::Dsp)?;
        let det = &scratch.detection;
        if det.peaks.len() < 8 {
            return Err(FeatureError::TooFewBeats {
                needed: 8,
                got: det.peaks.len(),
            });
        }
        let rr = clean_rr(&det.rr_intervals());
        let edr = extract_edr(det)?;
        out.reserve(N_FEATURES);
        out.extend_from_slice(&hrv_features(&rr));
        out.extend_from_slice(&lorenz_features(&rr));
        out.extend_from_slice(&ar_features(&edr));
        out.extend_from_slice(&psd_features_with(&edr, self.precision));
        debug_assert_eq!(out.len(), N_FEATURES);
        Ok(())
    }

    /// Pre-fusion reference extraction: staged QRS detection
    /// ([`biodsp::qrs::PanTompkins::detect_into_reference`]) and the
    /// full-complex-FFT Welch path ([`psd_features_reference`]), always in
    /// `f64`. Kept as the honest baseline for the `dsp_kernel_equivalence`
    /// suite and the legacy bench row; at [`ExtractPrecision::F64`],
    /// [`WindowExtractor::extract_into`] matches it bit for bit on the
    /// beat-derived features and to ≤1e-12 relative on the PSD bands.
    ///
    /// # Errors
    ///
    /// Same contract as [`WindowExtractor::extract_into`].
    pub fn extract_into_reference(
        &self,
        ecg: &[f64],
        scratch: &mut ExtractScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), FeatureError> {
        out.clear();
        self.detector
            .detect_into_reference(ecg, self.fs, &mut scratch.detect, &mut scratch.detection)
            .map_err(FeatureError::Dsp)?;
        let det = &scratch.detection;
        if det.peaks.len() < 8 {
            return Err(FeatureError::TooFewBeats {
                needed: 8,
                got: det.peaks.len(),
            });
        }
        let rr = clean_rr(&det.rr_intervals());
        let edr = extract_edr(det)?;
        out.reserve(N_FEATURES);
        out.extend_from_slice(&hrv_features(&rr));
        out.extend_from_slice(&lorenz_features(&rr));
        out.extend_from_slice(&ar_features(&edr));
        out.extend_from_slice(&psd_features_reference(&edr));
        debug_assert_eq!(out.len(), N_FEATURES);
        Ok(())
    }
}

/// Reusable work state for [`WindowExtractor::extract_into`]: the QRS
/// detector's full-window buffers plus the detection itself.
#[derive(Debug, Clone, Default)]
pub struct ExtractScratch {
    detect: DetectScratch,
    detection: QrsDetection,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simple but beat-accurate synthetic ECG for extractor tests.
    fn synth_ecg(fs: f64, dur_s: f64, rr: f64, resp_hz: f64) -> Vec<f64> {
        let n = (fs * dur_s) as usize;
        let mut sig = vec![0.0f64; n];
        let mut bt = 0.5;
        let mut beats = Vec::new();
        while bt < dur_s {
            beats.push(bt);
            // Slight RSA so RR is not perfectly constant.
            bt += rr * (1.0 + 0.03 * (std::f64::consts::TAU * resp_hz * bt).sin());
        }
        for &t0 in &beats {
            let amp = 1.0 + 0.2 * (std::f64::consts::TAU * resp_hz * t0).sin();
            let centre = (t0 * fs) as isize;
            for k in -15..=15isize {
                let idx = centre + k;
                if idx >= 0 && (idx as usize) < n {
                    let dt = k as f64 / fs;
                    sig[idx as usize] += amp * (-dt * dt / (2.0 * 0.012f64.powi(2))).exp();
                }
            }
        }
        sig
    }

    #[test]
    fn layout_counts() {
        assert_eq!(N_FEATURES, 53);
        assert_eq!(feature_names().len(), 53);
        assert_eq!(FeatureFamily::of(0), FeatureFamily::Hrv);
        assert_eq!(FeatureFamily::of(7), FeatureFamily::Hrv);
        assert_eq!(FeatureFamily::of(8), FeatureFamily::Lorenz);
        assert_eq!(FeatureFamily::of(14), FeatureFamily::Lorenz);
        assert_eq!(FeatureFamily::of(15), FeatureFamily::Ar);
        assert_eq!(FeatureFamily::of(23), FeatureFamily::Ar);
        assert_eq!(FeatureFamily::of(24), FeatureFamily::Psd);
        assert_eq!(FeatureFamily::of(52), FeatureFamily::Psd);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn family_of_rejects_out_of_range() {
        let _ = FeatureFamily::of(53);
    }

    #[test]
    fn extracts_53_finite_features() {
        let fs = 128.0;
        let ecg = synth_ecg(fs, 60.0, 0.8, 0.25);
        let x = WindowExtractor::new(fs).extract(&ecg).unwrap();
        assert_eq!(x.len(), 53);
        assert!(x.iter().all(|v| v.is_finite()));
        // Mean HR should be near 75 bpm.
        assert!((x[4] - 75.0).abs() < 6.0, "hr {}", x[4]);
    }

    #[test]
    fn tachycardia_is_visible_in_features() {
        let fs = 128.0;
        let calm = WindowExtractor::new(fs)
            .extract(&synth_ecg(fs, 60.0, 0.9, 0.25))
            .unwrap();
        let fast = WindowExtractor::new(fs)
            .extract(&synth_ecg(fs, 60.0, 0.5, 0.4))
            .unwrap();
        assert!(fast[4] > calm[4] + 30.0); // mean HR up
        assert!(fast[0] < calm[0]); // mean NN down
    }

    #[test]
    fn extract_into_with_reused_scratch_is_bit_identical() {
        let fs = 128.0;
        let extractor = WindowExtractor::new(fs);
        let mut scratch = ExtractScratch::default();
        let mut row = Vec::new();
        // Three different windows through one scratch, interleaved with a
        // failing window: every success must match the one-shot extract
        // down to the bit.
        for (rr, resp) in [(0.8, 0.25), (0.5, 0.4), (1.0, 0.2)] {
            let ecg = synth_ecg(fs, 60.0, rr, resp);
            extractor
                .extract_into(&ecg, &mut scratch, &mut row)
                .unwrap();
            let reference = extractor.extract(&ecg).unwrap();
            assert_eq!(row.len(), reference.len());
            for (a, b) in row.iter().zip(reference.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "rr {rr}");
            }
            let flat = vec![0.0; 128 * 30];
            assert!(extractor
                .extract_into(&flat, &mut scratch, &mut row)
                .is_err());
            assert!(row.is_empty(), "errors must leave the row cleared");
        }
    }

    #[test]
    fn flat_window_errors() {
        let flat = vec![0.0; 128 * 30];
        let r = WindowExtractor::new(128.0).extract(&flat);
        assert!(matches!(r, Err(FeatureError::TooFewBeats { .. })));
    }

    #[test]
    fn short_window_errors() {
        let r = WindowExtractor::new(128.0).extract(&[0.0; 64]);
        assert!(matches!(r, Err(FeatureError::Dsp(_))));
    }

    #[test]
    fn family_labels() {
        assert_eq!(FeatureFamily::Hrv.label(), "HRV");
        assert_eq!(FeatureFamily::Psd.label(), "PSD");
    }

    #[test]
    fn names_are_unique() {
        let names = feature_names();
        let set: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
