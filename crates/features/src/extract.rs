//! Window-level extraction of the full 53-feature vector.

use crate::ar_feats::{ar_features, ar_names, N_AR};
use crate::edr::extract_edr;
use crate::error::FeatureError;
use crate::hrv::{clean_rr, hrv_features, HRV_NAMES, N_HRV};
use crate::lorenz::{lorenz_features, LORENZ_NAMES, N_LORENZ};
use crate::psd_feats::{psd_features, psd_names, N_PSD};
use biodsp::qrs::PanTompkins;

/// Total feature count (8 HRV + 7 Lorentz + 9 AR + 29 PSD = 53).
pub const N_FEATURES: usize = N_HRV + N_LORENZ + N_AR + N_PSD;

/// Feature families, in index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureFamily {
    /// Heart-rate-variability statistics (paper features 1–8).
    Hrv,
    /// Lorentz-plot geometry (9–15).
    Lorenz,
    /// EDR auto-regressive coefficients (16–24).
    Ar,
    /// EDR spectral band powers (25–53).
    Psd,
}

impl FeatureFamily {
    /// Family of 0-based feature index `j`.
    ///
    /// # Panics
    ///
    /// Panics when `j >= N_FEATURES`.
    pub fn of(j: usize) -> FeatureFamily {
        assert!(j < N_FEATURES, "feature index {j} out of range");
        if j < N_HRV {
            FeatureFamily::Hrv
        } else if j < N_HRV + N_LORENZ {
            FeatureFamily::Lorenz
        } else if j < N_HRV + N_LORENZ + N_AR {
            FeatureFamily::Ar
        } else {
            FeatureFamily::Psd
        }
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            FeatureFamily::Hrv => "HRV",
            FeatureFamily::Lorenz => "Lorenz",
            FeatureFamily::Ar => "AR",
            FeatureFamily::Psd => "PSD",
        }
    }
}

/// Names of all 53 features in index order.
pub fn feature_names() -> Vec<String> {
    let mut names: Vec<String> = Vec::with_capacity(N_FEATURES);
    names.extend(HRV_NAMES.iter().map(|s| s.to_string()));
    names.extend(LORENZ_NAMES.iter().map(|s| s.to_string()));
    names.extend(ar_names());
    names.extend(psd_names());
    names
}

/// Extracts the 53-feature vector from a raw ECG window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowExtractor {
    /// ECG sampling rate in Hz.
    pub fs: f64,
    /// QRS detector configuration.
    pub detector: PanTompkins,
}

impl WindowExtractor {
    /// Extractor with default Pan–Tompkins settings.
    pub fn new(fs: f64) -> Self {
        WindowExtractor {
            fs,
            detector: PanTompkins::default(),
        }
    }

    /// Extracts all 53 features from one ECG window.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::TooFewBeats`] when the window contains fewer
    /// than 8 usable beats, and propagates DSP errors (window shorter than
    /// the detector's 2-second learning phase, etc.).
    pub fn extract(&self, ecg: &[f64]) -> Result<Vec<f64>, FeatureError> {
        let det = self
            .detector
            .detect(ecg, self.fs)
            .map_err(FeatureError::Dsp)?;
        if det.peaks.len() < 8 {
            return Err(FeatureError::TooFewBeats {
                needed: 8,
                got: det.peaks.len(),
            });
        }
        let rr = clean_rr(&det.rr_intervals());
        let edr = extract_edr(&det)?;
        let mut out = Vec::with_capacity(N_FEATURES);
        out.extend_from_slice(&hrv_features(&rr));
        out.extend_from_slice(&lorenz_features(&rr));
        out.extend_from_slice(&ar_features(&edr));
        out.extend_from_slice(&psd_features(&edr));
        debug_assert_eq!(out.len(), N_FEATURES);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simple but beat-accurate synthetic ECG for extractor tests.
    fn synth_ecg(fs: f64, dur_s: f64, rr: f64, resp_hz: f64) -> Vec<f64> {
        let n = (fs * dur_s) as usize;
        let mut sig = vec![0.0f64; n];
        let mut bt = 0.5;
        let mut beats = Vec::new();
        while bt < dur_s {
            beats.push(bt);
            // Slight RSA so RR is not perfectly constant.
            bt += rr * (1.0 + 0.03 * (std::f64::consts::TAU * resp_hz * bt).sin());
        }
        for &t0 in &beats {
            let amp = 1.0 + 0.2 * (std::f64::consts::TAU * resp_hz * t0).sin();
            let centre = (t0 * fs) as isize;
            for k in -15..=15isize {
                let idx = centre + k;
                if idx >= 0 && (idx as usize) < n {
                    let dt = k as f64 / fs;
                    sig[idx as usize] += amp * (-dt * dt / (2.0 * 0.012f64.powi(2))).exp();
                }
            }
        }
        sig
    }

    #[test]
    fn layout_counts() {
        assert_eq!(N_FEATURES, 53);
        assert_eq!(feature_names().len(), 53);
        assert_eq!(FeatureFamily::of(0), FeatureFamily::Hrv);
        assert_eq!(FeatureFamily::of(7), FeatureFamily::Hrv);
        assert_eq!(FeatureFamily::of(8), FeatureFamily::Lorenz);
        assert_eq!(FeatureFamily::of(14), FeatureFamily::Lorenz);
        assert_eq!(FeatureFamily::of(15), FeatureFamily::Ar);
        assert_eq!(FeatureFamily::of(23), FeatureFamily::Ar);
        assert_eq!(FeatureFamily::of(24), FeatureFamily::Psd);
        assert_eq!(FeatureFamily::of(52), FeatureFamily::Psd);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn family_of_rejects_out_of_range() {
        let _ = FeatureFamily::of(53);
    }

    #[test]
    fn extracts_53_finite_features() {
        let fs = 128.0;
        let ecg = synth_ecg(fs, 60.0, 0.8, 0.25);
        let x = WindowExtractor::new(fs).extract(&ecg).unwrap();
        assert_eq!(x.len(), 53);
        assert!(x.iter().all(|v| v.is_finite()));
        // Mean HR should be near 75 bpm.
        assert!((x[4] - 75.0).abs() < 6.0, "hr {}", x[4]);
    }

    #[test]
    fn tachycardia_is_visible_in_features() {
        let fs = 128.0;
        let calm = WindowExtractor::new(fs)
            .extract(&synth_ecg(fs, 60.0, 0.9, 0.25))
            .unwrap();
        let fast = WindowExtractor::new(fs)
            .extract(&synth_ecg(fs, 60.0, 0.5, 0.4))
            .unwrap();
        assert!(fast[4] > calm[4] + 30.0); // mean HR up
        assert!(fast[0] < calm[0]); // mean NN down
    }

    #[test]
    fn flat_window_errors() {
        let flat = vec![0.0; 128 * 30];
        let r = WindowExtractor::new(128.0).extract(&flat);
        assert!(matches!(r, Err(FeatureError::TooFewBeats { .. })));
    }

    #[test]
    fn short_window_errors() {
        let r = WindowExtractor::new(128.0).extract(&[0.0; 64]);
        assert!(matches!(r, Err(FeatureError::Dsp(_))));
    }

    #[test]
    fn family_labels() {
        assert_eq!(FeatureFamily::Hrv.label(), "HRV");
        assert_eq!(FeatureFamily::Psd.label(), "PSD");
    }

    #[test]
    fn names_are_unique() {
        let names = feature_names();
        let set: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
