//! Window-level extraction of the full 53-feature vector.

use crate::ar_feats::{ar_features, ar_names, N_AR};
use crate::edr::extract_edr;
use crate::error::FeatureError;
use crate::hrv::{clean_rr, hrv_features, HRV_NAMES, N_HRV};
use crate::lorenz::{lorenz_features, LORENZ_NAMES, N_LORENZ};
use crate::psd_feats::{psd_features_reference, psd_features_with, psd_names, N_PSD};
use biodsp::kernels::ExtractPrecision;
use biodsp::qrs::{DetectScratch, LaneDetectScratch, PanTompkins, QrsDetection};
use std::cell::RefCell;

/// Total feature count (8 HRV + 7 Lorentz + 9 AR + 29 PSD = 53).
pub const N_FEATURES: usize = N_HRV + N_LORENZ + N_AR + N_PSD;

/// Feature families, in index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureFamily {
    /// Heart-rate-variability statistics (paper features 1–8).
    Hrv,
    /// Lorentz-plot geometry (9–15).
    Lorenz,
    /// EDR auto-regressive coefficients (16–24).
    Ar,
    /// EDR spectral band powers (25–53).
    Psd,
}

impl FeatureFamily {
    /// Family of 0-based feature index `j`.
    ///
    /// # Panics
    ///
    /// Panics when `j >= N_FEATURES`.
    pub fn of(j: usize) -> FeatureFamily {
        assert!(j < N_FEATURES, "feature index {j} out of range");
        if j < N_HRV {
            FeatureFamily::Hrv
        } else if j < N_HRV + N_LORENZ {
            FeatureFamily::Lorenz
        } else if j < N_HRV + N_LORENZ + N_AR {
            FeatureFamily::Ar
        } else {
            FeatureFamily::Psd
        }
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            FeatureFamily::Hrv => "HRV",
            FeatureFamily::Lorenz => "Lorenz",
            FeatureFamily::Ar => "AR",
            FeatureFamily::Psd => "PSD",
        }
    }
}

/// Names of all 53 features in index order.
pub fn feature_names() -> Vec<String> {
    let mut names: Vec<String> = Vec::with_capacity(N_FEATURES);
    names.extend(HRV_NAMES.iter().map(|s| s.to_string()));
    names.extend(LORENZ_NAMES.iter().map(|s| s.to_string()));
    names.extend(ar_names());
    names.extend(psd_names());
    names
}

/// Extracts the 53-feature vector from a raw ECG window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowExtractor {
    /// ECG sampling rate in Hz.
    pub fs: f64,
    /// QRS detector configuration.
    pub detector: PanTompkins,
    /// Arithmetic precision of the sample-rate hot loops (band-pass
    /// filtering, QRS energy, Welch FFTs). [`ExtractPrecision::F64`] —
    /// the default — is bit-identical to the historical pipeline;
    /// [`ExtractPrecision::F32`] trades last-bits feature accuracy for
    /// speed, with classification identity pinned by the
    /// `dsp_kernel_equivalence` suite. Beat-rate stages (HRV, Lorenz, AR,
    /// EDR resampling) always run in `f64` — they are two orders of
    /// magnitude off the hot path.
    pub precision: ExtractPrecision,
}

thread_local! {
    /// Scratch for [`WindowExtractor::extract`] one-shots, so ad-hoc
    /// callers (matrix builders, tests, tools) get warm buffers instead of
    /// re-allocating a full [`ExtractScratch`] per window.
    static ONE_SHOT_SCRATCH: RefCell<ExtractScratch> = RefCell::new(ExtractScratch::default());
    /// Scratch for [`WindowExtractor::extract_batch`]: the lane-group
    /// SoA buffers are sized by `window_len × L`, so they live
    /// per-*thread*, not per-session — a fleet worker reuses one set
    /// across every session it touches instead of pinning one per
    /// patient.
    static BATCH_SCRATCH: RefCell<BatchExtractScratch> =
        RefCell::new(BatchExtractScratch::default());
}

/// Drops this thread's extraction scratch (the one-shot
/// [`ExtractScratch`] and the lane-batch [`BatchExtractScratch`]) back
/// to empty, releasing every buffer's capacity.
///
/// The thread-local scratches grow to the *largest* window and lane
/// group a thread ever processed and normally stay there — right for a
/// hot loop, wrong for a long-lived fleet worker that served one
/// outsized cohort hours ago. Workers call this between cohorts (or on
/// patient-churn lulls) to un-pin peak-window capacity; the next
/// extraction simply re-warms.
pub fn trim_thread_scratch() {
    ONE_SHOT_SCRATCH.with(|s| *s.borrow_mut() = ExtractScratch::default());
    BATCH_SCRATCH.with(|s| *s.borrow_mut() = BatchExtractScratch::default());
}

impl WindowExtractor {
    /// Extractor with default Pan–Tompkins settings at
    /// [`ExtractPrecision::F64`].
    pub fn new(fs: f64) -> Self {
        WindowExtractor {
            fs,
            detector: PanTompkins::default(),
            precision: ExtractPrecision::default(),
        }
    }

    /// Extractor with default Pan–Tompkins settings at the given
    /// precision.
    pub fn with_precision(fs: f64, precision: ExtractPrecision) -> Self {
        WindowExtractor {
            precision,
            ..WindowExtractor::new(fs)
        }
    }

    /// Extracts all 53 features from one ECG window.
    ///
    /// One-shot convenience over [`WindowExtractor::extract_into`], which
    /// window-matrix builders and the streaming path use with a persistent
    /// [`ExtractScratch`]; both produce bit-identical feature vectors.
    /// Routes through a thread-local scratch, so repeated one-shot calls
    /// on one thread reuse warm buffers.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::TooFewBeats`] when the window contains fewer
    /// than 8 usable beats, and propagates DSP errors (window shorter than
    /// the detector's 2-second learning phase, etc.).
    pub fn extract(&self, ecg: &[f64]) -> Result<Vec<f64>, FeatureError> {
        let mut out = Vec::with_capacity(N_FEATURES);
        ONE_SHOT_SCRATCH
            .with(|scratch| self.extract_into(ecg, &mut scratch.borrow_mut(), &mut out))?;
        Ok(out)
    }

    /// Scratch-reusing extraction: clears and refills `out` with the
    /// 53-feature vector. The sample-rate-proportional work (QRS
    /// detection over the raw window) runs entirely in `scratch`'s
    /// buffers, so a hot loop that keeps one scratch per stream allocates
    /// nothing there after warm-up; the remaining beat-rate allocations
    /// (RR cleaning, EDR resampling) are two orders of magnitude smaller.
    /// Bit-identical to [`WindowExtractor::extract`].
    ///
    /// # Errors
    ///
    /// Same contract as [`WindowExtractor::extract`]; on error `out` is
    /// left cleared.
    pub fn extract_into(
        &self,
        ecg: &[f64],
        scratch: &mut ExtractScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), FeatureError> {
        out.clear();
        self.detector
            .detect_into_with(
                ecg,
                self.fs,
                self.precision,
                &mut scratch.detect,
                &mut scratch.detection,
            )
            .map_err(FeatureError::Dsp)?;
        self.finish_row(&scratch.detection, out)
    }

    /// Beat-rate tail shared by the scalar and lane-batched paths: RR
    /// cleaning, EDR extraction and the four feature families from one
    /// finished detection. Clears and refills `out`; on error `out` is
    /// left cleared.
    fn finish_row(&self, det: &QrsDetection, out: &mut Vec<f64>) -> Result<(), FeatureError> {
        out.clear();
        if det.peaks.len() < 8 {
            return Err(FeatureError::TooFewBeats {
                needed: 8,
                got: det.peaks.len(),
            });
        }
        let rr = clean_rr(&det.rr_intervals());
        let edr = extract_edr(det)?;
        out.reserve(N_FEATURES);
        out.extend_from_slice(&hrv_features(&rr));
        out.extend_from_slice(&lorenz_features(&rr));
        out.extend_from_slice(&ar_features(&edr));
        out.extend_from_slice(&psd_features_with(&edr, self.precision));
        debug_assert_eq!(out.len(), N_FEATURES);
        Ok(())
    }

    /// Lane-batched extraction of many windows: consecutive same-length
    /// windows are packed into SoA lane groups of 8, 4 or 2 and run
    /// lock-step through the dense DSP phases
    /// ([`biodsp::qrs::PanTompkins::detect_lanes_into`]); the branchy
    /// stages and the beat-rate feature tail run scalar per lane. The
    /// ragged tail of a group (and any window whose length breaks the
    /// run) falls back to the scalar [`WindowExtractor::extract_into`]
    /// path.
    ///
    /// `sink(j, result)` is called once per window in index order;
    /// `Ok` carries the 53-feature row (borrowed from `scratch` — copy
    /// it out before the next window). Every row is bit-identical to
    /// [`WindowExtractor::extract_into`] on that window alone, at both
    /// precisions, and per-window errors are the scalar path's.
    pub fn extract_batch_into(
        &self,
        windows: &[&[f64]],
        scratch: &mut BatchExtractScratch,
        mut sink: impl FnMut(usize, Result<&[f64], FeatureError>),
    ) {
        let n = windows.len();
        let mut i = 0usize;
        while i < n {
            // Longest run of same-length windows from i, capped at the
            // widest lane group.
            let len0 = windows[i].len();
            let mut run = 1usize;
            while i + run < n && run < 8 && windows[i + run].len() == len0 {
                run += 1;
            }
            let take = match run {
                8.. => 8,
                4..=7 => 4,
                2..=3 => 2,
                _ => 1,
            };
            match take {
                8 => self.extract_group::<8>(
                    i,
                    &windows[i..i + 8],
                    &mut scratch.l8_64,
                    &mut scratch.l8_32,
                    &mut scratch.detections,
                    &mut scratch.row,
                    &mut scratch.scalar,
                    &mut sink,
                ),
                4 => self.extract_group::<4>(
                    i,
                    &windows[i..i + 4],
                    &mut scratch.l4_64,
                    &mut scratch.l4_32,
                    &mut scratch.detections,
                    &mut scratch.row,
                    &mut scratch.scalar,
                    &mut sink,
                ),
                2 => self.extract_group::<2>(
                    i,
                    &windows[i..i + 2],
                    &mut scratch.l2_64,
                    &mut scratch.l2_32,
                    &mut scratch.detections,
                    &mut scratch.row,
                    &mut scratch.scalar,
                    &mut sink,
                ),
                _ => {
                    let r = self.extract_into(windows[i], &mut scratch.scalar, &mut scratch.row);
                    sink(i, r.map(|()| scratch.row.as_slice()));
                }
            }
            i += take;
        }
    }

    /// [`WindowExtractor::extract_batch_into`] over this thread's
    /// shared scratch (see [`trim_thread_scratch`] for the release
    /// hook). The fleet's per-worker extraction shards and the batch
    /// assembler route through here so SoA buffers are per-thread, not
    /// per-session.
    pub fn extract_batch(
        &self,
        windows: &[&[f64]],
        sink: impl FnMut(usize, Result<&[f64], FeatureError>),
    ) {
        BATCH_SCRATCH.with(|s| self.extract_batch_into(windows, &mut s.borrow_mut(), sink));
    }

    /// One L-wide lane group: lane detection, then the scalar tail per
    /// lane. A group-level detection error (too-short windows — the
    /// group shares one length) re-runs each window through the scalar
    /// path so error shapes match it exactly.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn extract_group<const L: usize>(
        &self,
        base: usize,
        group: &[&[f64]],
        lanes64: &mut LaneDetectScratch<f64, L>,
        lanes32: &mut LaneDetectScratch<f32, L>,
        detections: &mut Vec<QrsDetection>,
        row: &mut Vec<f64>,
        scalar: &mut ExtractScratch,
        sink: &mut dyn FnMut(usize, Result<&[f64], FeatureError>),
    ) {
        if detections.len() < L {
            detections.resize_with(L, QrsDetection::default);
        }
        let res = match self.precision {
            ExtractPrecision::F64 => self.detector.detect_lanes_into::<f64, L>(
                group,
                self.fs,
                lanes64,
                &mut detections[..L],
            ),
            ExtractPrecision::F32 => self.detector.detect_lanes_into::<f32, L>(
                group,
                self.fs,
                lanes32,
                &mut detections[..L],
            ),
        };
        match res {
            Ok(()) => {
                for (lane, det) in detections[..L].iter().enumerate() {
                    let r = self.finish_row(det, row);
                    sink(base + lane, r.map(|()| row.as_slice()));
                }
            }
            Err(_) => {
                for (off, w) in group.iter().enumerate() {
                    let r = self.extract_into(w, scalar, row);
                    sink(base + off, r.map(|()| row.as_slice()));
                }
            }
        }
    }

    /// Pre-fusion reference extraction: staged QRS detection
    /// ([`biodsp::qrs::PanTompkins::detect_into_reference`]) and the
    /// full-complex-FFT Welch path ([`psd_features_reference`]), always in
    /// `f64`. Kept as the honest baseline for the `dsp_kernel_equivalence`
    /// suite and the legacy bench row; at [`ExtractPrecision::F64`],
    /// [`WindowExtractor::extract_into`] matches it bit for bit on the
    /// beat-derived features and to ≤1e-12 relative on the PSD bands.
    ///
    /// # Errors
    ///
    /// Same contract as [`WindowExtractor::extract_into`].
    pub fn extract_into_reference(
        &self,
        ecg: &[f64],
        scratch: &mut ExtractScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), FeatureError> {
        out.clear();
        self.detector
            .detect_into_reference(ecg, self.fs, &mut scratch.detect, &mut scratch.detection)
            .map_err(FeatureError::Dsp)?;
        let det = &scratch.detection;
        if det.peaks.len() < 8 {
            return Err(FeatureError::TooFewBeats {
                needed: 8,
                got: det.peaks.len(),
            });
        }
        let rr = clean_rr(&det.rr_intervals());
        let edr = extract_edr(det)?;
        out.reserve(N_FEATURES);
        out.extend_from_slice(&hrv_features(&rr));
        out.extend_from_slice(&lorenz_features(&rr));
        out.extend_from_slice(&ar_features(&edr));
        out.extend_from_slice(&psd_features_reference(&edr));
        debug_assert_eq!(out.len(), N_FEATURES);
        Ok(())
    }
}

/// Reusable work state for [`WindowExtractor::extract_into`]: the QRS
/// detector's full-window buffers plus the detection itself.
#[derive(Debug, Clone, Default)]
pub struct ExtractScratch {
    detect: DetectScratch,
    detection: QrsDetection,
}

/// Reusable work state for [`WindowExtractor::extract_batch_into`]:
/// one [`LaneDetectScratch`] per lane width and precision (the unused
/// instantiations stay empty `Vec`s — a few pointers each), the shared
/// per-lane detections/row, and a scalar [`ExtractScratch`] for ragged
/// tails and fallback. Buffers are sized by `window_len × L`, so keep
/// one per *thread* (see [`WindowExtractor::extract_batch`]), not per
/// session.
#[derive(Debug, Default)]
pub struct BatchExtractScratch {
    scalar: ExtractScratch,
    detections: Vec<QrsDetection>,
    row: Vec<f64>,
    l2_64: LaneDetectScratch<f64, 2>,
    l4_64: LaneDetectScratch<f64, 4>,
    l8_64: LaneDetectScratch<f64, 8>,
    l2_32: LaneDetectScratch<f32, 2>,
    l4_32: LaneDetectScratch<f32, 4>,
    l8_32: LaneDetectScratch<f32, 8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simple but beat-accurate synthetic ECG for extractor tests.
    fn synth_ecg(fs: f64, dur_s: f64, rr: f64, resp_hz: f64) -> Vec<f64> {
        let n = (fs * dur_s) as usize;
        let mut sig = vec![0.0f64; n];
        let mut bt = 0.5;
        let mut beats = Vec::new();
        while bt < dur_s {
            beats.push(bt);
            // Slight RSA so RR is not perfectly constant.
            bt += rr * (1.0 + 0.03 * (std::f64::consts::TAU * resp_hz * bt).sin());
        }
        for &t0 in &beats {
            let amp = 1.0 + 0.2 * (std::f64::consts::TAU * resp_hz * t0).sin();
            let centre = (t0 * fs) as isize;
            for k in -15..=15isize {
                let idx = centre + k;
                if idx >= 0 && (idx as usize) < n {
                    let dt = k as f64 / fs;
                    sig[idx as usize] += amp * (-dt * dt / (2.0 * 0.012f64.powi(2))).exp();
                }
            }
        }
        sig
    }

    #[test]
    fn layout_counts() {
        assert_eq!(N_FEATURES, 53);
        assert_eq!(feature_names().len(), 53);
        assert_eq!(FeatureFamily::of(0), FeatureFamily::Hrv);
        assert_eq!(FeatureFamily::of(7), FeatureFamily::Hrv);
        assert_eq!(FeatureFamily::of(8), FeatureFamily::Lorenz);
        assert_eq!(FeatureFamily::of(14), FeatureFamily::Lorenz);
        assert_eq!(FeatureFamily::of(15), FeatureFamily::Ar);
        assert_eq!(FeatureFamily::of(23), FeatureFamily::Ar);
        assert_eq!(FeatureFamily::of(24), FeatureFamily::Psd);
        assert_eq!(FeatureFamily::of(52), FeatureFamily::Psd);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn family_of_rejects_out_of_range() {
        let _ = FeatureFamily::of(53);
    }

    #[test]
    fn extracts_53_finite_features() {
        let fs = 128.0;
        let ecg = synth_ecg(fs, 60.0, 0.8, 0.25);
        let x = WindowExtractor::new(fs).extract(&ecg).unwrap();
        assert_eq!(x.len(), 53);
        assert!(x.iter().all(|v| v.is_finite()));
        // Mean HR should be near 75 bpm.
        assert!((x[4] - 75.0).abs() < 6.0, "hr {}", x[4]);
    }

    #[test]
    fn tachycardia_is_visible_in_features() {
        let fs = 128.0;
        let calm = WindowExtractor::new(fs)
            .extract(&synth_ecg(fs, 60.0, 0.9, 0.25))
            .unwrap();
        let fast = WindowExtractor::new(fs)
            .extract(&synth_ecg(fs, 60.0, 0.5, 0.4))
            .unwrap();
        assert!(fast[4] > calm[4] + 30.0); // mean HR up
        assert!(fast[0] < calm[0]); // mean NN down
    }

    #[test]
    fn extract_into_with_reused_scratch_is_bit_identical() {
        let fs = 128.0;
        let extractor = WindowExtractor::new(fs);
        let mut scratch = ExtractScratch::default();
        let mut row = Vec::new();
        // Three different windows through one scratch, interleaved with a
        // failing window: every success must match the one-shot extract
        // down to the bit.
        for (rr, resp) in [(0.8, 0.25), (0.5, 0.4), (1.0, 0.2)] {
            let ecg = synth_ecg(fs, 60.0, rr, resp);
            extractor
                .extract_into(&ecg, &mut scratch, &mut row)
                .unwrap();
            let reference = extractor.extract(&ecg).unwrap();
            assert_eq!(row.len(), reference.len());
            for (a, b) in row.iter().zip(reference.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "rr {rr}");
            }
            let flat = vec![0.0; 128 * 30];
            assert!(extractor
                .extract_into(&flat, &mut scratch, &mut row)
                .is_err());
            assert!(row.is_empty(), "errors must leave the row cleared");
        }
    }

    #[test]
    fn batch_extraction_matches_scalar_bitwise_with_ragged_tails() {
        let fs = 128.0;
        let extractor = WindowExtractor::new(fs);
        let mut windows: Vec<Vec<f64>> = [0.8, 0.5, 1.0, 0.7, 0.9, 0.6, 0.85, 0.75, 0.65]
            .iter()
            .map(|&rr| synth_ecg(fs, 60.0, rr, 0.25))
            .collect();
        // A too-few-beats window mid-group and a too-short straggler
        // that breaks the same-length run.
        windows[3].iter_mut().for_each(|v| *v = 0.0);
        windows.push(vec![0.0; 64]);
        let mut scalar = ExtractScratch::default();
        let mut want_row = Vec::new();
        for count in [1usize, 2, 3, 5, 9, 10] {
            let refs: Vec<&[f64]> = windows[..count].iter().map(|w| w.as_slice()).collect();
            let mut scratch = BatchExtractScratch::default();
            let mut got: Vec<Result<Vec<f64>, FeatureError>> = Vec::new();
            extractor.extract_batch_into(&refs, &mut scratch, |j, r| {
                assert_eq!(j, got.len(), "sink must run in window order");
                got.push(r.map(|row| row.to_vec()));
            });
            assert_eq!(got.len(), count);
            for (j, w) in refs.iter().enumerate() {
                let want = extractor.extract_into(w, &mut scalar, &mut want_row);
                match (&got[j], want) {
                    (Ok(g), Ok(())) => {
                        assert_eq!(g.len(), want_row.len());
                        for (a, b) in g.iter().zip(want_row.iter()) {
                            assert_eq!(a.to_bits(), b.to_bits(), "count {count} window {j}");
                        }
                    }
                    (Err(e), Err(want_e)) => {
                        assert_eq!(e, &want_e, "count {count} window {j}");
                    }
                    (g, w) => panic!(
                        "count {count} window {j}: ok/err mismatch (batch ok={}, scalar ok={})",
                        g.is_ok(),
                        w.is_ok()
                    ),
                }
            }
        }
    }

    #[test]
    fn batch_extraction_matches_scalar_at_f32() {
        let fs = 128.0;
        let extractor = WindowExtractor::with_precision(fs, ExtractPrecision::F32);
        let windows: Vec<Vec<f64>> = [0.8, 0.5, 1.0, 0.7, 0.9, 0.6, 0.85, 0.75]
            .iter()
            .map(|&rr| synth_ecg(fs, 60.0, rr, 0.25))
            .collect();
        let refs: Vec<&[f64]> = windows.iter().map(|w| w.as_slice()).collect();
        let mut scalar = ExtractScratch::default();
        let mut want_row = Vec::new();
        let mut seen = 0usize;
        // Thread-local-scratch entry point, f32 lanes: still bitwise
        // against the scalar f32 path.
        extractor.extract_batch(&refs, |j, r| {
            let want = extractor.extract_into(refs[j], &mut scalar, &mut want_row);
            assert_eq!(r.is_ok(), want.is_ok());
            if let Ok(row) = r {
                for (a, b) in row.iter().zip(want_row.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "window {j}");
                }
            }
            seen += 1;
        });
        assert_eq!(seen, refs.len());
        trim_thread_scratch();
    }

    #[test]
    fn flat_window_errors() {
        let flat = vec![0.0; 128 * 30];
        let r = WindowExtractor::new(128.0).extract(&flat);
        assert!(matches!(r, Err(FeatureError::TooFewBeats { .. })));
    }

    #[test]
    fn short_window_errors() {
        let r = WindowExtractor::new(128.0).extract(&[0.0; 64]);
        assert!(matches!(r, Err(FeatureError::Dsp(_))));
    }

    #[test]
    fn family_labels() {
        assert_eq!(FeatureFamily::Hrv.label(), "HRV");
        assert_eq!(FeatureFamily::Psd.label(), "PSD");
    }

    #[test]
    fn names_are_unique() {
        let names = feature_names();
        let set: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
