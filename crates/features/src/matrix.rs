//! Dense row-major matrix core and the labelled feature dataset built on
//! it.
//!
//! [`DenseMatrix`] is the workspace-wide replacement for the jagged
//! `Vec<Vec<T>>` layouts the seed code used: one contiguous allocation,
//! rows addressed as `&data[i * n_cols .. (i + 1) * n_cols]`. Every hot
//! loop in the SVM trainer, the quantised engine and the evaluation layer
//! iterates over these contiguous rows, which is both cache-friendly and
//! the layout an accelerator DMA would consume.

/// A dense row-major matrix over copyable scalars.
///
/// Invariant: `data.len() == n_rows * n_cols`. An empty matrix may have a
/// fixed column count (`with_cols`) so `push_row` can validate widths from
/// the first row on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseMatrix<T> {
    data: Vec<T>,
    n_rows: usize,
    n_cols: usize,
}

impl<T> Default for DenseMatrix<T> {
    fn default() -> Self {
        DenseMatrix {
            data: Vec::new(),
            n_rows: 0,
            n_cols: 0,
        }
    }
}

impl<T: Copy> DenseMatrix<T> {
    /// Empty matrix whose rows will be `n_cols` wide.
    pub fn with_cols(n_cols: usize) -> Self {
        DenseMatrix {
            data: Vec::new(),
            n_rows: 0,
            n_cols,
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` is not a multiple of `n_cols` (with
    /// `n_cols == 0` the buffer must be empty).
    pub fn from_flat(data: Vec<T>, n_cols: usize) -> Self {
        if n_cols == 0 {
            assert!(data.is_empty(), "zero-width matrix cannot hold data");
            return DenseMatrix {
                data,
                n_rows: 0,
                n_cols: 0,
            };
        }
        assert_eq!(
            data.len() % n_cols,
            0,
            "flat buffer is not a whole number of rows"
        );
        let n_rows = data.len() / n_cols;
        DenseMatrix {
            data,
            n_rows,
            n_cols,
        }
    }

    /// Builds from jagged rows (convenience for tests and adapters).
    ///
    /// # Panics
    ///
    /// Panics on ragged input.
    pub fn from_rows<R: AsRef<[T]>>(rows: &[R]) -> Self {
        let n_cols = rows.first().map(|r| r.as_ref().len()).unwrap_or(0);
        let mut m = DenseMatrix::with_cols(n_cols);
        for r in rows {
            m.push_row(r.as_ref());
        }
        m
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Whether the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consumes the matrix and returns its flat row-major buffer — the
    /// inverse of [`DenseMatrix::from_flat`], letting allocation-free
    /// `*_into` paths recycle a scratch buffer through a temporary panel.
    pub fn into_flat(self) -> Vec<T> {
        self.data
    }

    /// Row `i` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= n_rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        assert!(
            i < self.n_rows,
            "row {i} out of range (n_rows = {})",
            self.n_rows
        );
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= n_rows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        assert!(
            i < self.n_rows,
            "row {i} out of range (n_rows = {})",
            self.n_rows
        );
        &mut self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Iterator over contiguous rows. Always yields exactly `n_rows()`
    /// items — including for width-0 matrices (e.g. after
    /// `select_columns(&[])`), where every row is the empty slice.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[T]> + Clone {
        (0..self.n_rows).map(move |i| &self.data[i * self.n_cols..(i + 1) * self.n_cols])
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics when the row width disagrees with the matrix width (the
    /// first row pushed into a width-0 empty matrix fixes the width).
    pub fn push_row(&mut self, row: &[T]) {
        if self.n_rows == 0 && self.n_cols == 0 {
            self.n_cols = row.len();
        }
        assert_eq!(row.len(), self.n_cols, "inconsistent feature width");
        self.data.extend_from_slice(row);
        self.n_rows += 1;
    }

    /// Removes every row, keeping the column width and the allocation —
    /// for batch buffers refilled on a hot path (e.g. the fleet
    /// scheduler's per-flush gather).
    pub fn clear(&mut self) {
        self.data.clear();
        self.n_rows = 0;
    }

    /// Column `j` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics when `j >= n_cols()`.
    pub fn column(&self, j: usize) -> Vec<T> {
        assert!(j < self.n_cols, "column {j} out of range");
        self.rows().map(|r| r[j]).collect()
    }

    /// New matrix keeping only the given columns (in the given order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_columns(&self, cols: &[usize]) -> DenseMatrix<T> {
        assert!(
            cols.iter().all(|&j| j < self.n_cols),
            "column index out of range"
        );
        let mut data = Vec::with_capacity(self.n_rows * cols.len());
        for r in self.rows() {
            data.extend(cols.iter().map(|&j| r[j]));
        }
        DenseMatrix {
            data,
            n_rows: self.n_rows,
            n_cols: cols.len(),
        }
    }

    /// New matrix keeping only the rows whose index satisfies `keep`,
    /// preserving order.
    pub fn filter_rows(&self, mut keep: impl FnMut(usize) -> bool) -> DenseMatrix<T> {
        let mut out = DenseMatrix::with_cols(self.n_cols);
        for (i, r) in self.rows().enumerate() {
            if keep(i) {
                out.push_row(r);
            }
        }
        out
    }
}

/// A labelled feature dataset over a dense row-major feature block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureMatrix {
    /// Feature block: one row per analysis window, contiguous row-major.
    pub features: DenseMatrix<f64>,
    /// Class labels: `+1` seizure, `-1` non-seizure.
    pub labels: Vec<i8>,
    /// Global session index for each row (fold key).
    pub session_ids: Vec<usize>,
    /// Patient id for each row.
    pub patient_ids: Vec<usize>,
    /// Feature names (column order).
    pub feature_names: Vec<String>,
}

impl FeatureMatrix {
    /// Number of rows (windows).
    pub fn n_rows(&self) -> usize {
        self.features.n_rows()
    }

    /// Number of feature columns (0 when empty).
    pub fn n_cols(&self) -> usize {
        self.features.n_cols()
    }

    /// Row `i` of the feature block.
    ///
    /// # Panics
    ///
    /// Panics when `i >= n_rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        self.features.row(i)
    }

    /// Iterator over contiguous feature rows.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> + Clone {
        self.features.rows()
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width disagrees with existing rows.
    pub fn push_row(&mut self, row: &[f64], label: i8, session_id: usize, patient_id: usize) {
        self.features.push_row(row);
        self.labels.push(label);
        self.session_ids.push(session_id);
        self.patient_ids.push(patient_id);
    }

    /// Column `j` as an owned vector (the `F_j` of the paper's Eq 4).
    ///
    /// # Panics
    ///
    /// Panics when `j >= n_cols()`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        self.features.column(j)
    }

    /// New matrix keeping only the given columns (in the given order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_columns(&self, cols: &[usize]) -> FeatureMatrix {
        let feature_names = if self.feature_names.is_empty() {
            Vec::new()
        } else {
            cols.iter()
                .map(|&j| self.feature_names[j].clone())
                .collect()
        };
        FeatureMatrix {
            features: self.features.select_columns(cols),
            labels: self.labels.clone(),
            session_ids: self.session_ids.clone(),
            patient_ids: self.patient_ids.clone(),
            feature_names,
        }
    }

    /// Splits into `(train, test)` where the test set is exactly the rows
    /// of `session_id` — one leave-one-session-out fold.
    pub fn split_by_session(&self, session_id: usize) -> (FeatureMatrix, FeatureMatrix) {
        let mut train = FeatureMatrix {
            features: DenseMatrix::with_cols(self.n_cols()),
            feature_names: self.feature_names.clone(),
            ..Default::default()
        };
        let mut test = FeatureMatrix {
            features: DenseMatrix::with_cols(self.n_cols()),
            feature_names: self.feature_names.clone(),
            ..Default::default()
        };
        for i in 0..self.n_rows() {
            let dst = if self.session_ids[i] == session_id {
                &mut test
            } else {
                &mut train
            };
            dst.push_row(
                self.row(i),
                self.labels[i],
                self.session_ids[i],
                self.patient_ids[i],
            );
        }
        (train, test)
    }

    /// Distinct session ids in first-appearance order.
    pub fn session_list(&self) -> Vec<usize> {
        let mut seen = Vec::new();
        for &s in &self.session_ids {
            if !seen.contains(&s) {
                seen.push(s);
            }
        }
        seen
    }

    /// Count of positive (seizure) rows.
    pub fn n_positive(&self) -> usize {
        self.labels.iter().filter(|&&l| l > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureMatrix {
        let mut m = FeatureMatrix {
            feature_names: vec!["a".into(), "b".into(), "c".into()],
            ..Default::default()
        };
        m.push_row(&[1.0, 2.0, 3.0], -1, 0, 0);
        m.push_row(&[4.0, 5.0, 6.0], 1, 0, 0);
        m.push_row(&[7.0, 8.0, 9.0], -1, 1, 1);
        m
    }

    #[test]
    fn dense_matrix_layout_is_contiguous_row_major() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 2);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.column(1), vec![2.0, 4.0, 6.0]);
        let rows: Vec<&[f64]> = m.rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[5.0, 6.0]);
    }

    #[test]
    fn dense_matrix_from_flat_roundtrip() {
        let m = DenseMatrix::from_flat(vec![1i64, 2, 3, 4, 5, 6], 3);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.row(0), &[1, 2, 3]);
        assert_eq!(
            m,
            DenseMatrix::from_rows(&[vec![1i64, 2, 3], vec![4, 5, 6]])
        );
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn dense_matrix_from_flat_validates() {
        let _ = DenseMatrix::from_flat(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn dense_matrix_push_row_adopts_width() {
        let mut m = DenseMatrix::<f64>::default();
        assert!(m.is_empty());
        m.push_row(&[1.0, 2.0]);
        assert_eq!(m.n_cols(), 2);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "inconsistent feature width")]
    fn dense_matrix_push_row_width_checked() {
        let mut m = DenseMatrix::with_cols(3);
        m.push_row(&[1.0]);
    }

    #[test]
    fn dense_matrix_select_and_filter() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let s = m.select_columns(&[2, 0]);
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert_eq!(s.row(1), &[6.0, 4.0]);
        let f = m.filter_rows(|i| i == 1);
        assert_eq!(f.n_rows(), 1);
        assert_eq!(f.row(0), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn dense_matrix_row_mut() {
        let mut m = DenseMatrix::from_rows(&[vec![1.0, 2.0]]);
        m.row_mut(0)[1] = 9.0;
        assert_eq!(m.row(0), &[1.0, 9.0]);
    }

    #[test]
    fn width_zero_matrix_keeps_row_count() {
        // select_columns(&[]) yields 2 rows of width 0; rows() must still
        // agree with n_rows() so batch consumers return full-length output.
        let m = DenseMatrix::from_rows(&[vec![1.0], vec![2.0]]).select_columns(&[]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 0);
        assert_eq!(m.rows().len(), 2);
        assert!(m.rows().all(|r| r.is_empty()));
    }

    #[test]
    fn empty_dense_matrix_is_sane() {
        let m = DenseMatrix::<f64>::default();
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.n_cols(), 0);
        assert_eq!(m.rows().count(), 0);
        assert!(m.as_slice().is_empty());
    }

    #[test]
    fn dimensions_and_columns() {
        let m = sample();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.column(1), vec![2.0, 5.0, 8.0]);
        assert_eq!(m.n_positive(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn column_out_of_range_panics() {
        let _ = sample().column(9);
    }

    #[test]
    #[should_panic(expected = "inconsistent feature width")]
    fn push_row_width_checked() {
        let mut m = sample();
        m.push_row(&[1.0], 1, 2, 2);
    }

    #[test]
    fn select_columns_reorders() {
        let m = sample().select_columns(&[2, 0]);
        assert_eq!(m.row(0), &[3.0, 1.0]);
        assert_eq!(m.feature_names, vec!["c".to_string(), "a".to_string()]);
        assert_eq!(m.labels, vec![-1, 1, -1]);
    }

    #[test]
    fn split_by_session_partitions() {
        let m = sample();
        let (train, test) = m.split_by_session(0);
        assert_eq!(train.n_rows(), 1);
        assert_eq!(test.n_rows(), 2);
        assert!(test.session_ids.iter().all(|&s| s == 0));
        assert!(train.session_ids.iter().all(|&s| s != 0));
        assert_eq!(train.feature_names.len(), 3);
        assert_eq!(train.n_cols(), 3);
    }

    #[test]
    fn session_list_order() {
        let m = sample();
        assert_eq!(m.session_list(), vec![0, 1]);
    }

    #[test]
    fn empty_matrix_is_sane() {
        let m = FeatureMatrix::default();
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.n_cols(), 0);
        assert!(m.session_list().is_empty());
    }
}
