//! Feature dataset container: rows of feature vectors with labels and
//! session/patient provenance for leave-one-session-out folds.

use serde::{Deserialize, Serialize};

/// A labelled feature dataset (row-major).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FeatureMatrix {
    /// Feature vectors, one per analysis window.
    pub rows: Vec<Vec<f64>>,
    /// Class labels: `+1` seizure, `-1` non-seizure.
    pub labels: Vec<i8>,
    /// Global session index for each row (fold key).
    pub session_ids: Vec<usize>,
    /// Patient id for each row.
    pub patient_ids: Vec<usize>,
    /// Feature names (column order).
    pub feature_names: Vec<String>,
}

impl FeatureMatrix {
    /// Number of rows (windows).
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of feature columns (0 when empty).
    pub fn n_cols(&self) -> usize {
        self.rows.first().map(Vec::len).unwrap_or(0)
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width disagrees with existing rows.
    pub fn push_row(&mut self, row: Vec<f64>, label: i8, session_id: usize, patient_id: usize) {
        if let Some(first) = self.rows.first() {
            assert_eq!(first.len(), row.len(), "inconsistent feature width");
        }
        self.rows.push(row);
        self.labels.push(label);
        self.session_ids.push(session_id);
        self.patient_ids.push(patient_id);
    }

    /// Column `j` as an owned vector (the `F_j` of the paper's Eq 4).
    ///
    /// # Panics
    ///
    /// Panics when `j >= n_cols()`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.n_cols(), "column {j} out of range");
        self.rows.iter().map(|r| r[j]).collect()
    }

    /// New matrix keeping only the given columns (in the given order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_columns(&self, cols: &[usize]) -> FeatureMatrix {
        let rows = self
            .rows
            .iter()
            .map(|r| cols.iter().map(|&j| r[j]).collect())
            .collect();
        let feature_names = if self.feature_names.is_empty() {
            Vec::new()
        } else {
            cols.iter().map(|&j| self.feature_names[j].clone()).collect()
        };
        FeatureMatrix {
            rows,
            labels: self.labels.clone(),
            session_ids: self.session_ids.clone(),
            patient_ids: self.patient_ids.clone(),
            feature_names,
        }
    }

    /// Splits into `(train, test)` where the test set is exactly the rows
    /// of `session_id` — one leave-one-session-out fold.
    pub fn split_by_session(&self, session_id: usize) -> (FeatureMatrix, FeatureMatrix) {
        let mut train = FeatureMatrix {
            feature_names: self.feature_names.clone(),
            ..Default::default()
        };
        let mut test = FeatureMatrix {
            feature_names: self.feature_names.clone(),
            ..Default::default()
        };
        for i in 0..self.n_rows() {
            let dst = if self.session_ids[i] == session_id { &mut test } else { &mut train };
            dst.rows.push(self.rows[i].clone());
            dst.labels.push(self.labels[i]);
            dst.session_ids.push(self.session_ids[i]);
            dst.patient_ids.push(self.patient_ids[i]);
        }
        (train, test)
    }

    /// Distinct session ids in first-appearance order.
    pub fn session_list(&self) -> Vec<usize> {
        let mut seen = Vec::new();
        for &s in &self.session_ids {
            if !seen.contains(&s) {
                seen.push(s);
            }
        }
        seen
    }

    /// Count of positive (seizure) rows.
    pub fn n_positive(&self) -> usize {
        self.labels.iter().filter(|&&l| l > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureMatrix {
        let mut m = FeatureMatrix {
            feature_names: vec!["a".into(), "b".into(), "c".into()],
            ..Default::default()
        };
        m.push_row(vec![1.0, 2.0, 3.0], -1, 0, 0);
        m.push_row(vec![4.0, 5.0, 6.0], 1, 0, 0);
        m.push_row(vec![7.0, 8.0, 9.0], -1, 1, 1);
        m
    }

    #[test]
    fn dimensions_and_columns() {
        let m = sample();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.column(1), vec![2.0, 5.0, 8.0]);
        assert_eq!(m.n_positive(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn column_out_of_range_panics() {
        let _ = sample().column(9);
    }

    #[test]
    #[should_panic(expected = "inconsistent feature width")]
    fn push_row_width_checked() {
        let mut m = sample();
        m.push_row(vec![1.0], 1, 2, 2);
    }

    #[test]
    fn select_columns_reorders() {
        let m = sample().select_columns(&[2, 0]);
        assert_eq!(m.rows[0], vec![3.0, 1.0]);
        assert_eq!(m.feature_names, vec!["c".to_string(), "a".to_string()]);
        assert_eq!(m.labels, vec![-1, 1, -1]);
    }

    #[test]
    fn split_by_session_partitions() {
        let m = sample();
        let (train, test) = m.split_by_session(0);
        assert_eq!(train.n_rows(), 1);
        assert_eq!(test.n_rows(), 2);
        assert!(test.session_ids.iter().all(|&s| s == 0));
        assert!(train.session_ids.iter().all(|&s| s != 0));
        assert_eq!(train.feature_names.len(), 3);
    }

    #[test]
    fn session_list_order() {
        let m = sample();
        assert_eq!(m.session_list(), vec![0, 1]);
    }

    #[test]
    fn empty_matrix_is_sane() {
        let m = FeatureMatrix::default();
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.n_cols(), 0);
        assert!(m.session_list().is_empty());
    }
}
