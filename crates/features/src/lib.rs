#![forbid(unsafe_code)]
//! # ecg-features — the 53-feature set of Forooghifar et al. [6]
//!
//! Feature extraction for ECG-based seizure detection, matching the layout
//! the DATE 2019 paper starts from:
//!
//! | Indices (0-based) | Family | Source |
//! |---|---|---|
//! | 0–7   | HRV time-domain statistics | RR tachogram |
//! | 8–14  | Lorentz (Poincaré) plot geometry | RR tachogram |
//! | 15–23 | AR(9) linear coefficients | EDR series |
//! | 24–52 | Spectral band powers (29 bands) | EDR series |
//!
//! The extraction front end is Pan–Tompkins QRS detection
//! ([`biodsp::qrs`]); EDR (ECG-derived respiration) is recovered from
//! R-wave amplitude modulation.
//!
//! ## Example
//!
//! ```
//! use ecg_features::extract::{WindowExtractor, N_FEATURES};
//!
//! let fs = 128.0;
//! // 60 s of trivially synthetic ECG: 1 Hz Gaussian R spikes.
//! let ecg: Vec<f64> = (0..(60.0 * fs) as usize)
//!     .map(|i| {
//!         let t = i as f64 / fs;
//!         let dt = t - t.round();
//!         (-dt * dt / (2.0 * 0.012f64.powi(2))).exp()
//!     })
//!     .collect();
//! let x = WindowExtractor::new(fs).extract(&ecg)?;
//! assert_eq!(x.len(), N_FEATURES);
//! # Ok::<(), ecg_features::FeatureError>(())
//! ```

pub mod ar_feats;
pub mod edr;
pub mod error;
pub mod extract;
pub mod hrv;
pub mod lorenz;
pub mod matrix;
pub mod psd_feats;

pub use error::FeatureError;
pub use extract::{ExtractScratch, FeatureFamily, WindowExtractor, N_FEATURES};
pub use matrix::{DenseMatrix, FeatureMatrix};
