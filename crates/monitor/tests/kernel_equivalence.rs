//! Micro-kernel equivalence re-pin on a real `Tiny` cohort — the
//! acceptance properties of the kernel layer:
//!
//! * **float, new vs old ordering** — the micro-kernel decision values
//!   (fixed-order 4-accumulator dot, SV-panel tiling, norm-form RBF)
//!   drift from a faithful replica of the pre-micro-kernel path by at
//!   most 1e-12 (relative), with *identical* classifications on every
//!   cohort row;
//! * **float, mutual bit-identity** — per-row, batch and streaming
//!   decisions agree to the bit (they all run the same micro-kernel);
//! * **quantised, i64 vs i128** — the fast integer path is bit-identical
//!   to the exact i128 reference across the whole cohort and the 2–16
//!   bit grid, and streaming decisions replay batch decisions bit for
//!   bit.

use epilepsy_monitor::prelude::*;
use epilepsy_monitor::streaming::StreamingMonitor;
use seizure_core::stream::SharedEngine;
use std::sync::{Arc, OnceLock};
use svm::kernel::block;

fn spec() -> &'static DatasetSpec {
    static SPEC: OnceLock<DatasetSpec> = OnceLock::new();
    SPEC.get_or_init(|| DatasetSpec::new(Scale::Tiny, 42))
}

fn cohort() -> &'static FeatureMatrix {
    static M: OnceLock<FeatureMatrix> = OnceLock::new();
    M.get_or_init(|| build_feature_matrix(spec()))
}

fn pipeline() -> &'static FloatPipeline {
    static P: OnceLock<FloatPipeline> = OnceLock::new();
    P.get_or_init(|| {
        FloatPipeline::fit(cohort(), &FitConfig::default()).expect("fit on Tiny cohort")
    })
}

/// Faithful replica of the pre-micro-kernel float decision path:
/// strictly sequential zip-fold dot, direct difference-form RBF, one
/// `kernel.eval` per SV.
fn naive_decision(p: &FloatPipeline, raw_row: &[f64]) -> f64 {
    let x = p.normalize(raw_row);
    let model = p.model();
    let naive_dot =
        |u: &[f64], v: &[f64]| -> f64 { u.iter().zip(v.iter()).map(|(a, b)| a * b).sum() };
    let naive_eval = |u: &[f64], v: &[f64]| -> f64 {
        match model.kernel() {
            Kernel::Linear => naive_dot(u, v),
            Kernel::Polynomial { degree } => (naive_dot(u, v) + 1.0).powi(degree as i32),
            Kernel::Rbf { gamma } => {
                let d2: f64 = u.iter().zip(v.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
                (-gamma * d2).exp()
            }
        }
    };
    let mut acc = model.bias();
    for (sv, &ay) in model.support_vectors().rows().zip(model.alpha_y().iter()) {
        acc += ay * naive_eval(x.as_slice(), sv);
    }
    acc
}

#[test]
fn float_microkernel_pins_to_old_ordering_within_1e12() {
    let m = cohort();
    let p = pipeline();
    assert!(m.n_rows() > 0, "cohort must yield windows");
    for (i, row) in m.rows().enumerate() {
        let old = naive_decision(p, row);
        let new = p.decision_value(row);
        let tol = 1e-12 * old.abs().max(1.0);
        assert!(
            (new - old).abs() <= tol,
            "row {i}: micro-kernel {new} vs naive {old}"
        );
        let old_class = if old >= 0.0 { 1.0 } else { -1.0 };
        assert_eq!(p.predict(row), old_class, "row {i}: classification flip");
    }
}

#[test]
fn float_per_row_batch_and_streaming_stay_mutually_bit_identical() {
    let m = cohort();
    let p = pipeline();
    // Per-row vs batch on the whole cohort.
    let batch = p.decision_batch(&m.features);
    for (i, row) in m.rows().enumerate() {
        assert_eq!(
            batch[i].to_bits(),
            p.decision_value(row).to_bits(),
            "row {i}"
        );
    }
    // Streaming replay of one session vs the batch path on its windows.
    assert_streaming_matches_batch(Arc::new(p.clone()), |row| p.decision_value(row));
}

#[test]
fn float_rbf_model_batch_matches_per_row_bitwise() {
    // The norm-form RBF is only exercised via a direct model (the paper
    // pipeline is quadratic); pin batch-vs-per-row bit-identity for it.
    let m = cohort();
    let p = pipeline();
    let normalized = p.normalize_batch(&m.features);
    let labels: Vec<f64> = m
        .labels
        .iter()
        .map(|&l| if l > 0 { 1.0 } else { -1.0 })
        .collect();
    let model = svm::smo::SmoTrainer::new(svm::smo::SmoConfig {
        kernel: Kernel::Rbf { gamma: 0.5 },
        ..Default::default()
    })
    .train(&normalized, &labels)
    .expect("rbf train");
    let batch = model.decision_batch(&normalized);
    for (i, row) in normalized.rows().enumerate() {
        assert_eq!(
            batch[i].to_bits(),
            model.decision_value(row).to_bits(),
            "rbf row {i}"
        );
    }
    // And the norm-form eval agrees with the direct form within 1e-12.
    let sv_sq = block::sq_norms(model.support_vectors());
    for (j, sv) in model.support_vectors().rows().enumerate().take(5) {
        let x = normalized.row(0);
        let direct = model.kernel().eval(x, sv);
        let prenorm = block::eval_prenorm(model.kernel(), x, block::sq_norm(x), sv, sv_sq[j]);
        assert!((prenorm - direct).abs() <= 1e-12, "sv {j}");
    }
}

#[test]
fn quantized_fast_path_matches_i128_reference_across_bit_grid() {
    let m = cohort();
    let p = pipeline();
    for d_bits in [2u32, 4, 9, 12, 16] {
        let engine = QuantizedEngine::from_pipeline(p, BitConfig::new(d_bits, 15))
            .expect("quantised engine");
        assert!(engine.uses_i64_fast_path(), "d_bits {d_bits}");
        let fast = engine.classify_batch(&m.features);
        let reference = engine.classify_batch_i128_reference(&m.features);
        assert_eq!(fast, reference, "d_bits {d_bits}");
    }
}

#[test]
fn quantized_streaming_replays_batch_bit_identically() {
    let p = pipeline();
    let engine =
        QuantizedEngine::from_pipeline(p, BitConfig::paper_choice()).expect("quantised engine");
    let reference = engine.clone();
    assert_streaming_matches_batch(Arc::new(engine), move |row| reference.decision_value(row));
}

/// Replays session 0 of the Tiny cohort through a streaming monitor in
/// 1-second chunks and checks every emitted decision against
/// `per_row(row)` on the batch-extracted feature row of the same window.
fn assert_streaming_matches_batch(engine: SharedEngine, per_row: impl Fn(&[f64]) -> f64) {
    let spec = spec();
    let rec = spec.sessions[0].synthesize();
    let window_s = spec.scale.window_s();
    let cfg = StreamConfig::non_overlapping(spec.scale.fs(), window_s).expect("stream config");
    let extractor = epilepsy_monitor::features::WindowExtractor::new(rec.fs);

    let mut monitor = StreamingMonitor::new(engine, cfg).expect("stream config");
    let mut decisions = Vec::new();
    let mut fresh = Vec::new();
    for chunk in rec.ecg.chunks(rec.fs as usize) {
        monitor.push_samples_into(chunk, &mut fresh);
        decisions.append(&mut fresh);
    }

    let labels = rec.window_labels(window_s);
    assert_eq!(decisions.len(), labels.len());
    let mut checked = 0usize;
    for (d, label) in decisions.iter().zip(labels.iter()) {
        match (d.decision, extractor.extract(rec.window_samples(label))) {
            (Some(got), Ok(row)) => {
                let want = per_row(&row);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "window {}: stream {got} vs batch {want}",
                    d.window_index
                );
                checked += 1;
            }
            (None, Err(_)) => {}
            (got, want) => panic!(
                "window {}: dropped-state mismatch (stream {got:?}, batch ok={})",
                d.window_index,
                want.is_ok()
            ),
        }
    }
    assert!(checked > 0, "no classified windows to compare");
}
