//! Shape assertions for the paper's qualitative claims, at test scale.
//!
//! Absolute numbers depend on the synthetic cohort; these tests pin the
//! *relations* the paper's conclusions rest on.

use epilepsy_monitor::prelude::*;
use seizure_core::bitwidth::bit_grid_evaluate;
use seizure_core::engine::BitConfig;
use seizure_core::eval::loso_evaluate_with;
use std::sync::OnceLock;

fn matrix() -> &'static FeatureMatrix {
    static M: OnceLock<FeatureMatrix> = OnceLock::new();
    M.get_or_init(|| build_feature_matrix(&DatasetSpec::new(Scale::Tiny, 42)))
}

/// Table I shape: the quadratic kernel must not lose to the linear one
/// (at full scale it wins clearly; the tiny cohort allows a tie).
#[test]
fn quadratic_at_least_matches_linear() {
    let m = matrix();
    let quad = loso_evaluate(m, &FitConfig::default());
    let lin = loso_evaluate(m, &FitConfig::default().with_kernel(Kernel::Linear));
    assert!(
        quad.mean_gm >= lin.mean_gm - 0.05,
        "quadratic {} vs linear {}",
        quad.mean_gm,
        lin.mean_gm
    );
}

/// Section III: discarding the 10 LSBs after the dot product and the
/// squarer has no classification impact.
#[test]
fn ten_bit_truncations_are_free() {
    let m = matrix();
    let p = FloatPipeline::fit(m, &FitConfig::default()).unwrap();
    let with = QuantizedEngine::from_pipeline(&p, BitConfig::new(16, 16)).unwrap();
    let without = QuantizedEngine::from_pipeline(
        &p,
        BitConfig {
            d_bits: 16,
            a_bits: 16,
            post_dot_truncate: 0,
            post_square_truncate: 0,
        },
    )
    .unwrap();
    let agree = with
        .classify_batch(&m.features)
        .iter()
        .zip(without.classify_batch(&m.features).iter())
        .filter(|(a, b)| a == b)
        .count();
    assert!(
        agree as f64 / m.n_rows() as f64 > 0.95,
        "truncation changed {}/{} decisions",
        m.n_rows() - agree,
        m.n_rows()
    );
}

/// Fig 6 shape: GM collapses at starved widths and plateaus at generous
/// ones; energy grows monotonically with D_bits.
#[test]
fn bit_grid_has_cliff_and_plateau() {
    let m = matrix();
    let tech = TechParams::default();
    let pts = bit_grid_evaluate(m, &FitConfig::default(), &[3, 9, 16], &[15], &tech);
    let gm = |d: u32| pts.iter().find(|p| p.d_bits == d).unwrap().gm;
    let en = |d: u32| pts.iter().find(|p| p.d_bits == d).unwrap().energy_nj;
    assert!(
        gm(9) > gm(3) + 0.1,
        "no cliff: gm(9)={} gm(3)={}",
        gm(9),
        gm(3)
    );
    assert!(
        (gm(16) - gm(9)).abs() < 0.1,
        "no plateau: {} vs {}",
        gm(16),
        gm(9)
    );
    assert!(en(16) > en(9) && en(9) > en(3));
}

/// Fig 7 (right) shape: at equal(ish) quality the tailored design is far
/// cheaper than the homogeneous one; at equal width the homogeneous one
/// loses quality.
#[test]
fn tailored_beats_homogeneous() {
    let m = matrix();
    let tech = TechParams::default();
    // Tailored 9/15.
    let tailored = loso_evaluate_with(m, |train| {
        let p = FloatPipeline::fit(train, &FitConfig::default())?;
        let n = p.model().n_support_vectors();
        let e = QuantizedEngine::from_pipeline(&p, BitConfig::paper_choice())?;
        Ok((move |rows: &DenseMatrix<f64>| e.classify_batch(rows), n))
    });
    let (hom16, e16, a16) =
        seizure_core::bitwidth::homogeneous_evaluate(m, &FitConfig::default(), 16, &tech);
    let n_sv = tailored.mean_n_sv.round() as usize;
    let t_cost = AcceleratorConfig::new(n_sv, m.n_cols(), 9, 15).cost(&tech);
    // Quality: on the tiny test cohort (9 positive windows) the GM gap
    // between the two designs is inside sampling noise, so assert only
    // that both detectors work; the full quality relation (tailored ≫
    // homogeneous, paper −7%) is measured at `--scale lite` and recorded
    // in EXPERIMENTS.md (81.4 vs 72.9).
    assert!(tailored.mean_gm > 0.5, "tailored {}", tailored.mean_gm);
    assert!(hom16.mean_gm.is_finite());
    // Cost: homogeneous needs multiples of the tailored budget.
    assert!(
        e16 / t_cost.energy_nj > 2.0,
        "energy ratio {}",
        e16 / t_cost.energy_nj
    );
    assert!(
        a16 / t_cost.area_mm2 > 2.0,
        "area ratio {}",
        a16 / t_cost.area_mm2
    );
}

/// Fig 4/5 cost monotonicity: fewer features / fewer SVs never cost more.
#[test]
fn resource_axes_are_monotone_in_the_cost_model() {
    let tech = TechParams::default();
    let e = |sv: usize, feat: usize, bits: u32| {
        AcceleratorConfig::uniform(sv, feat, bits)
            .cost(&tech)
            .energy_nj
    };
    assert!(e(120, 53, 64) > e(120, 30, 64));
    assert!(e(120, 30, 64) > e(68, 30, 64));
    assert!(e(68, 30, 64) > e(68, 30, 16));
    let a = |sv: usize, feat: usize, bits: u32| {
        AcceleratorConfig::uniform(sv, feat, bits)
            .cost(&tech)
            .area_mm2
    };
    assert!(a(120, 53, 64) > a(68, 30, 16));
}

/// The ictal windows differ from rest windows in the directions the paper
/// exploits: tachycardia and suppressed beat-to-beat variability.
#[test]
fn ictal_feature_shifts_have_the_right_sign() {
    let m = matrix();
    let col = |j: usize, positive: bool| -> f64 {
        let vals: Vec<f64> = (0..m.n_rows())
            .filter(|&i| (m.labels[i] > 0) == positive)
            .map(|i| m.row(i)[j])
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    // Feature 4 = mean HR (bpm): up during seizures.
    assert!(
        col(4, true) > col(4, false) + 3.0,
        "HR {} vs {}",
        col(4, true),
        col(4, false)
    );
    // Feature 2 = RMSSD (s): down during seizures.
    assert!(
        col(2, true) < col(2, false),
        "rmssd {} vs {}",
        col(2, true),
        col(2, false)
    );
}
