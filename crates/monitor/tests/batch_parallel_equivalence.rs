//! Bit-identity guarantees of the dense/batch/parallel evaluation layer,
//! pinned on a real `Scale::Tiny` cohort (synthesised ECG → 53-feature
//! extraction), not just the quickfeat surrogate:
//!
//! * parallel [`loso_evaluate`] ≡ sequential [`loso_evaluate_serial`],
//!   down to the f64 bit pattern of every aggregate;
//! * `predict_batch` / `decision_batch` / `classify_batch` ≡ their
//!   per-row counterparts on every row of the cohort.

use epilepsy_monitor::prelude::*;
use std::sync::OnceLock;

fn matrix() -> &'static FeatureMatrix {
    static M: OnceLock<FeatureMatrix> = OnceLock::new();
    M.get_or_init(|| build_feature_matrix(&DatasetSpec::new(Scale::Tiny, 42)))
}

/// Configurations that exercise the fold fitter along every axis the
/// sweeps use: default, reduced features, SV budget, non-default kernel,
/// homogeneous scaling.
fn configs() -> Vec<FitConfig> {
    vec![
        FitConfig::default(),
        FitConfig::default().with_features((0..20).collect()),
        FitConfig::default().with_sv_budget(12),
        FitConfig::default().with_kernel(Kernel::Linear),
        FitConfig {
            homogeneous_scale: true,
            ..FitConfig::default()
        },
    ]
}

#[test]
fn parallel_loso_is_bit_identical_to_serial() {
    let m = matrix();
    for cfg in configs() {
        let par = loso_evaluate(m, &cfg);
        let ser = loso_evaluate_serial(m, &cfg);
        // Structural equality first (folds, confusions, skip counts)...
        assert_eq!(par, ser, "config {cfg:?}");
        // ...then the aggregates down to the bit pattern (NaN-safe).
        for (a, b) in [
            (par.mean_se, ser.mean_se),
            (par.mean_sp, ser.mean_sp),
            (par.mean_gm, ser.mean_gm),
            (par.mean_n_sv, ser.mean_n_sv),
        ] {
            assert_eq!(a.to_bits(), b.to_bits(), "config {cfg:?}");
        }
    }
}

#[test]
fn float_pipeline_batch_matches_per_row_bitwise() {
    let m = matrix();
    let p = FloatPipeline::fit(m, &FitConfig::default()).unwrap();
    let dec = p.decision_batch(&m.features);
    let pred = p.classify_batch(&m.features);
    assert_eq!(dec.len(), m.n_rows());
    for (i, row) in m.rows().enumerate() {
        assert_eq!(dec[i].to_bits(), p.decision_value(row).to_bits(), "row {i}");
        assert_eq!(pred[i], p.predict(row), "row {i}");
    }
}

#[test]
fn svm_model_batch_matches_per_row_bitwise() {
    let m = matrix();
    let p = FloatPipeline::fit(m, &FitConfig::default()).unwrap();
    let model = p.model();
    let normalized = p.normalize_batch(&m.features);
    let dec = model.decision_batch(&normalized);
    let pred = model.classify_batch(&normalized);
    for (i, row) in normalized.rows().enumerate() {
        assert_eq!(
            dec[i].to_bits(),
            model.decision_value(row).to_bits(),
            "row {i}"
        );
        assert_eq!(pred[i], model.predict(row), "row {i}");
    }
}

#[test]
fn quantized_engine_batch_matches_per_row_on_both_paths() {
    let m = matrix();
    let p = FloatPipeline::fit(m, &FitConfig::default()).unwrap();
    // Exact integer path (9/15) and wide float-sim path (uniform 63).
    for bits in [BitConfig::paper_choice(), BitConfig::uniform(63)] {
        let e = QuantizedEngine::from_pipeline(&p, bits).unwrap();
        let batch = e.classify_batch(&m.features);
        for (i, row) in m.rows().enumerate() {
            assert_eq!(batch[i], e.classify(row), "row {i} at {bits:?}");
        }
    }
}

#[test]
fn quantized_loso_parallel_matches_serial() {
    use seizure_core::eval::{loso_evaluate_with, loso_evaluate_with_serial};
    let m = matrix();
    let fit = |train: &FeatureMatrix| {
        let p = FloatPipeline::fit(train, &FitConfig::default())?;
        let n = p.model().n_support_vectors();
        let e = QuantizedEngine::from_pipeline(&p, BitConfig::paper_choice())?;
        Ok((move |rows: &DenseMatrix<f64>| e.classify_batch(rows), n))
    };
    let par = loso_evaluate_with(m, fit);
    let ser = loso_evaluate_with_serial(m, fit);
    assert_eq!(par, ser);
    assert_eq!(par.mean_gm.to_bits(), ser.mean_gm.to_bits());
}
