//! Streaming-vs-batch equivalence on a real `Tiny` cohort — the
//! subsystem's acceptance property:
//!
//! For a synthesised session fed to [`StreamingMonitor`] in **arbitrary
//! chunk sizes** (1 sample up to the whole session, plus a deterministic
//! xorshift sweep), the per-window decisions are **bit-identical** (f64
//! bit patterns) to the batch path — extract the same windows, classify
//! the block through the same engine — for both the float pipeline and
//! the quantised engine. Windows the batch path drops (failed
//! extraction) are exactly the windows the stream marks dropped.

use epilepsy_monitor::prelude::*;
use epilepsy_monitor::streaming::StreamingMonitor;
use seizure_core::stream::WindowDecision;
use std::sync::{Arc, OnceLock};

fn spec() -> &'static DatasetSpec {
    static SPEC: OnceLock<DatasetSpec> = OnceLock::new();
    SPEC.get_or_init(|| DatasetSpec::new(Scale::Tiny, 42))
}

fn pipeline() -> &'static FloatPipeline {
    static PIPE: OnceLock<FloatPipeline> = OnceLock::new();
    PIPE.get_or_init(|| {
        let matrix = build_feature_matrix(spec());
        FloatPipeline::fit(&matrix, &FitConfig::default()).expect("fit on Tiny cohort")
    })
}

/// Batch reference for one session: per-window decision (None = window
/// dropped by extraction) computed by extracting every window and pushing
/// the survivors through the engine's batch entry point.
fn batch_reference(
    rec: &epilepsy_monitor::sim::session::SessionRecording,
    window_s: f64,
    engine: &dyn ClassifierEngine,
) -> Vec<Option<(f64, f64)>> {
    let extractor = epilepsy_monitor::features::WindowExtractor::new(rec.fs);
    let labels = rec.window_labels(window_s);
    let mut kept_rows = DenseMatrix::with_cols(epilepsy_monitor::features::N_FEATURES);
    let mut kept_at = Vec::new();
    for (w, label) in labels.iter().enumerate() {
        if let Ok(row) = extractor.extract(rec.window_samples(label)) {
            kept_rows.push_row(&row);
            kept_at.push(w);
        }
    }
    let decisions = engine.decision_batch(&kept_rows);
    let classes = engine.classify_batch(&kept_rows);
    let mut out = vec![None; labels.len()];
    for ((&w, d), c) in kept_at.iter().zip(decisions).zip(classes) {
        out[w] = Some((d, c));
    }
    out
}

fn assert_stream_matches_batch(
    decisions: &[WindowDecision],
    reference: &[Option<(f64, f64)>],
    window_len: usize,
    label: &str,
) {
    assert_eq!(decisions.len(), reference.len(), "{label}: window count");
    for (d, r) in decisions.iter().zip(reference.iter()) {
        assert_eq!(
            d.start_sample,
            d.window_index * window_len as u64,
            "{label}: window geometry"
        );
        match (d.decision, r) {
            (Some(got), Some((want, class))) => {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{label}: decision of window {} ({got} vs {want})",
                    d.window_index
                );
                assert_eq!(
                    d.is_seizure,
                    *class >= 0.0,
                    "{label}: class of window {}",
                    d.window_index
                );
            }
            (None, None) => assert!(!d.is_seizure),
            (got, want) => panic!(
                "{label}: window {} dropped-state mismatch (stream {got:?}, batch {want:?})",
                d.window_index
            ),
        }
    }
}

/// xorshift64* chunk-size driver (deterministic).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn run_chunked(
    monitor: &mut StreamingMonitor,
    ecg: &[f64],
    mut next_len: impl FnMut() -> usize,
) -> Vec<WindowDecision> {
    let mut out = Vec::new();
    let mut fresh = Vec::new();
    let mut fed = 0usize;
    while fed < ecg.len() {
        let len = next_len().clamp(1, ecg.len() - fed);
        monitor.push_samples_into(&ecg[fed..fed + len], &mut fresh);
        out.append(&mut fresh);
        fed += len;
    }
    out
}

#[test]
fn streaming_is_bit_identical_to_batch_for_both_engines() {
    let spec = spec();
    let window_s = spec.scale.window_s();
    let fs = spec.scale.fs();
    let cfg = StreamConfig::non_overlapping(fs, window_s).expect("stream config");
    let p = pipeline();
    let quantized =
        QuantizedEngine::from_pipeline(p, BitConfig::paper_choice()).expect("quantized engine");
    let engines: [(&str, Arc<dyn ClassifierEngine>); 2] = [
        ("float", Arc::new(p.clone())),
        ("quantized", Arc::new(quantized)),
    ];

    // A session with seizures so both classes appear in the stream.
    let session = spec
        .sessions
        .iter()
        .find(|s| !s.seizures.is_empty())
        .expect("Tiny cohort has seizures");
    let rec = session.synthesize();

    for (name, engine) in &engines {
        let reference = batch_reference(&rec, window_s, engine.as_ref());
        assert!(reference.iter().filter(|r| r.is_some()).count() >= 5);

        // Fixed chunk sizes: single samples, sub-second packets, one
        // second, odd sizes straddling window boundaries, exactly one
        // window, the whole session.
        for chunk_len in [1usize, 13, 128, 1000, cfg.window_len, rec.ecg.len()] {
            let mut monitor =
                StreamingMonitor::new(Arc::clone(engine), cfg).expect("monitor config");
            let mut decisions = Vec::new();
            let mut fresh = Vec::new();
            for chunk in rec.chunks(chunk_len) {
                monitor.push_samples_into(chunk, &mut fresh);
                decisions.append(&mut fresh);
            }
            assert_stream_matches_batch(
                &decisions,
                &reference,
                cfg.window_len,
                &format!("{name}/chunk={chunk_len}"),
            );
            let stats = monitor.stats();
            assert_eq!(stats.windows as usize, reference.len());
            assert_eq!(stats.samples_in, rec.ecg.len() as u64);
            assert_eq!(
                stats.dropped as usize,
                reference.iter().filter(|r| r.is_none()).count()
            );
            assert_eq!(
                stats.seizure_windows as usize,
                decisions.iter().filter(|d| d.is_seizure).count()
            );
        }

        // Deterministic xorshift sweep over random chunkings.
        let mut rng = XorShift(0xD15E_A5E5 ^ name.len() as u64);
        for _round in 0..4 {
            let mut monitor =
                StreamingMonitor::new(Arc::clone(engine), cfg).expect("monitor config");
            let decisions = run_chunked(&mut monitor, &rec.ecg, || {
                1 + (rng.next() as usize) % (2 * cfg.window_len)
            });
            assert_stream_matches_batch(
                &decisions,
                &reference,
                cfg.window_len,
                &format!("{name}/xorshift"),
            );
        }
    }
}

#[test]
fn restarting_from_persisted_pipeline_is_bit_identical() {
    let spec = spec();
    let cfg = StreamConfig::non_overlapping(spec.scale.fs(), spec.scale.window_s())
        .expect("stream config");
    let p = pipeline();
    let rec = spec.sessions[0].synthesize();

    // Float engine from text.
    let text = p.to_text();
    let mut live = StreamingMonitor::from_float_pipeline(p.clone(), cfg).unwrap();
    let mut restored = StreamingMonitor::from_saved_pipeline(&text, None, cfg).unwrap();
    assert_eq!(restored.engine_info(), live.engine_info());

    // Quantised engine rebuilt from the same text plus a bit config.
    let bits = BitConfig::paper_choice();
    let bits_restored = BitConfig::from_text(&bits.to_text()).unwrap();
    let mut qlive = StreamingMonitor::from_quantized(p, bits, cfg).unwrap();
    let mut qrestored =
        StreamingMonitor::from_saved_pipeline(&text, Some(bits_restored), cfg).unwrap();

    // Compare the semantic fields (latency is wall-clock and may differ).
    let same = |a: &[WindowDecision], b: &[WindowDecision], label: &str| {
        assert_eq!(a.len(), b.len(), "{label}: window count");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.window_index, y.window_index, "{label}");
            assert_eq!(x.start_sample, y.start_sample, "{label}");
            assert_eq!(
                x.decision.map(f64::to_bits),
                y.decision.map(f64::to_bits),
                "{label}: window {} must be bit-identical after restart",
                x.window_index
            );
            assert_eq!(x.is_seizure, y.is_seizure, "{label}");
        }
    };
    for chunk in rec.chunks(997) {
        same(
            &live.push_samples(chunk),
            &restored.push_samples(chunk),
            "float engine restart",
        );
        same(
            &qlive.push_samples(chunk),
            &qrestored.push_samples(chunk),
            "quantized engine restart",
        );
    }
    assert!(live.stats().windows >= 5);
}

#[test]
fn corrupt_persisted_pipeline_is_rejected_at_load_not_at_first_window() {
    let spec = spec();
    let cfg = StreamConfig::non_overlapping(spec.scale.fs(), spec.scale.window_s())
        .expect("stream config");
    // Point one selected feature far past the 53 columns extraction
    // produces: the monitor must refuse the file instead of panicking on
    // the first classified window.
    let text = pipeline()
        .to_text()
        .replacen("features 0 ", "features 99999 ", 1);
    assert!(StreamingMonitor::from_saved_pipeline(&text, None, cfg).is_err());
}

#[test]
fn cohort_fanout_matches_per_stream_runs() {
    let spec = spec();
    let cfg = StreamConfig::non_overlapping(spec.scale.fs(), spec.scale.window_s())
        .expect("stream config");
    let engine: Arc<dyn ClassifierEngine> = Arc::new(pipeline().clone());
    let streams: Vec<Vec<f64>> = spec
        .sessions
        .iter()
        .take(3)
        .map(|s| s.synthesize().ecg)
        .collect();
    let chunk_len = 1280; // 10 s packets
    let outcomes = StreamingMonitor::monitor_cohort(&engine, cfg, &streams, chunk_len).unwrap();
    assert_eq!(outcomes.len(), streams.len());
    for (i, (outcome, samples)) in outcomes.iter().zip(streams.iter()).enumerate() {
        let mut solo = StreamingMonitor::new(Arc::clone(&engine), cfg).unwrap();
        let mut reference = Vec::new();
        for chunk in samples.chunks(chunk_len) {
            reference.extend(solo.push_samples(chunk));
        }
        assert_eq!(outcome.decisions.len(), reference.len(), "stream {i}");
        for (a, b) in outcome.decisions.iter().zip(reference.iter()) {
            assert_eq!(a.window_index, b.window_index);
            assert_eq!(
                a.decision.map(f64::to_bits),
                b.decision.map(f64::to_bits),
                "stream {i} window {}",
                a.window_index
            );
            assert_eq!(a.is_seizure, b.is_seizure);
        }
        assert_eq!(outcome.stats.windows, solo.stats().windows);
    }
}
