//! Property-based tests over the core data structures and numerical
//! invariants.
//!
//! The offline build has no `proptest`, so the properties are exercised
//! with a deterministic xorshift-driven case generator: same coverage
//! style (random-ish inputs, invariant assertions), fully reproducible.

use epilepsy_monitor::core::eval::Confusion;
use epilepsy_monitor::fx::fixed::{saturate_to_width, truncate_lsbs, width_of};
use epilepsy_monitor::fx::quantize::Quantizer;
use epilepsy_monitor::fx::{pow2_range_exponent, FeatureScales};
use epilepsy_monitor::hw::pipeline::AcceleratorConfig;
use epilepsy_monitor::hw::TechParams;

/// Deterministic case generator (xorshift64*).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.max(1))
    }
    fn u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn unit(&mut self) -> f64 {
        (self.u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }
    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.u64() % (hi - lo + 1) as u64) as i64
    }
}

const CASES: usize = 200;

/// Round-trip quantisation error is bounded by half an LSB inside the
/// representable range.
#[test]
fn quantizer_roundtrip_error_bounded() {
    let mut g = Gen::new(1);
    for _ in 0..CASES {
        let x = g.range(-1000.0, 1000.0);
        let r = g.int(-8, 11) as i32;
        let bits = g.int(4, 23) as u32;
        let q = Quantizer::for_range_exponent(r, bits);
        let lo = q.decode(q.min_code());
        let hi = q.decode(q.max_code());
        if x > lo && x < hi {
            let err = (q.quantize(x) - x).abs();
            assert!(err <= q.lsb() / 2.0 + 1e-12, "err {} lsb {}", err, q.lsb());
        }
    }
}

/// Encoding is monotone: a larger value never gets a smaller code.
#[test]
fn quantizer_is_monotone() {
    let mut g = Gen::new(2);
    for _ in 0..CASES {
        let a = g.range(-100.0, 100.0);
        let b = g.range(-100.0, 100.0);
        let bits = g.int(3, 19) as u32;
        let q = Quantizer::for_range_exponent(3, bits);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(q.encode(lo) <= q.encode(hi));
    }
}

/// Codes always stay within the two's-complement width.
#[test]
fn quantizer_codes_stay_in_width() {
    let mut g = Gen::new(3);
    for _ in 0..CASES {
        // Stress far outside the representable range too.
        let x = g.range(-1.0, 1.0) * (10f64).powi(g.int(0, 18) as i32);
        let bits = g.int(2, 29) as u32;
        let q = Quantizer::for_range_exponent(0, bits);
        let c = q.encode(x);
        assert!(c >= q.min_code() && c <= q.max_code());
    }
}

/// Eq 6: the chosen power-of-two range covers avg ± sigma.
#[test]
fn eq6_range_covers_one_sigma() {
    let mut g = Gen::new(4);
    for _ in 0..CASES {
        let n = g.int(2, 63) as usize;
        let values: Vec<f64> = (0..n).map(|_| g.range(-1e4, 1e4)).collect();
        let r = pow2_range_exponent(&values);
        let nf = values.len() as f64;
        let avg = values.iter().sum::<f64>() / nf;
        let sigma = (values.iter().map(|v| (v - avg) * (v - avg)).sum::<f64>() / nf).sqrt();
        let bound = (r as f64).exp2();
        assert!(avg - sigma > -bound - 1e-9);
        assert!(avg + sigma < bound + 1e-9);
    }
}

/// Homogenised scales dominate every per-feature scale.
#[test]
fn homogenize_dominates() {
    let mut g = Gen::new(5);
    for _ in 0..CASES {
        let n_rows = g.int(2, 19) as usize;
        let rows: Vec<Vec<f64>> = (0..n_rows)
            .map(|_| (0..4).map(|_| g.range(-100.0, 100.0)).collect())
            .collect();
        let s = FeatureScales::calibrate(rows.iter().map(Vec::as_slice));
        let h = s.homogenize();
        for (a, b) in s.r.iter().zip(h.r.iter()) {
            assert!(b >= a);
        }
    }
}

/// Arithmetic truncation equals floor division by 2^k.
#[test]
fn truncation_is_floor_division() {
    let mut g = Gen::new(6);
    for _ in 0..CASES {
        let v = g.int(-1_000_000_000, 1_000_000_000);
        let k = g.int(0, 29) as u32;
        let t = truncate_lsbs(v as i128, k);
        let d = (v as f64 / (k as f64).exp2()).floor() as i128;
        assert_eq!(t, d);
    }
}

/// Saturation clamps into the width and is idempotent.
#[test]
fn saturation_is_idempotent() {
    let mut g = Gen::new(7);
    for _ in 0..CASES {
        let v = g.u64() as i64;
        let bits = g.int(2, 63) as u32;
        let s1 = saturate_to_width(v as i128, bits);
        let s2 = saturate_to_width(s1, bits);
        assert_eq!(s1, s2);
        assert!(width_of(s1) <= bits);
    }
}

/// Confusion-matrix metrics always land in [0, 1] and GM is the
/// geometric mean of Se and Sp.
#[test]
fn confusion_metrics_in_unit_interval() {
    let mut g = Gen::new(8);
    for _ in 0..CASES {
        let c = Confusion {
            tp: g.int(0, 499) as usize,
            tn: g.int(0, 499) as usize,
            fp: g.int(0, 499) as usize,
            fn_: g.int(0, 499) as usize,
        };
        if let Some(se) = c.sensitivity() {
            assert!((0.0..=1.0).contains(&se));
        }
        if let Some(sp) = c.specificity() {
            assert!((0.0..=1.0).contains(&sp));
        }
        if let (Some(se), Some(sp), Some(gm)) =
            (c.sensitivity(), c.specificity(), c.geometric_mean())
        {
            assert!((gm - (se * sp).sqrt()).abs() < 1e-12);
        }
    }
}

/// The accelerator cost model never returns negative or non-finite
/// costs, and cycles follow the N_SV x N_feat law.
#[test]
fn cost_model_is_well_behaved() {
    let mut g = Gen::new(9);
    for _ in 0..CASES {
        let n_sv = g.int(1, 299) as usize;
        let n_feat = g.int(1, 63) as usize;
        let d_bits = g.int(2, 63) as u32;
        let a_bits = g.int(2, 63) as u32;
        let hw = AcceleratorConfig::new(n_sv, n_feat, d_bits, a_bits);
        let c = hw.cost(&TechParams::default());
        assert!(c.energy_nj.is_finite() && c.energy_nj > 0.0);
        assert!(c.area_mm2.is_finite() && c.area_mm2 > 0.0);
        assert_eq!(hw.cycles(), (n_sv * n_feat + 2 * n_sv + n_feat) as u64);
    }
}

/// Pearson correlation is symmetric and bounded.
#[test]
fn pearson_symmetric_bounded() {
    let mut g = Gen::new(10);
    for _ in 0..CASES {
        let n = g.int(8, 63) as usize;
        let x: Vec<f64> = (0..n).map(|_| g.range(-100.0, 100.0)).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| 0.3 * v + (g.unit() - 0.5) * 10.0)
            .collect();
        let ab = epilepsy_monitor::dsp::stats::pearson(&x, &y).unwrap();
        let ba = epilepsy_monitor::dsp::stats::pearson(&y, &x).unwrap();
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab.abs() <= 1.0 + 1e-12);
    }
}
