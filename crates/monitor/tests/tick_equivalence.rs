//! Tick-driven vs caller-driven serving equivalence — the serving-clock
//! acceptance property:
//!
//! When the fleet is **unsaturated** (no admission gate engages), a
//! tick-driven fleet ([`FleetMonitor::tick`] on a deterministic virtual
//! clock) must produce **bit-identical** decision and alarm streams to
//! a caller-driven fleet flushed at the same points in the same ingest
//! schedule — for both engines and at every flush executor count
//! (serial / two-executor pool / machine default). The serving clock is
//! observability only: deadline accounting and latency histograms must
//! never change what gets decided.
//!
//! Under the virtual clock the decision-latency histogram itself is
//! also deterministic: every worker count must produce the exact same
//! histogram and deadline ledger, so SLO numbers from a simulation are
//! reproducible artifacts.

use epilepsy_monitor::fleet::FleetMonitor;
use epilepsy_monitor::prelude::*;
use seizure_core::clock::TickConfig;
use seizure_core::stream::{SharedEngine, WindowDecision};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

fn spec() -> &'static DatasetSpec {
    static SPEC: OnceLock<DatasetSpec> = OnceLock::new();
    SPEC.get_or_init(|| DatasetSpec::new(Scale::Tiny, 42))
}

fn pipeline() -> &'static FloatPipeline {
    static PIPE: OnceLock<FloatPipeline> = OnceLock::new();
    PIPE.get_or_init(|| {
        let matrix = build_feature_matrix(spec());
        FloatPipeline::fit(&matrix, &FitConfig::default()).expect("fit on Tiny cohort")
    })
}

fn streams() -> &'static Vec<Vec<f64>> {
    static STREAMS: OnceLock<Vec<Vec<f64>>> = OnceLock::new();
    STREAMS.get_or_init(|| {
        spec()
            .sessions
            .iter()
            .take(3)
            .map(|s| s.synthesize().ecg)
            .collect()
    })
}

fn engines() -> Vec<(&'static str, SharedEngine)> {
    let p = pipeline();
    let quantized =
        QuantizedEngine::from_pipeline(p, BitConfig::paper_choice()).expect("quantized engine");
    vec![
        ("float", Arc::new(p.clone()) as SharedEngine),
        ("quantized", Arc::new(quantized) as SharedEngine),
    ]
}

const WORKER_COUNTS: [Option<usize>; 3] = [Some(1), Some(2), None];

/// Per-patient decision streams plus the final fleet stats, driven over
/// the fixed schedule: round-robin patients, 128-sample chunks, a drain
/// (flush or tick) after every 5th ingest and once at the end.
fn drive(
    engine: &SharedEngine,
    cfg: StreamConfig,
    workers: Option<usize>,
    tick: Option<TickConfig>,
) -> (
    Vec<Vec<WindowDecision>>,
    BTreeMap<u64, Vec<AlarmEvent>>,
    FleetStats,
) {
    let cohort = streams();
    let ticked = tick.is_some();
    let fleet_cfg = FleetConfig {
        alarms: Some(AlarmConfig::k_of_n(1, 2)),
        workers,
        tick,
        ..FleetConfig::unbounded(cfg)
    };
    let mut mon = FleetMonitor::new(Arc::clone(engine), fleet_cfg).expect("fleet config");
    for p in 0..cohort.len() as u64 {
        mon.admit(p).expect("admit");
    }
    let mut decisions: Vec<Vec<WindowDecision>> = vec![Vec::new(); cohort.len()];
    let drain = |mon: &mut FleetMonitor, decisions: &mut Vec<Vec<WindowDecision>>| {
        let flush = if ticked {
            mon.tick().expect("serving tick").0
        } else {
            mon.flush()
        };
        for d in flush.decisions {
            decisions[d.patient as usize].push(d.decision);
        }
    };
    let mut cursors = vec![0usize; cohort.len()];
    let mut live: Vec<usize> = (0..cohort.len()).collect();
    let mut ingests = 0usize;
    while !live.is_empty() {
        let pick = live[ingests % live.len()];
        let cur = cursors[pick];
        let len = 128.min(cohort[pick].len() - cur);
        mon.ingest(pick as u64, &cohort[pick][cur..cur + len])
            .expect("ingest");
        cursors[pick] += len;
        if cursors[pick] == cohort[pick].len() {
            live.retain(|&p| p != pick);
        }
        ingests += 1;
        if ingests.is_multiple_of(5) {
            drain(&mut mon, &mut decisions);
        }
    }
    drain(&mut mon, &mut decisions);
    assert_eq!(mon.stats().pending_windows, 0, "schedule must fully drain");

    let alarms = (0..cohort.len() as u64)
        .map(|p| (p, mon.patient_alarms(p).to_vec()))
        .collect();
    (decisions, alarms, mon.stats())
}

/// A cadence long enough that the fixed schedule never saturates it —
/// the gate-free regime where ticking must be pure observability.
fn virtual_tick() -> TickConfig {
    TickConfig::deterministic(1_000_000, 10)
}

#[test]
fn tick_driven_is_bit_identical_to_caller_driven_when_unsaturated() {
    let spec = spec();
    let cfg = StreamConfig::non_overlapping(spec.scale.fs(), spec.scale.window_s()).unwrap();
    for (name, engine) in &engines() {
        for workers in WORKER_COUNTS {
            let label = format!("{name}/workers-{workers:?}");
            let (flushed, flushed_alarms, _) = drive(engine, cfg, workers, None);
            let (ticked, ticked_alarms, stats) = drive(engine, cfg, workers, Some(virtual_tick()));
            for (p, (a, b)) in ticked.iter().zip(flushed.iter()).enumerate() {
                assert_eq!(a.len(), b.len(), "{label}: patient {p} window count");
                assert!(!a.is_empty(), "{label}: degenerate patient {p}");
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.window_index, y.window_index, "{label}: p{p}");
                    assert_eq!(
                        x.decision.map(f64::to_bits),
                        y.decision.map(f64::to_bits),
                        "{label}: patient {p} window {} must be bit-identical",
                        x.window_index
                    );
                    assert_eq!(x.is_seizure, y.is_seizure, "{label}: p{p}");
                }
            }
            assert_eq!(ticked_alarms, flushed_alarms, "{label}: alarm streams");
            // Ticking really ran: every drain was one accounted tick,
            // and nothing was shed in the unsaturated regime.
            assert!(stats.ticks > 0, "{label}: no ticks recorded");
            assert_eq!(
                stats.ticks,
                stats.deadlines_met + stats.deadlines_missed,
                "{label}: deadline ledger must cover every tick"
            );
            assert_eq!(stats.shed_windows, 0, "{label}: unsaturated run shed");
            assert_eq!(
                stats.decision_latency.count(),
                stats.windows_decided,
                "{label}: every decided window needs a latency sample"
            );
        }
    }
}

#[test]
fn virtual_clock_slo_numbers_are_identical_across_worker_counts() {
    let spec = spec();
    let cfg = StreamConfig::non_overlapping(spec.scale.fs(), spec.scale.window_s()).unwrap();
    for (name, engine) in &engines() {
        let runs: Vec<FleetStats> = WORKER_COUNTS
            .iter()
            .map(|&w| drive(engine, cfg, w, Some(virtual_tick())).2)
            .collect();
        for (w, s) in WORKER_COUNTS.iter().zip(&runs).skip(1) {
            assert_eq!(
                s.decision_latency, runs[0].decision_latency,
                "{name}/workers-{w:?}: virtual-clock latency histogram drifted"
            );
            assert_eq!(
                s.tick_work, runs[0].tick_work,
                "{name}/workers-{w:?}: virtual-clock tick-work histogram drifted"
            );
            assert_eq!(
                (
                    s.ticks,
                    s.deadlines_met,
                    s.deadlines_missed,
                    s.worst_overrun_ns
                ),
                (
                    runs[0].ticks,
                    runs[0].deadlines_met,
                    runs[0].deadlines_missed,
                    runs[0].worst_overrun_ns
                ),
                "{name}/workers-{w:?}: deadline ledger drifted"
            );
        }
        assert!(runs[0].decision_latency.count() > 0, "{name}: empty run");
    }
}
