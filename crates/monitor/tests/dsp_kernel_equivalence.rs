//! DSP micro-kernel equivalence re-pin on a real `Tiny` cohort — the
//! acceptance properties of the fused front-end (PR 7):
//!
//! * **fused vs staged, bit-identity** — the cascade-fused filter chain,
//!   the fused derivative→squaring→integration energy kernel and the
//!   bucket-grid peak filter reproduce the staged reference path bit for
//!   bit on every window of the cohort, peaks and amplitudes included;
//! * **planned rfft vs full FFT, ≤1e-12** — the real-input FFT behind
//!   `periodogram`/`welch` tracks the legacy full-complex transform to
//!   1e-12 relative on real EDR spectra, and whole-window extraction is
//!   bit-identical on the 24 beat-derived features with only the 29 PSD
//!   bands moving inside that tolerance;
//! * **f32 opt-in, classification-identical** — `ExtractPrecision::F32`
//!   detects the same beats (HRV/Lorenz bit-identical), keeps AR/PSD
//!   features within 1e-4, and classifies every cohort window identically
//!   to the f64 pipeline it was trained on;
//! * **chunking invariance survives fusion** — xorshift-sized random
//!   chunks through a streaming session still replay the batch decisions
//!   bit for bit at f64, and class-identically at f32.

use epilepsy_monitor::features::extract::{ExtractScratch, WindowExtractor};
use epilepsy_monitor::prelude::*;
use epilepsy_monitor::streaming::StreamingMonitor;
use seizure_core::ExtractPrecision;
use std::sync::{Arc, OnceLock};

fn spec() -> &'static DatasetSpec {
    static SPEC: OnceLock<DatasetSpec> = OnceLock::new();
    SPEC.get_or_init(|| DatasetSpec::new(Scale::Tiny, 42))
}

fn cohort() -> &'static FeatureMatrix {
    static M: OnceLock<FeatureMatrix> = OnceLock::new();
    M.get_or_init(|| build_feature_matrix(spec()))
}

fn pipeline() -> &'static FloatPipeline {
    static P: OnceLock<FloatPipeline> = OnceLock::new();
    P.get_or_init(|| {
        FloatPipeline::fit(cohort(), &FitConfig::default()).expect("fit on Tiny cohort")
    })
}

/// Runs `f` on every analysis window of every Tiny session; returns how
/// many windows were visited.
fn for_each_window(mut f: impl FnMut(&[f64], f64)) -> usize {
    let spec = spec();
    let window_s = spec.scale.window_s();
    let mut n = 0usize;
    for sess in &spec.sessions {
        let rec = sess.synthesize();
        for label in rec.window_labels(window_s) {
            f(rec.window_samples(&label), rec.fs);
            n += 1;
        }
    }
    n
}

#[test]
fn fused_filtfilt_matches_reference_bitwise_on_real_ecg() {
    use epilepsy_monitor::dsp::filter::{FiltFiltScratch, SosCascade};
    let mut scratch = FiltFiltScratch::default();
    let mut fused = Vec::new();
    let mut reference = Vec::new();
    let n = for_each_window(|w, fs| {
        let bp = SosCascade::butterworth_bandpass(5.0, 15.0, fs, 1).expect("band-pass");
        bp.filtfilt_into(w, &mut scratch, &mut fused);
        bp.filtfilt_into_reference(w, &mut scratch, &mut reference);
        assert_eq!(fused.len(), reference.len());
        for (i, (a, b)) in fused.iter().zip(reference.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "sample {i}");
        }
    });
    assert!(n > 0, "cohort must yield windows");
}

#[test]
fn fused_detection_matches_reference_bitwise_on_tiny_cohort() {
    use epilepsy_monitor::dsp::qrs::{DetectScratch, PanTompkins, QrsDetection};
    let det = PanTompkins::default();
    let mut scratch = DetectScratch::default();
    let mut fused = QrsDetection::default();
    let mut reference = QrsDetection::default();
    let mut peaks = 0usize;
    for_each_window(|w, fs| {
        det.detect_into(w, fs, &mut scratch, &mut fused)
            .expect("fused detect");
        det.detect_into_reference(w, fs, &mut scratch, &mut reference)
            .expect("reference detect");
        assert_eq!(fused.peaks.len(), reference.peaks.len());
        for (a, b) in fused.peaks.iter().zip(reference.peaks.iter()) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
            assert_eq!(a.amplitude.to_bits(), b.amplitude.to_bits());
        }
        peaks += fused.peaks.len();
    });
    assert!(peaks > 100, "expected beats across the cohort, got {peaks}");
}

#[test]
fn planned_welch_tracks_reference_on_real_edr() {
    use epilepsy_monitor::dsp::psd::{welch, welch_reference};
    use epilepsy_monitor::dsp::qrs::PanTompkins;
    use epilepsy_monitor::dsp::window::WindowKind;
    use epilepsy_monitor::features::edr::extract_edr;
    let det = PanTompkins::default();
    let mut checked = 0usize;
    for_each_window(|w, fs| {
        let d = det.detect(w, fs).expect("detect");
        if d.peaks.len() < 8 {
            return;
        }
        let edr = extract_edr(&d).expect("edr");
        if edr.samples.len() < 128 {
            return;
        }
        let new = welch(&edr.samples, edr.fs, 128, 0.5, WindowKind::Hann).expect("welch");
        let old =
            welch_reference(&edr.samples, edr.fs, 128, 0.5, WindowKind::Hann).expect("welch ref");
        assert_eq!(new.freqs, old.freqs);
        let pmax = old.power.iter().fold(0.0f64, |a, &b| a.max(b));
        for (k, (a, b)) in new.power.iter().zip(old.power.iter()).enumerate() {
            assert!((a - b).abs() <= 1e-12 * pmax, "bin {k}: {a} vs {b}");
        }
        checked += 1;
    });
    assert!(checked > 10, "too few spectra compared: {checked}");
}

#[test]
fn fused_extraction_pins_beat_features_bitwise_and_psd_to_1e12() {
    let extractor = WindowExtractor::new(spec().scale.fs());
    let mut s_new = ExtractScratch::default();
    let mut s_ref = ExtractScratch::default();
    let mut row_new = Vec::new();
    let mut row_ref = Vec::new();
    let mut checked = 0usize;
    for_each_window(|w, _| {
        let a = extractor.extract_into(w, &mut s_new, &mut row_new);
        let b = extractor.extract_into_reference(w, &mut s_ref, &mut row_ref);
        assert_eq!(a.is_ok(), b.is_ok(), "drop-state mismatch");
        if a.is_err() {
            return;
        }
        // HRV + Lorenz + AR (beat-derived, untouched by the rfft swap):
        // bit-identical.
        for j in 0..24 {
            assert_eq!(
                row_new[j].to_bits(),
                row_ref[j].to_bits(),
                "feature {j}: {} vs {}",
                row_new[j],
                row_ref[j]
            );
        }
        // PSD bands: log-compressed band shares, pinned at 1e-12 absolute
        // (the shares are O(1) by construction).
        for j in 24..53 {
            assert!(
                (row_new[j] - row_ref[j]).abs() <= 1e-12,
                "feature {j}: {} vs {}",
                row_new[j],
                row_ref[j]
            );
        }
        checked += 1;
    });
    assert!(checked > 10, "too few windows compared: {checked}");
}

#[test]
fn f32_extraction_tracks_f64_and_classifies_identically() {
    let fs = spec().scale.fs();
    let hi = WindowExtractor::new(fs);
    let lo = WindowExtractor::with_precision(fs, ExtractPrecision::F32);
    let p = pipeline();
    let mut s_hi = ExtractScratch::default();
    let mut s_lo = ExtractScratch::default();
    let mut row_hi = Vec::new();
    let mut row_lo = Vec::new();
    let mut checked = 0usize;
    for_each_window(|w, _| {
        let a = hi.extract_into(w, &mut s_hi, &mut row_hi);
        let b = lo.extract_into(w, &mut s_lo, &mut row_lo);
        assert_eq!(a.is_ok(), b.is_ok(), "drop-state mismatch");
        if a.is_err() {
            return;
        }
        // Beat timing survives f32 filtering on this cohort: the RR-driven
        // HRV and Lorenz features are bit-identical (observed; ~30x
        // headroom kept on the amplitude-driven families below).
        for j in 0..15 {
            assert_eq!(
                row_lo[j].to_bits(),
                row_hi[j].to_bits(),
                "feature {j}: {} vs {}",
                row_lo[j],
                row_hi[j]
            );
        }
        // AR and PSD ride on EDR amplitudes (f32-rounded): observed max
        // deviation 3e-5, pinned at 1e-4 absolute.
        for j in 15..53 {
            assert!(
                (row_lo[j] - row_hi[j]).abs() <= 1e-4,
                "feature {j}: {} vs {}",
                row_lo[j],
                row_hi[j]
            );
        }
        // End-to-end contract: decisions move by ≤1e-3 (observed 2e-5,
        // cohort margin 9e-3) and never flip class.
        let dh = p.decision_value(&row_hi);
        let dl = p.decision_value(&row_lo);
        assert!((dh - dl).abs() <= 1e-3, "decision {dh} vs {dl}");
        assert_eq!(
            decision_is_seizure(dh),
            decision_is_seizure(dl),
            "classification flip: {dh} vs {dl}"
        );
        checked += 1;
    });
    assert!(checked > 10, "too few windows compared: {checked}");
}

/// Deterministic xorshift64* chunk-size stream in `[1, max_chunk]`.
fn xorshift_chunks(mut state: u64, max_chunk: usize, total: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut left = total;
    while left > 0 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let c = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize % max_chunk + 1;
        let c = c.min(left);
        out.push(c);
        left -= c;
    }
    out
}

#[test]
fn random_chunk_streaming_replays_batch_bitwise_through_fused_kernels() {
    let spec = spec();
    let rec = spec.sessions[0].synthesize();
    let window_s = spec.scale.window_s();
    let fs = spec.scale.fs();
    let cfg = StreamConfig::non_overlapping(fs, window_s).expect("stream config");
    let p = pipeline();
    let engine: Arc<FloatPipeline> = Arc::new(p.clone());
    let extractor = WindowExtractor::new(fs);
    let labels = rec.window_labels(window_s);

    for seed in [7u64, 0xDEAD_BEEF, 9_000_017] {
        let mut monitor = StreamingMonitor::new(engine.clone(), cfg).expect("monitor");
        let mut decisions = Vec::new();
        let mut fresh = Vec::new();
        let mut fed = 0usize;
        for c in xorshift_chunks(seed, 3 * fs as usize, rec.ecg.len()) {
            monitor.push_samples_into(&rec.ecg[fed..fed + c], &mut fresh);
            decisions.append(&mut fresh);
            fed += c;
        }
        assert_eq!(decisions.len(), labels.len(), "seed {seed}");
        let mut checked = 0usize;
        for (d, label) in decisions.iter().zip(labels.iter()) {
            match (d.decision, extractor.extract(rec.window_samples(label))) {
                (Some(got), Ok(row)) => {
                    let want = p.decision_value(&row);
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "seed {seed} window {}",
                        d.window_index
                    );
                    checked += 1;
                }
                (None, Err(_)) => {}
                (got, want) => panic!(
                    "seed {seed} window {}: dropped-state mismatch (stream {got:?}, batch ok={})",
                    d.window_index,
                    want.is_ok()
                ),
            }
        }
        assert!(checked > 0, "seed {seed}: nothing compared");
    }
}

#[test]
fn f32_streaming_classifies_like_f64_batch() {
    let spec = spec();
    let rec = spec.sessions[1].synthesize();
    let window_s = spec.scale.window_s();
    let fs = spec.scale.fs();
    let cfg = StreamConfig::non_overlapping(fs, window_s)
        .expect("stream config")
        .with_precision(ExtractPrecision::F32);
    let p = pipeline();
    let engine: Arc<FloatPipeline> = Arc::new(p.clone());
    let extractor = WindowExtractor::new(fs);

    let mut monitor = StreamingMonitor::new(engine, cfg).expect("monitor");
    let mut decisions = Vec::new();
    let mut fresh = Vec::new();
    for chunk in rec.ecg.chunks(fs as usize) {
        monitor.push_samples_into(chunk, &mut fresh);
        decisions.append(&mut fresh);
    }
    let labels = rec.window_labels(window_s);
    assert_eq!(decisions.len(), labels.len());
    let mut checked = 0usize;
    for (d, label) in decisions.iter().zip(labels.iter()) {
        match (d.decision, extractor.extract(rec.window_samples(label))) {
            (Some(got), Ok(row)) => {
                let want = p.decision_value(&row);
                assert!((got - want).abs() <= 1e-3, "window {}", d.window_index);
                assert_eq!(
                    decision_is_seizure(got),
                    decision_is_seizure(want),
                    "window {}: classification flip",
                    d.window_index
                );
                checked += 1;
            }
            (None, Err(_)) => {}
            (got, want) => panic!(
                "window {}: dropped-state mismatch (stream {got:?}, batch ok={})",
                d.window_index,
                want.is_ok()
            ),
        }
    }
    assert!(checked > 0, "nothing compared");
}
