//! End-to-end integration tests: synthetic cohort → feature extraction →
//! training → quantisation → hardware costing.

use epilepsy_monitor::prelude::*;
use seizure_core::combine::{combined_sequence, CombineParams};
use seizure_core::eval::loso_evaluate_with;
use std::sync::OnceLock;

fn matrix() -> &'static FeatureMatrix {
    static M: OnceLock<FeatureMatrix> = OnceLock::new();
    M.get_or_init(|| build_feature_matrix(&DatasetSpec::new(Scale::Tiny, 42)))
}

#[test]
fn dataset_assembles_with_both_classes_in_every_fold_union() {
    let m = matrix();
    assert_eq!(m.n_cols(), 53);
    assert!(m.n_rows() >= 40);
    assert!(m.n_positive() >= 5);
    assert_eq!(m.session_list().len(), 6);
    assert!(m.features.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn float_detector_beats_chance_by_a_wide_margin() {
    let r = loso_evaluate(matrix(), &FitConfig::default());
    assert!(r.folds.len() >= 5, "folds {}", r.folds.len());
    assert!(r.mean_gm > 0.55, "GM {}", r.mean_gm);
    assert!(r.mean_se > 0.5, "Se {}", r.mean_se);
    assert!(r.mean_sp > 0.7, "Sp {}", r.mean_sp);
}

#[test]
fn quantised_engine_tracks_float_pipeline() {
    let m = matrix();
    let float_r = loso_evaluate(m, &FitConfig::default());
    let quant_r = loso_evaluate_with(m, |train| {
        let p = FloatPipeline::fit(train, &FitConfig::default())?;
        let n = p.model().n_support_vectors();
        let e = QuantizedEngine::from_pipeline(&p, BitConfig::paper_choice())?;
        Ok((move |rows: &DenseMatrix<f64>| e.classify_batch(rows), n))
    });
    // The paper: ~1% GM loss at 9/15 bits. Allow a generous margin on the
    // tiny test cohort.
    assert!(
        (float_r.mean_gm - quant_r.mean_gm).abs() < 0.12,
        "float {} vs quantised {}",
        float_r.mean_gm,
        quant_r.mean_gm
    );
}

#[test]
fn combined_optimisation_reaches_order_of_magnitude_gains() {
    let m = matrix();
    let tech = TechParams::default();
    let params = CombineParams::auto(m, &FitConfig::default(), 0.03);
    let stages = combined_sequence(m, &FitConfig::default(), &params, &tech);
    assert_eq!(stages.len(), 4);
    let base = &stages[0];
    let last = &stages[3];
    let e_gain = base.energy_nj / last.energy_nj;
    let a_gain = base.area_mm2 / last.area_mm2;
    // The paper reports 12.5x / 16x at full scale; the tiny cohort must
    // still clear substantial gains.
    assert!(e_gain > 4.0, "energy gain {e_gain}");
    assert!(a_gain > 6.0, "area gain {a_gain}");
    // Quality must not collapse (paper: -3.2 GM points).
    assert!(last.gm > base.gm - 0.15, "GM {} -> {}", base.gm, last.gm);
    // Cost must shrink monotonically along the sequence.
    for w in stages.windows(2) {
        assert!(w[1].energy_nj <= w[0].energy_nj * 1.02);
        assert!(w[1].area_mm2 <= w[0].area_mm2 * 1.02);
    }
}

#[test]
fn engine_and_cost_model_agree_on_geometry() {
    let m = matrix();
    let p = FloatPipeline::fit(m, &FitConfig::default()).unwrap();
    let e = QuantizedEngine::from_pipeline(&p, BitConfig::paper_choice()).unwrap();
    let hw = e.accelerator_config();
    assert_eq!(hw.n_sv, p.model().n_support_vectors());
    assert_eq!(hw.n_feat, 53);
    let cost = hw.cost(&TechParams::default());
    assert!(cost.energy_nj > 0.0 && cost.area_mm2 > 0.0);
    assert_eq!(
        hw.cycles(),
        (hw.n_sv * hw.n_feat + 2 * hw.n_sv + hw.n_feat) as u64
    );
}

#[test]
fn results_are_reproducible_across_builds() {
    let a = build_feature_matrix(&DatasetSpec::new(Scale::Tiny, 123));
    let b = build_feature_matrix(&DatasetSpec::new(Scale::Tiny, 123));
    assert_eq!(a, b);
    let ra = loso_evaluate(&a, &FitConfig::default());
    let rb = loso_evaluate(&b, &FitConfig::default());
    assert_eq!(ra.mean_gm.to_bits(), rb.mean_gm.to_bits());
}
