//! Lane-batched SoA extraction equivalence on a real `Tiny` cohort —
//! the acceptance properties of the lane layer (PR 8):
//!
//! * **lane detection vs scalar, bit-identity at every width** — the
//!   lock-step Pan–Tompkins path (`detect_lanes_into`) reproduces the
//!   scalar fused detector bit for bit on real cohort windows for every
//!   lane width L ∈ {2, 4, 8}, at both `ExtractPrecision` variants
//!   (`f64` lanes ⇔ `F64`, `f32` lanes ⇔ `F32`);
//! * **batched extraction vs scalar, ragged tails included** — the
//!   greedy lane packer behind `extract_batch_into` yields feature rows
//!   bit-identical to one-at-a-time `extract_into` for every batch
//!   size, including tails with `n % L != 0` that fall through 8 → 4 →
//!   2 → scalar, with drop decisions (`FeatureError`) equal too;
//! * **fleet lane packing is invisible** — a fleet multiplexing mixed
//!   patients through large interleaved chunks (so the deferred extract
//!   stage really packs lane groups per session) stays bit-identical to
//!   solo streaming, at both precisions and across flush executor
//!   counts.

use epilepsy_monitor::dsp::qrs::{DetectScratch, LaneDetectScratch, PanTompkins, QrsDetection};
use epilepsy_monitor::features::extract::{BatchExtractScratch, ExtractScratch, WindowExtractor};
use epilepsy_monitor::prelude::*;
use seizure_core::stream::{SharedEngine, StreamingSession, WindowDecision};
use seizure_core::ExtractPrecision;
use std::sync::{Arc, OnceLock};

fn spec() -> &'static DatasetSpec {
    static SPEC: OnceLock<DatasetSpec> = OnceLock::new();
    SPEC.get_or_init(|| DatasetSpec::new(Scale::Tiny, 42))
}

fn pipeline() -> &'static FloatPipeline {
    static P: OnceLock<FloatPipeline> = OnceLock::new();
    P.get_or_init(|| {
        let matrix = build_feature_matrix(spec());
        FloatPipeline::fit(&matrix, &FitConfig::default()).expect("fit on Tiny cohort")
    })
}

fn assert_detection_bitwise(label: &str, got: &QrsDetection, want: &QrsDetection) {
    assert_eq!(got.peaks.len(), want.peaks.len(), "{label}: peak count");
    for (a, b) in got.peaks.iter().zip(want.peaks.iter()) {
        assert_eq!(a.index, b.index, "{label}");
        assert_eq!(a.time_s.to_bits(), b.time_s.to_bits(), "{label}");
        assert_eq!(a.amplitude.to_bits(), b.amplitude.to_bits(), "{label}");
    }
}

/// Checks every chunk of `L` consecutive cohort windows through the lane
/// detector against the scalar fused detector, both precisions.
fn check_lane_width<const L: usize>(windows: &[&[f64]], fs: f64) -> usize {
    let det = PanTompkins::default();
    let mut scalar = DetectScratch::default();
    let mut lanes64 = LaneDetectScratch::<f64, L>::default();
    let mut lanes32 = LaneDetectScratch::<f32, L>::default();
    let mut expect = QrsDetection::default();
    let mut outs: Vec<QrsDetection> = (0..L).map(|_| QrsDetection::default()).collect();
    let mut groups = 0usize;
    for group in windows.chunks_exact(L) {
        det.detect_lanes_into::<f64, L>(group, fs, &mut lanes64, &mut outs)
            .expect("lane f64 detect");
        for (j, w) in group.iter().enumerate() {
            det.detect_into_with(w, fs, ExtractPrecision::F64, &mut scalar, &mut expect)
                .expect("scalar f64 detect");
            assert_detection_bitwise(&format!("L={L} f64 lane {j}"), &outs[j], &expect);
        }
        det.detect_lanes_into::<f32, L>(group, fs, &mut lanes32, &mut outs)
            .expect("lane f32 detect");
        for (j, w) in group.iter().enumerate() {
            det.detect_into_with(w, fs, ExtractPrecision::F32, &mut scalar, &mut expect)
                .expect("scalar f32 detect");
            assert_detection_bitwise(&format!("L={L} f32 lane {j}"), &outs[j], &expect);
        }
        groups += 1;
    }
    groups
}

#[test]
fn lane_detection_matches_scalar_bitwise_at_every_width() {
    let spec = spec();
    let window_s = spec.scale.window_s();
    let mut groups = 0usize;
    for sess in &spec.sessions {
        let rec = sess.synthesize();
        let labels = rec.window_labels(window_s);
        let windows: Vec<&[f64]> = labels.iter().map(|l| rec.window_samples(l)).collect();
        groups += check_lane_width::<2>(&windows, rec.fs);
        groups += check_lane_width::<4>(&windows, rec.fs);
        groups += check_lane_width::<8>(&windows, rec.fs);
    }
    assert!(groups > 10, "too few lane groups compared: {groups}");
}

#[test]
fn batched_extraction_matches_scalar_bitwise_including_ragged_tails() {
    let spec = spec();
    let window_s = spec.scale.window_s();
    for precision in [ExtractPrecision::F64, ExtractPrecision::F32] {
        let mut batch_scratch = BatchExtractScratch::default();
        let mut scalar_scratch = ExtractScratch::default();
        let mut expect = Vec::new();
        let mut compared = 0usize;
        for sess in &spec.sessions {
            let rec = sess.synthesize();
            let extractor = WindowExtractor::with_precision(rec.fs, precision);
            let labels = rec.window_labels(window_s);
            let windows: Vec<&[f64]> = labels.iter().map(|l| rec.window_samples(l)).collect();
            // Every prefix size up to 9 plus the whole session: covers
            // pure widths (2, 4, 8), ragged tails that cascade 8 → 4 →
            // 2 → scalar (3, 5, 6, 7, 9) and the packer's full-stream
            // grouping, all against one-at-a-time scalar extraction.
            let mut sizes: Vec<usize> = (2..=9.min(windows.len())).collect();
            sizes.push(windows.len());
            for take in sizes {
                extractor.extract_batch_into(&windows[..take], &mut batch_scratch, |j, got| {
                    let want = extractor.extract_into(windows[j], &mut scalar_scratch, &mut expect);
                    match (got, want) {
                        (Ok(row), Ok(())) => {
                            assert_eq!(row.len(), expect.len());
                            for (k, (a, b)) in row.iter().zip(expect.iter()).enumerate() {
                                assert_eq!(
                                    a.to_bits(),
                                    b.to_bits(),
                                    "{precision:?} take {take} window {j} feature {k}: {a} vs {b}"
                                );
                            }
                            compared += 1;
                        }
                        (Err(e), Err(we)) => assert_eq!(
                            e, we,
                            "{precision:?} take {take} window {j}: drop reasons differ"
                        ),
                        (got, want) => panic!(
                            "{precision:?} take {take} window {j}: drop-state mismatch \
                             (batch ok={}, scalar ok={})",
                            got.is_ok(),
                            want.is_ok()
                        ),
                    }
                });
            }
        }
        assert!(
            compared > 50,
            "{precision:?}: too few rows compared: {compared}"
        );
    }
}

#[test]
fn fleet_lane_packing_is_bit_identical_to_solo_streaming() {
    let spec = spec();
    let fs = spec.scale.fs();
    let window_s = spec.scale.window_s();
    // Four mixed patients; big interleaved chunks (several windows each)
    // so the deferred extract stage settles multi-window backlogs and
    // the per-session lane packer forms real groups of 8/4/2 plus tails.
    let cohort: Vec<Vec<f64>> = spec
        .sessions
        .iter()
        .take(4)
        .map(|s| s.synthesize().ecg)
        .collect();
    let engine: SharedEngine = Arc::new(pipeline().clone());
    for precision in [ExtractPrecision::F64, ExtractPrecision::F32] {
        let cfg = StreamConfig::non_overlapping(fs, window_s)
            .expect("stream config")
            .with_precision(precision);
        // Solo reference: each patient alone, whole stream in one push —
        // itself lane-packed, and pinned bit-identical to scalar by the
        // extraction tests above.
        let reference: Vec<Vec<WindowDecision>> = cohort
            .iter()
            .map(|samples| {
                let mut s = StreamingSession::new(Arc::clone(&engine), cfg).expect("session");
                s.push_samples(samples)
            })
            .collect();
        for workers in [Some(1), Some(2), None] {
            let fleet_cfg = FleetConfig {
                workers,
                ..FleetConfig::unbounded(cfg)
            };
            let mut fleet =
                FleetScheduler::new(Arc::clone(&engine), fleet_cfg).expect("fleet config");
            for p in 0..cohort.len() as u64 {
                fleet.admit(p).expect("admit");
            }
            let mut decisions: Vec<Vec<WindowDecision>> = vec![Vec::new(); cohort.len()];
            let mut cursors = vec![0usize; cohort.len()];
            // Round-robin 5-window chunks with a flush every full round:
            // every settle packs a 4-window group plus carry-over, and
            // patients stay interleaved within each flush.
            let chunk = 5 * cfg.window_len;
            let mut live = true;
            while live {
                live = false;
                for (p, samples) in cohort.iter().enumerate() {
                    let cur = cursors[p];
                    if cur == samples.len() {
                        continue;
                    }
                    let len = chunk.min(samples.len() - cur);
                    fleet
                        .ingest(p as u64, &samples[cur..cur + len])
                        .expect("ingest");
                    cursors[p] += len;
                    live = true;
                }
                for d in fleet.flush().decisions {
                    decisions[d.patient as usize].push(d.decision);
                }
            }
            for (p, reference) in reference.iter().enumerate() {
                assert_eq!(
                    decisions[p].len(),
                    reference.len(),
                    "{precision:?} workers {workers:?}: patient {p} window count"
                );
                for (a, b) in decisions[p].iter().zip(reference.iter()) {
                    assert_eq!(a.window_index, b.window_index);
                    assert_eq!(
                        a.decision.map(f64::to_bits),
                        b.decision.map(f64::to_bits),
                        "{precision:?} workers {workers:?}: patient {p} window {} \
                         must be bit-identical",
                        a.window_index
                    );
                    assert_eq!(a.is_seizure, b.is_seizure);
                }
            }
        }
    }
}
