//! Streaming-vs-batch **alarm** equivalence on a real `Tiny` cohort —
//! the alarm subsystem's acceptance property:
//!
//! For a synthesised session fed to an alarmed [`StreamingMonitor`] in
//! arbitrary chunk sizes (fixed sweep plus a deterministic xorshift
//! sweep), the raised [`AlarmEvent`]s are **identical** (every field) to
//! running [`AlarmStateMachine::scan`] over the batch decision sequence
//! of the same windows — for both the float pipeline and the quantised
//! engine. Also pins the `decision == 0.0` boundary regression through
//! `Confusion`, `classify` and streaming, and the cohort alarm report.

use epilepsy_monitor::prelude::*;
use seizure_core::alarm::{
    score_events, session_decision_sequence, truth_events, AlarmStateMachine, DroppedPolicy,
    EventScoring,
};
use seizure_core::eval::Confusion;
use seizure_core::stream::WindowDecision;
use std::sync::{Arc, OnceLock};

fn spec() -> &'static DatasetSpec {
    static SPEC: OnceLock<DatasetSpec> = OnceLock::new();
    SPEC.get_or_init(|| DatasetSpec::new(Scale::Tiny, 42))
}

fn pipeline() -> &'static FloatPipeline {
    static PIPE: OnceLock<FloatPipeline> = OnceLock::new();
    PIPE.get_or_init(|| {
        let matrix = build_feature_matrix(spec());
        FloatPipeline::fit(&matrix, &FitConfig::default()).expect("fit on Tiny cohort")
    })
}

/// xorshift64* chunk-size driver (deterministic).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn run_chunked_alarmed(
    monitor: &mut StreamingMonitor,
    ecg: &[f64],
    mut next_len: impl FnMut() -> usize,
) -> (Vec<WindowDecision>, Vec<AlarmEvent>) {
    let mut decisions = Vec::new();
    let mut alarms = Vec::new();
    let mut fed = 0usize;
    while fed < ecg.len() {
        let len = next_len().clamp(1, ecg.len() - fed);
        decisions.extend(monitor.push_samples(&ecg[fed..fed + len]));
        // Drain alarms mid-stream, like a real consumer would.
        alarms.extend(monitor.take_alarms());
        fed += len;
    }
    (decisions, alarms)
}

#[test]
fn streaming_alarms_match_batch_scan_for_both_engines() {
    let spec = spec();
    let window_s = spec.scale.window_s();
    let cfg = StreamConfig::non_overlapping(spec.scale.fs(), window_s).expect("stream config");
    let p = pipeline();
    let quantized =
        QuantizedEngine::from_pipeline(p, BitConfig::paper_choice()).expect("quantized engine");
    let engines: [(&str, Arc<dyn ClassifierEngine>); 2] = [
        ("float", Arc::new(p.clone())),
        ("quantized", Arc::new(quantized)),
    ];
    // A sensitive operating point so the session actually alarms, plus
    // both dropped-window policies.
    let operating_points = [
        AlarmConfig {
            k: 1,
            n: 1,
            refractory_windows: 0,
            dropped: DroppedPolicy::VoteNonSeizure,
        },
        AlarmConfig {
            k: 1,
            n: 2,
            refractory_windows: 2,
            dropped: DroppedPolicy::Skip,
        },
    ];

    let session = spec
        .sessions
        .iter()
        .find(|s| !s.seizures.is_empty())
        .expect("Tiny cohort has seizures");
    let rec = session.synthesize();

    for (name, engine) in &engines {
        // The shared batch twin of the streaming decision path — the
        // sequence itself is pinned bit-identical to streaming by
        // streaming_equivalence.rs.
        let (decisions, window_len) = session_decision_sequence(&rec, window_s, engine.as_ref());
        assert_eq!(window_len, cfg.window_len);
        for alarm_cfg in operating_points {
            let reference =
                AlarmStateMachine::scan(alarm_cfg, &decisions, cfg.stride).expect("scan");
            assert!(
                !reference[..].is_empty() || alarm_cfg.k > 1,
                "{name}: seizure session should alarm at 1-of-1"
            );

            for chunk_len in [1usize, 13, 997, cfg.window_len, rec.ecg.len()] {
                let mut monitor = StreamingMonitor::new(Arc::clone(engine), cfg).unwrap();
                monitor.enable_alarms(alarm_cfg).unwrap();
                let mut streamed = Vec::new();
                for chunk in rec.chunks(chunk_len) {
                    monitor.push_samples(chunk);
                    streamed.extend(monitor.take_alarms());
                }
                assert_eq!(
                    streamed, reference,
                    "{name}/chunk={chunk_len}/{alarm_cfg:?}: streaming alarms must equal \
                     the batch scan"
                );
                assert_eq!(monitor.stats().alarms, reference.len() as u64);
            }

            // Deterministic xorshift sweep over random chunkings.
            let mut rng = XorShift(0xA1A2_0000 ^ name.len() as u64 ^ alarm_cfg.n as u64);
            for _round in 0..3 {
                let mut monitor = StreamingMonitor::new(Arc::clone(engine), cfg).unwrap();
                monitor.enable_alarms(alarm_cfg).unwrap();
                let (_, streamed) = run_chunked_alarmed(&mut monitor, &rec.ecg, || {
                    1 + (rng.next() as usize) % (2 * cfg.window_len)
                });
                assert_eq!(streamed, reference, "{name}/xorshift/{alarm_cfg:?}");
            }
        }
    }
}

#[test]
fn cohort_alarm_report_pools_event_metrics() {
    let spec = spec();
    let cfg =
        StreamConfig::non_overlapping(spec.scale.fs(), spec.scale.window_s()).expect("config");
    let engine: Arc<dyn ClassifierEngine> = Arc::new(pipeline().clone());
    let recs: Vec<_> = spec.sessions.iter().map(|s| s.synthesize()).collect();
    let streams: Vec<Vec<f64>> = recs.iter().map(|r| r.ecg.clone()).collect();
    let truth: Vec<_> = recs.iter().map(|r| truth_events(&r.seizures)).collect();
    let alarm_cfg = AlarmConfig::k_of_n(1, 2);

    let report = StreamingMonitor::monitor_cohort_alarms(
        &engine,
        cfg,
        alarm_cfg,
        &streams,
        1280,
        Some(&truth),
    )
    .expect("cohort run");
    assert_eq!(report.outcomes.len(), streams.len());
    assert_eq!(
        report.total_alarms(),
        report
            .outcomes
            .iter()
            .map(|o| o.alarms.len() as u64)
            .sum::<u64>()
    );
    let events = report.events.as_ref().expect("truth supplied");
    assert_eq!(events.n_events, 8, "Tiny cohort has 8 seizures");
    assert!(events.monitored_s > 0.0);
    assert!(events.event_sensitivity().is_some());
    assert!(events.false_alarms_per_24h().is_some());

    // The pooled metrics equal scoring each stream by hand.
    let scoring = EventScoring::for_windows(cfg.fs, cfg.window_len);
    let mut by_hand = EventMetrics::default();
    for (outcome, (rec, t)) in report.outcomes.iter().zip(recs.iter().zip(truth.iter())) {
        by_hand.merge(&score_events(
            &outcome.alarms,
            t,
            rec.ecg.len() as f64 / rec.fs,
            &scoring,
        ));
    }
    assert_eq!(*events, by_hand);

    // Without ground truth the report still counts alarms.
    let blind =
        StreamingMonitor::monitor_cohort_alarms(&engine, cfg, alarm_cfg, &streams, 1280, None)
            .expect("cohort run");
    assert!(blind.events.is_none());
    assert_eq!(blind.total_alarms(), report.total_alarms());
    // Mismatched truth length is rejected.
    assert!(StreamingMonitor::monitor_cohort_alarms(
        &engine,
        cfg,
        alarm_cfg,
        &streams,
        1280,
        Some(&truth[..1]),
    )
    .is_err());
}

/// The `decision == 0.0` seizure-boundary regression, end to end: one
/// shared convention (`>= 0.0` ⇒ seizure) through batch confusion
/// counting, trait classification and the streaming path.
#[test]
fn zero_decision_boundary_is_one_convention_everywhere() {
    // 1. Confusion counting puts 0.0 on the seizure side.
    let mut c = Confusion::default();
    c.record(1, 0.0);
    c.record(-1, 0.0);
    assert_eq!((c.tp, c.fp, c.tn, c.fn_), (1, 1, 0, 0));

    // 2. Trait classification: a model whose decision is exactly zero
    // says seizure (+1), and confusion counting agrees with it.
    use epilepsy_monitor::ml::{Kernel, SvmModel};
    let model = SvmModel::from_parts(
        Kernel::Linear,
        DenseMatrix::from_rows(&[vec![1.0, 0.0]]),
        vec![1.0],
        vec![1.0],
        0.0,
    ); // f(x) = x0
    let boundary_row = [0.0, 3.5];
    assert_eq!(model.decision_value(&boundary_row), 0.0);
    assert_eq!(model.predict(&boundary_row), 1.0);
    let e: &dyn ClassifierEngine = &model;
    assert_eq!(e.classify(&boundary_row), 1.0);
    let batch = DenseMatrix::from_rows(&[boundary_row.to_vec()]);
    assert_eq!(e.classify_batch(&batch), vec![1.0]);
    assert_eq!(
        Confusion::from_batch(&[1], &e.classify_batch(&batch)),
        Confusion {
            tp: 1,
            tn: 0,
            fp: 0,
            fn_: 0
        }
    );

    // 3. decision_is_seizure is the single source of truth.
    assert!(decision_is_seizure(0.0));
    assert!(decision_is_seizure(-0.0));
    assert!(!decision_is_seizure(-f64::MIN_POSITIVE));
}
