//! Fleet-vs-solo equivalence on a real `Tiny` cohort — the fleet
//! subsystem's acceptance property:
//!
//! For a cohort of patients multiplexed through one [`FleetScheduler`]
//! (chunks ingested in **arbitrary patient interleavings**, flushes
//! interspersed at arbitrary points, decisions batched across patients
//! through `decision_batch`), every patient's decision stream is
//! **bit-identical** (f64 bit patterns) to replaying that patient alone
//! through a solo [`StreamingSession`] — for both the float pipeline
//! and the quantised engine, under fixed round-robin and deterministic
//! xorshift-random interleavings, with the alarm stage enabled under
//! **both** [`DroppedPolicy`] variants (each stream is prefixed with a
//! flat window so a real dropped window exercises the policies), and at
//! **every flush executor count** — serial (`workers = Some(1)`), a
//! fleet-owned two-executor pool (`Some(2)`), and the machine-default
//! global pool (`None`). The staged flush pipeline (sharded extraction →
//! parallel panel fan-out → ordered route-back) must be invisible in the
//! results; only wall-clock may change. A worker panic during the panel
//! stage must surface on the flushing caller, and the fleet's pool must
//! survive for subsequent flushes.

use epilepsy_monitor::fleet::FleetMonitor;
use epilepsy_monitor::prelude::*;
use seizure_core::alarm::{truth_events, AlarmEvent, DroppedPolicy, TruthEvent};
use seizure_core::stream::{SharedEngine, StreamingSession, WindowDecision};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

fn spec() -> &'static DatasetSpec {
    static SPEC: OnceLock<DatasetSpec> = OnceLock::new();
    SPEC.get_or_init(|| DatasetSpec::new(Scale::Tiny, 42))
}

fn pipeline() -> &'static FloatPipeline {
    static PIPE: OnceLock<FloatPipeline> = OnceLock::new();
    PIPE.get_or_init(|| {
        let matrix = build_feature_matrix(spec());
        FloatPipeline::fit(&matrix, &FitConfig::default()).expect("fit on Tiny cohort")
    })
}

/// Cohort streams: every session's ECG, prefixed with one flat window so
/// window 0 is a guaranteed extraction drop (the dropped policies then
/// have something to disagree on).
fn streams() -> &'static Vec<Vec<f64>> {
    static STREAMS: OnceLock<Vec<Vec<f64>>> = OnceLock::new();
    STREAMS.get_or_init(|| {
        spec()
            .sessions
            .iter()
            .take(4)
            .map(|s| {
                let rec = s.synthesize();
                let mut ecg = vec![0.0; 5120]; // one flat 40 s window
                ecg.extend_from_slice(&rec.ecg);
                ecg
            })
            .collect()
    })
}

fn engines() -> Vec<(&'static str, SharedEngine)> {
    let p = pipeline();
    let quantized =
        QuantizedEngine::from_pipeline(p, BitConfig::paper_choice()).expect("quantized engine");
    vec![
        ("float", Arc::new(p.clone()) as SharedEngine),
        ("quantized", Arc::new(quantized) as SharedEngine),
    ]
}

/// xorshift64* driver (deterministic).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Solo reference: each patient alone through a `StreamingSession` with
/// the same alarm stage; returns per-patient (decisions, alarms).
fn solo_reference(
    engine: &SharedEngine,
    cfg: StreamConfig,
    alarm_cfg: Option<AlarmConfig>,
    cohort: &[Vec<f64>],
) -> Vec<(Vec<WindowDecision>, Vec<AlarmEvent>)> {
    cohort
        .iter()
        .map(|samples| {
            let mut session = match alarm_cfg {
                Some(a) => StreamingSession::with_alarms(Arc::clone(engine), cfg, a).unwrap(),
                None => StreamingSession::new(Arc::clone(engine), cfg).unwrap(),
            };
            let decisions = session.push_samples(samples);
            let alarms = session.take_alarms();
            (decisions, alarms)
        })
        .collect()
}

fn assert_patient_matches(
    label: &str,
    patient: usize,
    fleet_decisions: &[WindowDecision],
    fleet_alarms: &[AlarmEvent],
    reference: &(Vec<WindowDecision>, Vec<AlarmEvent>),
) {
    let (ref_decisions, ref_alarms) = reference;
    assert_eq!(
        fleet_decisions.len(),
        ref_decisions.len(),
        "{label}: patient {patient} window count"
    );
    assert!(!ref_decisions.is_empty(), "{label}: degenerate reference");
    for (a, b) in fleet_decisions.iter().zip(ref_decisions.iter()) {
        assert_eq!(a.window_index, b.window_index, "{label}: p{patient}");
        assert_eq!(a.start_sample, b.start_sample, "{label}: p{patient}");
        assert_eq!(
            a.decision.map(f64::to_bits),
            b.decision.map(f64::to_bits),
            "{label}: patient {patient} window {} must be bit-identical",
            a.window_index
        );
        assert_eq!(a.is_seizure, b.is_seizure, "{label}: p{patient}");
    }
    assert_eq!(
        fleet_alarms, ref_alarms,
        "{label}: patient {patient} alarm stream"
    );
}

/// The flush executor counts every equivalence property is checked
/// under: serial, a fleet-owned two-executor pool, the machine-default
/// global pool.
const WORKER_COUNTS: [Option<usize>; 3] = [Some(1), Some(2), None];

/// Drives one fleet over the cohort with a chunk/flush schedule, then
/// checks every patient against the solo reference.
#[allow(clippy::too_many_arguments)] // a test-harness driver: label + config + three schedule closures
fn check_fleet(
    label: &str,
    engine: &SharedEngine,
    cfg: StreamConfig,
    alarm_cfg: Option<AlarmConfig>,
    workers: Option<usize>,
    cohort: &[Vec<f64>],
    mut next_pick: impl FnMut(usize) -> usize,
    mut next_len: impl FnMut() -> usize,
    mut flush_now: impl FnMut() -> bool,
) {
    let fleet_cfg = FleetConfig {
        alarms: alarm_cfg,
        workers,
        ..FleetConfig::unbounded(cfg)
    };
    let mut fleet = FleetScheduler::new(Arc::clone(engine), fleet_cfg).unwrap();
    for p in 0..cohort.len() {
        fleet.admit(p as u64).unwrap();
    }
    let mut cursors = vec![0usize; cohort.len()];
    let mut decisions: Vec<Vec<WindowDecision>> = vec![Vec::new(); cohort.len()];
    let mut alarms: Vec<Vec<AlarmEvent>> = vec![Vec::new(); cohort.len()];
    let collect = |flush: seizure_core::fleet::FleetFlush,
                   decisions: &mut Vec<Vec<WindowDecision>>,
                   alarms: &mut Vec<Vec<AlarmEvent>>| {
        for d in flush.decisions {
            decisions[d.patient as usize].push(d.decision);
        }
        for (p, a) in flush.alarms {
            alarms[p as usize].push(a);
        }
    };
    let mut live: Vec<usize> = (0..cohort.len()).collect();
    while !live.is_empty() {
        let pick = live[next_pick(live.len()) % live.len()];
        let cur = cursors[pick];
        let len = next_len().clamp(1, cohort[pick].len() - cur);
        fleet
            .ingest(pick as u64, &cohort[pick][cur..cur + len])
            .unwrap();
        cursors[pick] += len;
        if cursors[pick] == cohort[pick].len() {
            live.retain(|&p| p != pick);
        }
        if flush_now() {
            collect(fleet.flush(), &mut decisions, &mut alarms);
        }
    }
    collect(fleet.flush(), &mut decisions, &mut alarms);
    assert_eq!(fleet.stats().pending_windows, 0);

    let reference = solo_reference(engine, cfg, alarm_cfg, cohort);
    for (p, r) in reference.iter().enumerate() {
        assert_patient_matches(label, p, &decisions[p], &alarms[p], r);
    }
    // The flat prefix really produced a dropped window per patient.
    for (p, (d, _)) in reference.iter().enumerate() {
        assert!(
            d.iter().any(|w| w.decision.is_none()),
            "patient {p} should have a dropped window"
        );
    }
}

#[test]
fn fleet_is_bit_identical_to_solo_streaming_for_both_engines() {
    let spec = spec();
    let cfg = StreamConfig::non_overlapping(spec.scale.fs(), spec.scale.window_s()).unwrap();
    let cohort = streams();
    for (name, engine) in &engines() {
        for workers in WORKER_COUNTS {
            // Fixed schedule: strict round-robin, one-second chunks,
            // flush after every 7th ingest.
            let mut rr = 0usize;
            let mut tick = 0usize;
            check_fleet(
                &format!("{name}/round-robin/workers-{workers:?}"),
                engine,
                cfg,
                None,
                workers,
                cohort,
                move |_n| {
                    rr += 1;
                    rr - 1
                },
                || 128,
                move || {
                    tick += 1;
                    tick.is_multiple_of(7)
                },
            );
            // Whole-stream pushes, single final flush (the batch
            // extreme — every session extracts in one shard pass).
            let mut rr2 = 0usize;
            check_fleet(
                &format!("{name}/one-shot/workers-{workers:?}"),
                engine,
                cfg,
                None,
                workers,
                cohort,
                move |_n| {
                    rr2 += 1;
                    rr2 - 1
                },
                || usize::MAX,
                || false,
            );
        }
    }
}

#[test]
fn fleet_alarms_match_solo_for_both_engines_and_both_dropped_policies() {
    let spec = spec();
    let cfg = StreamConfig::non_overlapping(spec.scale.fs(), spec.scale.window_s()).unwrap();
    let cohort = streams();
    for (name, engine) in &engines() {
        for (policy_name, policy) in [
            ("vote", DroppedPolicy::VoteNonSeizure),
            ("skip", DroppedPolicy::Skip),
        ] {
            let alarm_cfg = AlarmConfig {
                k: 2,
                n: 3,
                refractory_windows: 2,
                dropped: policy,
            };
            // Deterministic random interleavings: random patient picks,
            // random chunk sizes straddling window boundaries, random
            // flush points — each round at a different executor count,
            // so the worker matrix rides the same xorshift schedules.
            for round in 0..2u64 {
                for workers in WORKER_COUNTS {
                    let mut pick_rng = XorShift(0x00C0_FFEE ^ (round << 8) ^ name.len() as u64);
                    let mut len_rng = XorShift(0xD15E_A5E5 ^ round);
                    let mut flush_rng = XorShift(0x0BAD_F00D ^ (round << 16));
                    check_fleet(
                        &format!("{name}/{policy_name}/xorshift-{round}/workers-{workers:?}"),
                        engine,
                        cfg,
                        Some(alarm_cfg),
                        workers,
                        cohort,
                        move |n| pick_rng.next() as usize % n.max(1),
                        move || 1 + (len_rng.next() as usize) % (2 * cfg.window_len),
                        move || flush_rng.next().is_multiple_of(3),
                    );
                }
            }
        }
    }
}

#[test]
fn fleet_monitor_facade_reports_cohort_events_and_restarts_bit_identically() {
    let spec = spec();
    let cfg = StreamConfig::non_overlapping(spec.scale.fs(), spec.scale.window_s()).unwrap();
    let alarm_cfg = AlarmConfig::k_of_n(1, 2);
    let fleet_cfg = FleetConfig {
        alarms: Some(alarm_cfg),
        ..FleetConfig::unbounded(cfg)
    };
    let p = pipeline();

    // A live fleet and one restarted from persisted pipeline text must
    // produce bit-identical decision streams (float and quantised).
    let text = p.to_text();
    let bits = BitConfig::paper_choice();
    let pairs: Vec<(FleetMonitor, FleetMonitor)> = vec![
        (
            FleetMonitor::from_float_pipeline(p.clone(), fleet_cfg).unwrap(),
            FleetMonitor::from_saved_pipeline(&text, None, fleet_cfg).unwrap(),
        ),
        (
            FleetMonitor::from_quantized(p, bits, fleet_cfg).unwrap(),
            FleetMonitor::from_saved_pipeline(&text, Some(bits), fleet_cfg).unwrap(),
        ),
    ];
    let sessions: Vec<_> = spec.sessions.iter().take(3).collect();
    for (mut live, mut restored) in pairs {
        assert_eq!(live.engine_info(), restored.engine_info());
        for (id, s) in sessions.iter().enumerate() {
            live.admit(id as u64).unwrap();
            restored.admit(id as u64).unwrap();
            let rec = s.synthesize();
            live.ingest(id as u64, &rec.ecg).unwrap();
            restored.ingest(id as u64, &rec.ecg).unwrap();
        }
        let a = live.flush();
        let b = restored.flush();
        assert_eq!(a.rows_classified, b.rows_classified);
        assert_eq!(a.decisions.len(), b.decisions.len());
        for (x, y) in a.decisions.iter().zip(b.decisions.iter()) {
            assert_eq!(x.patient, y.patient);
            assert_eq!(x.decision.window_index, y.decision.window_index);
            assert_eq!(
                x.decision.decision.map(f64::to_bits),
                y.decision.decision.map(f64::to_bits),
                "restart must be bit-identical"
            );
        }
        assert_eq!(a.alarms, b.alarms);
    }

    // Cohort report: pooled event metrics against ground truth, plus the
    // wall-clock pooled throughput the merged stream stats cannot give.
    let mut fleet = FleetMonitor::from_float_pipeline(p.clone(), fleet_cfg).unwrap();
    let mut truth: BTreeMap<u64, Vec<TruthEvent>> = BTreeMap::new();
    for (id, s) in sessions.iter().enumerate() {
        fleet.admit(id as u64).unwrap();
        let rec = s.synthesize();
        fleet.ingest(id as u64, &rec.ecg).unwrap();
        truth.insert(id as u64, truth_events(&rec.seizures));
    }
    let flush = fleet.flush();
    assert!(!flush.decisions.is_empty());
    let report = fleet.cohort_report(Some(&truth)).unwrap();
    let events = report.events.as_ref().expect("ground truth supplied");
    let n_truth: usize = truth.values().map(Vec::len).sum();
    assert_eq!(events.n_events, n_truth);
    assert!(events.monitored_s > 0.0);
    assert_eq!(
        report.total_alarms(),
        report.stream.alarms as usize,
        "collected alarms agree with session counters"
    );
    assert!(report.stats.wall_windows_per_sec() > 0.0);
    assert_eq!(report.stream.windows, flush.decisions.len() as u64);
    // Unknown patient in the truth map is rejected.
    truth.insert(999, Vec::new());
    assert!(fleet.cohort_report(Some(&truth)).is_err());
    // Without truth there are no event metrics.
    assert!(fleet.cohort_report(None).unwrap().events.is_none());

    // Facade lifecycle: restart clears collected alarms; remove hands
    // back the session accounting plus the alarms collected across
    // flushes.
    fleet.restart(0).unwrap();
    assert!(fleet.patient_alarms(0).is_empty());
    let collected1 = fleet.patient_alarms(1).to_vec();
    let (removed, alarms1) = fleet.remove(1).unwrap();
    assert!(removed.stats.windows > 0);
    assert_eq!(removed.discarded_windows, 0, "everything was flushed");
    assert_eq!(alarms1, collected1);
    assert!(fleet.remove(1).is_err());
    assert!(fleet.patient_alarms(1).is_empty());
}

#[test]
fn worker_panic_in_the_panel_stage_surfaces_and_the_pool_survives() {
    use epilepsy_monitor::features::N_FEATURES;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Decision = Σ row — except a marker row (first feature ≥ 900)
    /// panics, standing in for an engine bug tripping on one window
    /// inside the parallel panel fan-out.
    struct TrapEngine;

    impl svm::ClassifierEngine for TrapEngine {
        fn decision(&self, row: &[f64]) -> f64 {
            assert!(row[0] < 900.0, "trap row reached the kernel");
            row.iter().sum()
        }
        fn n_features(&self) -> usize {
            N_FEATURES
        }
        fn info(&self) -> svm::EngineInfo {
            svm::EngineInfo {
                kind: "trap-test",
                n_support_vectors: 1,
                n_features: N_FEATURES,
                d_bits: None,
                a_bits: None,
            }
        }
    }

    let row = |v: f64| {
        let mut r = vec![0.0; N_FEATURES];
        r[0] = v;
        r
    };
    let cfg = StreamConfig::non_overlapping(128.0, 30.0).unwrap();
    let mut fleet = FleetScheduler::new(
        Arc::new(TrapEngine) as SharedEngine,
        seizure_core::fleet::FleetConfig {
            workers: Some(2), // a fleet-owned pool: one worker + caller
            ..seizure_core::fleet::FleetConfig::unbounded(cfg)
        },
    )
    .unwrap();
    for p in 0..3u64 {
        fleet.admit(p).unwrap();
    }
    // 600 rows round-robin → three panels, so the parallel fan-out
    // branch really engages; patient 1 carries the trap row.
    for i in 0..600usize {
        let p = (i % 3) as u64;
        let v = if p == 1 && i / 3 == 57 {
            901.0
        } else {
            i as f64
        };
        fleet.ingest_row(p, Some(&row(v))).unwrap();
    }
    // The worker's panic must surface on the flushing caller…
    let panicked = catch_unwind(AssertUnwindSafe(|| fleet.flush()));
    assert!(panicked.is_err(), "panel-stage panic must propagate");
    // …without corrupting the fleet: the panic unwound before the
    // route-back stage, so every queue is intact. Restarting the
    // poisoned patient clears the trap row, and the fleet's own pool
    // survives to serve the next flush.
    let restarted = fleet.restart(1).unwrap();
    assert_eq!(restarted.discarded_windows, 200);
    let flush = fleet.flush();
    assert_eq!(flush.rows_classified, 400);
    assert_eq!(flush.decisions.len(), 400);
    for d in &flush.decisions {
        assert_ne!(d.patient, 1);
        assert!(d.decision.decision.is_some());
    }
    // The pool keeps serving fresh work, including the restarted slot.
    fleet.ingest_row(1, Some(&row(5.0))).unwrap();
    let flush = fleet.flush();
    assert_eq!(flush.decisions.len(), 1);
    assert_eq!(flush.decisions[0].decision.decision, Some(5.0));
    assert_eq!(fleet.stats().pending_windows, 0);
}

#[test]
fn row_ingest_cohort_report_has_monitored_time() {
    // Regression: a fleet fed exclusively through ingest_row (on-device
    // extraction) passes no samples through the server, but the cohort
    // report must still derive monitored time — from the stride-spaced
    // span of decided windows — so FA/24h stays meaningful.
    let spec = spec();
    let cfg = StreamConfig::non_overlapping(spec.scale.fs(), spec.scale.window_s()).unwrap();
    let fleet_cfg = FleetConfig {
        alarms: Some(AlarmConfig::k_of_n(1, 1)),
        ..FleetConfig::unbounded(cfg)
    };
    let mut fleet = FleetMonitor::from_float_pipeline(pipeline().clone(), fleet_cfg).unwrap();
    fleet.admit(0).unwrap();
    let row = vec![0.0; epilepsy_monitor::features::N_FEATURES];
    for _ in 0..6 {
        fleet.ingest_row(0, Some(&row)).unwrap();
    }
    fleet.flush();
    assert_eq!(fleet.patient_stats(0).unwrap().samples_in, 0);
    // No true seizures: every alarm the constant rows raise is false.
    let truth: BTreeMap<u64, Vec<TruthEvent>> = [(0u64, Vec::new())].into();
    let report = fleet.cohort_report(Some(&truth)).unwrap();
    let events = report.events.expect("ground truth supplied");
    let expected_s = 6.0 * cfg.stride as f64 / cfg.fs;
    assert!((events.monitored_s - expected_s).abs() < 1e-9);
    assert!(
        events.false_alarms_per_24h().is_some(),
        "FA/24h must be reportable on the row-ingest path"
    );
}
