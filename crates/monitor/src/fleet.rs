//! `FleetMonitor` — the facade over fleet-scale session multiplexing.
//!
//! One type to hold at the serving layer: pick an engine backend (float
//! pipeline, quantised engine, or a pipeline persisted to text), choose
//! the fleet configuration (window geometry, alarm stage, backpressure,
//! and — via [`FleetConfig::workers`] — how many executors the staged
//! flush pipeline fans extraction shards and classification panels
//! across; `None` sizes to the machine), then admit patients, feed
//! interleaved chunks and flush batched decisions. Everything underneath
//! ([`seizure_core::fleet`]) guarantees the per-patient decision/alarm
//! streams are bit-identical to solo
//! [`seizure_core::stream::StreamingSession`] runs, for every backend at
//! every worker count.

use seizure_core::alarm::{score_events, AlarmEvent, EventMetrics, EventScoring, TruthEvent};
use seizure_core::clock::TickOutcome;
use seizure_core::engine::{BitConfig, QuantizedEngine};
use seizure_core::error::CoreError;
use seizure_core::fleet::{
    FleetConfig, FleetFlush, FleetScheduler, FleetStats, PatientId, RemovedPatient,
};
use seizure_core::stream::{SharedEngine, StreamStats};
use seizure_core::trained::FloatPipeline;
use std::collections::BTreeMap;
use std::sync::Arc;
use svm::EngineInfo;

use crate::streaming::load_engine;

/// Continuous multi-patient seizure monitor: thousands of concurrent
/// streams, one batched inference path.
///
/// ```no_run
/// use epilepsy_monitor::prelude::*;
/// use epilepsy_monitor::fleet::FleetMonitor;
/// use epilepsy_monitor::core::fleet::FleetConfig;
///
/// let spec = DatasetSpec::new(Scale::Tiny, 42);
/// let matrix = build_feature_matrix(&spec);
/// let pipeline = FloatPipeline::fit(&matrix, &FitConfig::default())?;
/// let cfg = FleetConfig {
///     alarms: Some(AlarmConfig::default()),
///     ..FleetConfig::unbounded(StreamConfig::non_overlapping(
///         spec.scale.fs(),
///         spec.scale.window_s(),
///     )?)
/// };
/// let mut fleet = FleetMonitor::from_float_pipeline(pipeline, cfg)?;
/// for (id, session) in spec.sessions.iter().enumerate() {
///     fleet.admit(id as u64)?;
///     fleet.ingest(id as u64, &session.synthesize().ecg)?;
/// }
/// let flush = fleet.flush(); // one batched kernel call for everyone
/// println!(
///     "{} windows decided, {} alarms",
///     flush.decisions.len(),
///     flush.alarms.len()
/// );
/// # Ok::<(), epilepsy_monitor::core::error::CoreError>(())
/// ```
#[derive(Debug)]
pub struct FleetMonitor {
    fleet: FleetScheduler,
    /// Alarms collected from every flush, per patient, in firing order.
    alarms: BTreeMap<PatientId, Vec<AlarmEvent>>,
}

impl FleetMonitor {
    /// Fleet over any shared [`svm::ClassifierEngine`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid
    /// [`FleetConfig`].
    pub fn new(engine: SharedEngine, cfg: FleetConfig) -> Result<Self, CoreError> {
        Ok(FleetMonitor {
            fleet: FleetScheduler::new(engine, cfg)?,
            alarms: BTreeMap::new(),
        })
    }

    /// Fleet over the float reference pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid
    /// [`FleetConfig`].
    pub fn from_float_pipeline(p: FloatPipeline, cfg: FleetConfig) -> Result<Self, CoreError> {
        FleetMonitor::new(Arc::new(p), cfg)
    }

    /// Fleet over the bit-accurate quantised engine built from `p` at
    /// `bits` — the deployed-accelerator configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the engine cannot be
    /// built or the fleet configuration is invalid.
    pub fn from_quantized(
        p: &FloatPipeline,
        bits: BitConfig,
        cfg: FleetConfig,
    ) -> Result<Self, CoreError> {
        FleetMonitor::new(Arc::new(QuantizedEngine::from_pipeline(p, bits)?), cfg)
    }

    /// Fleet restarted from a pipeline persisted with
    /// [`FloatPipeline::to_text`] — no retraining. With `bits` the
    /// quantised engine is rebuilt on top; without, the float pipeline
    /// classifies directly. Persistence is bit-exact, so the restarted
    /// fleet's decisions are bit-identical to the original's.
    ///
    /// # Errors
    ///
    /// The [`crate::streaming::load_engine`] failure modes plus an
    /// invalid [`FleetConfig`].
    pub fn from_saved_pipeline(
        pipeline_text: &str,
        bits: Option<BitConfig>,
        cfg: FleetConfig,
    ) -> Result<Self, CoreError> {
        FleetMonitor::new(load_engine(pipeline_text, bits)?, cfg)
    }

    /// Admits a new patient stream.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the id is already
    /// admitted.
    pub fn admit(&mut self, patient: PatientId) -> Result<(), CoreError> {
        self.fleet.admit(patient)
    }

    /// Removes a patient, returning the final session accounting (plus
    /// any alarms this monitor had collected for them across flushes).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown patient.
    pub fn remove(
        &mut self,
        patient: PatientId,
    ) -> Result<(RemovedPatient, Vec<AlarmEvent>), CoreError> {
        let mut removed = self.fleet.remove(patient)?;
        let mut collected = self.alarms.remove(&patient).unwrap_or_default();
        collected.append(&mut removed.alarms);
        removed.alarms = Vec::new();
        Ok((removed, collected))
    }

    /// Restarts a patient's session (device reconnect / rollover);
    /// collected alarms for the patient are cleared too.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown patient.
    pub fn restart(&mut self, patient: PatientId) -> Result<RemovedPatient, CoreError> {
        let removed = self.fleet.restart(patient)?;
        self.alarms.remove(&patient);
        Ok(removed)
    }

    /// Ingests one raw ECG chunk for a patient (any length, any
    /// interleaving across patients). Returns the number of windows that
    /// completed and now await [`FleetMonitor::flush`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown patient.
    pub fn ingest(&mut self, patient: PatientId, chunk: &[f64]) -> Result<usize, CoreError> {
        self.fleet.ingest(patient, chunk)
    }

    /// Ingests one pre-extracted feature row (on-device extraction
    /// topology); `None` = the device reported a dropped window.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown patient or a
    /// mis-sized row.
    pub fn ingest_row(&mut self, patient: PatientId, row: Option<&[f64]>) -> Result<(), CoreError> {
        self.fleet.ingest_row(patient, row)
    }

    /// Decides every pending window across the fleet through one batched
    /// kernel call, collecting raised alarms per patient for the cohort
    /// report.
    pub fn flush(&mut self) -> FleetFlush {
        let flush = self.fleet.flush();
        for (patient, alarm) in &flush.alarms {
            self.alarms.entry(*patient).or_default().push(*alarm);
        }
        flush
    }

    /// One serving tick: exactly one [`FleetMonitor::flush`] under the
    /// serving clock's deadline accounting
    /// ([`seizure_core::fleet::FleetScheduler::tick`]) — alarms are
    /// collected for the cohort report the same way. Requires
    /// [`FleetConfig::tick`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the fleet was built
    /// without a serving clock.
    pub fn tick(&mut self) -> Result<(FleetFlush, TickOutcome), CoreError> {
        let (flush, outcome) = self.fleet.tick()?;
        for (patient, alarm) in &flush.alarms {
            self.alarms.entry(*patient).or_default().push(*alarm);
        }
        Ok((flush, outcome))
    }

    /// Runs `n` cadence-paced ticks (wall clocks sleep to the schedule,
    /// virtual clocks jump), collecting alarms from every tick; each
    /// tick's flush and outcome are handed to `on_tick`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the fleet was built
    /// without a serving clock.
    pub fn run_ticks(
        &mut self,
        n: usize,
        mut on_tick: impl FnMut(&FleetFlush, &TickOutcome),
    ) -> Result<(), CoreError> {
        let mut scratch = FleetFlush::default();
        let alarms = &mut self.alarms;
        self.fleet.run_ticks(n, &mut scratch, |flush, outcome| {
            for (patient, alarm) in &flush.alarms {
                alarms.entry(*patient).or_default().push(*alarm);
            }
            on_tick(flush, outcome);
        })
    }

    /// Current serving-clock reading (`None` when caller-driven).
    pub fn clock_now_ns(&self) -> Option<u64> {
        self.fleet.clock_now_ns()
    }

    /// Advances a **virtual** serving clock by `ns` (simulation time
    /// passing); no-op on a wall clock.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the fleet has no
    /// serving clock.
    pub fn advance_clock(&mut self, ns: u64) -> Result<(), CoreError> {
        self.fleet.advance_clock(ns)
    }

    /// Fleet-level counters (pending windows, shed counts, wall-clock
    /// serving throughput).
    pub fn stats(&self) -> FleetStats {
        self.fleet.stats()
    }

    /// Merged per-session stream accounting across admitted patients.
    pub fn stream_stats(&self) -> StreamStats {
        self.fleet.stream_stats()
    }

    /// One patient's session accounting.
    pub fn patient_stats(&self, patient: PatientId) -> Option<StreamStats> {
        self.fleet.patient_stats(patient)
    }

    /// Alarms collected for a patient across flushes (empty slice for
    /// unknown/alarm-free patients).
    pub fn patient_alarms(&self, patient: PatientId) -> &[AlarmEvent] {
        self.alarms.get(&patient).map_or(&[], Vec::as_slice)
    }

    /// Admitted patient ids in ascending order.
    pub fn patients(&self) -> impl Iterator<Item = PatientId> + '_ {
        self.fleet.patients()
    }

    /// Cost metadata of the shared engine backend.
    pub fn engine_info(&self) -> EngineInfo {
        self.fleet.engine_info()
    }

    /// Cohort-wide alarm report over everything flushed so far: alarms
    /// per patient, fleet + merged stream accounting, wall-clock pooled
    /// throughput and — when ground-truth seizure intervals are supplied
    /// per patient — pooled event metrics (event sensitivity, FA/24h,
    /// detection latency). Monitored time per patient is their session's
    /// ingested-sample count over the sampling rate — or, on the
    /// row-ingest path where no samples pass through the server, the
    /// span their decided windows cover
    /// (`(windows − 1) · stride + window_len` samples, whichever is
    /// larger), so FA/24h stays meaningful for the on-device-extraction
    /// topology, including overlapping-window geometries.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `truth` names a patient
    /// that is not admitted.
    pub fn cohort_report(
        &self,
        truth: Option<&BTreeMap<PatientId, Vec<TruthEvent>>>,
    ) -> Result<FleetAlarmReport, CoreError> {
        let stats = self.fleet.stats();
        let stream = self.fleet.stream_stats();
        let fs = self.fleet.config().stream.fs;
        let stride = self.fleet.config().stream.stride;
        let window_len = self.fleet.config().stream.window_len;
        let events = match truth {
            None => None,
            Some(t) => {
                let scoring = EventScoring::for_windows(fs, window_len);
                let mut pooled = EventMetrics::default();
                for (patient, events) in t {
                    let Some(pstats) = self.fleet.patient_stats(*patient) else {
                        return Err(CoreError::InvalidConfig(format!(
                            "ground truth supplied for patient {patient}, who is not admitted"
                        )));
                    };
                    // A row-fed patient's decided windows span
                    // (windows − 1)·stride + window_len samples (not
                    // windows·stride, which under-counts overlapping
                    // geometries).
                    let window_span = if pstats.windows == 0 {
                        0
                    } else {
                        (pstats.windows - 1) * stride as u64 + window_len as u64
                    };
                    let monitored_s = pstats.samples_in.max(window_span) as f64 / fs;
                    pooled.merge(&score_events(
                        self.patient_alarms(*patient),
                        events,
                        monitored_s,
                        &scoring,
                    ));
                }
                Some(pooled)
            }
        };
        Ok(FleetAlarmReport {
            alarms: self.alarms.clone(),
            stats,
            stream,
            events,
        })
    }
}

/// What a fleet has produced so far: per-patient alarms, fleet counters,
/// merged stream accounting and — with ground truth — pooled event
/// metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAlarmReport {
    /// Alarms collected per patient across all flushes, firing order.
    pub alarms: BTreeMap<PatientId, Vec<AlarmEvent>>,
    /// Fleet-level counters (incl. wall-clock serving throughput via
    /// [`FleetStats::wall_windows_per_sec`]).
    pub stats: FleetStats,
    /// Merged per-session accounting; its `windows_per_sec` is
    /// serial-equivalent, not wall-clock — see
    /// [`StreamStats::windows_per_sec`].
    pub stream: StreamStats,
    /// Pooled event metrics; `None` when no ground truth was supplied.
    pub events: Option<EventMetrics>,
}

impl FleetAlarmReport {
    /// Total alarms across the cohort.
    pub fn total_alarms(&self) -> usize {
        self.alarms.values().map(Vec::len).sum()
    }
}
