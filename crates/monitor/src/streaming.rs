//! `StreamingMonitor` — the facade over the streaming inference
//! subsystem.
//!
//! One type to hold at the application layer: pick an engine backend
//! (float pipeline, quantised engine, or a model persisted to text),
//! choose the window geometry, then feed ECG chunks and collect
//! [`WindowDecision`]s. Everything underneath
//! ([`seizure_core::stream`]) guarantees the decisions are bit-identical
//! to the batch pipeline on the same windows, for every backend.

use seizure_core::alarm::{score_events, AlarmConfig, AlarmEvent, EventMetrics, EventScoring};
use seizure_core::engine::{BitConfig, QuantizedEngine};
use seizure_core::error::CoreError;
use seizure_core::stream::{
    run_streams_parallel, run_streams_parallel_alarmed, SharedEngine, StreamConfig, StreamOutcome,
    StreamStats, StreamingSession, WindowDecision,
};
use seizure_core::trained::FloatPipeline;
use std::sync::Arc;
use svm::EngineInfo;

/// Rebuilds a shared engine from pipeline text persisted with
/// [`FloatPipeline::to_text`]: the float pipeline directly, or — with
/// `bits` — the bit-accurate quantised engine on top. Persistence is
/// bit-exact, so a monitor or fleet restarted from the text produces
/// decisions bit-identical to the original's. Shared by
/// [`StreamingMonitor::from_saved_pipeline`] and
/// [`crate::fleet::FleetMonitor::from_saved_pipeline`].
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] (or a wrapped [`svm::SvmError`])
/// for malformed text, a pipeline whose selected features exceed what
/// extraction produces, or a quantised engine that cannot be built.
pub fn load_engine(
    pipeline_text: &str,
    bits: Option<BitConfig>,
) -> Result<SharedEngine, CoreError> {
    let p = FloatPipeline::from_text(pipeline_text)?;
    // `from_text` cannot bound the selected indices (a pipeline does
    // not record its raw input width), but monitors feed 53-feature
    // rows — reject a corrupt file here, at load time, instead of
    // panicking on the first window.
    let n = ecg_features::N_FEATURES;
    if let Some(&bad) = p.feature_indices().iter().find(|&&j| j >= n) {
        return Err(CoreError::InvalidConfig(format!(
            "persisted pipeline selects feature {bad} but extraction produces {n} features"
        )));
    }
    Ok(match bits {
        Some(b) => Arc::new(QuantizedEngine::from_pipeline(&p, b)?),
        None => Arc::new(p),
    })
}

/// Continuous seizure monitor over one patient's ECG stream.
///
/// ```no_run
/// use epilepsy_monitor::prelude::*;
/// use epilepsy_monitor::streaming::StreamingMonitor;
///
/// let spec = DatasetSpec::new(Scale::Tiny, 42);
/// let matrix = build_feature_matrix(&spec);
/// let pipeline = FloatPipeline::fit(&matrix, &FitConfig::default())?;
/// let mut monitor = StreamingMonitor::from_float_pipeline(
///     pipeline,
///     StreamConfig::non_overlapping(spec.scale.fs(), spec.scale.window_s())?,
/// )?;
/// let session = spec.sessions[0].synthesize();
/// for chunk in session.chunks(128) {
///     for decision in monitor.push_samples(chunk) {
///         if decision.is_seizure {
///             println!("seizure at window {}", decision.window_index);
///         }
///     }
/// }
/// # Ok::<(), epilepsy_monitor::core::error::CoreError>(())
/// ```
#[derive(Debug)]
pub struct StreamingMonitor {
    session: StreamingSession,
}

impl StreamingMonitor {
    /// Monitor over any shared [`svm::ClassifierEngine`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid stream
    /// configuration.
    pub fn new(engine: SharedEngine, cfg: StreamConfig) -> Result<Self, CoreError> {
        Ok(StreamingMonitor {
            session: StreamingSession::new(engine, cfg)?,
        })
    }

    /// Monitor over the float reference pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid stream
    /// configuration.
    pub fn from_float_pipeline(p: FloatPipeline, cfg: StreamConfig) -> Result<Self, CoreError> {
        StreamingMonitor::new(Arc::new(p), cfg)
    }

    /// Monitor over the bit-accurate quantised engine built from `p` at
    /// `bits` — the deployed-accelerator configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the engine cannot be
    /// built (non-quadratic kernel, bad widths) or the stream
    /// configuration is invalid.
    pub fn from_quantized(
        p: &FloatPipeline,
        bits: BitConfig,
        cfg: StreamConfig,
    ) -> Result<Self, CoreError> {
        StreamingMonitor::new(Arc::new(QuantizedEngine::from_pipeline(p, bits)?), cfg)
    }

    /// Monitor started from a pipeline persisted with
    /// [`FloatPipeline::to_text`] — no retraining. With `bits` the
    /// quantised engine is rebuilt on top; without, the float pipeline
    /// classifies directly. Persistence is bit-exact, so the restarted
    /// monitor's decisions are bit-identical to the original's.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] (or a wrapped
    /// [`svm::SvmError`]) for malformed text, plus the
    /// [`StreamingMonitor::from_quantized`] failure modes.
    pub fn from_saved_pipeline(
        pipeline_text: &str,
        bits: Option<BitConfig>,
        cfg: StreamConfig,
    ) -> Result<Self, CoreError> {
        StreamingMonitor::new(load_engine(pipeline_text, bits)?, cfg)
    }

    /// Enables (or reconfigures) the online alarm stage: completed
    /// windows also feed a k-of-n alarm state machine, and raised alarms
    /// surface through [`StreamingMonitor::take_alarms`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid
    /// [`AlarmConfig`].
    pub fn enable_alarms(&mut self, alarm_cfg: AlarmConfig) -> Result<(), CoreError> {
        self.session.enable_alarms(alarm_cfg)
    }

    /// Alarms raised since the last call, in firing order (always empty
    /// while the alarm stage is disabled).
    pub fn take_alarms(&mut self) -> Vec<AlarmEvent> {
        self.session.take_alarms()
    }

    /// Ingests one ECG chunk of any length; returns the decisions of the
    /// windows that completed inside it.
    pub fn push_samples(&mut self, chunk: &[f64]) -> Vec<WindowDecision> {
        self.session.push_samples(chunk)
    }

    /// Zero-allocation twin of [`StreamingMonitor::push_samples`].
    pub fn push_samples_into(&mut self, chunk: &[f64], out: &mut Vec<WindowDecision>) {
        self.session.push_samples_into(chunk, out);
    }

    /// Windowing configuration.
    pub fn config(&self) -> StreamConfig {
        self.session.config()
    }

    /// Cost metadata of the engine backend.
    pub fn engine_info(&self) -> EngineInfo {
        self.session.engine_info()
    }

    /// Per-window latency/throughput accounting so far.
    pub fn stats(&self) -> StreamStats {
        self.session.stats()
    }

    /// Runs a whole cohort of patient streams concurrently over one
    /// shared engine (fan-out on `seizure_core::parallel::par_map`),
    /// feeding each stream in `chunk_len`-sample chunks. Results come
    /// back in input order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid configuration
    /// or `chunk_len == 0`.
    pub fn monitor_cohort(
        engine: &SharedEngine,
        cfg: StreamConfig,
        streams: &[Vec<f64>],
        chunk_len: usize,
    ) -> Result<Vec<StreamOutcome>, CoreError> {
        run_streams_parallel(engine, cfg, streams, chunk_len)
    }

    /// [`StreamingMonitor::monitor_cohort`] with a per-stream alarm
    /// stage: every patient stream folds its decisions through its own
    /// k-of-n alarm state machine at `alarm_cfg`, and the report carries
    /// the raised alarms plus, when ground-truth seizure intervals are
    /// supplied, pooled event metrics (event sensitivity, FA/24h,
    /// detection latency).
    ///
    /// `truth` pairs each stream with its ground-truth events (from
    /// [`seizure_core::alarm::truth_events`]); pass `None` for an
    /// unannotated live cohort — the report then counts alarms without
    /// scoring them.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid configuration,
    /// an invalid `alarm_cfg`, `chunk_len == 0`, or a `truth` slice whose
    /// length does not match `streams`.
    pub fn monitor_cohort_alarms(
        engine: &SharedEngine,
        cfg: StreamConfig,
        alarm_cfg: AlarmConfig,
        streams: &[Vec<f64>],
        chunk_len: usize,
        truth: Option<&[Vec<seizure_core::alarm::TruthEvent>]>,
    ) -> Result<CohortAlarmReport, CoreError> {
        if let Some(t) = truth {
            if t.len() != streams.len() {
                return Err(CoreError::InvalidConfig(format!(
                    "{} truth lists for {} streams",
                    t.len(),
                    streams.len()
                )));
            }
        }
        let t0 = std::time::Instant::now();
        let outcomes =
            run_streams_parallel_alarmed(engine, cfg, Some(alarm_cfg), streams, chunk_len)?;
        let wall_ns = t0.elapsed().as_nanos();
        let mut stats = StreamStats::default();
        for o in &outcomes {
            stats.merge(&o.stats);
        }
        let events = truth.map(|t| {
            let scoring = EventScoring::for_windows(cfg.fs, cfg.window_len);
            let mut pooled = EventMetrics::default();
            for (outcome, events) in outcomes.iter().zip(t.iter()) {
                let monitored_s = outcome.stats.samples_in as f64 / cfg.fs;
                pooled.merge(&score_events(
                    &outcome.alarms,
                    events,
                    monitored_s,
                    &scoring,
                ));
            }
            pooled
        });
        Ok(CohortAlarmReport {
            outcomes,
            stats,
            events,
            wall_ns,
        })
    }
}

/// What a cohort-wide alarmed monitoring run produced: per-stream
/// outcomes (decisions + alarms), merged stream accounting and — when
/// ground truth was supplied — pooled event metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortAlarmReport {
    /// Per-stream outcomes in input order.
    pub outcomes: Vec<StreamOutcome>,
    /// Merged latency/throughput/alarm accounting over the cohort.
    /// Its `windows_per_sec` is the **serial-equivalent** rate (summed
    /// per-window latencies treat the cohort's parallel work as serial);
    /// use [`CohortAlarmReport::pooled_windows_per_sec`] for the
    /// wall-clock cohort throughput.
    pub stats: StreamStats,
    /// Pooled event metrics; `None` when no ground truth was supplied.
    pub events: Option<EventMetrics>,
    /// Wall-clock nanoseconds the whole cohort run took.
    pub wall_ns: u128,
}

impl CohortAlarmReport {
    /// Total alarms raised across the cohort.
    pub fn total_alarms(&self) -> u64 {
        self.stats.alarms
    }

    /// Wall-clock cohort throughput: windows completed across all
    /// streams per second of real time — the honest fleet-level rate
    /// that summed per-window latencies cannot provide.
    pub fn pooled_windows_per_sec(&self) -> f64 {
        seizure_core::stream::pooled_windows_per_sec(self.stats.windows, self.wall_ns)
    }
}
