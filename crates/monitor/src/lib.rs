#![forbid(unsafe_code)]
//! # epilepsy-monitor — facade crate
//!
//! One-stop re-export of the full reproduction stack for *Tailoring SVM
//! Inference for Resource-Efficient ECG-Based Epilepsy Monitors*
//! (Ferretti et al., DATE 2019):
//!
//! * [`dsp`] — signal-processing substrate ([`biodsp`]),
//! * [`sim`] — synthetic clinical cohort ([`ecg_sim`]),
//! * [`features`] — the 53-feature extraction of ref \[6\]
//!   ([`ecg_features`]),
//! * [`ml`] — from-scratch SMO support vector machine ([`svm`]),
//! * [`fx`] — fixed-point quantisation ([`fixedpoint`]),
//! * [`hw`] — 40 nm accelerator cost model ([`hwmodel`]),
//! * [`core`] — the paper's contribution: the tailored inference engine
//!   and its three approximation passes ([`seizure_core`]),
//! * [`streaming`] — the continuous-monitoring facade
//!   ([`streaming::StreamingMonitor`]): chunked ECG in, per-window
//!   decisions out, bit-identical to the batch path for every
//!   [`svm::ClassifierEngine`] backend,
//! * [`fleet`] — the fleet-serving facade ([`fleet::FleetMonitor`]):
//!   thousands of concurrent patient streams multiplexed over one
//!   engine, ready windows micro-batched across patients into single
//!   batch-kernel calls, with cohort alarm reports.
//!
//! ## Quick start
//!
//! ```no_run
//! use epilepsy_monitor::prelude::*;
//!
//! // Generate a small synthetic cohort and evaluate the float detector.
//! let spec = DatasetSpec::new(Scale::Tiny, 42);
//! let matrix = build_feature_matrix(&spec);
//! let result = loso_evaluate(&matrix, &FitConfig::default());
//! println!("GM = {:.1}%", 100.0 * result.mean_gm);
//! ```
//!
//! See `examples/` for end-to-end scenarios (quick start, on-node patient
//! monitoring, design-space exploration, hardware co-design).

pub use biodsp as dsp;
pub use ecg_features as features;
pub use ecg_sim as sim;
pub use fixedpoint as fx;
pub use hwmodel as hw;
pub use seizure_core as core;
pub use svm as ml;

pub mod fleet;
pub mod streaming;

/// Most-used items in one import.
pub mod prelude {
    pub use crate::fleet::{FleetAlarmReport, FleetMonitor};
    pub use crate::streaming::{CohortAlarmReport, StreamingMonitor};
    pub use ecg_features::{DenseMatrix, FeatureMatrix};
    pub use ecg_sim::dataset::{DatasetSpec, Scale};
    pub use hwmodel::pipeline::AcceleratorConfig;
    pub use hwmodel::TechParams;
    pub use seizure_core::alarm::{AlarmConfig, AlarmEvent, EventMetrics};
    pub use seizure_core::assemble::build_feature_matrix;
    pub use seizure_core::config::FitConfig;
    pub use seizure_core::engine::{BitConfig, QuantizedEngine};
    pub use seizure_core::eval::{loso_evaluate, loso_evaluate_events, loso_evaluate_serial};
    pub use seizure_core::fleet::{FleetConfig, FleetScheduler, FleetStats, OverloadPolicy};
    pub use seizure_core::stream::{StreamConfig, StreamStats, WindowDecision};
    pub use seizure_core::trained::FloatPipeline;
    pub use seizure_core::ExtractPrecision;
    pub use svm::{decision_is_seizure, ClassifierEngine, Kernel};
}
