//! Quick start: synthesise a small cohort, train the paper's quadratic
//! SVM detector, quantise it to the 9/15-bit tailored engine and compare
//! quality and hardware cost against the 64-bit baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use epilepsy_monitor::prelude::*;
use seizure_core::eval::loso_evaluate_with;

fn main() {
    // 1) Synthetic cohort (stand-in for the paper's 7-patient clinical
    //    dataset) and the 53-feature matrix.
    let spec = DatasetSpec::new(Scale::Tiny, 42);
    println!(
        "cohort: {} sessions, {:.1} h, {} seizures",
        spec.sessions.len(),
        spec.total_hours(),
        spec.n_seizures()
    );
    let matrix = build_feature_matrix(&spec);
    println!(
        "feature matrix: {} windows x {} features ({} seizure windows)",
        matrix.n_rows(),
        matrix.n_cols(),
        matrix.n_positive()
    );

    // 2) Float reference detector, leave-one-session-out.
    let float_result = loso_evaluate(&matrix, &FitConfig::default());
    println!(
        "float quadratic SVM: Se {:.1}%  Sp {:.1}%  GM {:.1}%  (mean {:.0} SVs)",
        100.0 * float_result.mean_se,
        100.0 * float_result.mean_sp,
        100.0 * float_result.mean_gm,
        float_result.mean_n_sv
    );

    // 3) The tailored 9/15-bit integer engine, evaluated bit-accurately.
    let bits = BitConfig::paper_choice();
    let quant_result = loso_evaluate_with(&matrix, |train| {
        let p = FloatPipeline::fit(train, &FitConfig::default())?;
        let n_sv = p.model().n_support_vectors();
        let engine = QuantizedEngine::from_pipeline(&p, bits)?;
        Ok((
            move |rows: &DenseMatrix<f64>| engine.classify_batch(rows),
            n_sv,
        ))
    });
    println!(
        "9/15-bit engine:     Se {:.1}%  Sp {:.1}%  GM {:.1}%",
        100.0 * quant_result.mean_se,
        100.0 * quant_result.mean_sp,
        100.0 * quant_result.mean_gm
    );

    // 4) Hardware cost of both designs (40 nm model).
    let tech = TechParams::default();
    let n_sv = float_result.mean_n_sv.round() as usize;
    let base = AcceleratorConfig::uniform(n_sv, matrix.n_cols(), 64).cost(&tech);
    let opt = AcceleratorConfig::new(n_sv, matrix.n_cols(), 9, 15).cost(&tech);
    println!(
        "64-bit baseline: {:.0} nJ/classification, {:.3} mm2",
        base.energy_nj, base.area_mm2
    );
    println!(
        "9/15-bit design: {:.0} nJ/classification, {:.3} mm2  ({:.1}x energy, {:.1}x area)",
        opt.energy_nj,
        opt.area_mm2,
        base.energy_nj / opt.energy_nj,
        base.area_mm2 / opt.area_mm2
    );
}
