//! Design-space exploration: sweep the three approximation axes of the
//! paper on a synthetic cohort and print the quality/cost frontier, then
//! pick the knee configuration automatically.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use epilepsy_monitor::prelude::*;
use hwmodel::TechParams;
use seizure_core::bitwidth::bit_grid_evaluate;
use seizure_core::combine::{combined_sequence, CombineParams};
use seizure_core::explore::{feature_sweep, sv_budget_sweep};

fn main() {
    let spec = DatasetSpec::new(Scale::Tiny, 42);
    let matrix = build_feature_matrix(&spec);
    let tech = TechParams::default();
    let cfg = FitConfig::default();

    println!("== axis 1: feature-set size ==");
    for p in feature_sweep(&matrix, &[53, 30, 15, 8], &cfg, &tech) {
        match p.cost {
            Some(c) => println!(
                "  {:>2} features: GM {:>5.1}%  {:>6.0} nJ  {:.3} mm2",
                p.param,
                100.0 * p.result.mean_gm,
                c.energy_nj,
                c.area_mm2
            ),
            None => println!("  {:>2} features: skipped (no trainable fold)", p.param),
        }
    }

    println!("== axis 2: support-vector budget ==");
    let free = loso_evaluate(&matrix, &cfg);
    let full = (free.mean_n_sv.round() as usize).max(6);
    for p in sv_budget_sweep(&matrix, &[full, full / 2, full / 4], &cfg, &tech) {
        match p.cost {
            Some(c) => println!(
                "  {:>3} SVs: GM {:>5.1}%  {:>6.0} nJ  {:.3} mm2",
                p.param,
                100.0 * p.result.mean_gm,
                c.energy_nj,
                c.area_mm2
            ),
            None => println!("  {:>3} SVs: skipped (no trainable fold)", p.param),
        }
    }

    println!("== axis 3: bit widths (A_bits = 15) ==");
    for p in bit_grid_evaluate(&matrix, &cfg, &[6, 9, 12, 16], &[15], &tech) {
        println!(
            "  D={:>2}: GM {:>5.1}%  {:>6.0} nJ  {:.4} mm2",
            p.d_bits,
            100.0 * p.gm,
            p.energy_nj,
            p.area_mm2
        );
    }

    println!("== combined (knee auto-selection) ==");
    let params = CombineParams::auto(&matrix, &cfg, 0.03);
    println!(
        "  selected: {} features, {} SVs, {}/{} bits",
        params.n_features, params.sv_budget, params.d_bits, params.a_bits
    );
    let stages = combined_sequence(&matrix, &cfg, &params, &tech);
    let base = &stages[0];
    for s in &stages {
        let (gm, e, a) = s.normalized_to(base);
        println!(
            "  {:<28} GM {:>5.1}%  energy x{:.2}  area x{:.2}",
            s.name,
            100.0 * s.gm,
            1.0 / e.max(1e-12),
            1.0 / a.max(1e-12)
        );
        let _ = gm;
    }
}
