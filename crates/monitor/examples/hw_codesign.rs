//! Hardware co-design: explore how the Fig 2 accelerator's energy and
//! area decompose across datapath and memory, and how each optimisation
//! axis moves the breakdown — without touching any training data.
//!
//! Run with: `cargo run --release --example hw_codesign`

use hwmodel::pipeline::AcceleratorConfig;
use hwmodel::sram::SramMacro;
use hwmodel::TechParams;

fn report(name: &str, hw: AcceleratorConfig, tech: &TechParams) {
    let c = hw.cost(tech);
    println!("{name}");
    println!(
        "  widths: D={} A={} | acc1 {}b -> kernel {}b -> acc2 {}b | {} cycles",
        hw.d_bits,
        hw.a_bits,
        hw.acc1_bits(),
        hw.kernel_out_bits(),
        hw.acc2_bits(),
        hw.cycles()
    );
    println!(
        "  energy {:>7.0} nJ  (mac1 {:>5.0} | sq {:>4.1} | mac2 {:>4.1} | sram {:>6.0} | ctrl+regs {:>6.0} | leak {:>4.1})",
        c.energy_nj,
        c.energy_mac1_nj,
        c.energy_square_nj,
        c.energy_mac2_nj,
        c.energy_sram_nj,
        c.energy_ctrl_nj,
        c.energy_leak_nj
    );
    println!(
        "  area   {:>7.3} mm2 (logic {:.4} | sram {:.4})",
        c.area_mm2, c.area_logic_mm2, c.area_sram_mm2
    );
}

fn main() {
    let tech = TechParams::default();
    println!("40 nm accelerator cost model — per-classification breakdown\n");

    report(
        "baseline: 120 SVs x 53 features, 64-bit",
        AcceleratorConfig::uniform(120, 53, 64),
        &tech,
    );
    report(
        "feature reduction: 120 x 30, 64-bit",
        AcceleratorConfig::uniform(120, 30, 64),
        &tech,
    );
    report(
        "+ SV budget: 68 x 30, 64-bit",
        AcceleratorConfig::uniform(68, 30, 64),
        &tech,
    );
    report(
        "+ bit tailoring: 68 x 30, 9/15-bit",
        AcceleratorConfig::new(68, 30, 9, 15),
        &tech,
    );

    // Memory scaling study: the SV memory dominates the baseline area.
    println!("\nSV memory macro scaling (words x bits -> read energy, area):");
    for (words, bits) in [(6360usize, 64u32), (6360, 9), (2040, 9), (510, 9)] {
        let m = SramMacro {
            words,
            word_bits: bits,
        };
        println!(
            "  {:>5} x {:>2}b = {:>7.1} kbit: {:>5.1} pJ/read, {:.4} mm2, {:.2} uW leak",
            words,
            bits,
            m.capacity_kbit(),
            m.read_energy_pj(&tech),
            m.area_mm2(&tech),
            m.leakage_w(&tech) * 1e6
        );
    }

    // Clock sensitivity: leakage integrates over latency.
    println!("\nclock sensitivity of the tailored design:");
    for mhz in [1.0, 10.0, 100.0] {
        let t = TechParams {
            clock_hz: mhz * 1e6,
            ..tech
        };
        let c = AcceleratorConfig::new(68, 30, 9, 15).cost(&t);
        println!(
            "  {:>5.0} MHz: {:>6.2} ms latency, {:>5.1} nJ leakage of {:>5.0} nJ total",
            mhz,
            c.latency_s * 1e3,
            c.energy_leak_nj,
            c.energy_nj
        );
    }
}
