//! On-node patient monitoring scenario: deploy a trained, quantised
//! detector on a stream of incoming 40-second ECG windows from a new
//! recording session and raise alarms window by window, exactly as the
//! WBSN of the paper's Fig 1 would.
//!
//! Run with: `cargo run --release --example patient_monitor`

use ecg_features::extract::WindowExtractor;
use epilepsy_monitor::prelude::*;

fn main() {
    // Train on all but the final session of a small synthetic cohort —
    // the held-out session plays the role of the live patient.
    let spec = DatasetSpec::new(Scale::Tiny, 7);
    let matrix = build_feature_matrix(&spec);
    let live_session = *matrix.session_ids.iter().max().expect("non-empty dataset");
    let (train, _) = matrix.split_by_session(live_session);

    let pipeline = FloatPipeline::fit(&train, &FitConfig::default())
        .expect("training on the retrospective recordings");
    let engine = QuantizedEngine::from_pipeline(&pipeline, BitConfig::paper_choice())
        .expect("quantising the detector");
    let hw = engine.accelerator_config().cost(&TechParams::default());
    println!(
        "deployed detector: {} SVs x {} features at 9/15 bits",
        engine.n_support_vectors(),
        engine.n_features()
    );
    println!(
        "per-classification budget: {:.0} nJ, {:.2} ms at 10 MHz, {:.3} mm2 of silicon\n",
        hw.energy_nj,
        hw.latency_s * 1e3,
        hw.area_mm2
    );

    // Stream the live session window by window.
    let live_spec = spec
        .sessions
        .iter()
        .find(|s| s.session_index == live_session)
        .expect("held-out session exists");
    let recording = live_spec.synthesize();
    let extractor = WindowExtractor::new(recording.fs);
    let window_s = spec.scale.window_s();

    let mut alarms = 0usize;
    let mut missed = 0usize;
    let mut false_alarms = 0usize;
    println!("t [s]   truth    detector");
    for label in recording.window_labels(window_s) {
        let Ok(features) = extractor.extract(recording.window_samples(&label)) else {
            println!("{:>5.0}   (window dropped: too few beats)", label.start_s);
            continue;
        };
        let detected = engine.classify(&features) > 0.0;
        let truth = label.is_seizure;
        let marker = match (truth, detected) {
            (true, true) => "SEIZURE  ALARM",
            (true, false) => "SEIZURE  (missed)",
            (false, true) => "-        ALARM (false)",
            (false, false) => "-        -",
        };
        println!("{:>5.0}   {marker}", label.start_s);
        match (truth, detected) {
            (true, true) => alarms += 1,
            (true, false) => missed += 1,
            (false, true) => false_alarms += 1,
            _ => {}
        }
    }
    println!(
        "\nsession summary: {alarms} correct alarms, {missed} missed seizure windows, {false_alarms} false alarms"
    );
    // Energy for the whole session at one classification per window:
    let n_windows = (recording.duration_s() / window_s) as u64;
    println!(
        "inference energy for the session: {:.1} uJ ({} windows)",
        n_windows as f64 * hw.energy_nj / 1e3,
        n_windows
    );
}
