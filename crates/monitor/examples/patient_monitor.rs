//! On-node patient monitoring scenario: deploy a trained, quantised
//! detector on a stream of incoming 40-second ECG windows from a new
//! recording session and raise alarms window by window, exactly as the
//! WBSN of the paper's Fig 1 would.
//!
//! Run with: `cargo run --release --example patient_monitor`

use ecg_features::extract::WindowExtractor;
use epilepsy_monitor::prelude::*;

fn main() {
    // Train on all but the final session of a small synthetic cohort —
    // the held-out session plays the role of the live patient.
    let spec = DatasetSpec::new(Scale::Tiny, 7);
    let matrix = build_feature_matrix(&spec);
    let live_session = *matrix.session_ids.iter().max().expect("non-empty dataset");
    let (train, _) = matrix.split_by_session(live_session);

    let pipeline = FloatPipeline::fit(&train, &FitConfig::default())
        .expect("training on the retrospective recordings");
    let engine = QuantizedEngine::from_pipeline(&pipeline, BitConfig::paper_choice())
        .expect("quantising the detector");
    let hw = engine.accelerator_config().cost(&TechParams::default());
    println!(
        "deployed detector: {} SVs x {} features at 9/15 bits",
        engine.n_support_vectors(),
        engine.n_features()
    );
    println!(
        "per-classification budget: {:.0} nJ, {:.2} ms at 10 MHz, {:.3} mm2 of silicon\n",
        hw.energy_nj,
        hw.latency_s * 1e3,
        hw.area_mm2
    );

    // Stream the live session window by window.
    let live_spec = spec
        .sessions
        .iter()
        .find(|s| s.session_index == live_session)
        .expect("held-out session exists");
    let recording = live_spec.synthesize();
    let extractor = WindowExtractor::new(recording.fs);
    let window_s = spec.scale.window_s();

    let labels = recording.window_labels(window_s);
    let window_len = labels.first().expect("session holds windows").len_samples;
    let mut alarms = 0usize;
    let mut missed = 0usize;
    let mut false_alarms = 0usize;
    let mut decisions: Vec<Option<f64>> = Vec::new();
    println!("t [s]   truth    detector");
    for label in &labels {
        let Ok(features) = extractor.extract(recording.window_samples(label)) else {
            println!("{:>5.0}   (window dropped: too few beats)", label.start_s);
            decisions.push(None);
            continue;
        };
        let decision = engine.decision_value(&features);
        decisions.push(Some(decision));
        let detected = decision_is_seizure(decision);
        let truth = label.is_seizure;
        let marker = match (truth, detected) {
            (true, true) => "SEIZURE  ALARM",
            (true, false) => "SEIZURE  (missed)",
            (false, true) => "-        ALARM (false)",
            (false, false) => "-        -",
        };
        println!("{:>5.0}   {marker}", label.start_s);
        match (truth, detected) {
            (true, true) => alarms += 1,
            (true, false) => missed += 1,
            (false, true) => false_alarms += 1,
            _ => {}
        }
    }
    println!(
        "\nsession summary: {alarms} correct alarms, {missed} missed seizure windows, {false_alarms} false alarms"
    );

    // Event-level view: fold the window decisions through the k-of-n
    // alarm state machine and score against the annotated seizures.
    use epilepsy_monitor::core::alarm;
    let events = alarm::AlarmStateMachine::scan(AlarmConfig::k_of_n(1, 2), &decisions, window_len)
        .expect("valid alarm operating point");
    let metrics = alarm::score_events(
        &events,
        &alarm::truth_events(&recording.seizures),
        recording.duration_s(),
        &alarm::EventScoring::for_windows(recording.fs, window_len),
    );
    println!(
        "event level (1-of-2 voting): {}/{} seizures detected, {:.1} false alarms per 24 h{}",
        metrics.detected,
        metrics.n_events,
        metrics.false_alarms_per_24h().unwrap_or(0.0),
        metrics
            .median_latency_s()
            .map(|l| format!(", median latency {l:.0} s"))
            .unwrap_or_default()
    );
    // Energy for the whole session at one classification per window:
    let n_windows = (recording.duration_s() / window_s) as u64;
    println!(
        "inference energy for the session: {:.1} uJ ({} windows)",
        n_windows as f64 * hw.energy_nj / 1e3,
        n_windows
    );
}
