#![forbid(unsafe_code)]
//! Shared harness for the paper-regeneration binaries.
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --scale tiny|lite|paper   dataset preset (default: lite)
//! --seed N                  master seed (default: 42)
//! --csv DIR                 also dump CSV files into DIR
//! --workers N               flush executors for fleet binaries
//!                           (default: size to the machine)
//! --tick-ms N               serving-clock cadence for the fleet tick
//!                           scenario (fleet_sim; default 5)
//! --overload X              offered load as a multiple of per-tick
//!                           capacity in the tick scenario (default 2.0)
//! ```

use ecg_sim::dataset::{DatasetSpec, Scale};
use seizure_core::assemble::{build_feature_matrix_with_stats, AssembleStats};
use std::io::Write as _;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Dataset preset.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Optional CSV output directory.
    pub csv_dir: Option<String>,
    /// Flush executors for the fleet binaries
    /// ([`seizure_core::fleet::FleetConfig::workers`]); `None` sizes to
    /// the machine. Ignored by binaries without a fleet stage.
    pub workers: Option<usize>,
    /// Serving-clock cadence in milliseconds for the fleet tick
    /// scenario ([`seizure_core::clock::TickConfig`]); `None` keeps the
    /// binary's default. Ignored by binaries without a tick stage.
    pub tick_ms: Option<u64>,
    /// Offered load for the tick scenario as a multiple of per-tick
    /// classification capacity (e.g. `2.0` = twice what one tick can
    /// decide); `None` keeps the binary's default.
    pub overload: Option<f64>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            scale: Scale::Lite,
            seed: 42,
            csv_dir: None,
            workers: None,
            tick_ms: None,
            overload: None,
        }
    }
}

impl RunConfig {
    /// Parses `std::env::args()`-style arguments (the first element is the
    /// program name and is skipped). Unknown flags abort with a message.
    ///
    /// # Panics
    ///
    /// Panics on malformed arguments — these are CLI entry points, so a
    /// loud failure with usage text is the desired behaviour.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> RunConfig {
        let mut cfg = RunConfig::default();
        let mut it = args.into_iter().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    cfg.scale = match v.as_str() {
                        "tiny" => Scale::Tiny,
                        "lite" => Scale::Lite,
                        "paper" => Scale::Paper,
                        other => panic!("unknown scale `{other}` (tiny|lite|paper)"),
                    };
                }
                "--seed" => {
                    cfg.seed = it
                        .next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed must be an integer");
                }
                "--csv" => {
                    cfg.csv_dir = Some(it.next().expect("--csv needs a directory"));
                }
                "--workers" => {
                    let n: usize = it
                        .next()
                        .expect("--workers needs a value")
                        .parse()
                        .expect("--workers must be an integer");
                    assert!(
                        n >= 1,
                        "--workers must be >= 1 (omit to size to the machine)"
                    );
                    cfg.workers = Some(n);
                }
                "--tick-ms" => {
                    let n: u64 = it
                        .next()
                        .expect("--tick-ms needs a value")
                        .parse()
                        .expect("--tick-ms must be an integer");
                    assert!(n >= 1, "--tick-ms must be >= 1");
                    cfg.tick_ms = Some(n);
                }
                "--overload" => {
                    let x: f64 = it
                        .next()
                        .expect("--overload needs a value")
                        .parse()
                        .expect("--overload must be a number");
                    assert!(
                        x.is_finite() && x > 0.0,
                        "--overload must be a positive finite multiple of capacity"
                    );
                    cfg.overload = Some(x);
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale tiny|lite|paper  --seed N  --csv DIR  --workers N  \
                         --tick-ms N  --overload X"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag `{other}`"),
            }
        }
        cfg
    }

    /// Builds (and reports on) the feature dataset for this run.
    pub fn build_dataset(&self) -> (ecg_features::FeatureMatrix, AssembleStats) {
        let spec = DatasetSpec::new(self.scale, self.seed);
        eprintln!(
            "dataset: {:?}, {} sessions, {:.1} h, {} seizures (seed {})",
            self.scale,
            spec.sessions.len(),
            spec.total_hours(),
            spec.n_seizures(),
            self.seed
        );
        let t0 = std::time::Instant::now();
        let (m, stats) = build_feature_matrix_with_stats(&spec);
        eprintln!(
            "extracted {} windows ({} positive, {} dropped) in {:.1}s",
            m.n_rows(),
            stats.positives,
            stats.windows_dropped,
            t0.elapsed().as_secs_f64()
        );
        (m, stats)
    }
}

/// Renders an ASCII table with aligned columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut width: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (j, cell) in r.iter().enumerate().take(ncol) {
            width[j] = width[j].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String| {
        for w in &width {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    line(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&width) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    line(&mut out);
    for r in rows {
        out.push('|');
        for (c, w) in r.iter().zip(&width) {
            out.push_str(&format!(" {c:<w$} |"));
        }
        out.push('\n');
    }
    line(&mut out);
    out
}

/// Writes a CSV file (headers + rows) into `dir/name.csv`, creating the
/// directory if necessary. I/O errors abort: these are experiment dumps.
///
/// # Panics
///
/// Panics on I/O failure.
pub fn write_csv(dir: &str, name: &str, headers: &[&str], rows: &[Vec<String>]) {
    std::fs::create_dir_all(dir).expect("create csv dir");
    let path = format!("{dir}/{name}.csv");
    let mut f = std::fs::File::create(&path).expect("create csv file");
    writeln!(f, "{}", headers.join(",")).expect("write csv header");
    for r in rows {
        writeln!(f, "{}", r.join(",")).expect("write csv row");
    }
    eprintln!("wrote {path}");
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else {
        format!("{:.1}", 100.0 * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        std::iter::once("prog".to_string())
            .chain(s.iter().map(|v| v.to_string()))
            .collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let d = RunConfig::parse(args(&[]));
        assert_eq!(d, RunConfig::default());
        assert_eq!(d.workers, None);
        let c = RunConfig::parse(args(&[
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--csv",
            "/tmp/x",
            "--workers",
            "2",
            "--tick-ms",
            "3",
            "--overload",
            "2.5",
        ]));
        assert_eq!(c.scale, Scale::Tiny);
        assert_eq!(c.seed, 7);
        assert_eq!(c.csv_dir.as_deref(), Some("/tmp/x"));
        assert_eq!(c.workers, Some(2));
        assert_eq!(c.tick_ms, Some(3));
        assert_eq!(c.overload, Some(2.5));
    }

    #[test]
    #[should_panic(expected = "--tick-ms must be >= 1")]
    fn parse_rejects_zero_tick() {
        let _ = RunConfig::parse(args(&["--tick-ms", "0"]));
    }

    #[test]
    #[should_panic(expected = "--overload must be a positive")]
    fn parse_rejects_nonpositive_overload() {
        let _ = RunConfig::parse(args(&["--overload", "0"]));
    }

    #[test]
    #[should_panic(expected = "--workers must be >= 1")]
    fn parse_rejects_zero_workers() {
        let _ = RunConfig::parse(args(&["--workers", "0"]));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn parse_rejects_unknown() {
        let _ = RunConfig::parse(args(&["--bogus"]));
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn parse_rejects_bad_scale() {
        let _ = RunConfig::parse(args(&["--scale", "huge"]));
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["Kernel", "GM"],
            &[
                vec!["Linear".into(), "72.9".into()],
                vec!["Quadratic".into(), "86.8".into()],
            ],
        );
        assert!(t.contains("| Kernel    | GM   |"));
        assert!(t.contains("| Quadratic | 86.8 |"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.868), "86.8");
        assert_eq!(pct(f64::NAN), "n/a");
    }
}
