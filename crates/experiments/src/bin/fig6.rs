//! Fig 6: performance/requirements exploration over the data width
//! (`D_bits`) × coefficient width (`A_bits`) grid, bit-accurate
//! quantised inference with the paper's 10+10 LSB truncations.

use experiments::{pct, render_table, write_csv, RunConfig};
use hwmodel::TechParams;
use seizure_core::bitwidth::bit_grid_evaluate;
use seizure_core::config::FitConfig;

fn main() {
    let cfg = RunConfig::parse(std::env::args());
    let (matrix, _) = cfg.build_dataset();
    let tech = TechParams::default();

    let d_values: Vec<u32> = (7..=17).collect();
    let a_values: Vec<u32> = (8..=17).collect();
    let t0 = std::time::Instant::now();
    let points = bit_grid_evaluate(&matrix, &FitConfig::default(), &d_values, &a_values, &tech);
    eprintln!(
        "evaluated {} grid points in {:.1}s",
        points.len(),
        t0.elapsed().as_secs_f64()
    );

    // GM surface (rows = D_bits, cols = A_bits).
    let gm_at = |d: u32, a: u32| {
        points
            .iter()
            .find(|p| p.d_bits == d && p.a_bits == a)
            .map(|p| p.gm)
            .unwrap_or(f64::NAN)
    };
    let mut gm_rows = Vec::new();
    for &d in &d_values {
        let mut cells = vec![format!("D={d}")];
        for &a in &a_values {
            cells.push(pct(gm_at(d, a)));
        }
        gm_rows.push(cells);
    }
    let mut headers: Vec<String> = vec!["GM %".to_string()];
    headers.extend(a_values.iter().map(|a| format!("A={a}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("\nFig 6a: GM surface over (D_bits, A_bits) — paper: flat plateau, cliff at");
    println!("low widths; red-circle point D=9/A=15 loses ~1% GM vs floating point\n");
    println!("{}", render_table(&header_refs, &gm_rows));

    // Energy/area along the diagonal-ish slices.
    let mut cost_rows = Vec::new();
    for &d in &d_values {
        let p15 = points
            .iter()
            .find(|p| p.d_bits == d && p.a_bits == 15)
            .unwrap();
        cost_rows.push(vec![
            d.to_string(),
            format!("{:.0}", p15.energy_nj),
            format!("{:.4}", p15.area_mm2),
            pct(p15.gm),
        ]);
    }
    println!("\nFig 6b/6c slice at A_bits = 15: energy and area vs D_bits\n");
    println!(
        "{}",
        render_table(&["D_bits", "energy nJ", "area mm2", "GM %"], &cost_rows)
    );

    // The paper's chosen point.
    if let Some(p) = points.iter().find(|p| p.d_bits == 9 && p.a_bits == 15) {
        println!(
            "\nchosen point D=9/A=15: GM {} %, {:.0} nJ, {:.4} mm2",
            pct(p.gm),
            p.energy_nj,
            p.area_mm2
        );
    }

    if let Some(dir) = &cfg.csv_dir {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.d_bits.to_string(),
                    p.a_bits.to_string(),
                    format!("{:.4}", p.gm),
                    format!("{:.4}", p.se),
                    format!("{:.4}", p.sp),
                    format!("{:.1}", p.energy_nj),
                    format!("{:.5}", p.area_mm2),
                ]
            })
            .collect();
        write_csv(
            dir,
            "fig6_bit_grid",
            &[
                "d_bits",
                "a_bits",
                "gm",
                "se",
                "sp",
                "energy_nj",
                "area_mm2",
            ],
            &rows,
        );
    }
}
