//! Table I: classification performance of floating-point SVM kernels
//! (linear, quadratic, cubic, Gaussian) under leave-one-session-out CV.

use experiments::{pct, render_table, write_csv, RunConfig};
use seizure_core::config::FitConfig;
use seizure_core::eval::loso_evaluate;
use svm::Kernel;

fn main() {
    let cfg = RunConfig::parse(std::env::args());
    let (matrix, _) = cfg.build_dataset();

    let kernels = [
        Kernel::Linear,
        Kernel::Polynomial { degree: 2 },
        Kernel::Polynomial { degree: 3 },
        Kernel::Rbf { gamma: 0.5 },
    ];
    let mut rows = Vec::new();
    for k in kernels {
        let fit = FitConfig::default().with_kernel(k);
        let t0 = std::time::Instant::now();
        let r = loso_evaluate(&matrix, &fit);
        eprintln!(
            "{}: {} folds ({} skipped), mean SVs {:.0}, {:.1}s",
            k.label(),
            r.folds.len(),
            r.skipped,
            r.mean_n_sv,
            t0.elapsed().as_secs_f64()
        );
        rows.push(vec![
            k.label(),
            pct(r.mean_sp),
            pct(r.mean_se),
            pct(r.mean_gm),
        ]);
    }
    println!("\nTable I: classification performance of floating-point SVM kernels");
    println!("(paper: Linear 75.6/82.3/72.9, Quadratic 92.3/86.6/86.8,");
    println!("        Cubic 95.3/86.6/88.0, Gaussian 97.0/79.6/82.6)\n");
    println!(
        "{}",
        render_table(&["SVM Kernel", "Sp %", "Se %", "GM %"], &rows)
    );
    if let Some(dir) = &cfg.csv_dir {
        write_csv(dir, "table1", &["kernel", "sp", "se", "gm"], &rows);
    }
}
