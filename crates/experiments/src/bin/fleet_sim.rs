//! Fleet serving simulation: a cohort of live patient streams
//! multiplexed through [`FleetScheduler`], with interleaved chunk
//! arrivals, periodic batched flushes, an alarmed cohort report against
//! ground truth, and a backpressure demonstration for both
//! [`OverloadPolicy`] variants.
//!
//! Prints the fleet's wall-clock serving throughput next to the
//! serial-equivalent figure from merged per-session stats — the number
//! that used to be the only one available, and that under-reports a
//! concurrent fleet (summed per-window latencies treat parallel work as
//! serial).
//!
//! Run with: `cargo run --release --bin fleet_sim -- --scale tiny`
//! (add `--workers N` to pin the flush pipeline's executor count; the
//! default sizes to the machine — results are bit-identical either way).

use experiments::{pct, render_table, RunConfig};
use seizure_core::alarm::{
    score_events, truth_events, AlarmConfig, AlarmEvent, EventMetrics, EventScoring, TruthEvent,
};
use seizure_core::config::FitConfig;
use seizure_core::engine::{BitConfig, QuantizedEngine};
use seizure_core::fleet::{FleetConfig, FleetScheduler, OverloadPolicy};
use seizure_core::stream::{SharedEngine, StreamConfig};
use seizure_core::trained::FloatPipeline;
use std::collections::BTreeMap;
use std::sync::Arc;

/// xorshift64* interleaving driver (deterministic).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn main() {
    let cfg = RunConfig::parse(std::env::args());
    let spec = ecg_sim::dataset::DatasetSpec::new(cfg.scale, cfg.seed);
    let (matrix, _) = cfg.build_dataset();
    let stream_cfg = StreamConfig::non_overlapping(spec.scale.fs(), spec.scale.window_s())
        .expect("paper window geometry");

    let pipeline = FloatPipeline::fit(&matrix, &FitConfig::default()).expect("fit cohort");
    let quantized = QuantizedEngine::from_pipeline(&pipeline, BitConfig::paper_choice())
        .expect("paper bit config");
    let engines: [(&str, SharedEngine); 2] = [
        ("float", Arc::new(pipeline.clone())),
        ("quantized", Arc::new(quantized)),
    ];

    // Live material: every session becomes one patient stream.
    let recordings: Vec<_> = spec.sessions.iter().map(|s| s.synthesize()).collect();
    let mut truth: BTreeMap<u64, Vec<TruthEvent>> = BTreeMap::new();
    for (p, rec) in recordings.iter().enumerate() {
        truth.insert(p as u64, truth_events(&rec.seizures));
    }

    let mut rows = Vec::new();
    for (name, engine) in &engines {
        let fleet_cfg = FleetConfig {
            alarms: Some(AlarmConfig::k_of_n(1, 2)),
            workers: cfg.workers,
            ..FleetConfig::unbounded(stream_cfg)
        };
        let mut fleet = FleetScheduler::new(Arc::clone(engine), fleet_cfg).expect("fleet config");
        if rows.is_empty() {
            eprintln!(
                "flush pipeline: {} executor(s) ({})",
                fleet.flush_executors(),
                cfg.workers
                    .map_or("machine default".to_string(), |n| format!("--workers {n}")),
            );
        }
        for p in 0..recordings.len() as u64 {
            fleet.admit(p).expect("admit");
        }
        // Interleaved arrival: random patient, random chunk length,
        // flush roughly every third ingest — one batched kernel call
        // per flush, decisions bit-identical to solo streaming.
        let mut rng = XorShift(0xF1EE7 ^ cfg.seed);
        let mut cursors = vec![0usize; recordings.len()];
        let mut live: Vec<usize> = (0..recordings.len()).collect();
        let mut alarms: BTreeMap<u64, Vec<AlarmEvent>> = BTreeMap::new();
        let mut collect = |flush: seizure_core::fleet::FleetFlush| {
            for (p, a) in flush.alarms {
                alarms.entry(p).or_default().push(a);
            }
        };
        while !live.is_empty() {
            let p = live[(rng.next() as usize) % live.len()];
            let ecg = &recordings[p].ecg;
            let cur = cursors[p];
            let len =
                (1 + (rng.next() as usize) % (2 * stream_cfg.window_len)).clamp(1, ecg.len() - cur);
            fleet
                .ingest(p as u64, &ecg[cur..cur + len])
                .expect("ingest");
            cursors[p] += len;
            if cursors[p] == ecg.len() {
                live.retain(|&q| q != p);
            }
            if rng.next().is_multiple_of(3) {
                collect(fleet.flush());
            }
        }
        collect(fleet.flush());

        // Cohort event metrics: per-patient alarms vs ground truth.
        let scoring = EventScoring::for_windows(stream_cfg.fs, stream_cfg.window_len);
        let mut events = EventMetrics::default();
        for (p, t) in &truth {
            let monitored_s =
                fleet.patient_stats(*p).expect("admitted").samples_in as f64 / stream_cfg.fs;
            events.merge(&score_events(
                alarms.get(p).map_or(&[][..], Vec::as_slice),
                t,
                monitored_s,
                &scoring,
            ));
        }
        let stats = fleet.stats();
        let stream = fleet.stream_stats();
        // Extract-vs-classify split, averaged per decided window: the
        // scheduler attributes every flush's kernel time to its windows
        // (FleetStats::{extract_ns, classify_ns}), so the table shows
        // where the serving wall actually is instead of one opaque
        // busy-time figure.
        let per_window_us = |ns: u128| {
            if stats.windows_decided == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", ns as f64 / stats.windows_decided as f64 / 1e3)
            }
        };
        rows.push(vec![
            name.to_string(),
            stats.patients.to_string(),
            stream.windows.to_string(),
            stats.rows_classified.to_string(),
            stats.flushes.to_string(),
            format!("{:.0}", stats.wall_windows_per_sec()),
            format!("{:.0}", stream.windows_per_sec()),
            per_window_us(stats.extract_ns),
            per_window_us(stats.classify_ns),
            events
                .event_sensitivity()
                .map_or("-".into(), |s| pct(s).to_string()),
            events
                .false_alarms_per_24h()
                .map_or("-".into(), |f| format!("{f:.1}")),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "engine",
                "patients",
                "windows",
                "rows batched",
                "flushes",
                "wall w/s",
                "serial-eq w/s",
                "extract us/w",
                "classify us/w",
                "event Se",
                "FA/24h",
            ],
            &rows,
        )
    );
    println!(
        "(wall w/s = windows per second of fleet busy time; serial-eq w/s sums\n\
         per-window latencies across sessions and under-reports concurrency;\n\
         extract/classify us/w split the per-window serving cost by kernel phase)"
    );

    // Backpressure: a deliberately tiny row buffer under a burst, both
    // overload policies. Shed windows are decided as dropped, in order.
    println!("\nbackpressure under a 4-row buffer (burst of whole sessions):");
    for policy in [OverloadPolicy::Reject, OverloadPolicy::DropOldest] {
        let fleet_cfg = FleetConfig {
            max_pending_rows: 4,
            overload: policy,
            ..FleetConfig::unbounded(stream_cfg)
        };
        let mut fleet =
            FleetScheduler::new(Arc::clone(&engines[0].1), fleet_cfg).expect("fleet config");
        for (p, rec) in recordings.iter().enumerate() {
            fleet.admit(p as u64).expect("admit");
            fleet.ingest(p as u64, &rec.ecg).expect("ingest");
        }
        let flush = fleet.flush();
        let stats = fleet.stats();
        println!(
            "  {policy:?}: {} windows decided, {} rows classified, {} shed as dropped",
            flush.decisions.len(),
            flush.rows_classified,
            stats.shed_windows
        );
    }
}
