//! Fleet serving simulation: a cohort of live patient streams
//! multiplexed through [`FleetScheduler`], with interleaved chunk
//! arrivals, periodic batched flushes, an alarmed cohort report against
//! ground truth, and a backpressure demonstration for both
//! [`OverloadPolicy`] variants.
//!
//! Prints the fleet's wall-clock serving throughput next to the
//! serial-equivalent figure from merged per-session stats — the number
//! that used to be the only one available, and that under-reports a
//! concurrent fleet (summed per-window latencies treat parallel work as
//! serial).
//!
//! Run with: `cargo run --release --bin fleet_sim -- --scale tiny`
//! (add `--workers N` to pin the flush pipeline's executor count; the
//! default sizes to the machine — results are bit-identical either way).
//!
//! The final section drives the fleet on a **virtual serving clock**
//! ([`seizure_core::clock::TickConfig::deterministic`]) at `--overload`
//! times the per-tick classification budget (`--tick-ms` cadence):
//! without an admission gate the backlog compounds and p99 decision
//! latency grows without bound, while the watermark gate sheds the
//! excess fairly across patients and keeps every deadline. The entire
//! section is deterministic — simulated time, not wall time.

use experiments::{pct, render_table, RunConfig};
use seizure_core::alarm::{
    score_events, truth_events, AlarmConfig, AlarmEvent, EventMetrics, EventScoring, TruthEvent,
};
use seizure_core::clock::TickConfig;
use seizure_core::config::FitConfig;
use seizure_core::engine::{BitConfig, QuantizedEngine};
use seizure_core::fleet::{FleetConfig, FleetFlush, FleetScheduler, OverloadPolicy, Watermarks};
use seizure_core::stream::{SharedEngine, StreamConfig};
use seizure_core::trained::FloatPipeline;
use std::collections::BTreeMap;
use std::sync::Arc;

/// xorshift64* interleaving driver (deterministic).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn main() {
    let cfg = RunConfig::parse(std::env::args());
    let spec = ecg_sim::dataset::DatasetSpec::new(cfg.scale, cfg.seed);
    let (matrix, _) = cfg.build_dataset();
    let stream_cfg = StreamConfig::non_overlapping(spec.scale.fs(), spec.scale.window_s())
        .expect("paper window geometry");

    let pipeline = FloatPipeline::fit(&matrix, &FitConfig::default()).expect("fit cohort");
    let quantized = QuantizedEngine::from_pipeline(&pipeline, BitConfig::paper_choice())
        .expect("paper bit config");
    let engines: [(&str, SharedEngine); 2] = [
        ("float", Arc::new(pipeline.clone())),
        ("quantized", Arc::new(quantized)),
    ];

    // Live material: every session becomes one patient stream.
    let recordings: Vec<_> = spec.sessions.iter().map(|s| s.synthesize()).collect();
    let mut truth: BTreeMap<u64, Vec<TruthEvent>> = BTreeMap::new();
    for (p, rec) in recordings.iter().enumerate() {
        truth.insert(p as u64, truth_events(&rec.seizures));
    }

    let mut rows = Vec::new();
    for (name, engine) in &engines {
        let fleet_cfg = FleetConfig {
            alarms: Some(AlarmConfig::k_of_n(1, 2)),
            workers: cfg.workers,
            ..FleetConfig::unbounded(stream_cfg)
        };
        let mut fleet = FleetScheduler::new(Arc::clone(engine), fleet_cfg).expect("fleet config");
        if rows.is_empty() {
            eprintln!(
                "flush pipeline: {} executor(s) ({})",
                fleet.flush_executors(),
                cfg.workers
                    .map_or("machine default".to_string(), |n| format!("--workers {n}")),
            );
        }
        for p in 0..recordings.len() as u64 {
            fleet.admit(p).expect("admit");
        }
        // Interleaved arrival: random patient, random chunk length,
        // flush roughly every third ingest — one batched kernel call
        // per flush, decisions bit-identical to solo streaming.
        let mut rng = XorShift(0xF1EE7 ^ cfg.seed);
        let mut cursors = vec![0usize; recordings.len()];
        let mut live: Vec<usize> = (0..recordings.len()).collect();
        let mut alarms: BTreeMap<u64, Vec<AlarmEvent>> = BTreeMap::new();
        let mut collect = |flush: seizure_core::fleet::FleetFlush| {
            for (p, a) in flush.alarms {
                alarms.entry(p).or_default().push(a);
            }
        };
        while !live.is_empty() {
            let p = live[(rng.next() as usize) % live.len()];
            let ecg = &recordings[p].ecg;
            let cur = cursors[p];
            let len =
                (1 + (rng.next() as usize) % (2 * stream_cfg.window_len)).clamp(1, ecg.len() - cur);
            fleet
                .ingest(p as u64, &ecg[cur..cur + len])
                .expect("ingest");
            cursors[p] += len;
            if cursors[p] == ecg.len() {
                live.retain(|&q| q != p);
            }
            if rng.next().is_multiple_of(3) {
                collect(fleet.flush());
            }
        }
        collect(fleet.flush());

        // Cohort event metrics: per-patient alarms vs ground truth.
        let scoring = EventScoring::for_windows(stream_cfg.fs, stream_cfg.window_len);
        let mut events = EventMetrics::default();
        for (p, t) in &truth {
            let monitored_s =
                fleet.patient_stats(*p).expect("admitted").samples_in as f64 / stream_cfg.fs;
            events.merge(&score_events(
                alarms.get(p).map_or(&[][..], Vec::as_slice),
                t,
                monitored_s,
                &scoring,
            ));
        }
        let stats = fleet.stats();
        let stream = fleet.stream_stats();
        // Extract-vs-classify split, averaged per decided window: the
        // scheduler attributes every flush's kernel time to its windows
        // (FleetStats::{extract_ns, classify_ns}), so the table shows
        // where the serving wall actually is instead of one opaque
        // busy-time figure.
        let per_window_us = |ns: u128| {
            if stats.windows_decided == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", ns as f64 / stats.windows_decided as f64 / 1e3)
            }
        };
        rows.push(vec![
            name.to_string(),
            stats.patients.to_string(),
            stream.windows.to_string(),
            stats.rows_classified.to_string(),
            stats.flushes.to_string(),
            format!("{:.0}", stats.wall_windows_per_sec()),
            format!("{:.0}", stream.windows_per_sec()),
            per_window_us(stats.extract_ns),
            per_window_us(stats.classify_ns),
            format!("{:.1}", stream.latency.p50_ns() as f64 / 1e3),
            format!("{:.1}", stream.latency.p99_ns() as f64 / 1e3),
            format!("{:.1}", stream.max_latency_ns() as f64 / 1e3),
            events
                .event_sensitivity()
                .map_or("-".into(), |s| pct(s).to_string()),
            events
                .false_alarms_per_24h()
                .map_or("-".into(), |f| format!("{f:.1}")),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "engine",
                "patients",
                "windows",
                "rows batched",
                "flushes",
                "wall w/s",
                "serial-eq w/s",
                "extract us/w",
                "classify us/w",
                "p50 us/w",
                "p99 us/w",
                "max us/w",
                "event Se",
                "FA/24h",
            ],
            &rows,
        )
    );
    println!(
        "(wall w/s = windows per second of fleet busy time; serial-eq w/s sums\n\
         per-window latencies across sessions and under-reports concurrency;\n\
         extract/classify us/w split the per-window serving cost by kernel phase;\n\
         p50/p99/max us/w come from the merged per-window latency histogram)"
    );

    // Backpressure: a deliberately tiny row buffer under a burst, both
    // overload policies. Shed windows are decided as dropped, in order.
    println!("\nbackpressure under a 4-row buffer (burst of whole sessions):");
    for policy in [OverloadPolicy::Reject, OverloadPolicy::DropOldest] {
        let fleet_cfg = FleetConfig {
            max_pending_rows: 4,
            overload: policy,
            ..FleetConfig::unbounded(stream_cfg)
        };
        let mut fleet =
            FleetScheduler::new(Arc::clone(&engines[0].1), fleet_cfg).expect("fleet config");
        for (p, rec) in recordings.iter().enumerate() {
            fleet.admit(p as u64).expect("admit");
            fleet.ingest(p as u64, &rec.ecg).expect("ingest");
        }
        let flush = fleet.flush();
        let stats = fleet.stats();
        println!(
            "  {policy:?}: {} windows decided, {} rows classified, {} shed as dropped",
            flush.decisions.len(),
            flush.rows_classified,
            stats.shed_windows
        );
    }

    tick_overload_scenario(&cfg, &engines[1].1, &matrix, recordings.len() as u64);
}

/// Tick-driven serving under sustained overload, on a virtual clock.
///
/// The clock charges `ns_per_row` per classified row, so one tick's
/// cadence affords `CAPACITY_ROWS` rows; arrivals are generated at
/// `overload ×` that budget, round-robin across patients. Without an
/// admission gate every tick flushes its whole backlog, overruns its
/// deadline, and the next tick inherits a longer arrival interval — the
/// backlog (and p99 decision latency) compounds. The watermark gate
/// sheds down to `low` whenever pending rows cross `high < capacity`,
/// so ticks stay inside the cadence and latency stays bounded near one
/// cadence. Everything printed here is simulated time: reruns are
/// byte-identical.
fn tick_overload_scenario(
    cfg: &RunConfig,
    engine: &SharedEngine,
    matrix: &ecg_features::FeatureMatrix,
    n_patients: u64,
) {
    /// Rows one tick's cadence can classify on the virtual clock.
    const CAPACITY_ROWS: u64 = 64;
    /// Serving ticks simulated per run.
    const TICKS: usize = 8;
    /// Watermark band (rows): shed down to `low` when pending crosses
    /// `high`; `high < CAPACITY_ROWS` keeps every tick inside budget.
    const WM: Watermarks = Watermarks { low: 16, high: 48 };

    let tick_ms = cfg.tick_ms.unwrap_or(5);
    let overload = cfg.overload.unwrap_or(2.0);
    let cadence_ns = tick_ms.saturating_mul(1_000_000);
    let ns_per_row = cadence_ns / CAPACITY_ROWS;
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    #[allow(clippy::cast_sign_loss)]
    let arrival_dt = ((cadence_ns as f64 / (overload * CAPACITY_ROWS as f64)).max(1.0)) as u64;
    let stream_cfg = matrix_stream_cfg(cfg);

    println!(
        "\ntick-driven serving at {overload}x overload (virtual clock, {tick_ms} ms cadence, \
         {CAPACITY_ROWS} rows/tick budget, {n_patients} patients):"
    );
    let scenarios: [(&str, FleetConfig); 2] = [
        (
            "no gate",
            FleetConfig {
                tick: Some(TickConfig::deterministic(cadence_ns, ns_per_row)),
                ..FleetConfig::unbounded(stream_cfg)
            },
        ),
        (
            "watermark 16/48",
            FleetConfig {
                max_pending_rows: CAPACITY_ROWS as usize,
                overload: OverloadPolicy::Watermark(WM),
                tick: Some(TickConfig::deterministic(cadence_ns, ns_per_row)),
                ..FleetConfig::unbounded(stream_cfg)
            },
        ),
    ];

    let mut rows = Vec::new();
    let mut fairness = Vec::new();
    for (label, fleet_cfg) in scenarios {
        let mut fleet = FleetScheduler::new(Arc::clone(engine), fleet_cfg).expect("fleet config");
        for p in 0..n_patients {
            fleet.admit(p).expect("admit");
        }
        let mut flush = FleetFlush::default();
        let mut per_patient: BTreeMap<u64, u64> = BTreeMap::new();
        let mut offered = 0u64;
        let mut next_arrival = arrival_dt;
        for _ in 0..TICKS {
            // Feed every arrival due before this tick fires, advancing
            // the virtual clock to each arrival instant so decision
            // latency measures real queueing delay.
            let due = fleet
                .next_tick_ns()
                .expect("serving clock")
                .max(fleet.clock_now_ns().expect("serving clock"));
            while next_arrival <= due {
                let now = fleet.clock_now_ns().expect("serving clock");
                fleet
                    .advance_clock(next_arrival.saturating_sub(now))
                    .expect("virtual clock");
                let row = matrix.row(offered as usize % matrix.n_rows());
                fleet
                    .ingest_row(offered % n_patients, Some(row))
                    .expect("ingest_row");
                offered += 1;
                next_arrival += arrival_dt;
            }
            fleet.tick_into(&mut flush).expect("tick");
            for d in &flush.decisions {
                if d.decision.decision.is_some() {
                    *per_patient.entry(d.patient).or_default() += 1;
                }
            }
        }
        let stats = fleet.stats();
        let ms = |ns: u64| format!("{:.1}", ns as f64 / 1e6);
        rows.push(vec![
            label.to_string(),
            stats.ticks.to_string(),
            offered.to_string(),
            stats.rows_classified.to_string(),
            stats.shed_windows.to_string(),
            stats.deadlines_missed.to_string(),
            ms(stats.decision_latency.p50_ns()),
            ms(stats.decision_latency.p99_ns()),
            ms(stats.decision_latency.max_ns()),
        ]);
        let (lo, hi) = per_patient
            .values()
            .fold((u64::MAX, 0), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        fairness.push(format!(
            "  {label}: per-patient classified spread {lo}..{hi} across {} patients",
            per_patient.len()
        ));
    }
    println!(
        "{}",
        render_table(
            &[
                "admission",
                "ticks",
                "offered",
                "classified",
                "shed",
                "deadline miss",
                "p50 ms",
                "p99 ms",
                "max ms",
            ],
            &rows,
        )
    );
    println!(
        "(same arrival rate in both runs; without the gate each overrun tick\n\
         inherits a longer arrival interval, so 8 ticks span more simulated\n\
         time and decision latency compounds — the watermark run sheds the\n\
         excess fairly and keeps p99 near one cadence)"
    );
    for line in fairness {
        println!("{line}");
    }
}

/// The paper window geometry for the run's scale (shared with `main`).
fn matrix_stream_cfg(cfg: &RunConfig) -> StreamConfig {
    let spec = ecg_sim::dataset::DatasetSpec::new(cfg.scale, cfg.seed);
    StreamConfig::non_overlapping(spec.scale.fs(), spec.scale.window_s())
        .expect("paper window geometry")
}
