//! Internal calibration sweep: kernel × C grid, used to pick the default
//! soft-margin cost. Not part of the paper regeneration set.

use experiments::{pct, render_table, RunConfig};
use seizure_core::config::FitConfig;
use seizure_core::eval::loso_evaluate;
use svm::Kernel;

fn main() {
    let cfg = RunConfig::parse(std::env::args());
    let (matrix, _) = cfg.build_dataset();
    let kernels = [
        Kernel::Linear,
        Kernel::Polynomial { degree: 2 },
        Kernel::Polynomial { degree: 3 },
        Kernel::Rbf { gamma: 0.05 },
        Kernel::Rbf { gamma: 0.5 },
    ];
    let cs = [0.1, 0.5, 1.0, 4.0, 16.0, 64.0];
    let mut rows = Vec::new();
    for k in kernels {
        for c in cs {
            let fit = FitConfig {
                kernel: k,
                c,
                ..Default::default()
            };
            let r = loso_evaluate(&matrix, &fit);
            let pooled = r.pooled();
            rows.push(vec![
                format!("{} g={:?}", k.label(), k),
                format!("{c}"),
                pct(r.mean_sp),
                pct(r.mean_se),
                pct(r.mean_gm),
                pct(pooled.sensitivity().unwrap_or(f64::NAN)),
                pct(pooled.specificity().unwrap_or(f64::NAN)),
                format!("{:.0}", r.mean_n_sv),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["kernel", "C", "Sp", "Se", "GM", "poolSe", "poolSp", "SVs"],
            &rows
        )
    );
}
