//! Alarm operating-point sweep: event-level metrics of the k-of-n alarm
//! state machine over (k, n, refractory) for the float and quantised
//! engines, under leave-one-session-out cross-validation.
//!
//! Engines are trained once per fold (the expensive part); every
//! operating point then re-scans the cached per-session decision
//! sequences through a fresh [`AlarmStateMachine`] — so the sweep costs
//! one LOSO per engine, not one per point.
//!
//! Run with: `cargo run --release --bin alarm_sweep -- --scale tiny`

use experiments::{pct, render_table, write_csv, RunConfig};
use seizure_core::alarm::{
    score_events, session_decision_sequence, truth_events, AlarmConfig, AlarmStateMachine,
    EventMetrics, EventScoring, TruthEvent,
};
use seizure_core::config::FitConfig;
use seizure_core::engine::{BitConfig, QuantizedEngine};
use seizure_core::trained::FloatPipeline;
use svm::ClassifierEngine;

/// Cached per-fold material: the held-out session's decision sequence
/// (None = dropped window), its ground truth and geometry.
struct FoldDecisions {
    decisions: Vec<Option<f64>>,
    truth: Vec<TruthEvent>,
    monitored_s: f64,
    window_len: usize,
    fs: f64,
}

fn main() {
    let cfg = RunConfig::parse(std::env::args());
    let spec = ecg_sim::dataset::DatasetSpec::new(cfg.scale, cfg.seed);
    let (matrix, _) = cfg.build_dataset();
    let window_s = spec.scale.window_s();

    // One LOSO training pass per engine kind; decision sequences cached.
    let mut folds: Vec<(String, Vec<FoldDecisions>)> = vec![
        ("float".to_string(), Vec::new()),
        ("quantized".to_string(), Vec::new()),
    ];
    let t0 = std::time::Instant::now();
    for session in &spec.sessions {
        let sid = session.session_index;
        let (train, test) = matrix.split_by_session(sid);
        if train.n_rows() == 0 || test.n_rows() == 0 {
            continue;
        }
        let Ok(pipeline) = FloatPipeline::fit(&train, &FitConfig::default()) else {
            eprintln!("fold {sid}: training failed, skipped");
            continue;
        };
        let quantized = QuantizedEngine::from_pipeline(&pipeline, BitConfig::paper_choice())
            .expect("paper bit config on a quadratic pipeline");
        let rec = session.synthesize();
        for (engine, fold_list) in [&pipeline as &dyn ClassifierEngine, &quantized]
            .into_iter()
            .zip(folds.iter_mut().map(|(_, f)| f))
        {
            let (decisions, window_len) = session_decision_sequence(&rec, window_s, engine);
            if window_len == 0 {
                continue;
            }
            fold_list.push(FoldDecisions {
                decisions,
                truth: truth_events(&rec.seizures),
                monitored_s: rec.duration_s(),
                window_len,
                fs: rec.fs,
            });
        }
    }
    eprintln!(
        "trained {} folds per engine in {:.1}s",
        folds[0].1.len(),
        t0.elapsed().as_secs_f64()
    );

    // The operating-point grid: k-of-n voting × refractory hold-off.
    let mut points = Vec::new();
    for n in 1..=4usize {
        for k in 1..=n {
            for refractory in [0usize, n, 2 * n] {
                points.push(AlarmConfig {
                    k,
                    n,
                    refractory_windows: refractory,
                    ..AlarmConfig::default()
                });
            }
        }
    }

    let mut rows = Vec::new();
    for (engine_name, fold_list) in &folds {
        for point in &points {
            let mut pooled = EventMetrics::default();
            for fold in fold_list {
                let alarms = AlarmStateMachine::scan(*point, &fold.decisions, fold.window_len)
                    .expect("grid points are valid");
                let scoring = EventScoring::for_windows(fold.fs, fold.window_len);
                pooled.merge(&score_events(
                    &alarms,
                    &fold.truth,
                    fold.monitored_s,
                    &scoring,
                ));
            }
            rows.push(vec![
                engine_name.clone(),
                format!("{}/{}", point.k, point.n),
                point.refractory_windows.to_string(),
                pct(pooled.event_sensitivity().unwrap_or(f64::NAN)),
                format!("{:.1}", pooled.false_alarms_per_24h().unwrap_or(f64::NAN)),
                pooled
                    .median_latency_s()
                    .map(|l| format!("{l:.0}"))
                    .unwrap_or_else(|| "-".to_string()),
            ]);
        }
    }

    println!("\nAlarm operating-point sweep (event level, LOSO folds pooled)");
    println!(
        "{}",
        render_table(
            &["engine", "k/n", "refr", "Se_ev %", "FA/24h", "lat s"],
            &rows
        )
    );
    if let Some(dir) = &cfg.csv_dir {
        write_csv(
            dir,
            "alarm_sweep",
            &[
                "engine",
                "k_of_n",
                "refractory",
                "se_ev",
                "fa_per_24h",
                "median_latency_s",
            ],
            &rows,
        );
    }
}
