//! Fig 4: classification performance and resource requirements when
//! varying the number of features (correlation-driven reduction,
//! 64-bit datapath).

use ecg_features::extract::FeatureFamily;
use experiments::{pct, render_table, write_csv, RunConfig};
use hwmodel::TechParams;
use seizure_core::config::FitConfig;
use seizure_core::explore::feature_sweep;
use seizure_core::featsel::select_features;

fn main() {
    let cfg = RunConfig::parse(std::env::args());
    let (matrix, _) = cfg.build_dataset();
    let tech = TechParams::default();

    let sizes = [53usize, 45, 40, 35, 30, 26, 23, 20, 15, 12, 10, 8, 6];
    let t0 = std::time::Instant::now();
    let points = feature_sweep(&matrix, &sizes, &FitConfig::default(), &tech);
    eprintln!(
        "swept {} feature counts in {:.1}s",
        sizes.len(),
        t0.elapsed().as_secs_f64()
    );

    let mut rows = Vec::new();
    for p in &points {
        rows.push(vec![
            p.param.to_string(),
            pct(p.result.mean_gm),
            pct(p.result.mean_se),
            pct(p.result.mean_sp),
            format!("{:.0}", p.result.mean_n_sv),
            p.energy_nj()
                .map_or("skipped".into(), |e| format!("{e:.0}")),
            p.area_mm2().map_or("skipped".into(), |a| format!("{a:.3}")),
        ]);
    }
    println!("\nFig 4: GM / energy / area vs feature count (paper: GM plateau above ~15 features,");
    println!("drop below; 23-feature point saves 65% energy / 42% area at -1.2% GM)\n");
    println!(
        "{}",
        render_table(
            &[
                "features",
                "GM %",
                "Se %",
                "Sp %",
                "SVs",
                "energy nJ",
                "area mm2"
            ],
            &rows
        )
    );

    // Family composition of the 23-feature point (paper: 6 HRV, 4 Lorentz,
    // 9 AR, 4 PSD).
    let kept = select_features(&matrix, 23);
    let mut counts = std::collections::HashMap::new();
    for &j in &kept {
        *counts.entry(FeatureFamily::of(j).label()).or_insert(0usize) += 1;
    }
    println!("23-feature set composition (paper: HRV 6, Lorenz 4, AR 9, PSD 4):");
    for fam in ["HRV", "Lorenz", "AR", "PSD"] {
        println!("  {fam}: {}", counts.get(fam).copied().unwrap_or(0));
    }

    if let Some(dir) = &cfg.csv_dir {
        write_csv(
            dir,
            "fig4_feature_sweep",
            &[
                "features",
                "gm",
                "se",
                "sp",
                "n_sv",
                "energy_nj",
                "area_mm2",
            ],
            &rows,
        );
    }
}
