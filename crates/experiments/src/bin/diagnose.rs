//! Internal diagnostic: class-conditional feature statistics by window
//! provenance (rest / arousal / calm / seizure), to verify the generator
//! produces the intended geometry. Not part of the paper regeneration set.

use ecg_sim::dataset::DatasetSpec;
use ecg_sim::seizure::BackgroundKind;
use experiments::{render_table, RunConfig};

fn main() {
    let cfg = RunConfig::parse(std::env::args());
    let spec = DatasetSpec::new(cfg.scale, cfg.seed);
    let window_s = spec.scale.window_s();
    let extractor_names = ecg_features::extract::feature_names();
    // Feature indices of interest.
    let watch: Vec<(&str, usize)> = vec![
        ("mean_hr", 4),
        ("cvnn", 6),
        ("rmssd", 2),
        ("sd1", 8),
        ("csi", 12),
        ("ar1", 15),
        ("psd_c", 24 + 5), // band 5: 0.25-0.30 Hz
    ];
    for (n, j) in &watch {
        eprintln!("{} = {}", n, extractor_names[*j]);
    }

    #[derive(Default)]
    struct Acc {
        rows: Vec<Vec<f64>>,
    }
    let mut groups: std::collections::BTreeMap<&'static str, Acc> = Default::default();

    for session in &spec.sessions {
        let rec = session.synthesize();
        let ex = ecg_features::extract::WindowExtractor::new(rec.fs);
        for label in rec.window_labels(window_s) {
            let t0 = label.start_s;
            let t1 = t0 + window_s;
            let tag: &'static str = if label.is_seizure {
                "seizure"
            } else if session.background.iter().any(|b| {
                matches!(b.kind, BackgroundKind::Arousal)
                    && b.onset_s < t1
                    && b.onset_s + b.duration_s > t0
                    && (b.onset_s.max(t0) - (b.onset_s + b.duration_s).min(t1)).abs()
                        > 0.4 * window_s
            }) {
                "arousal"
            } else if session.background.iter().any(|b| {
                matches!(b.kind, BackgroundKind::Calm)
                    && b.onset_s < t1
                    && b.onset_s + b.duration_s > t0
                    && (b.onset_s.max(t0) - (b.onset_s + b.duration_s).min(t1)).abs()
                        > 0.4 * window_s
            }) {
                "calm"
            } else {
                "rest"
            };
            if let Ok(row) = ex.extract(rec.window_samples(&label)) {
                groups.entry(tag).or_default().rows.push(row);
            }
        }
    }

    let mut table = Vec::new();
    for (tag, acc) in &groups {
        let n = acc.rows.len();
        let mut cells = vec![tag.to_string(), n.to_string()];
        for &(_, j) in &watch {
            let col: Vec<f64> = acc.rows.iter().map(|r| r[j]).collect();
            cells.push(format!(
                "{:.3}±{:.3}",
                biodsp::stats::mean(&col),
                biodsp::stats::std_dev(&col)
            ));
        }
        // The quadratic conjunction statistic: (hr-rest)*(1-cvnn_rel).
        table.push(cells);
    }
    let mut headers = vec!["group", "n"];
    for (n, _) in &watch {
        headers.push(n);
    }
    println!("{}", render_table(&headers, &table));
}
