//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. Eq 5 norm-based SV pruning vs random pruning (is the norm useful?)
//! 2. LSB-truncation depth after dot product / squarer (the paper fixes
//!    10+10 — where does it actually break?)
//! 3. Class-weighted vs unweighted training on the imbalanced problem.
//! 4. The dot-product guard shift (conditioning of the quadratic kernel).
//! 5. Parallel kernel lanes: latency/area trade-off at iso-accuracy.

use ecg_features::DenseMatrix;
use experiments::{pct, render_table, write_csv, RunConfig};
use hwmodel::pipeline::AcceleratorConfig;
use hwmodel::TechParams;
use seizure_core::config::FitConfig;
use seizure_core::engine::{BitConfig, QuantizedEngine};
use seizure_core::eval::{loso_evaluate, loso_evaluate_with, LosoResult};
use seizure_core::trained::FloatPipeline;
use svm::smo::{SmoConfig, SmoTrainer};
use svm::ClassifierEngine;

/// Boxed batch predictor for heterogeneous fold closures.
type BatchPredictor = Box<dyn Fn(&DenseMatrix<f64>) -> Vec<f64>>;

/// LOSO evaluation with *random* SV pruning to the same budget, as the
/// control arm for the Eq 5 ablation.
fn loso_random_pruning(
    m: &ecg_features::FeatureMatrix,
    cfg: &FitConfig,
    budget: usize,
) -> LosoResult {
    let base = cfg.clone();
    loso_evaluate_with(m, move |train| {
        // Train unbudgeted, then keep `budget` randomly-chosen SVs by
        // rebuilding the model from a subset (deterministic "random":
        // index hash) and re-training on the reduced set.
        let p = FloatPipeline::fit(train, &base)?;
        let full = p.model().n_support_vectors();
        if full <= budget {
            let n = full;
            let predictor: BatchPredictor = Box::new(move |rows| p.classify_batch(rows));
            return Ok((predictor, n));
        }
        // Pseudo-random subset of the *training set* mirroring the
        // budgeting loop's removal count, then re-train once.
        let mut xs = DenseMatrix::with_cols(p.feature_indices().len());
        let mut ys: Vec<f64> = Vec::new();
        for (i, (row, &lab)) in train.rows().zip(train.labels.iter()).enumerate() {
            // Keep a deterministic ~budget/full fraction of rows.
            let h = (i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .rotate_left(17)
                .wrapping_mul(0xBF58476D1CE4E5B9);
            let u = ((h >> 40) as f64) / ((1u64 << 24) as f64);
            let frac = (budget as f64 / full as f64).min(1.0) * 1.2;
            let keep = u < frac || lab > 0; // never drop positives entirely
            if keep {
                xs.push_row(&p.normalize(row));
                ys.push(if lab > 0 { 1.0 } else { -1.0 });
            }
        }
        let smo = SmoConfig {
            c: base.c,
            kernel: base.kernel,
            ..Default::default()
        };
        let model = SmoTrainer::new(smo)
            .train(&xs, &ys)
            .map_err(seizure_core::CoreError::Svm)?;
        let n = model.n_support_vectors();
        let norm_pipeline = p.clone();
        let predictor: BatchPredictor =
            Box::new(move |rows| model.classify_batch(&norm_pipeline.normalize_batch(rows)));
        Ok((predictor, n))
    })
}

fn main() {
    let cfg = RunConfig::parse(std::env::args());
    let (matrix, _) = cfg.build_dataset();
    let tech = TechParams::default();
    let base_cfg = FitConfig::default();

    // ---- 1. Eq 5 vs random pruning ----
    let free = loso_evaluate(&matrix, &base_cfg);
    let budget = ((free.mean_n_sv * 0.6).round() as usize).max(4);
    let eq5 = loso_evaluate(
        &matrix,
        &FitConfig {
            sv_budget: Some(budget),
            ..base_cfg.clone()
        },
    );
    let rand = loso_random_pruning(&matrix, &base_cfg, budget);
    println!(
        "\nAblation 1: SV pruning strategy at budget {budget} (free: {:.0} SVs)\n",
        free.mean_n_sv
    );
    let rows1 = vec![
        vec![
            "unbudgeted".into(),
            pct(free.mean_gm),
            format!("{:.0}", free.mean_n_sv),
        ],
        vec![
            "Eq 5 norm pruning".into(),
            pct(eq5.mean_gm),
            format!("{:.0}", eq5.mean_n_sv),
        ],
        vec![
            "random pruning".into(),
            pct(rand.mean_gm),
            format!("{:.0}", rand.mean_n_sv),
        ],
    ];
    println!("{}", render_table(&["strategy", "GM %", "SVs"], &rows1));

    // ---- 2. Truncation depth ----
    println!("\nAblation 2: LSB truncation depth (D=9, A=15; paper fixes 10+10)\n");
    let mut rows2 = Vec::new();
    for t_bits in [0u32, 4, 8, 10, 12, 14, 16, 18] {
        let bits = BitConfig {
            d_bits: 9,
            a_bits: 15,
            post_dot_truncate: t_bits,
            post_square_truncate: t_bits,
        };
        let r = loso_evaluate_with(&matrix, |train| {
            let p = FloatPipeline::fit(train, &base_cfg)?;
            let n = p.model().n_support_vectors();
            let e = QuantizedEngine::from_pipeline(&p, bits)?;
            Ok((move |rows: &DenseMatrix<f64>| e.classify_batch(rows), n))
        });
        rows2.push(vec![
            format!("{t_bits}+{t_bits}"),
            pct(r.mean_gm),
            pct(r.mean_se),
            pct(r.mean_sp),
        ]);
    }
    println!(
        "{}",
        render_table(&["truncation", "GM %", "Se %", "Sp %"], &rows2)
    );

    // ---- 3. Class weighting ----
    println!("\nAblation 3: class-weighted vs unweighted soft margin\n");
    let weighted = loso_evaluate(&matrix, &base_cfg);
    let unweighted = loso_evaluate_with(&matrix, |train| {
        let p = FloatPipeline::fit(train, &base_cfg)?; // for scales/indices
        let xs = p.normalize_batch(&train.features);
        let ys: Vec<f64> = train
            .labels
            .iter()
            .map(|&l| if l > 0 { 1.0 } else { -1.0 })
            .collect();
        let smo = SmoConfig {
            c: base_cfg.c,
            kernel: base_cfg.kernel,
            balance_classes: false,
            ..Default::default()
        };
        let model = SmoTrainer::new(smo)
            .train(&xs, &ys)
            .map_err(seizure_core::CoreError::Svm)?;
        let n = model.n_support_vectors();
        Ok((
            move |rows: &DenseMatrix<f64>| model.classify_batch(&p.normalize_batch(rows)),
            n,
        ))
    });
    let rows3 = vec![
        vec![
            "weighted (default)".into(),
            pct(weighted.mean_gm),
            pct(weighted.mean_se),
            pct(weighted.mean_sp),
        ],
        vec![
            "unweighted".into(),
            pct(unweighted.mean_gm),
            pct(unweighted.mean_se),
            pct(unweighted.mean_sp),
        ],
    ];
    println!(
        "{}",
        render_table(&["training", "GM %", "Se %", "Sp %"], &rows3)
    );

    // ---- 4. Guard shift (via the homogeneous flag, which disables it) ----
    println!("\nAblation 4: per-feature scaling + guard shift vs single global scale\n");
    let hom = loso_evaluate(
        &matrix,
        &FitConfig {
            homogeneous_scale: true,
            ..base_cfg.clone()
        },
    );
    let rows4 = vec![
        vec![
            "per-feature + guard (default)".into(),
            pct(weighted.mean_gm),
        ],
        vec!["single global scale".into(), pct(hom.mean_gm)],
    ];
    println!("{}", render_table(&["scaling", "GM %"], &rows4));

    // ---- 5. Parallel kernel lanes ----
    println!("\nAblation 5: parallel kernel lanes (iso-accuracy; D=9/A=15 design)\n");
    let n_sv = free.mean_n_sv.round() as usize;
    let mut rows5 = Vec::new();
    for lanes in [1u32, 2, 4, 8] {
        let hw = AcceleratorConfig::new(n_sv, matrix.n_cols(), 9, 15).with_lanes(lanes);
        let c = hw.cost(&tech);
        rows5.push(vec![
            lanes.to_string(),
            format!("{:.2}", c.latency_s * 1e3),
            format!("{:.0}", c.energy_nj),
            format!("{:.4}", c.area_mm2),
        ]);
    }
    println!(
        "{}",
        render_table(&["lanes", "latency ms", "energy nJ", "area mm2"], &rows5)
    );

    if let Some(dir) = &cfg.csv_dir {
        write_csv(dir, "ablation_pruning", &["strategy", "gm", "svs"], &rows1);
        write_csv(
            dir,
            "ablation_truncation",
            &["trunc", "gm", "se", "sp"],
            &rows2,
        );
        write_csv(
            dir,
            "ablation_weighting",
            &["training", "gm", "se", "sp"],
            &rows3,
        );
        write_csv(dir, "ablation_scaling", &["scaling", "gm"], &rows4);
        write_csv(
            dir,
            "ablation_lanes",
            &["lanes", "latency_ms", "energy_nj", "area_mm2"],
            &rows5,
        );
    }
}
