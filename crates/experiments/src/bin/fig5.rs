//! Fig 5: classification performance and resource requirements when
//! varying the support-vector budget (Eq 5 pruning + re-training,
//! 64-bit datapath).

use experiments::{pct, render_table, write_csv, RunConfig};
use hwmodel::TechParams;
use seizure_core::config::FitConfig;
use seizure_core::eval::loso_evaluate;
use seizure_core::explore::sv_budget_sweep;

fn main() {
    let cfg = RunConfig::parse(std::env::args());
    let (matrix, _) = cfg.build_dataset();
    let tech = TechParams::default();

    // Anchor the sweep at the un-budgeted SV count.
    let free = loso_evaluate(&matrix, &FitConfig::default());
    let full = free.mean_n_sv.round() as usize;
    eprintln!("un-budgeted mean SV count: {full}");
    let budgets: Vec<usize> = [
        full,
        full * 9 / 10,
        full * 3 / 4,
        full * 3 / 5,
        full / 2,
        full * 2 / 5,
        full * 3 / 10,
        full / 4,
        full / 5,
        full / 7,
        full / 10,
    ]
    .into_iter()
    .map(|b| b.max(3))
    .collect();

    let t0 = std::time::Instant::now();
    let points = sv_budget_sweep(&matrix, &budgets, &FitConfig::default(), &tech);
    eprintln!(
        "swept {} budgets in {:.1}s",
        budgets.len(),
        t0.elapsed().as_secs_f64()
    );

    let mut rows = Vec::new();
    for p in &points {
        rows.push(vec![
            p.param.to_string(),
            pct(p.result.mean_gm),
            pct(p.result.mean_se),
            pct(p.result.mean_sp),
            format!("{:.0}", p.result.mean_n_sv),
            p.energy_nj()
                .map_or("skipped".into(), |e| format!("{e:.0}")),
            p.area_mm2().map_or("skipped".into(), |a| format!("{a:.3}")),
        ]);
    }
    println!("\nFig 5: GM / energy / area vs SV budget (paper: GM plateau until ~50 SVs, then");
    println!("sharp drop; the 50-SV point saves 76% energy / 45% area at -1.5% GM)\n");
    println!(
        "{}",
        render_table(
            &[
                "budget",
                "GM %",
                "Se %",
                "Sp %",
                "SVs",
                "energy nJ",
                "area mm2"
            ],
            &rows
        )
    );

    if let Some(dir) = &cfg.csv_dir {
        write_csv(
            dir,
            "fig5_sv_budget_sweep",
            &["budget", "gm", "se", "sp", "n_sv", "energy_nj", "area_mm2"],
            &rows,
        );
    }
}
