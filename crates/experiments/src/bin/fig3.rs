//! Fig 3: Pearson correlation-coefficient matrix of the 53-feature set.
//!
//! Prints a coarse ASCII heat map plus block statistics per feature
//! family, and dumps the full matrix as CSV with `--csv`.

use ecg_features::extract::FeatureFamily;
use experiments::{render_table, write_csv, RunConfig};
use seizure_core::featsel::correlation_matrix;

fn shade(r: f64) -> char {
    // Magnitude buckets for the ASCII heat map.
    match r.abs() {
        v if v >= 0.8 => '#',
        v if v >= 0.6 => '*',
        v if v >= 0.4 => '+',
        v if v >= 0.2 => '.',
        _ => ' ',
    }
}

fn main() {
    let cfg = RunConfig::parse(std::env::args());
    let (matrix, _) = cfg.build_dataset();
    let corr = correlation_matrix(&matrix);
    let d = corr.n_rows();

    println!("\nFig 3: correlation matrix |rho| heat map ({d}x{d}; # >=0.8, * >=0.6, + >=0.4, . >=0.2)\n");
    // Family reference row.
    let fam_row: String = (0..d)
        .map(|j| match FeatureFamily::of(j) {
            FeatureFamily::Hrv => 'H',
            FeatureFamily::Lorenz => 'L',
            FeatureFamily::Ar => 'A',
            FeatureFamily::Psd => 'P',
        })
        .collect();
    println!("     {fam_row}");
    for (i, row) in corr.rows().enumerate() {
        let line: String = row.iter().map(|&r| shade(r)).collect();
        println!("{i:>3}  {line}");
    }

    // Block statistics: mean |rho| within and between families.
    let fams = [
        FeatureFamily::Hrv,
        FeatureFamily::Lorenz,
        FeatureFamily::Ar,
        FeatureFamily::Psd,
    ];
    let mut rows = Vec::new();
    for fa in fams {
        let mut cells = vec![fa.label().to_string()];
        for fb in fams {
            let mut acc = 0.0;
            let mut n = 0usize;
            for (i, row) in corr.rows().enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    if i != j && FeatureFamily::of(i) == fa && FeatureFamily::of(j) == fb {
                        acc += v.abs();
                        n += 1;
                    }
                }
            }
            cells.push(format!("{:.2}", acc / n.max(1) as f64));
        }
        rows.push(cells);
    }
    println!("\nmean |rho| by family block (paper: PSD block and parts of HRV/Lorenz are highly mutually correlated)\n");
    println!(
        "{}",
        render_table(&["family", "HRV", "Lorenz", "AR", "PSD"], &rows)
    );

    if let Some(dir) = &cfg.csv_dir {
        let headers: Vec<String> = (0..d).map(|j| format!("f{j}")).collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let csv_rows: Vec<Vec<String>> = corr
            .rows()
            .map(|row| row.iter().map(|v| format!("{v:.4}")).collect())
            .collect();
        write_csv(dir, "fig3_correlation", &header_refs, &csv_rows);
    }
}
