//! Runs every paper experiment in sequence on one shared dataset build.
//!
//! This is a convenience wrapper; each table/figure also has its own
//! binary. Because the dataset derives deterministically from
//! `(--scale, --seed)`, results here match the individual binaries.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    for bin in ["table1", "fig3", "fig4", "fig5", "fig6", "fig7"] {
        println!("\n=============================== {bin} ===============================");
        let status = Command::new(exe_dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
