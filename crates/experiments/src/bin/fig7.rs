//! Fig 7: sequential combination of the three optimisations (left) and
//! the homogeneous-scaling 64/32/16-bit reference pipelines (right),
//! everything normalised to the 64-bit baseline.

use experiments::{pct, render_table, write_csv, RunConfig};
use hwmodel::TechParams;
use seizure_core::combine::{combined_sequence, homogeneous_pipelines, CombineParams};
use seizure_core::config::FitConfig;

fn main() {
    let cfg = RunConfig::parse(std::env::args());
    let (matrix, _) = cfg.build_dataset();
    let tech = TechParams::default();
    // Pick stage parameters off this dataset's own trade-off knees, the
    // way the paper picked 30/68 off its Figs 4-5 (tolerance: 2 GM pts).
    let t0 = std::time::Instant::now();
    let params = CombineParams::auto(&matrix, &FitConfig::default(), 0.02);
    eprintln!(
        "auto-selected stage parameters in {:.1}s: {} features, {} SVs, {}/{} bits (paper: 30, 68, 9/15)",
        t0.elapsed().as_secs_f64(),
        params.n_features,
        params.sv_budget,
        params.d_bits,
        params.a_bits
    );

    let t0 = std::time::Instant::now();
    let stages = combined_sequence(&matrix, &FitConfig::default(), &params, &tech);
    eprintln!("combined sequence in {:.1}s", t0.elapsed().as_secs_f64());
    let base = stages[0].clone();

    let mut rows = Vec::new();
    for s in &stages {
        let (gm_n, e_n, a_n) = s.normalized_to(&base);
        rows.push(vec![
            s.name.clone(),
            pct(s.gm),
            format!("{:.0}", s.energy_nj),
            format!("{:.3}", s.area_mm2),
            format!("{:.2}", gm_n),
            format!("{:.3}", e_n),
            format!("{:.3}", a_n),
            format!("{:.0}", s.n_sv),
            s.n_feat.to_string(),
            format!("{}/{}", s.d_bits, s.a_bits),
        ]);
    }
    println!("\nFig 7 (left): sequential optimisation (paper: total 12.5x energy and 16x area");
    println!("gain for <=3.2% GM loss; per-stage deltas -57%/-37%, -70%/-41%, -37%/-82%)\n");
    println!(
        "{}",
        render_table(
            &[
                "stage", "GM %", "E nJ", "A mm2", "GM rel", "E rel", "A rel", "SVs", "feat",
                "D/A bits"
            ],
            &rows
        )
    );
    let last = stages.last().unwrap();
    println!(
        "total gains: energy {:.1}x, area {:.1}x, GM loss {:.1} points\n",
        base.energy_nj / last.energy_nj,
        base.area_mm2 / last.area_mm2,
        100.0 * (base.gm - last.gm)
    );

    let t0 = std::time::Instant::now();
    let hom = homogeneous_pipelines(&matrix, &FitConfig::default(), &[64, 32, 16], &tech);
    eprintln!(
        "homogeneous pipelines in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
    let mut hrows = Vec::new();
    for s in &hom {
        let (gm_n, e_n, a_n) = s.normalized_to(&base);
        hrows.push(vec![
            s.name.clone(),
            pct(s.gm),
            format!("{:.0}", s.energy_nj),
            format!("{:.3}", s.area_mm2),
            format!("{:.2}", gm_n),
            format!("{:.3}", e_n),
            format!("{:.3}", a_n),
        ]);
    }
    println!("\nFig 7 (right): homogeneous-scaling pipelines (paper: the 32-bit homogeneous");
    println!("design needs 7x more area / 4x more energy than the tailored one, at -7% GM)\n");
    println!(
        "{}",
        render_table(
            &["pipeline", "GM %", "E nJ", "A mm2", "GM rel", "E rel", "A rel"],
            &hrows
        )
    );
    if let Some(h32) = hom.iter().find(|s| s.d_bits == 32) {
        println!(
            "32-bit homogeneous vs fully tailored: {:.1}x energy, {:.1}x area, GM delta {:.1} pts",
            h32.energy_nj / last.energy_nj,
            h32.area_mm2 / last.area_mm2,
            100.0 * (h32.gm - last.gm)
        );
    }

    if let Some(dir) = &cfg.csv_dir {
        write_csv(
            dir,
            "fig7_combined",
            &[
                "stage",
                "gm",
                "energy_nj",
                "area_mm2",
                "gm_rel",
                "e_rel",
                "a_rel",
                "n_sv",
                "n_feat",
                "bits",
            ],
            &rows,
        );
        write_csv(
            dir,
            "fig7_homogeneous",
            &[
                "pipeline",
                "gm",
                "energy_nj",
                "area_mm2",
                "gm_rel",
                "e_rel",
                "a_rel",
            ],
            &hrows,
        );
    }
}
