//! Property-based tests of the DSP substrate's numerical invariants.

use biodsp::fft::{fft, ifft, Complex};
use biodsp::filter::{median_filter, moving_average, SosCascade};
use biodsp::psd::{periodogram, Spectrum};
use biodsp::resample::interp_linear;
use biodsp::stats;
use biodsp::window::WindowKind;
use proptest::prelude::*;

fn signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, 8..max_len)
}

proptest! {
    /// ifft(fft(x)) == x to numerical precision for any power-of-two
    /// complex signal.
    #[test]
    fn fft_roundtrip(re in proptest::collection::vec(-1e3f64..1e3, 64),
                     im in proptest::collection::vec(-1e3f64..1e3, 64)) {
        let sig: Vec<Complex> = re
            .iter()
            .zip(im.iter())
            .map(|(&a, &b)| Complex::new(a, b))
            .collect();
        let back = ifft(&fft(&sig));
        for (a, b) in back.iter().zip(sig.iter()) {
            prop_assert!((*a - *b).norm() < 1e-6);
        }
    }

    /// Parseval: time-domain and frequency-domain energies agree.
    #[test]
    fn fft_parseval(re in proptest::collection::vec(-1e2f64..1e2, 128)) {
        let sig: Vec<Complex> = re.iter().map(|&a| Complex::new(a, 0.0)).collect();
        let spec = fft(&sig);
        let te: f64 = sig.iter().map(|c| c.norm_sqr()).sum();
        let fe: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / 128.0;
        prop_assert!((te - fe).abs() <= 1e-6 * te.max(1.0));
    }

    /// The periodogram's total power approximates the signal variance
    /// (within a factor accounting for windowing bias on short records).
    #[test]
    fn periodogram_power_tracks_variance(sig in signal_strategy(256)) {
        prop_assume!(sig.len() >= 16);
        let var = stats::variance(&sig);
        prop_assume!(var > 1e-6);
        let spec = periodogram(&sig, 32.0, WindowKind::Hann).unwrap();
        let total = spec.total_power();
        prop_assert!(total > 0.0);
        prop_assert!(total < 20.0 * var, "total {} var {}", total, var);
        prop_assert!(total > var / 20.0, "total {} var {}", total, var);
    }

    /// Band powers over a partition sum to (at most) the total power.
    #[test]
    fn band_powers_partition(sig in signal_strategy(128)) {
        prop_assume!(sig.len() >= 16);
        let spec = periodogram(&sig, 16.0, WindowKind::Hann).unwrap();
        let total = spec.total_power();
        let halves = spec.band_power(0.0, 4.0) + spec.band_power(4.0, 8.0 + 1e-9);
        prop_assert!((halves - total).abs() <= 1e-6 * total.max(1e-12));
    }

    /// Zero-phase filtering preserves the DC level of a constant signal.
    #[test]
    fn filtfilt_preserves_dc(level in -50.0f64..50.0, n in 64usize..256) {
        let cascade = SosCascade::butterworth_bandpass(1.0, 8.0, 64.0, 1).unwrap();
        // Low-pass only: build from the LP half by filtering a constant
        // through the full band-pass — DC must be rejected (HP stage).
        let sig = vec![level; n];
        let out = cascade.filtfilt(&sig);
        // Band-pass kills DC regardless of level.
        let tail = &out[n / 2..];
        prop_assert!(stats::rms(tail) < 0.05 * level.abs().max(1.0));
    }

    /// Moving average of length 1 is the identity; longer windows never
    /// exceed the input range.
    #[test]
    fn moving_average_bounds(sig in signal_strategy(128), len in 1usize..16) {
        let out = moving_average(&sig, len).unwrap();
        prop_assert_eq!(out.len(), sig.len());
        let (lo, hi) = (stats::min(&sig), stats::max(&sig));
        for &v in &out {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
        if len == 1 {
            for (a, b) in out.iter().zip(sig.iter()) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }

    /// Median filtering is idempotent on constant signals and bounded by
    /// the input range.
    #[test]
    fn median_filter_bounds(sig in signal_strategy(96), half in 0usize..4) {
        let len = 2 * half + 1;
        let out = median_filter(&sig, len).unwrap();
        let (lo, hi) = (stats::min(&sig), stats::max(&sig));
        for &v in &out {
            prop_assert!(v >= lo && v <= hi);
        }
    }

    /// Linear interpolation at the knots returns the knot values, and
    /// between knots stays within the bracketing values.
    #[test]
    fn interpolation_brackets(ys in proptest::collection::vec(-50.0f64..50.0, 3..20),
                              t in 0.0f64..1.0) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        for (x, y) in xs.iter().zip(ys.iter()) {
            let v = interp_linear(&xs, &ys, *x).unwrap();
            prop_assert!((v - y).abs() < 1e-12);
        }
        let k = (ys.len() - 2) as f64 * t;
        let i = k.floor() as usize;
        let v = interp_linear(&xs, &ys, k).unwrap();
        let (a, b) = (ys[i].min(ys[i + 1]), ys[i].max(ys[i + 1]));
        prop_assert!(v >= a - 1e-9 && v <= b + 1e-9);
    }

    /// Variance is translation-invariant and scales quadratically.
    #[test]
    fn variance_affine_rules(sig in signal_strategy(64),
                             shift in -50.0f64..50.0,
                             scale in 0.1f64..5.0) {
        let v0 = stats::variance(&sig);
        let shifted: Vec<f64> = sig.iter().map(|x| x + shift).collect();
        let scaled: Vec<f64> = sig.iter().map(|x| x * scale).collect();
        prop_assert!((stats::variance(&shifted) - v0).abs() < 1e-6 * v0.max(1.0));
        prop_assert!(
            (stats::variance(&scaled) - scale * scale * v0).abs()
                < 1e-6 * (scale * scale * v0).max(1.0)
        );
    }

    /// Pearson is invariant under positive affine maps of either input.
    #[test]
    fn pearson_affine_invariance(sig in signal_strategy(64),
                                 a in 0.1f64..10.0,
                                 b in -20.0f64..20.0) {
        prop_assume!(stats::std_dev(&sig) > 1e-6);
        let other: Vec<f64> = sig.iter().enumerate().map(|(i, &v)| v + (i as f64).sin() * 5.0).collect();
        prop_assume!(stats::std_dev(&other) > 1e-6);
        let r0 = stats::pearson(&sig, &other).unwrap();
        let mapped: Vec<f64> = sig.iter().map(|x| a * x + b).collect();
        let r1 = stats::pearson(&mapped, &other).unwrap();
        prop_assert!((r0 - r1).abs() < 1e-8);
    }
}

/// Non-proptest sanity: Spectrum::band_power with inverted band is zero.
#[test]
fn inverted_band_is_empty() {
    let spec = Spectrum { freqs: vec![0.0, 1.0, 2.0], power: vec![1.0, 1.0, 1.0] };
    assert_eq!(spec.band_power(2.0, 1.0), 0.0);
}
