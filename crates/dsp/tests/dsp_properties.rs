//! Property-based tests of the DSP substrate's numerical invariants.
//!
//! The offline build has no `proptest`, so the properties are exercised
//! with a deterministic xorshift-driven case generator: same coverage
//! style (random-ish inputs, invariant assertions), fully reproducible.

use biodsp::fft::{fft, ifft, Complex};
use biodsp::filter::{median_filter, moving_average, SosCascade};
use biodsp::psd::{periodogram, Spectrum};
use biodsp::resample::interp_linear;
use biodsp::stats;
use biodsp::window::WindowKind;

/// Deterministic case generator (xorshift64*).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.max(1))
    }
    fn u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn unit(&mut self) -> f64 {
        (self.u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }
    fn int(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.u64() % (hi - lo + 1) as u64) as usize
    }
    fn signal(&mut self, min_len: usize, max_len: usize) -> Vec<f64> {
        let n = self.int(min_len, max_len);
        (0..n).map(|_| self.range(-100.0, 100.0)).collect()
    }
}

const CASES: usize = 64;

/// ifft(fft(x)) == x to numerical precision for any power-of-two
/// complex signal.
#[test]
fn fft_roundtrip() {
    let mut g = Gen::new(1);
    for _ in 0..CASES {
        let sig: Vec<Complex> = (0..64)
            .map(|_| Complex::new(g.range(-1e3, 1e3), g.range(-1e3, 1e3)))
            .collect();
        let back = ifft(&fft(&sig));
        for (a, b) in back.iter().zip(sig.iter()) {
            assert!((*a - *b).norm() < 1e-6);
        }
    }
}

/// Parseval: time-domain and frequency-domain energies agree.
#[test]
fn fft_parseval() {
    let mut g = Gen::new(2);
    for _ in 0..CASES {
        let sig: Vec<Complex> = (0..128)
            .map(|_| Complex::new(g.range(-1e2, 1e2), 0.0))
            .collect();
        let spec = fft(&sig);
        let te: f64 = sig.iter().map(|c| c.norm_sqr()).sum();
        let fe: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / 128.0;
        assert!((te - fe).abs() <= 1e-6 * te.max(1.0));
    }
}

/// The periodogram's total power approximates the signal variance
/// (within a factor accounting for windowing bias on short records).
#[test]
fn periodogram_power_tracks_variance() {
    let mut g = Gen::new(3);
    for _ in 0..CASES {
        let sig = g.signal(16, 256);
        let var = stats::variance(&sig);
        if var <= 1e-6 {
            continue;
        }
        let spec = periodogram(&sig, 32.0, WindowKind::Hann).unwrap();
        let total = spec.total_power();
        assert!(total > 0.0);
        assert!(total < 20.0 * var, "total {total} var {var}");
        assert!(total > var / 20.0, "total {total} var {var}");
    }
}

/// Band powers over a partition sum to (at most) the total power.
#[test]
fn band_powers_partition() {
    let mut g = Gen::new(4);
    for _ in 0..CASES {
        let sig = g.signal(16, 128);
        let spec = periodogram(&sig, 16.0, WindowKind::Hann).unwrap();
        let total = spec.total_power();
        let halves = spec.band_power(0.0, 4.0) + spec.band_power(4.0, 8.0 + 1e-9);
        assert!((halves - total).abs() <= 1e-6 * total.max(1e-12));
    }
}

/// Zero-phase band-pass filtering rejects the DC level of a constant
/// signal.
#[test]
fn filtfilt_preserves_dc() {
    let mut g = Gen::new(5);
    for _ in 0..CASES {
        let level = g.range(-50.0, 50.0);
        let n = g.int(64, 256);
        let cascade = SosCascade::butterworth_bandpass(1.0, 8.0, 64.0, 1).unwrap();
        let sig = vec![level; n];
        let out = cascade.filtfilt(&sig);
        // Band-pass kills DC regardless of level.
        let tail = &out[n / 2..];
        assert!(stats::rms(tail) < 0.05 * level.abs().max(1.0));
    }
}

/// Moving average of length 1 is the identity; longer windows never
/// exceed the input range.
#[test]
fn moving_average_bounds() {
    let mut g = Gen::new(6);
    for _ in 0..CASES {
        let sig = g.signal(8, 128);
        let len = g.int(1, 15);
        let out = moving_average(&sig, len).unwrap();
        assert_eq!(out.len(), sig.len());
        let (lo, hi) = (stats::min(&sig), stats::max(&sig));
        for &v in &out {
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
        if len == 1 {
            for (a, b) in out.iter().zip(sig.iter()) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }
}

/// Median filtering is bounded by the input range.
#[test]
fn median_filter_bounds() {
    let mut g = Gen::new(7);
    for _ in 0..CASES {
        let sig = g.signal(8, 96);
        let len = 2 * g.int(0, 3) + 1;
        let out = median_filter(&sig, len).unwrap();
        let (lo, hi) = (stats::min(&sig), stats::max(&sig));
        for &v in &out {
            assert!(v >= lo && v <= hi);
        }
    }
}

/// Linear interpolation at the knots returns the knot values, and
/// between knots stays within the bracketing values.
#[test]
fn interpolation_brackets() {
    let mut g = Gen::new(8);
    for _ in 0..CASES {
        let n = g.int(3, 19);
        let ys: Vec<f64> = (0..n).map(|_| g.range(-50.0, 50.0)).collect();
        let t = g.unit();
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        for (x, y) in xs.iter().zip(ys.iter()) {
            let v = interp_linear(&xs, &ys, *x).unwrap();
            assert!((v - y).abs() < 1e-12);
        }
        let k = (ys.len() - 2) as f64 * t;
        let i = k.floor() as usize;
        let v = interp_linear(&xs, &ys, k).unwrap();
        let (a, b) = (ys[i].min(ys[i + 1]), ys[i].max(ys[i + 1]));
        assert!(v >= a - 1e-9 && v <= b + 1e-9);
    }
}

/// Variance is translation-invariant and scales quadratically.
#[test]
fn variance_affine_rules() {
    let mut g = Gen::new(9);
    for _ in 0..CASES {
        let sig = g.signal(8, 64);
        let shift = g.range(-50.0, 50.0);
        let scale = g.range(0.1, 5.0);
        let v0 = stats::variance(&sig);
        let shifted: Vec<f64> = sig.iter().map(|x| x + shift).collect();
        let scaled: Vec<f64> = sig.iter().map(|x| x * scale).collect();
        assert!((stats::variance(&shifted) - v0).abs() < 1e-6 * v0.max(1.0));
        assert!(
            (stats::variance(&scaled) - scale * scale * v0).abs()
                < 1e-6 * (scale * scale * v0).max(1.0)
        );
    }
}

/// Pearson is invariant under positive affine maps of either input.
#[test]
fn pearson_affine_invariance() {
    let mut g = Gen::new(10);
    for _ in 0..CASES {
        let sig = g.signal(8, 64);
        let a = g.range(0.1, 10.0);
        let b = g.range(-20.0, 20.0);
        if stats::std_dev(&sig) <= 1e-6 {
            continue;
        }
        let other: Vec<f64> = sig
            .iter()
            .enumerate()
            .map(|(i, &v)| v + (i as f64).sin() * 5.0)
            .collect();
        if stats::std_dev(&other) <= 1e-6 {
            continue;
        }
        let r0 = stats::pearson(&sig, &other).unwrap();
        let mapped: Vec<f64> = sig.iter().map(|x| a * x + b).collect();
        let r1 = stats::pearson(&mapped, &other).unwrap();
        assert!((r0 - r1).abs() < 1e-8);
    }
}

/// Spectrum::band_power with inverted band is zero.
#[test]
fn inverted_band_is_empty() {
    let spec = Spectrum {
        freqs: vec![0.0, 1.0, 2.0],
        power: vec![1.0, 1.0, 1.0],
    };
    assert_eq!(spec.band_power(2.0, 1.0), 0.0);
}
