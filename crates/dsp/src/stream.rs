//! Streaming substrate: a sample ring buffer and a sliding-window
//! scheduler.
//!
//! Together they turn an arbitrary sequence of sample chunks (one sample
//! per callback, a second of samples per radio packet, a whole session at
//! once — the producer decides) into a deterministic sequence of
//! fixed-length analysis windows. Windows are addressed in *absolute
//! sample coordinates*: window `i` covers samples
//! `[i·stride, i·stride + window_len)` of the stream, independent of how
//! the samples were chunked on the way in. That chunking-invariance is
//! what makes a streaming pipeline bit-identical to its batch twin, and
//! the tests here sweep random chunk splits to pin it.

use crate::error::DspError;

/// Fixed-capacity ring over the most recent samples of a stream.
///
/// Pushing never fails; older samples are overwritten. Reads address the
/// stream by absolute sample index and fail (rather than alias) when the
/// requested span has already been overwritten.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRing {
    buf: Vec<f64>,
    /// Total samples ever pushed (absolute stream position).
    total: u64,
}

impl SampleRing {
    /// Ring retaining the last `capacity` samples.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when `capacity == 0`.
    pub fn new(capacity: usize) -> Result<Self, DspError> {
        if capacity == 0 {
            return Err(DspError::InvalidParameter {
                name: "capacity",
                reason: "must be >= 1",
            });
        }
        Ok(SampleRing {
            buf: vec![0.0; capacity],
            total: 0,
        })
    }

    /// Retained-sample capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Total samples pushed since creation (absolute stream length).
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Absolute index of the oldest sample still retained.
    pub fn oldest_retained(&self) -> u64 {
        self.total.saturating_sub(self.buf.len() as u64)
    }

    /// Appends a chunk of any length, overwriting the oldest samples.
    /// Chunks longer than the capacity retain only their tail (their
    /// earlier samples are past data the ring could never have held).
    pub fn push(&mut self, chunk: &[f64]) {
        let cap = self.buf.len();
        let skip = chunk.len().saturating_sub(cap);
        let mut pos = ((self.total + skip as u64) % cap as u64) as usize;
        let mut rest = &chunk[skip..];
        while !rest.is_empty() {
            let n = (cap - pos).min(rest.len());
            self.buf[pos..pos + n].copy_from_slice(&rest[..n]);
            pos = (pos + n) % cap;
            rest = &rest[n..];
        }
        self.total += chunk.len() as u64;
    }

    /// Copies `out.len()` samples starting at absolute stream index
    /// `start` into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when the span reaches past
    /// the stream head or has already been overwritten.
    pub fn copy_into(&self, start: u64, out: &mut [f64]) -> Result<(), DspError> {
        let len = out.len() as u64;
        if start + len > self.total {
            return Err(DspError::InvalidParameter {
                name: "start",
                reason: "span reaches past the samples pushed so far",
            });
        }
        if start < self.oldest_retained() {
            return Err(DspError::InvalidParameter {
                name: "start",
                reason: "span has been overwritten (ring too small)",
            });
        }
        let cap = self.buf.len();
        let mut pos = (start % cap as u64) as usize;
        let mut written = 0usize;
        while written < out.len() {
            let n = (cap - pos).min(out.len() - written);
            out[written..written + n].copy_from_slice(&self.buf[pos..pos + n]);
            written += n;
            pos = (pos + n) % cap;
        }
        Ok(())
    }
}

/// One complete analysis window in absolute stream coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpan {
    /// Window index (0-based).
    pub index: u64,
    /// Absolute index of the window's first sample (`index × stride`).
    pub start: u64,
    /// Window length in samples.
    pub len: usize,
}

/// Chunk-fed sliding-window scheduler.
///
/// Feed it sample *counts* as they arrive; it reports which windows became
/// complete, by index. Window `i` spans
/// `[i·stride, i·stride + window_len)` regardless of chunking, so any two
/// chunkings of the same stream yield the same window sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowScheduler {
    window_len: usize,
    stride: usize,
    seen: u64,
    emitted: u64,
}

impl WindowScheduler {
    /// Scheduler for `window_len`-sample windows every `stride` samples
    /// (`stride == window_len` gives the paper's non-overlapping
    /// protocol).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when either length is zero.
    pub fn new(window_len: usize, stride: usize) -> Result<Self, DspError> {
        if window_len == 0 {
            return Err(DspError::InvalidParameter {
                name: "window_len",
                reason: "must be >= 1",
            });
        }
        if stride == 0 {
            return Err(DspError::InvalidParameter {
                name: "stride",
                reason: "must be >= 1",
            });
        }
        Ok(WindowScheduler {
            window_len,
            stride,
            seen: 0,
            emitted: 0,
        })
    }

    /// Window length in samples.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Stride between window starts in samples.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Total samples accounted so far.
    pub fn samples_seen(&self) -> u64 {
        self.seen
    }

    /// Windows emitted so far.
    pub fn windows_emitted(&self) -> u64 {
        self.emitted
    }

    /// Smallest [`SampleRing`] capacity that guarantees every window is
    /// still retained when the driver drains after each `≤ stride`-sample
    /// push (the contract [`WindowScheduler::on_samples`] documents).
    pub fn min_ring_capacity(&self) -> usize {
        self.window_len + self.stride
    }

    /// Accounts `n` new samples and returns the indices of windows that
    /// just became complete (often empty, more than one after a large
    /// chunk). Drivers that bound their ring by
    /// [`WindowScheduler::min_ring_capacity`] must feed chunks of at most
    /// `stride` samples between drains; [`WindowScheduler::span`] converts
    /// an index to sample coordinates.
    pub fn on_samples(&mut self, n: usize) -> std::ops::Range<u64> {
        self.seen += n as u64;
        let complete = if self.seen >= self.window_len as u64 {
            (self.seen - self.window_len as u64) / self.stride as u64 + 1
        } else {
            0
        };
        let fresh = self.emitted..complete;
        self.emitted = complete;
        fresh
    }

    /// Sample coordinates of window `index`.
    pub fn span(&self, index: u64) -> WindowSpan {
        WindowSpan {
            index,
            start: index * self.stride as u64,
            len: self.window_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* — deterministic chunk-size driver for the sweeps.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn ring_retains_the_stream_tail() {
        let mut ring = SampleRing::new(8).unwrap();
        assert_eq!(ring.capacity(), 8);
        ring.push(&[1.0, 2.0, 3.0]);
        assert_eq!(ring.total_pushed(), 3);
        assert_eq!(ring.oldest_retained(), 0);
        let mut out = [0.0; 3];
        ring.copy_into(0, &mut out).unwrap();
        assert_eq!(out, [1.0, 2.0, 3.0]);
        // Push past capacity: oldest samples fall off.
        ring.push(&[4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        assert_eq!(ring.total_pushed(), 10);
        assert_eq!(ring.oldest_retained(), 2);
        let mut tail = [0.0; 8];
        ring.copy_into(2, &mut tail).unwrap();
        assert_eq!(tail, [3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        // Overwritten and not-yet-pushed spans are rejected.
        assert!(ring.copy_into(1, &mut tail).is_err());
        assert!(ring.copy_into(9, &mut [0.0; 2]).is_err());
    }

    #[test]
    fn oversized_chunk_keeps_only_its_tail() {
        let mut ring = SampleRing::new(4).unwrap();
        let big: Vec<f64> = (0..11).map(f64::from).collect();
        ring.push(&big);
        assert_eq!(ring.total_pushed(), 11);
        let mut out = [0.0; 4];
        ring.copy_into(7, &mut out).unwrap();
        assert_eq!(out, [7.0, 8.0, 9.0, 10.0]);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(SampleRing::new(0).is_err());
        assert!(WindowScheduler::new(0, 1).is_err());
        assert!(WindowScheduler::new(1, 0).is_err());
    }

    #[test]
    fn scheduler_emits_expected_boundaries() {
        let mut s = WindowScheduler::new(4, 2).unwrap();
        assert_eq!(s.on_samples(3), 0..0); // 3 < window
        assert_eq!(s.on_samples(1), 0..1); // window 0 at [0, 4)
        assert_eq!(s.on_samples(4), 1..3); // windows 1 [2,6) and 2 [4,8)
        assert_eq!(
            s.span(2),
            WindowSpan {
                index: 2,
                start: 4,
                len: 4
            }
        );
        assert_eq!(s.windows_emitted(), 3);
        assert_eq!(s.samples_seen(), 8);
        assert_eq!(s.min_ring_capacity(), 6);
    }

    /// Satellite requirement: a deterministic xorshift sweep over chunk
    /// sizes (1 sample up to multiple windows) must produce identical
    /// window boundaries regardless of chunking, and the ring must hand
    /// back exactly the underlying signal for every window.
    #[test]
    fn chunking_never_changes_window_boundaries_or_contents() {
        let window = 64;
        let stride = 48;
        let total = 1000usize;
        let signal: Vec<f64> = (0..total).map(|i| (i as f64 * 0.37).sin()).collect();

        // Reference: everything in one push.
        let mut reference = Vec::new();
        let mut s = WindowScheduler::new(window, stride).unwrap();
        for idx in s.on_samples(total) {
            reference.push(s.span(idx));
        }
        assert!(reference.len() > 10);

        let mut rng = XorShift(0x5EED_CAFE);
        for _round in 0..20 {
            let mut sched = WindowScheduler::new(window, stride).unwrap();
            let mut ring = SampleRing::new(sched.min_ring_capacity()).unwrap();
            let mut spans = Vec::new();
            let mut scratch = vec![0.0; window];
            let mut fed = 0usize;
            while fed < total {
                // Chunk sizes from 1 sample to ~3 windows.
                let chunk = 1 + (rng.next() as usize) % (3 * window);
                let chunk = chunk.min(total - fed);
                let samples = &signal[fed..fed + chunk];
                // Respect the ring bound: sub-feed at most `stride` at a
                // time, draining complete windows after each sub-feed.
                for sub in samples.chunks(stride) {
                    ring.push(sub);
                    for idx in sched.on_samples(sub.len()) {
                        let span = sched.span(idx);
                        ring.copy_into(span.start, &mut scratch).unwrap();
                        let lo = span.start as usize;
                        assert_eq!(scratch, signal[lo..lo + span.len], "window {idx}");
                        spans.push(span);
                    }
                }
                fed += chunk;
            }
            assert_eq!(spans, reference);
        }
    }
}
