//! Pan–Tompkins QRS (R-peak) detection.
//!
//! Classic pipeline: band-pass (5–15 Hz) → five-point derivative → squaring
//! → moving-window integration (150 ms) → adaptive dual thresholds with a
//! 200 ms refractory period and a search-back pass for missed beats.
//!
//! The detector returns both R-peak sample indices and the R-wave amplitude
//! measured on the band-passed signal; the amplitudes drive the EDR
//! (ECG-derived respiration) extraction downstream.

// lint: allow-file(hot-index) — detector idiom: indices are peak/sample
// positions produced by scans over the same slices they index, bounded by the
// signal length validated in `validate_and_cache`.
use crate::error::DspError;
use crate::filter::{five_point_derivative_into, moving_average_into, FiltFiltScratch, SosCascade};
use crate::kernels::{self, ExtractPrecision, SosSection};
use crate::lanes;

/// One detected R peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RPeak {
    /// Sample index into the analysed signal.
    pub index: usize,
    /// Time in seconds from the start of the signal.
    pub time_s: f64,
    /// R-wave amplitude on the band-passed signal (arbitrary units).
    pub amplitude: f64,
}

/// Detector output: peaks plus the RR tachogram.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QrsDetection {
    /// Detected R peaks in temporal order.
    pub peaks: Vec<RPeak>,
}

impl QrsDetection {
    /// RR intervals (s) between successive peaks; `len = peaks - 1`.
    pub fn rr_intervals(&self) -> Vec<f64> {
        self.peaks
            .windows(2)
            .map(|w| w[1].time_s - w[0].time_s)
            .collect()
    }

    /// Times (s) of each RR interval, conventionally the time of the second
    /// beat of the pair.
    pub fn rr_times(&self) -> Vec<f64> {
        self.peaks.iter().skip(1).map(|p| p.time_s).collect()
    }

    /// R-wave amplitudes in temporal order.
    pub fn amplitudes(&self) -> Vec<f64> {
        self.peaks.iter().map(|p| p.amplitude).collect()
    }

    /// Mean heart rate in beats per minute; `None` with fewer than two
    /// peaks.
    pub fn mean_heart_rate_bpm(&self) -> Option<f64> {
        let rr = self.rr_intervals();
        if rr.is_empty() {
            return None;
        }
        Some(60.0 / crate::stats::mean(&rr))
    }
}

/// Pan–Tompkins detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PanTompkins {
    /// Band-pass low corner (Hz). Default 5.
    pub band_lo_hz: f64,
    /// Band-pass high corner (Hz). Default 15.
    pub band_hi_hz: f64,
    /// Moving-window integration length (s). Default 0.150.
    pub integration_window_s: f64,
    /// Refractory period (s) during which a second QRS cannot occur.
    /// Default 0.200.
    pub refractory_s: f64,
    /// Search-back trigger: if no QRS is found within this multiple of the
    /// running RR average, the threshold is halved and the interval
    /// re-scanned. Default 1.66.
    pub searchback_factor: f64,
}

impl Default for PanTompkins {
    fn default() -> Self {
        PanTompkins {
            band_lo_hz: 5.0,
            band_hi_hz: 15.0,
            integration_window_s: 0.150,
            refractory_s: 0.200,
            searchback_factor: 1.66,
        }
    }
}

/// Reusable work buffers for [`PanTompkins::detect_into`].
///
/// The batch detector allocates several full-signal-length vectors per
/// call (band-passed signal, derivative, squared signal, integrated
/// signal, peak candidate lists). A streaming monitor classifying one
/// window per stride cannot afford that churn, so the scratch keeps every
/// buffer alive across calls — after the first window the detection hot
/// path performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct DetectScratch {
    filtfilt: FiltFiltScratch,
    filtered: Vec<f64>,
    deriv: Vec<f64>,
    squared: Vec<f64>,
    mwi: Vec<f64>,
    /// Integration-window ring for the fused energy kernel (f64 path).
    ring: Vec<f64>,
    /// Padded filtfilt work buffer for the fused f64 path: the filtered
    /// samples live at `ext64[pad..pad + n]` after the band-pass and are
    /// sliced in place, never copied out.
    ext64: Vec<f64>,
    /// f32-path twins: padded filtfilt extension (also sliced in place),
    /// MWI ring and integrated signal (the input window is narrowed on
    /// the fly while the extension is built, never stored).
    ext32: Vec<f32>,
    ring32: Vec<f32>,
    mwi32: Vec<f32>,
    /// Candidate list for the quadratic reference peak filter.
    peak_cand: Vec<usize>,
    /// Packed `(descending total-order key, index)` candidates for the
    /// bucket-grid filter, one buffer per precision (`f32` packs key and
    /// index into a single word).
    peak_cand_keyed: Vec<(u64, usize)>,
    peak_cand_keyed32: Vec<u64>,
    local_peaks: Vec<usize>,
    /// Bucket grid for the exact minimum-distance peak filter.
    peak_buckets: Vec<usize>,
    qrs: Vec<usize>,
    rr_recent: Vec<f64>,
    /// Cached band-pass design, keyed by `(band_lo, band_hi, fs)`.
    bandpass: Option<(f64, f64, f64, SosCascade)>,
}

/// Reusable work buffers for [`PanTompkins::detect_lanes_into`]: the
/// SoA extension/ring/MWI of one lane group plus the per-lane scalar
/// slices and decision buffers the branchy stages run on. One scratch
/// per `(T, L)` instantiation; self-contained (own band-pass cache), so
/// lane callers need no [`DetectScratch`].
pub struct LaneDetectScratch<T: kernels::Scalar, const L: usize> {
    /// Padded SoA filtfilt work buffer; filtered samples live at
    /// `ext[pad..pad + n]` and are sliced in place.
    ext: Vec<[T; L]>,
    /// Integration-window SoA ring for the lane energy kernel.
    ring: Vec<[T; L]>,
    /// SoA moving-window-integrated energy signal.
    mwi: Vec<[T; L]>,
    /// Per-lane MWI, deinterleaved (one pass, all lanes) for the scalar
    /// decision stages.
    lane_mwi: [Vec<T>; L],
    /// Per-lane band-passed signal, deinterleaved for peak refinement.
    lane_filtered: [Vec<T>; L],
    /// Packed peak candidates (see [`kernels::Scalar::Packed`]).
    peak_cand: Vec<T::Packed>,
    local_peaks: Vec<usize>,
    peak_buckets: Vec<usize>,
    qrs: Vec<usize>,
    rr_recent: Vec<f64>,
    /// Cached band-pass design, keyed by `(band_lo, band_hi, fs)`.
    bandpass: Option<(f64, f64, f64, SosCascade)>,
}

impl<T: kernels::Scalar, const L: usize> Default for LaneDetectScratch<T, L> {
    fn default() -> Self {
        LaneDetectScratch {
            ext: Vec::new(),
            ring: Vec::new(),
            mwi: Vec::new(),
            lane_mwi: std::array::from_fn(|_| Vec::new()),
            lane_filtered: std::array::from_fn(|_| Vec::new()),
            peak_cand: Vec::new(),
            local_peaks: Vec::new(),
            peak_buckets: Vec::new(),
            qrs: Vec::new(),
            rr_recent: Vec::new(),
            bandpass: None,
        }
    }
}

impl<T: kernels::Scalar, const L: usize> std::fmt::Debug for LaneDetectScratch<T, L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneDetectScratch")
            .field("lanes", &L)
            .field("ext_capacity", &self.ext.capacity())
            .finish_non_exhaustive()
    }
}

impl PanTompkins {
    /// Runs the detector on `ecg` sampled at `fs` Hz.
    ///
    /// One-shot convenience over [`PanTompkins::detect_into`] (which the
    /// streaming path uses with a persistent [`DetectScratch`]); both
    /// produce bit-identical detections.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::TooShort`] for signals shorter than two seconds
    /// (the adaptive thresholds need a learning phase) and
    /// [`DspError::InvalidParameter`] for invalid `fs` or corner
    /// frequencies.
    pub fn detect(&self, ecg: &[f64], fs: f64) -> Result<QrsDetection, DspError> {
        let mut scratch = DetectScratch::default();
        let mut out = QrsDetection::default();
        self.detect_into(ecg, fs, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Scratch-reusing detector: clears and refills `out.peaks`, keeping
    /// all intermediate buffers in `scratch` so repeated calls allocate
    /// nothing after warm-up. Bit-identical to [`PanTompkins::detect`].
    ///
    /// Runs at [`ExtractPrecision::F64`]; see
    /// [`PanTompkins::detect_into_with`] for the precision-dispatching
    /// form.
    ///
    /// # Errors
    ///
    /// Same contract as [`PanTompkins::detect`]; on error `out` is left
    /// cleared.
    pub fn detect_into(
        &self,
        ecg: &[f64],
        fs: f64,
        scratch: &mut DetectScratch,
        out: &mut QrsDetection,
    ) -> Result<(), DspError> {
        self.detect_into_with(ecg, fs, ExtractPrecision::F64, scratch, out)
    }

    /// Precision-dispatching detector. The whole sample-rate pipeline —
    /// zero-phase band-pass, the fused derivative → squaring →
    /// integration energy kernel, the bucket-grid peak filter and the
    /// adaptive thresholding/search-back/refinement stages — runs at
    /// `precision` through one generic code path, so the `F32` variant
    /// pays no widening passes and differs from `F64` only through
    /// rounding. Interval bookkeeping (RR averages, search-back gap
    /// timing) is index-derived and stays in `f64` at both precisions.
    ///
    /// At [`ExtractPrecision::F64`] this is bit-identical to the
    /// pre-fusion [`PanTompkins::detect_into_reference`]; at
    /// [`ExtractPrecision::F32`] detections are tolerance-pinned against
    /// the `f64` reference by the `dsp_kernel_equivalence` suite.
    ///
    /// # Errors
    ///
    /// Same contract as [`PanTompkins::detect`]; on error `out` is left
    /// cleared.
    pub fn detect_into_with(
        &self,
        ecg: &[f64],
        fs: f64,
        precision: ExtractPrecision,
        scratch: &mut DetectScratch,
        out: &mut QrsDetection,
    ) -> Result<(), DspError> {
        out.peaks.clear();
        let (min_len, win) = self.validate_and_cache(ecg, fs, scratch)?;
        // lint: allow(hot-panic) — `validate_and_cache` installed the
        // band-pass on the line above; absence is unreachable.
        let bp = &scratch.bandpass.as_ref().expect("cached band-pass").3;
        let refractory = (self.refractory_s * fs).round() as usize;
        match precision {
            ExtractPrecision::F64 => {
                // 1) Band-pass; the filtered samples stay inside the
                //    padded work buffer (no copy-out pass), downstream
                //    stages slice it. 2–4) fused derivative/squaring/MWI.
                let filtered: &[f64] = if bp.len() <= kernels::MAX_CHAIN_SECTIONS {
                    let mut secs = [SosSection::<f64>::default(); kernels::MAX_CHAIN_SECTIONS];
                    for (dst, s) in secs.iter_mut().zip(bp.sections().iter()) {
                        *dst = SosSection::from_f64(s.b, s.a);
                    }
                    let pad =
                        kernels::filtfilt_fused_in_ext(&secs[..bp.len()], ecg, &mut scratch.ext64);
                    &scratch.ext64[pad..pad + ecg.len()]
                } else {
                    bp.filtfilt_into(ecg, &mut scratch.filtfilt, &mut scratch.filtered);
                    &scratch.filtered
                };
                kernels::qrs_energy_into(filtered, fs, win, &mut scratch.ring, &mut scratch.mwi);
                // 5a) Local maxima with the exact bucket-grid filter,
                // 5b–6) adaptive thresholds, search-back, refinement.
                local_maxima_into(
                    &scratch.mwi,
                    refractory.max(1),
                    &mut scratch.peak_cand_keyed,
                    &mut scratch.local_peaks,
                    &mut scratch.peak_buckets,
                );
                self.decide_from_mwi(
                    fs,
                    win,
                    min_len,
                    &scratch.mwi,
                    filtered,
                    &scratch.local_peaks,
                    &mut scratch.qrs,
                    &mut scratch.rr_recent,
                    out,
                );
            }
            ExtractPrecision::F32 => {
                let mut secs = [SosSection::<f32>::default(); kernels::MAX_CHAIN_SECTIONS];
                for (dst, s) in secs.iter_mut().zip(bp.sections().iter()) {
                    *dst = SosSection::from_f64(s.b, s.a);
                }
                let pad = kernels::filtfilt_fused_from_f64_in_ext(
                    &secs[..bp.len()],
                    ecg,
                    &mut scratch.ext32,
                );
                let filtered: &[f32] = &scratch.ext32[pad..pad + ecg.len()];
                kernels::qrs_energy_into(
                    filtered,
                    fs,
                    win,
                    &mut scratch.ring32,
                    &mut scratch.mwi32,
                );
                local_maxima_into(
                    &scratch.mwi32,
                    refractory.max(1),
                    &mut scratch.peak_cand_keyed32,
                    &mut scratch.local_peaks,
                    &mut scratch.peak_buckets,
                );
                self.decide_from_mwi(
                    fs,
                    win,
                    min_len,
                    &scratch.mwi32,
                    filtered,
                    &scratch.local_peaks,
                    &mut scratch.qrs,
                    &mut scratch.rr_recent,
                    out,
                );
            }
        }
        Ok(())
    }

    /// Lane-batched detector: runs `L` same-length windows in lock-step
    /// through the dense phases — the SoA cascade-fused zero-phase
    /// band-pass and the fused derivative → squaring → integration
    /// energy kernel ([`crate::lanes`]) — then finishes each lane with
    /// the *identical* scalar decision stages (bucket-grid peak filter,
    /// adaptive thresholds/search-back, peak refinement) on
    /// deinterleaved slices. Lane `j`'s detection is bit-identical to
    /// [`PanTompkins::detect_into_with`] on `windows[j]` alone at the
    /// matching precision (`T = f64` ⇔ `F64`, `T = f32` ⇔ `F32`).
    ///
    /// `outs[j]` receives lane `j`'s detection; all are cleared first.
    ///
    /// # Errors
    ///
    /// Same contract as [`PanTompkins::detect`] — the windows share one
    /// length, so a too-short group fails as a whole with every output
    /// cleared.
    ///
    /// # Panics
    ///
    /// Panics when `windows`/`outs` are not exactly `L` long or the
    /// windows' lengths differ.
    pub fn detect_lanes_into<T: kernels::Scalar, const L: usize>(
        &self,
        windows: &[&[f64]],
        fs: f64,
        scratch: &mut LaneDetectScratch<T, L>,
        outs: &mut [QrsDetection],
    ) -> Result<(), DspError> {
        // lint: allow(hot-panic) — documented `# Panics` contract: group
        // arity is fixed at L by the lane layout; a mismatch is a caller bug.
        let windows: &[&[f64]; L] = windows.try_into().expect("window group must be L long");
        // lint: allow(hot-panic) — same group-arity contract as above.
        assert_eq!(outs.len(), L, "output group must be L long");
        for o in outs.iter_mut() {
            o.peaks.clear();
        }
        let n = windows[0].len();
        let (min_len, win) = self.validate_and_cache_in(n, fs, &mut scratch.bandpass)?;
        // lint: allow(hot-panic) — `validate_and_cache` installed the
        // band-pass on the line above; absence is unreachable.
        let bp = &scratch.bandpass.as_ref().expect("cached band-pass").3;
        // The internal Pan–Tompkins design is always the 2-section
        // band-pass, well inside the chain kernels' section budget.
        debug_assert!(bp.len() <= kernels::MAX_CHAIN_SECTIONS);
        let refractory = (self.refractory_s * fs).round() as usize;
        let mut secs = [SosSection::<T>::default(); kernels::MAX_CHAIN_SECTIONS];
        for (dst, s) in secs.iter_mut().zip(bp.sections().iter()) {
            *dst = SosSection::from_f64(s.b, s.a);
        }
        let pad =
            lanes::lane_filtfilt_from_f64_in_ext(&secs[..bp.len()], windows, &mut scratch.ext);
        lanes::lane_qrs_energy_into(
            &scratch.ext[pad..pad + n],
            fs,
            win,
            &mut scratch.ring,
            &mut scratch.mwi,
        );
        lanes::deinterleave_lanes_into(&scratch.mwi, &mut scratch.lane_mwi);
        lanes::deinterleave_lanes_into(&scratch.ext[pad..pad + n], &mut scratch.lane_filtered);
        for (lane, out) in outs.iter_mut().enumerate() {
            local_maxima_into(
                &scratch.lane_mwi[lane],
                refractory.max(1),
                &mut scratch.peak_cand,
                &mut scratch.local_peaks,
                &mut scratch.peak_buckets,
            );
            self.decide_from_mwi(
                fs,
                win,
                min_len,
                &scratch.lane_mwi[lane],
                &scratch.lane_filtered[lane],
                &scratch.local_peaks,
                &mut scratch.qrs,
                &mut scratch.rr_recent,
                out,
            );
        }
        Ok(())
    }

    /// Pre-fusion reference detector: per-section filtfilt sweeps, three
    /// staged energy passes with full-signal intermediates, and the
    /// quadratic minimum-distance peak filter. Kept (on the shared
    /// [`DetectScratch`]) as the bit-identity reference for
    /// [`PanTompkins::detect_into`] and as the honest "f64 legacy" bench
    /// row.
    ///
    /// # Errors
    ///
    /// Same contract as [`PanTompkins::detect`]; on error `out` is left
    /// cleared.
    pub fn detect_into_reference(
        &self,
        ecg: &[f64],
        fs: f64,
        scratch: &mut DetectScratch,
        out: &mut QrsDetection,
    ) -> Result<(), DspError> {
        out.peaks.clear();
        let (min_len, win) = self.validate_and_cache(ecg, fs, scratch)?;
        // lint: allow(hot-panic) — `validate_and_cache` installed the
        // band-pass on the line above; absence is unreachable.
        let bp = &scratch.bandpass.as_ref().expect("cached band-pass").3;
        // 1) Band-pass, per-section sweeps with two buffer reversals.
        bp.filtfilt_into_reference(ecg, &mut scratch.filtfilt, &mut scratch.filtered);

        // 2) Derivative, 3) squaring, 4) moving-window integration.
        five_point_derivative_into(&scratch.filtered, fs, &mut scratch.deriv);
        scratch.squared.clear();
        scratch.squared.extend(scratch.deriv.iter().map(|v| v * v));
        moving_average_into(&scratch.squared, win, &mut scratch.mwi)?;

        // 5a) Local maxima, quadratic greedy distance filter.
        let refractory = (self.refractory_s * fs).round() as usize;
        local_maxima_into_reference(
            &scratch.mwi,
            refractory.max(1),
            &mut scratch.peak_cand,
            &mut scratch.local_peaks,
        );
        self.decide_from_mwi(
            fs,
            win,
            min_len,
            &scratch.mwi,
            &scratch.filtered,
            &scratch.local_peaks,
            &mut scratch.qrs,
            &mut scratch.rr_recent,
            out,
        );
        Ok(())
    }

    /// Validates inputs, refreshes the cached band-pass design and
    /// returns `(learning-phase length, integration window)`.
    fn validate_and_cache(
        &self,
        ecg: &[f64],
        fs: f64,
        scratch: &mut DetectScratch,
    ) -> Result<(usize, usize), DspError> {
        self.validate_and_cache_in(ecg.len(), fs, &mut scratch.bandpass)
    }

    /// [`PanTompkins::validate_and_cache`] against an arbitrary cache
    /// slot — shared by the scalar scratch and the lane scratches.
    fn validate_and_cache_in(
        &self,
        n: usize,
        fs: f64,
        cache: &mut Option<(f64, f64, f64, SosCascade)>,
    ) -> Result<(usize, usize), DspError> {
        if fs <= 0.0 {
            return Err(DspError::InvalidParameter {
                name: "fs",
                reason: "must be positive",
            });
        }
        let min_len = (2.0 * fs) as usize;
        if n < min_len {
            return Err(DspError::TooShort {
                needed: min_len,
                got: n,
            });
        }
        let rebuild = match cache {
            Some((lo, hi, f, _)) => *lo != self.band_lo_hz || *hi != self.band_hi_hz || *f != fs,
            None => true,
        };
        if rebuild {
            let bp = SosCascade::butterworth_bandpass(self.band_lo_hz, self.band_hi_hz, fs, 1)?;
            *cache = Some((self.band_lo_hz, self.band_hi_hz, fs, bp));
        }
        let win = ((self.integration_window_s * fs).round() as usize).max(1);
        Ok((min_len, win))
    }

    /// Stages 5b–6, shared by every detector variant: adaptive dual
    /// thresholds with search-back over `local_peaks`/`mwi`, then peak
    /// refinement on the band-passed `filtered` signal. Generic over
    /// precision — threshold arithmetic runs in `T` (bit-identical to the
    /// historical `f64` code at `T = f64`), while RR/gap bookkeeping is
    /// index-derived and stays in `f64` so the search-back trigger logic
    /// is precision-independent.
    #[allow(clippy::too_many_arguments)]
    fn decide_from_mwi<T: kernels::Scalar>(
        &self,
        fs: f64,
        win: usize,
        min_len: usize,
        mwi: &[T],
        filtered: &[T],
        local_peaks: &[usize],
        qrs: &mut Vec<usize>,
        rr_recent: &mut Vec<f64>,
        out: &mut QrsDetection,
    ) {
        let refractory = (self.refractory_s * fs).round() as usize;
        let quarter = T::from_f64(0.25);
        let half_t = T::from_f64(0.5);
        let eighth = T::from_f64(0.125);
        let seven_eighths = T::from_f64(0.875);
        let three_quarters = T::from_f64(0.75);

        // Initialise thresholds from the first 2 s learning phase.
        let learn = &mwi[..min_len];
        let mut spki = max_t(learn) * quarter; // running signal peak
        let mut npki = mean_t(learn) * half_t; // running noise peak
        let mut threshold1 = npki + quarter * (spki - npki);

        qrs.clear();
        rr_recent.clear();
        let mut last_qrs_idx: Option<usize> = None;

        let mut i = 0usize;
        while i < local_peaks.len() {
            let p = local_peaks[i];
            let v = mwi[p];
            let since_last = last_qrs_idx.map(|l| p - l);
            let in_refractory = since_last.map(|d| d < refractory).unwrap_or(false);

            if !in_refractory && v > threshold1 {
                // Signal peak.
                if let Some(l) = last_qrs_idx {
                    // lint: allow(float-det) — exact integer→float cast (sample index).
                    let rr = (p - l) as f64 / fs;
                    rr_recent.push(rr);
                    if rr_recent.len() > 8 {
                        rr_recent.remove(0);
                    }
                }
                qrs.push(p);
                last_qrs_idx = Some(p);
                spki = eighth * v + seven_eighths * spki;
            } else if !in_refractory {
                // Noise peak.
                npki = eighth * v + seven_eighths * npki;
            }
            threshold1 = npki + quarter * (spki - npki);

            // Search-back: if too much time has elapsed without a QRS,
            // re-scan the gap with half threshold.
            if let (Some(l), false) = (last_qrs_idx, rr_recent.is_empty()) {
                let rr_avg = crate::stats::mean(rr_recent);
                // lint: allow(float-det) — exact integer→float cast (sample index).
                let gap = (p.saturating_sub(l)) as f64 / fs;
                if gap > self.searchback_factor * rr_avg {
                    let t2 = threshold1 * half_t;
                    // Find the biggest missed local peak strictly inside
                    // the gap that clears threshold2.
                    let cand = local_peaks
                        .iter()
                        .copied()
                        .filter(|&c| c > l + refractory && c + refractory < p)
                        .max_by(|&a, &b| mwi[a].total_cmp(&mwi[b]));
                    if let Some(c) = cand {
                        if mwi[c] > t2 {
                            // Insert in order.
                            qrs.push(c);
                            qrs.sort_unstable();
                            last_qrs_idx = qrs.last().copied();
                            spki = quarter * mwi[c] + three_quarters * spki;
                        }
                    }
                }
            }
            i += 1;
        }

        // 6) Refine peak positions on the band-passed signal: the MWI peak
        // lags the R wave by roughly the integration window; search a
        // window around each detection for the absolute maximum.
        let half = win;
        out.peaks.reserve(qrs.len());
        let mut last_index: Option<usize> = None;
        for &p in qrs.iter() {
            let lo = p.saturating_sub(half);
            let hi = (p + half / 2).min(filtered.len() - 1);
            // Conditional-move argmax: `best_v` always mirrors
            // `filtered[best]`, so the selection (strict `>`, earliest
            // index wins ties) is exactly the branchy scan's.
            let mut best = lo;
            let mut best_v = filtered[lo];
            for (off, &fj) in filtered[lo..=hi].iter().enumerate().skip(1) {
                let better = fj > best_v;
                best = if better { lo + off } else { best };
                best_v = if better { fj } else { best_v };
            }
            // De-duplicate refined peaks that collapse to the same R wave.
            if let Some(l) = last_index {
                if best <= l + refractory / 2 {
                    continue;
                }
            }
            last_index = Some(best);
            out.peaks.push(RPeak {
                index: best,
                // lint: allow(float-det) — exact integer→float cast (sample index).
                time_s: best as f64 / fs,
                amplitude: filtered[best].to_f64(),
            });
        }
    }
}

/// Sequential-fold mean in `T`, mirroring [`crate::stats::mean`]'s
/// accumulation order exactly (bit-identical at `T = f64`).
fn mean_t<T: kernels::Scalar>(x: &[T]) -> T {
    if x.is_empty() {
        return T::ZERO;
    }
    let mut s = T::ZERO;
    for &v in x {
        s += v;
    }
    // lint: allow(float-det) — exact integer→float cast (slice length).
    s / T::from_f64(x.len() as f64)
}

/// NaN-ignoring maximum in `T`, mirroring [`crate::stats::max`].
fn max_t<T: kernels::Scalar>(x: &[T]) -> T {
    x.iter().copied().fold(T::NEG_INFINITY, T::maxv)
}

/// Indices of strict local maxima separated by at least `min_dist` samples
/// (greedy, keeps the larger of two close peaks). One-shot wrapper over
/// [`local_maxima_into`], kept for the property tests.
#[cfg(test)]
fn local_maxima(x: &[f64], min_dist: usize) -> Vec<usize> {
    let mut cand = Vec::new();
    let mut kept = Vec::new();
    let mut buckets = Vec::new();
    local_maxima_into(x, min_dist, &mut cand, &mut kept, &mut buckets);
    kept
}

/// Scratch-reusing minimum-distance peak filter: `cand`/`buckets` are work
/// buffers, `kept` receives the result (all cleared first).
///
/// Exact-identical to [`local_maxima_into_reference`] but O(cand) instead
/// of O(cand × kept), with two constant-factor tricks on top:
///
/// - **Bitmask sweep.** The strict-maximum predicate is evaluated
///   branchlessly over 64-sample blocks into a peak bitmask (straight-line
///   compare/shift/or, amenable to vectorisation), then only the set bits
///   are walked — the sparse candidate hits (~10% of samples) never reach
///   the branch predictor as data-dependent branches.
/// - **Packed-key sort.** Candidates carry `(!value.sort_key(), index)`
///   packed into [`kernels::Scalar::Packed`] integers, whose ascending
///   order is exactly the reference's descending-`total_cmp` /
///   ascending-index stable sort — the sort compares registers instead of
///   re-reading `x` per comparison (one register per candidate at `f32`).
///
/// The bucket grid then enforces the distance constraint: any already
/// kept peak within `min_dist` of candidate `c` lies in bucket
/// `c / min_dist ± 1`, and each bucket holds at most one kept peak (two
/// peaks in one bucket would be closer than `min_dist`), so acceptance
/// decisions agree with the reference candidate by candidate.
fn local_maxima_into<T: kernels::Scalar>(
    x: &[T],
    min_dist: usize,
    cand: &mut Vec<T::Packed>,
    kept: &mut Vec<usize>,
    buckets: &mut Vec<usize>,
) {
    kept.clear();
    let n = x.len();
    if n < 3 {
        return;
    }
    cand.clear();
    // Peak positions are 1..n-1; block k of the mask covers position
    // i + k. Candidate order (ascending index) matches the windows(3)
    // sweep exactly, so the packed-key sort below sees the same input.
    const BLOCK: usize = 64;
    let mut i = 1usize;
    while i + BLOCK < n {
        let w = &x[i - 1..i + BLOCK + 1];
        let mut mask = 0u64;
        for k in 0..BLOCK {
            mask |= u64::from((w[k + 1] > w[k]) & (w[k + 1] >= w[k + 2])) << k;
        }
        while mask != 0 {
            let k = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            cand.push(x[i + k].pack_desc(i + k));
        }
        i += BLOCK;
    }
    while i + 1 < n {
        let v = x[i];
        if (v > x[i - 1]) & (v >= x[i + 1]) {
            cand.push(v.pack_desc(i));
        }
        i += 1;
    }
    cand.sort_unstable();
    let nb = n / min_dist + 2;
    buckets.clear();
    buckets.resize(nb, usize::MAX);
    'outer: for &p in cand.iter() {
        let c = T::unpack_index(p);
        let b = c / min_dist;
        let lo = b.saturating_sub(1);
        let hi = (b + 1).min(nb - 1);
        for &k in &buckets[lo..=hi] {
            if k != usize::MAX && c.abs_diff(k) < min_dist {
                continue 'outer;
            }
        }
        buckets[b] = c;
        kept.push(c);
    }
    kept.sort_unstable();
}

/// Quadratic greedy reference for [`local_maxima_into`]: every candidate
/// is checked against every kept peak. Retained for
/// [`PanTompkins::detect_into_reference`] and the bucket-grid property
/// tests.
fn local_maxima_into_reference(
    x: &[f64],
    min_dist: usize,
    cand: &mut Vec<usize>,
    kept: &mut Vec<usize>,
) {
    cand.clear();
    cand.extend((1..x.len().saturating_sub(1)).filter(|&i| x[i] > x[i - 1] && x[i] >= x[i + 1]));
    // Enforce minimum distance, preferring larger peaks.
    cand.sort_by(|&a, &b| x[b].total_cmp(&x[a]));
    kept.clear();
    'outer: for &c in cand.iter() {
        for &k in kept.iter() {
            if c.abs_diff(k) < min_dist {
                continue 'outer;
            }
        }
        kept.push(c);
    }
    kept.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    /// Minimal synthetic ECG: Gaussian R spikes on a noisy wandering
    /// baseline, beats at the given times.
    fn synth_ecg(fs: f64, dur_s: f64, beat_times: &[f64]) -> Vec<f64> {
        let n = (fs * dur_s) as usize;
        let mut sig = vec![0.0f64; n];
        for (i, s) in sig.iter_mut().enumerate() {
            let t = i as f64 / fs;
            // Baseline wander + mild noise.
            *s += 0.15 * (2.0 * PI * 0.3 * t).sin();
            *s += 0.02 * (2.0 * PI * 17.3 * t).sin();
        }
        for &bt in beat_times {
            let centre = (bt * fs) as isize;
            for k in -20..=20isize {
                let idx = centre + k;
                if idx >= 0 && (idx as usize) < n {
                    let dt = k as f64 / fs;
                    // Narrow R wave (sigma ~ 12 ms) with small Q/S dips.
                    sig[idx as usize] += 1.0 * (-dt * dt / (2.0 * 0.012f64.powi(2))).exp();
                    sig[idx as usize] -=
                        0.15 * (-(dt - 0.035).powi(2) / (2.0 * 0.015f64.powi(2))).exp();
                }
            }
        }
        sig
    }

    fn regular_beats(start: f64, rr: f64, end: f64) -> Vec<f64> {
        let mut t = start;
        let mut v = Vec::new();
        while t < end {
            v.push(t);
            t += rr;
        }
        v
    }

    #[test]
    fn detects_regular_rhythm() {
        let fs = 128.0;
        let beats = regular_beats(0.5, 0.8, 29.5); // 75 bpm
        let ecg = synth_ecg(fs, 30.0, &beats);
        let det = PanTompkins::default().detect(&ecg, fs).unwrap();
        // Allow missing a couple at the edges.
        assert!(
            det.peaks.len() >= beats.len() - 2 && det.peaks.len() <= beats.len() + 1,
            "found {} of {}",
            det.peaks.len(),
            beats.len()
        );
        let hr = det.mean_heart_rate_bpm().unwrap();
        assert!((hr - 75.0).abs() < 3.0, "hr {hr}");
    }

    #[test]
    fn peak_positions_are_accurate() {
        let fs = 256.0;
        let beats = regular_beats(1.0, 1.0, 19.0);
        let ecg = synth_ecg(fs, 20.0, &beats);
        let det = PanTompkins::default().detect(&ecg, fs).unwrap();
        for p in &det.peaks {
            let nearest = beats
                .iter()
                .map(|b| (p.time_s - b).abs())
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 0.05, "peak at {} off by {nearest}", p.time_s);
        }
    }

    #[test]
    fn tracks_changing_rate() {
        let fs = 128.0;
        // 60 bpm then 120 bpm (ictal tachycardia pattern).
        let mut beats = regular_beats(0.5, 1.0, 15.0);
        beats.extend(regular_beats(15.3, 0.5, 29.5));
        let ecg = synth_ecg(fs, 30.0, &beats);
        let det = PanTompkins::default().detect(&ecg, fs).unwrap();
        let rr = det.rr_intervals();
        assert!(rr.len() > 30);
        let first: Vec<f64> = rr.iter().copied().filter(|&r| r > 0.75).collect();
        let second: Vec<f64> = rr.iter().copied().filter(|&r| r <= 0.75).collect();
        assert!(first.len() >= 10, "slow beats {}", first.len());
        assert!(second.len() >= 20, "fast beats {}", second.len());
    }

    #[test]
    fn amplitude_modulation_is_preserved() {
        // Modulate R amplitude at a respiratory rate; the detected
        // amplitudes should carry that modulation (the EDR principle).
        let fs = 128.0;
        let beats = regular_beats(0.5, 0.75, 59.0);
        let mut ecg = synth_ecg(fs, 60.0, &beats);
        for (i, s) in ecg.iter_mut().enumerate() {
            let t = i as f64 / fs;
            *s *= 1.0 + 0.25 * (2.0 * PI * 0.25 * t).sin();
        }
        let det = PanTompkins::default().detect(&ecg, fs).unwrap();
        let amps = det.amplitudes();
        let spread = crate::stats::max(&amps) - crate::stats::min(&amps);
        let m = crate::stats::mean(&amps);
        assert!(spread / m > 0.2, "relative spread {}", spread / m);
    }

    #[test]
    fn rejects_bad_input() {
        let p = PanTompkins::default();
        assert!(p.detect(&[0.0; 10], 128.0).is_err());
        assert!(p.detect(&[0.0; 1000], 0.0).is_err());
    }

    #[test]
    fn rr_interval_accessors() {
        let det = QrsDetection {
            peaks: vec![
                RPeak {
                    index: 0,
                    time_s: 0.0,
                    amplitude: 1.0,
                },
                RPeak {
                    index: 100,
                    time_s: 1.0,
                    amplitude: 1.1,
                },
                RPeak {
                    index: 180,
                    time_s: 1.8,
                    amplitude: 0.9,
                },
            ],
        };
        let rr = det.rr_intervals();
        assert!((rr[0] - 1.0).abs() < 1e-12 && (rr[1] - 0.8).abs() < 1e-12);
        assert_eq!(det.rr_times(), vec![1.0, 1.8]);
        assert_eq!(det.amplitudes(), vec![1.0, 1.1, 0.9]);
        let empty = QrsDetection::default();
        assert!(empty.mean_heart_rate_bpm().is_none());
    }

    #[test]
    fn detect_into_with_reused_scratch_is_bit_identical() {
        let fs = 128.0;
        let det = PanTompkins::default();
        let mut scratch = DetectScratch::default();
        let mut out = QrsDetection::default();
        // Different rhythms and lengths through ONE scratch: every result
        // must match a fresh one-shot detect bit for bit.
        for (rr, dur) in [(0.8, 30.0), (0.5, 20.0), (1.1, 25.0)] {
            let ecg = synth_ecg(fs, dur, &regular_beats(0.5, rr, dur - 0.5));
            det.detect_into(&ecg, fs, &mut scratch, &mut out).unwrap();
            let reference = det.detect(&ecg, fs).unwrap();
            assert_eq!(out, reference, "rr {rr}");
            for (a, b) in out.peaks.iter().zip(reference.peaks.iter()) {
                assert_eq!(a.amplitude.to_bits(), b.amplitude.to_bits());
                assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
            }
        }
        // Errors leave the output cleared.
        assert!(det
            .detect_into(&[0.0; 10], fs, &mut scratch, &mut out)
            .is_err());
        assert!(out.peaks.is_empty());
    }

    #[test]
    fn local_maxima_respects_distance() {
        let x = [0.0, 3.0, 0.0, 2.9, 0.0, 5.0, 0.0];
        let peaks = local_maxima(&x, 3);
        assert!(peaks.contains(&5));
        assert!(peaks.contains(&1));
        assert!(!peaks.contains(&3)); // too close to index 1 or 5, smaller
    }

    /// Deterministic xorshift64* stream in [0, 1).
    fn xorshift_stream(mut state: u64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn bucketed_local_maxima_matches_greedy_reference() {
        let mut cand = Vec::new();
        let mut kept = Vec::new();
        let mut buckets = Vec::new();
        let mut cand_ref = Vec::new();
        let mut kept_ref = Vec::new();
        for seed in [1u64, 42, 9_000_001] {
            for n in [3usize, 10, 257, 2048] {
                let x = xorshift_stream(seed, n);
                for min_dist in [1usize, 2, 5, 26, 100, 3000] {
                    local_maxima_into(&x, min_dist, &mut cand, &mut kept, &mut buckets);
                    local_maxima_into_reference(&x, min_dist, &mut cand_ref, &mut kept_ref);
                    assert_eq!(kept, kept_ref, "seed {seed} n {n} min_dist {min_dist}");
                }
            }
        }
    }

    #[test]
    fn fused_detect_matches_reference_bitwise() {
        let fs = 128.0;
        let det = PanTompkins::default();
        let mut scratch = DetectScratch::default();
        let mut fused = QrsDetection::default();
        let mut reference = QrsDetection::default();
        for (rr, dur) in [(0.8, 30.0), (0.5, 20.0), (1.1, 25.0)] {
            let ecg = synth_ecg(fs, dur, &regular_beats(0.5, rr, dur - 0.5));
            det.detect_into(&ecg, fs, &mut scratch, &mut fused).unwrap();
            det.detect_into_reference(&ecg, fs, &mut scratch, &mut reference)
                .unwrap();
            assert_eq!(fused.peaks.len(), reference.peaks.len(), "rr {rr}");
            for (a, b) in fused.peaks.iter().zip(reference.peaks.iter()) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
                assert_eq!(a.amplitude.to_bits(), b.amplitude.to_bits());
            }
        }
    }

    #[test]
    fn lane_detection_matches_scalar_bitwise() {
        let fs = 128.0;
        let det = PanTompkins::default();
        let mut scratch = DetectScratch::default();
        let mut lanes4 = LaneDetectScratch::<f64, 4>::default();
        let mut outs = vec![QrsDetection::default(); 4];
        let ecgs: Vec<Vec<f64>> = [0.8, 0.5, 1.1, 0.7]
            .iter()
            .map(|&rr| synth_ecg(fs, 30.0, &regular_beats(0.5, rr, 29.5)))
            .collect();
        let windows: Vec<&[f64]> = ecgs.iter().map(|e| e.as_slice()).collect();
        det.detect_lanes_into(&windows, fs, &mut lanes4, &mut outs)
            .unwrap();
        let mut reference = QrsDetection::default();
        for (w, out) in windows.iter().zip(outs.iter()) {
            det.detect_into(w, fs, &mut scratch, &mut reference)
                .unwrap();
            assert_eq!(out.peaks.len(), reference.peaks.len());
            for (a, b) in out.peaks.iter().zip(reference.peaks.iter()) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
                assert_eq!(a.amplitude.to_bits(), b.amplitude.to_bits());
            }
        }
        // A too-short group fails as a whole with every output cleared.
        let short = vec![0.0; 10];
        let sw: Vec<&[f64]> = (0..4).map(|_| short.as_slice()).collect();
        assert!(det
            .detect_lanes_into(&sw, fs, &mut lanes4, &mut outs)
            .is_err());
        assert!(outs.iter().all(|o| o.peaks.is_empty()));
    }

    #[test]
    fn f32_detection_tracks_f64_on_clean_rhythms() {
        let fs = 128.0;
        let det = PanTompkins::default();
        let mut scratch = DetectScratch::default();
        let mut lo = QrsDetection::default();
        let mut hi = QrsDetection::default();
        for (rr, dur) in [(0.8, 30.0), (0.6, 24.0)] {
            let beats = regular_beats(0.5, rr, dur - 0.5);
            let ecg = synth_ecg(fs, dur, &beats);
            det.detect_into_with(&ecg, fs, ExtractPrecision::F32, &mut scratch, &mut lo)
                .unwrap();
            det.detect_into(&ecg, fs, &mut scratch, &mut hi).unwrap();
            assert_eq!(lo.peaks.len(), hi.peaks.len(), "rr {rr}");
            for (a, b) in lo.peaks.iter().zip(hi.peaks.iter()) {
                // Same beats: indices within one sample, amplitudes within
                // f32 rounding of the band-passed signal.
                assert!(a.index.abs_diff(b.index) <= 1, "{} vs {}", a.index, b.index);
                assert!(
                    (a.amplitude - b.amplitude).abs() <= 1e-4 * b.amplitude.abs().max(1.0),
                    "{} vs {}",
                    a.amplitude,
                    b.amplitude
                );
            }
        }
    }
}
