//! Pan–Tompkins QRS (R-peak) detection.
//!
//! Classic pipeline: band-pass (5–15 Hz) → five-point derivative → squaring
//! → moving-window integration (150 ms) → adaptive dual thresholds with a
//! 200 ms refractory period and a search-back pass for missed beats.
//!
//! The detector returns both R-peak sample indices and the R-wave amplitude
//! measured on the band-passed signal; the amplitudes drive the EDR
//! (ECG-derived respiration) extraction downstream.

use crate::error::DspError;
use crate::filter::{five_point_derivative_into, moving_average_into, FiltFiltScratch, SosCascade};

/// One detected R peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RPeak {
    /// Sample index into the analysed signal.
    pub index: usize,
    /// Time in seconds from the start of the signal.
    pub time_s: f64,
    /// R-wave amplitude on the band-passed signal (arbitrary units).
    pub amplitude: f64,
}

/// Detector output: peaks plus the RR tachogram.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QrsDetection {
    /// Detected R peaks in temporal order.
    pub peaks: Vec<RPeak>,
}

impl QrsDetection {
    /// RR intervals (s) between successive peaks; `len = peaks - 1`.
    pub fn rr_intervals(&self) -> Vec<f64> {
        self.peaks
            .windows(2)
            .map(|w| w[1].time_s - w[0].time_s)
            .collect()
    }

    /// Times (s) of each RR interval, conventionally the time of the second
    /// beat of the pair.
    pub fn rr_times(&self) -> Vec<f64> {
        self.peaks.iter().skip(1).map(|p| p.time_s).collect()
    }

    /// R-wave amplitudes in temporal order.
    pub fn amplitudes(&self) -> Vec<f64> {
        self.peaks.iter().map(|p| p.amplitude).collect()
    }

    /// Mean heart rate in beats per minute; `None` with fewer than two
    /// peaks.
    pub fn mean_heart_rate_bpm(&self) -> Option<f64> {
        let rr = self.rr_intervals();
        if rr.is_empty() {
            return None;
        }
        Some(60.0 / crate::stats::mean(&rr))
    }
}

/// Pan–Tompkins detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PanTompkins {
    /// Band-pass low corner (Hz). Default 5.
    pub band_lo_hz: f64,
    /// Band-pass high corner (Hz). Default 15.
    pub band_hi_hz: f64,
    /// Moving-window integration length (s). Default 0.150.
    pub integration_window_s: f64,
    /// Refractory period (s) during which a second QRS cannot occur.
    /// Default 0.200.
    pub refractory_s: f64,
    /// Search-back trigger: if no QRS is found within this multiple of the
    /// running RR average, the threshold is halved and the interval
    /// re-scanned. Default 1.66.
    pub searchback_factor: f64,
}

impl Default for PanTompkins {
    fn default() -> Self {
        PanTompkins {
            band_lo_hz: 5.0,
            band_hi_hz: 15.0,
            integration_window_s: 0.150,
            refractory_s: 0.200,
            searchback_factor: 1.66,
        }
    }
}

/// Reusable work buffers for [`PanTompkins::detect_into`].
///
/// The batch detector allocates several full-signal-length vectors per
/// call (band-passed signal, derivative, squared signal, integrated
/// signal, peak candidate lists). A streaming monitor classifying one
/// window per stride cannot afford that churn, so the scratch keeps every
/// buffer alive across calls — after the first window the detection hot
/// path performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct DetectScratch {
    filtfilt: FiltFiltScratch,
    filtered: Vec<f64>,
    deriv: Vec<f64>,
    squared: Vec<f64>,
    mwi: Vec<f64>,
    peak_cand: Vec<usize>,
    local_peaks: Vec<usize>,
    qrs: Vec<usize>,
    rr_recent: Vec<f64>,
    /// Cached band-pass design, keyed by `(band_lo, band_hi, fs)`.
    bandpass: Option<(f64, f64, f64, SosCascade)>,
}

impl PanTompkins {
    /// Runs the detector on `ecg` sampled at `fs` Hz.
    ///
    /// One-shot convenience over [`PanTompkins::detect_into`] (which the
    /// streaming path uses with a persistent [`DetectScratch`]); both
    /// produce bit-identical detections.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::TooShort`] for signals shorter than two seconds
    /// (the adaptive thresholds need a learning phase) and
    /// [`DspError::InvalidParameter`] for invalid `fs` or corner
    /// frequencies.
    pub fn detect(&self, ecg: &[f64], fs: f64) -> Result<QrsDetection, DspError> {
        let mut scratch = DetectScratch::default();
        let mut out = QrsDetection::default();
        self.detect_into(ecg, fs, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Scratch-reusing detector: clears and refills `out.peaks`, keeping
    /// all intermediate buffers in `scratch` so repeated calls allocate
    /// nothing after warm-up. Bit-identical to [`PanTompkins::detect`].
    ///
    /// # Errors
    ///
    /// Same contract as [`PanTompkins::detect`]; on error `out` is left
    /// cleared.
    pub fn detect_into(
        &self,
        ecg: &[f64],
        fs: f64,
        scratch: &mut DetectScratch,
        out: &mut QrsDetection,
    ) -> Result<(), DspError> {
        out.peaks.clear();
        if fs <= 0.0 {
            return Err(DspError::InvalidParameter {
                name: "fs",
                reason: "must be positive",
            });
        }
        let min_len = (2.0 * fs) as usize;
        if ecg.len() < min_len {
            return Err(DspError::TooShort {
                needed: min_len,
                got: ecg.len(),
            });
        }

        // 1) Band-pass (design cached across calls at a fixed rate).
        let rebuild = match &scratch.bandpass {
            Some((lo, hi, f, _)) => *lo != self.band_lo_hz || *hi != self.band_hi_hz || *f != fs,
            None => true,
        };
        if rebuild {
            let bp = SosCascade::butterworth_bandpass(self.band_lo_hz, self.band_hi_hz, fs, 1)?;
            scratch.bandpass = Some((self.band_lo_hz, self.band_hi_hz, fs, bp));
        }
        let bp = &scratch.bandpass.as_ref().expect("cached band-pass").3;
        bp.filtfilt_into(ecg, &mut scratch.filtfilt, &mut scratch.filtered);
        let filtered = &scratch.filtered;

        // 2) Derivative, 3) squaring, 4) moving-window integration.
        five_point_derivative_into(filtered, fs, &mut scratch.deriv);
        scratch.squared.clear();
        scratch.squared.extend(scratch.deriv.iter().map(|v| v * v));
        let win = ((self.integration_window_s * fs).round() as usize).max(1);
        moving_average_into(&scratch.squared, win, &mut scratch.mwi)?;
        let mwi = &scratch.mwi;

        // 5) Adaptive thresholding on the MWI signal.
        let refractory = (self.refractory_s * fs).round() as usize;
        local_maxima_into(
            mwi,
            refractory.max(1),
            &mut scratch.peak_cand,
            &mut scratch.local_peaks,
        );
        let local_peaks = &scratch.local_peaks;

        // Initialise thresholds from the first 2 s learning phase.
        let learn = &mwi[..min_len];
        let mut spki = crate::stats::max(learn) * 0.25; // running signal peak
        let mut npki = crate::stats::mean(learn) * 0.5; // running noise peak
        let mut threshold1 = npki + 0.25 * (spki - npki);

        scratch.qrs.clear();
        scratch.rr_recent.clear();
        let qrs = &mut scratch.qrs;
        let rr_recent = &mut scratch.rr_recent;
        let mut last_qrs_idx: Option<usize> = None;

        let mut i = 0usize;
        while i < local_peaks.len() {
            let p = local_peaks[i];
            let v = mwi[p];
            let since_last = last_qrs_idx.map(|l| p - l);
            let in_refractory = since_last.map(|d| d < refractory).unwrap_or(false);

            if !in_refractory && v > threshold1 {
                // Signal peak.
                if let Some(l) = last_qrs_idx {
                    let rr = (p - l) as f64 / fs;
                    rr_recent.push(rr);
                    if rr_recent.len() > 8 {
                        rr_recent.remove(0);
                    }
                }
                qrs.push(p);
                last_qrs_idx = Some(p);
                spki = 0.125 * v + 0.875 * spki;
            } else if !in_refractory {
                // Noise peak.
                npki = 0.125 * v + 0.875 * npki;
            }
            threshold1 = npki + 0.25 * (spki - npki);

            // Search-back: if too much time has elapsed without a QRS,
            // re-scan the gap with half threshold.
            if let (Some(l), false) = (last_qrs_idx, rr_recent.is_empty()) {
                let rr_avg = crate::stats::mean(rr_recent);
                let gap = (p.saturating_sub(l)) as f64 / fs;
                if gap > self.searchback_factor * rr_avg {
                    let t2 = threshold1 * 0.5;
                    // Find the biggest missed local peak strictly inside
                    // the gap that clears threshold2.
                    let cand = local_peaks
                        .iter()
                        .copied()
                        .filter(|&c| c > l + refractory && c + refractory < p)
                        .max_by(|&a, &b| mwi[a].total_cmp(&mwi[b]));
                    if let Some(c) = cand {
                        if mwi[c] > t2 {
                            // Insert in order.
                            qrs.push(c);
                            qrs.sort_unstable();
                            last_qrs_idx = Some(*qrs.last().expect("non-empty"));
                            spki = 0.25 * mwi[c] + 0.75 * spki;
                        }
                    }
                }
            }
            i += 1;
        }

        // 6) Refine peak positions on the band-passed signal: the MWI peak
        // lags the R wave by roughly the integration window; search a
        // window around each detection for the absolute maximum.
        let half = win;
        out.peaks.reserve(qrs.len());
        let mut last_index: Option<usize> = None;
        for &p in qrs.iter() {
            let lo = p.saturating_sub(half);
            let hi = (p + half / 2).min(filtered.len() - 1);
            let mut best = lo;
            for j in lo..=hi {
                if filtered[j] > filtered[best] {
                    best = j;
                }
            }
            // De-duplicate refined peaks that collapse to the same R wave.
            if let Some(l) = last_index {
                if best <= l + refractory / 2 {
                    continue;
                }
            }
            last_index = Some(best);
            out.peaks.push(RPeak {
                index: best,
                time_s: best as f64 / fs,
                amplitude: filtered[best],
            });
        }
        Ok(())
    }
}

/// Indices of strict local maxima separated by at least `min_dist` samples
/// (greedy, keeps the larger of two close peaks). One-shot reference twin
/// of [`local_maxima_into`], kept for the property tests.
#[cfg(test)]
fn local_maxima(x: &[f64], min_dist: usize) -> Vec<usize> {
    let mut cand = Vec::new();
    let mut kept = Vec::new();
    local_maxima_into(x, min_dist, &mut cand, &mut kept);
    kept
}

/// Scratch-reusing twin of [`local_maxima`]: `cand` is a work buffer,
/// `kept` receives the result (both cleared first).
fn local_maxima_into(x: &[f64], min_dist: usize, cand: &mut Vec<usize>, kept: &mut Vec<usize>) {
    cand.clear();
    cand.extend((1..x.len().saturating_sub(1)).filter(|&i| x[i] > x[i - 1] && x[i] >= x[i + 1]));
    // Enforce minimum distance, preferring larger peaks.
    cand.sort_by(|&a, &b| x[b].total_cmp(&x[a]));
    kept.clear();
    'outer: for &c in cand.iter() {
        for &k in kept.iter() {
            if c.abs_diff(k) < min_dist {
                continue 'outer;
            }
        }
        kept.push(c);
    }
    kept.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    /// Minimal synthetic ECG: Gaussian R spikes on a noisy wandering
    /// baseline, beats at the given times.
    fn synth_ecg(fs: f64, dur_s: f64, beat_times: &[f64]) -> Vec<f64> {
        let n = (fs * dur_s) as usize;
        let mut sig = vec![0.0f64; n];
        for (i, s) in sig.iter_mut().enumerate() {
            let t = i as f64 / fs;
            // Baseline wander + mild noise.
            *s += 0.15 * (2.0 * PI * 0.3 * t).sin();
            *s += 0.02 * (2.0 * PI * 17.3 * t).sin();
        }
        for &bt in beat_times {
            let centre = (bt * fs) as isize;
            for k in -20..=20isize {
                let idx = centre + k;
                if idx >= 0 && (idx as usize) < n {
                    let dt = k as f64 / fs;
                    // Narrow R wave (sigma ~ 12 ms) with small Q/S dips.
                    sig[idx as usize] += 1.0 * (-dt * dt / (2.0 * 0.012f64.powi(2))).exp();
                    sig[idx as usize] -=
                        0.15 * (-(dt - 0.035).powi(2) / (2.0 * 0.015f64.powi(2))).exp();
                }
            }
        }
        sig
    }

    fn regular_beats(start: f64, rr: f64, end: f64) -> Vec<f64> {
        let mut t = start;
        let mut v = Vec::new();
        while t < end {
            v.push(t);
            t += rr;
        }
        v
    }

    #[test]
    fn detects_regular_rhythm() {
        let fs = 128.0;
        let beats = regular_beats(0.5, 0.8, 29.5); // 75 bpm
        let ecg = synth_ecg(fs, 30.0, &beats);
        let det = PanTompkins::default().detect(&ecg, fs).unwrap();
        // Allow missing a couple at the edges.
        assert!(
            det.peaks.len() >= beats.len() - 2 && det.peaks.len() <= beats.len() + 1,
            "found {} of {}",
            det.peaks.len(),
            beats.len()
        );
        let hr = det.mean_heart_rate_bpm().unwrap();
        assert!((hr - 75.0).abs() < 3.0, "hr {hr}");
    }

    #[test]
    fn peak_positions_are_accurate() {
        let fs = 256.0;
        let beats = regular_beats(1.0, 1.0, 19.0);
        let ecg = synth_ecg(fs, 20.0, &beats);
        let det = PanTompkins::default().detect(&ecg, fs).unwrap();
        for p in &det.peaks {
            let nearest = beats
                .iter()
                .map(|b| (p.time_s - b).abs())
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 0.05, "peak at {} off by {nearest}", p.time_s);
        }
    }

    #[test]
    fn tracks_changing_rate() {
        let fs = 128.0;
        // 60 bpm then 120 bpm (ictal tachycardia pattern).
        let mut beats = regular_beats(0.5, 1.0, 15.0);
        beats.extend(regular_beats(15.3, 0.5, 29.5));
        let ecg = synth_ecg(fs, 30.0, &beats);
        let det = PanTompkins::default().detect(&ecg, fs).unwrap();
        let rr = det.rr_intervals();
        assert!(rr.len() > 30);
        let first: Vec<f64> = rr.iter().copied().filter(|&r| r > 0.75).collect();
        let second: Vec<f64> = rr.iter().copied().filter(|&r| r <= 0.75).collect();
        assert!(first.len() >= 10, "slow beats {}", first.len());
        assert!(second.len() >= 20, "fast beats {}", second.len());
    }

    #[test]
    fn amplitude_modulation_is_preserved() {
        // Modulate R amplitude at a respiratory rate; the detected
        // amplitudes should carry that modulation (the EDR principle).
        let fs = 128.0;
        let beats = regular_beats(0.5, 0.75, 59.0);
        let mut ecg = synth_ecg(fs, 60.0, &beats);
        for (i, s) in ecg.iter_mut().enumerate() {
            let t = i as f64 / fs;
            *s *= 1.0 + 0.25 * (2.0 * PI * 0.25 * t).sin();
        }
        let det = PanTompkins::default().detect(&ecg, fs).unwrap();
        let amps = det.amplitudes();
        let spread = crate::stats::max(&amps) - crate::stats::min(&amps);
        let m = crate::stats::mean(&amps);
        assert!(spread / m > 0.2, "relative spread {}", spread / m);
    }

    #[test]
    fn rejects_bad_input() {
        let p = PanTompkins::default();
        assert!(p.detect(&[0.0; 10], 128.0).is_err());
        assert!(p.detect(&[0.0; 1000], 0.0).is_err());
    }

    #[test]
    fn rr_interval_accessors() {
        let det = QrsDetection {
            peaks: vec![
                RPeak {
                    index: 0,
                    time_s: 0.0,
                    amplitude: 1.0,
                },
                RPeak {
                    index: 100,
                    time_s: 1.0,
                    amplitude: 1.1,
                },
                RPeak {
                    index: 180,
                    time_s: 1.8,
                    amplitude: 0.9,
                },
            ],
        };
        let rr = det.rr_intervals();
        assert!((rr[0] - 1.0).abs() < 1e-12 && (rr[1] - 0.8).abs() < 1e-12);
        assert_eq!(det.rr_times(), vec![1.0, 1.8]);
        assert_eq!(det.amplitudes(), vec![1.0, 1.1, 0.9]);
        let empty = QrsDetection::default();
        assert!(empty.mean_heart_rate_bpm().is_none());
    }

    #[test]
    fn detect_into_with_reused_scratch_is_bit_identical() {
        let fs = 128.0;
        let det = PanTompkins::default();
        let mut scratch = DetectScratch::default();
        let mut out = QrsDetection::default();
        // Different rhythms and lengths through ONE scratch: every result
        // must match a fresh one-shot detect bit for bit.
        for (rr, dur) in [(0.8, 30.0), (0.5, 20.0), (1.1, 25.0)] {
            let ecg = synth_ecg(fs, dur, &regular_beats(0.5, rr, dur - 0.5));
            det.detect_into(&ecg, fs, &mut scratch, &mut out).unwrap();
            let reference = det.detect(&ecg, fs).unwrap();
            assert_eq!(out, reference, "rr {rr}");
            for (a, b) in out.peaks.iter().zip(reference.peaks.iter()) {
                assert_eq!(a.amplitude.to_bits(), b.amplitude.to_bits());
                assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
            }
        }
        // Errors leave the output cleared.
        assert!(det
            .detect_into(&[0.0; 10], fs, &mut scratch, &mut out)
            .is_err());
        assert!(out.peaks.is_empty());
    }

    #[test]
    fn local_maxima_respects_distance() {
        let x = [0.0, 3.0, 0.0, 2.9, 0.0, 5.0, 0.0];
        let peaks = local_maxima(&x, 3);
        assert!(peaks.contains(&5));
        assert!(peaks.contains(&1));
        assert!(!peaks.contains(&3)); // too close to index 1 or 5, smaller
    }
}
