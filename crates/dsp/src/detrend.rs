//! Mean and linear-trend removal.

/// Removes the arithmetic mean in place.
pub fn remove_mean(x: &mut [f64]) {
    let m = crate::stats::mean(x);
    for v in x.iter_mut() {
        *v -= m;
    }
}

/// Removes the least-squares linear trend in place. Inputs shorter than two
/// samples only lose their mean.
pub fn detrend_linear(x: &mut [f64]) {
    let n = x.len();
    if n < 2 {
        remove_mean(x);
        return;
    }
    // Fit y = a + b*i by least squares over i = 0..n.
    let nf = n as f64;
    let sum_i = nf * (nf - 1.0) / 2.0;
    let sum_ii = (nf - 1.0) * nf * (2.0 * nf - 1.0) / 6.0;
    let sum_y: f64 = x.iter().sum();
    let sum_iy: f64 = x.iter().enumerate().map(|(i, &v)| i as f64 * v).sum();
    let denom = nf * sum_ii - sum_i * sum_i;
    let b = if denom != 0.0 {
        (nf * sum_iy - sum_i * sum_y) / denom
    } else {
        0.0
    };
    let a = (sum_y - b * sum_i) / nf;
    for (i, v) in x.iter_mut().enumerate() {
        *v -= a + b * i as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::mean;

    #[test]
    fn remove_mean_zeroes_mean() {
        let mut x = vec![1.0, 2.0, 3.0, 10.0];
        remove_mean(&mut x);
        assert!(mean(&x).abs() < 1e-12);
    }

    #[test]
    fn detrend_kills_a_ramp() {
        let mut x: Vec<f64> = (0..100).map(|i| 3.0 + 0.5 * i as f64).collect();
        detrend_linear(&mut x);
        assert!(x.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn detrend_preserves_oscillation_amplitude() {
        let mut x: Vec<f64> = (0..200)
            .map(|i| 5.0 + 0.1 * i as f64 + (i as f64 * 0.7).sin())
            .collect();
        let before_osc: Vec<f64> = (0..200).map(|i| (i as f64 * 0.7).sin()).collect();
        detrend_linear(&mut x);
        let rms_resid: f64 = x
            .iter()
            .zip(before_osc.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / 200.0;
        assert!(rms_resid.sqrt() < 0.1);
    }

    #[test]
    fn degenerate_lengths() {
        let mut empty: Vec<f64> = vec![];
        detrend_linear(&mut empty);
        let mut one = vec![42.0];
        detrend_linear(&mut one);
        assert!(one[0].abs() < 1e-12);
    }
}
