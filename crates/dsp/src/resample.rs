//! Interpolation and resampling of (possibly unevenly sampled) series.

use crate::error::DspError;

/// Linear interpolation of `(xs, ys)` at query point `x`.
///
/// Outside the support, the nearest endpoint value is returned (constant
/// extrapolation), which is the desired behaviour when regularising a
/// tachogram whose first/last beats do not align with the window edges.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when `xs` is empty and
/// [`DspError::LengthMismatch`] when `xs` and `ys` differ.
pub fn interp_linear(xs: &[f64], ys: &[f64], x: f64) -> Result<f64, DspError> {
    if xs.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if xs.len() != ys.len() {
        return Err(DspError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if x <= xs[0] {
        return Ok(ys[0]);
    }
    if x >= xs[xs.len() - 1] {
        return Ok(ys[ys.len() - 1]);
    }
    // Binary search for the bracketing interval.
    let idx = xs.partition_point(|&v| v < x);
    let (x0, x1) = (xs[idx - 1], xs[idx]);
    let (y0, y1) = (ys[idx - 1], ys[idx]);
    if x1 == x0 {
        return Ok(y0);
    }
    Ok(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
}

/// Resamples an unevenly sampled series `(t, y)` onto a uniform grid at
/// `fs` Hz spanning `[t[0], t[last]]`.
///
/// # Errors
///
/// Returns [`DspError::TooShort`] for fewer than 2 samples,
/// [`DspError::LengthMismatch`] for unequal inputs and
/// [`DspError::InvalidParameter`] for non-positive `fs` or non-increasing
/// time stamps.
pub fn resample_uniform(t: &[f64], y: &[f64], fs: f64) -> Result<Vec<f64>, DspError> {
    if t.len() != y.len() {
        return Err(DspError::LengthMismatch {
            left: t.len(),
            right: y.len(),
        });
    }
    if t.len() < 2 {
        return Err(DspError::TooShort {
            needed: 2,
            got: t.len(),
        });
    }
    if fs <= 0.0 {
        return Err(DspError::InvalidParameter {
            name: "fs",
            reason: "must be positive",
        });
    }
    if t.windows(2).any(|w| w[1] <= w[0]) {
        return Err(DspError::InvalidParameter {
            name: "t",
            reason: "time stamps must be strictly increasing",
        });
    }
    let span = t[t.len() - 1] - t[0];
    let n = (span * fs).floor() as usize + 1;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let x = t[0] + i as f64 / fs;
        out.push(interp_linear(t, y, x)?);
    }
    Ok(out)
}

/// Integer-factor decimation: keeps every `factor`-th sample after a
/// moving-average anti-aliasing pre-filter of the same length.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when `factor == 0`.
pub fn decimate(x: &[f64], factor: usize) -> Result<Vec<f64>, DspError> {
    if factor == 0 {
        return Err(DspError::InvalidParameter {
            name: "factor",
            reason: "must be >= 1",
        });
    }
    if factor == 1 {
        return Ok(x.to_vec());
    }
    let smoothed = crate::filter::moving_average(x, factor)?;
    Ok(smoothed.into_iter().step_by(factor).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interp_hits_knots_and_midpoints() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 0.0];
        assert_eq!(interp_linear(&xs, &ys, 1.0).unwrap(), 10.0);
        assert_eq!(interp_linear(&xs, &ys, 0.5).unwrap(), 5.0);
        assert_eq!(interp_linear(&xs, &ys, 1.5).unwrap(), 5.0);
    }

    #[test]
    fn interp_extrapolates_constant() {
        let xs = [1.0, 2.0];
        let ys = [3.0, 7.0];
        assert_eq!(interp_linear(&xs, &ys, 0.0).unwrap(), 3.0);
        assert_eq!(interp_linear(&xs, &ys, 5.0).unwrap(), 7.0);
    }

    #[test]
    fn interp_validates() {
        assert!(interp_linear(&[], &[], 0.0).is_err());
        assert!(interp_linear(&[1.0], &[1.0, 2.0], 0.0).is_err());
    }

    #[test]
    fn resample_linear_ramp_exactly() {
        // y = 2t sampled unevenly; linear interpolation recovers it exactly.
        let t = [0.0, 0.3, 1.1, 2.0, 3.0];
        let y: Vec<f64> = t.iter().map(|v| 2.0 * v).collect();
        let out = resample_uniform(&t, &y, 4.0).unwrap();
        assert_eq!(out.len(), 13); // 3 s * 4 Hz + 1
        for (i, v) in out.iter().enumerate() {
            let expect = 2.0 * (i as f64 / 4.0);
            assert!((v - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn resample_validates() {
        assert!(resample_uniform(&[0.0], &[1.0], 4.0).is_err());
        assert!(resample_uniform(&[0.0, 1.0], &[1.0], 4.0).is_err());
        assert!(resample_uniform(&[0.0, 1.0], &[1.0, 2.0], 0.0).is_err());
        assert!(resample_uniform(&[1.0, 1.0], &[1.0, 2.0], 4.0).is_err());
        assert!(resample_uniform(&[2.0, 1.0], &[1.0, 2.0], 4.0).is_err());
    }

    #[test]
    fn decimate_reduces_length() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y = decimate(&x, 4).unwrap();
        assert_eq!(y.len(), 25);
        assert!(decimate(&x, 0).is_err());
        assert_eq!(decimate(&x, 1).unwrap(), x);
    }

    #[test]
    fn decimate_antialiases() {
        // A tone right at the decimated Nyquist is attenuated by the MA.
        let fs = 64.0;
        let f = 30.0;
        let x: Vec<f64> = (0..512)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect();
        let y = decimate(&x, 8).unwrap();
        assert!(crate::stats::rms(&y[4..]) < 0.2);
    }
}
