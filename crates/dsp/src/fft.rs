//! Radix-2 fast Fourier transform and a small complex-number type.
//!
//! The FFT is an iterative, in-place Cooley–Tukey implementation with
//! bit-reversal permutation. Lengths must be powers of two; callers that
//! have arbitrary lengths should zero-pad (see [`next_pow2`]).

use std::f64::consts::PI;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// Minimal on purpose: only the operations the DSP stack needs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero value.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number on the unit circle at angle `theta` (radians).
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Modulus (Euclidean norm).
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus; cheaper than [`Complex::norm`] when only relative
    /// magnitude matters.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Returns the smallest power of two that is `>= n` (and at least 1).
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two().max(1)
}

/// In-place iterative radix-2 FFT.
///
/// `sign = -1.0` gives the forward transform, `+1.0` the (unscaled) inverse.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
fn fft_in_place(buf: &mut [Complex], sign: f64) {
    let n = buf.len();
    assert!(
        n.is_power_of_two(),
        "fft length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }

    // Danielson–Lanczos butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = buf[i + k + len / 2] * w;
                buf[i + k] = u + v;
                buf[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Forward FFT of a complex signal. The length must be a power of two.
///
/// # Panics
///
/// Panics if `input.len()` is not a power of two.
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    fft_in_place(&mut buf, -1.0);
    buf
}

/// Inverse FFT (scaled by `1/N` so that `ifft(fft(x)) == x`).
///
/// # Panics
///
/// Panics if `input.len()` is not a power of two.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    fft_in_place(&mut buf, 1.0);
    let k = 1.0 / buf.len() as f64;
    for v in &mut buf {
        *v = v.scale(k);
    }
    buf
}

/// FFT of a real signal, zero-padded to the next power of two.
///
/// Returns the full complex spectrum of length `next_pow2(input.len())`.
pub fn rfft(input: &[f64]) -> Vec<Complex> {
    let n = next_pow2(input.len());
    let mut buf = vec![Complex::ZERO; n];
    for (b, &x) in buf.iter_mut().zip(input.iter()) {
        b.re = x;
    }
    fft_in_place(&mut buf, -1.0);
    buf
}

/// Naive O(N^2) DFT, used as a reference in tests and for non-power-of-two
/// lengths where performance does not matter.
pub fn dft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut out = vec![Complex::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        for (t, &x) in input.iter().enumerate() {
            let ang = -2.0 * PI * (k * t) as f64 / n as f64;
            *o += x * Complex::from_polar(1.0, ang);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, tol: f64) {
        assert!(
            (a - b).norm() < tol,
            "expected {b:?}, got {a:?} (tol {tol})"
        );
    }

    #[test]
    fn complex_algebra() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_close(a / b * b, a, 1e-12);
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((Complex::new(3.0, 4.0).norm() - 5.0).abs() < 1e-15);
        assert_eq!((-a), Complex::new(-1.0, -2.0));
    }

    #[test]
    fn fft_matches_naive_dft() {
        let n = 32;
        let sig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let fast = fft(&sig);
        let slow = dft(&sig);
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert_close(*f, *s, 1e-9);
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let n = 64;
        let sig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let back = ifft(&fft(&sig));
        for (a, b) in back.iter().zip(sig.iter()) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut sig = vec![Complex::ZERO; 16];
        sig[0] = Complex::ONE;
        let spec = fft(&sig);
        for v in spec {
            assert_close(v, Complex::ONE, 1e-12);
        }
    }

    #[test]
    fn fft_linearity() {
        let n = 16;
        let a: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.0)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(0.0, (i * i) as f64)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fs = fft(&sum);
        for i in 0..n {
            assert_close(fs[i], fa[i] + fb[i], 1e-9);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let sig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((0.13 * i as f64).sin() + 0.5, 0.0))
            .collect();
        let spec = fft(&sig);
        let time_energy: f64 = sig.iter().map(|c| c.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn rfft_pads_to_pow2() {
        let sig = vec![1.0; 20];
        let spec = rfft(&sig);
        assert_eq!(spec.len(), 32);
        // DC bin holds the sum of samples.
        assert!((spec[0].re - 20.0).abs() < 1e-12);
        assert!(spec[0].im.abs() < 1e-12);
    }

    #[test]
    fn real_signal_spectrum_is_hermitian() {
        let sig: Vec<f64> = (0..64).map(|i| (0.4 * i as f64).sin() + 0.1).collect();
        let spec = rfft(&sig);
        let n = spec.len();
        for k in 1..n / 2 {
            assert_close(spec[k], spec[n - k].conj(), 1e-9);
        }
    }

    #[test]
    fn next_pow2_edges() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(1025), 2048);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_pow2() {
        let sig = vec![Complex::ZERO; 12];
        let _ = fft(&sig);
    }
}
