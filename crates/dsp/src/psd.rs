//! Power spectral density estimation: periodogram, Welch averaging and
//! Lomb–Scargle for unevenly sampled series (RR intervals).

use crate::error::DspError;
use crate::fft::{next_pow2, rfft};
use crate::kernels::{ExtractPrecision, RfftPlan};
use crate::window::WindowKind;
use std::cell::RefCell;
use std::f64::consts::PI;

/// A one-sided PSD estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    /// Frequency grid in Hz (ascending, starting at 0 or the first Lomb
    /// frequency).
    pub freqs: Vec<f64>,
    /// Power density at each frequency, in signal-units²/Hz.
    pub power: Vec<f64>,
}

impl Spectrum {
    /// Total power in the band `[lo, hi)` Hz, integrated with the trapezoid
    /// rule over the stored grid.
    ///
    /// The grid is ascending, so the scan jumps (binary search, using the
    /// same `f1 <= lo` comparison as the per-bin skip) to the first
    /// overlapping trapezoid and stops at the first one past `hi` —
    /// visiting exactly the bins the full scan would, in the same order,
    /// with the same per-bin arithmetic.
    pub fn band_power(&self, lo: f64, hi: f64) -> f64 {
        let mut acc = 0.0;
        let start = self.freqs.partition_point(|&f| f <= lo).max(1);
        for i in start..self.freqs.len() {
            let f0 = self.freqs[i - 1];
            let f1 = self.freqs[i];
            if f0 >= hi {
                break;
            }
            if f1 <= lo {
                continue;
            }
            // Clip the trapezoid to the band.
            let a = f0.max(lo);
            let b = f1.min(hi);
            if b <= a {
                continue;
            }
            // Linear interpolation of power at the clipped edges.
            let t0 = (a - f0) / (f1 - f0);
            let t1 = (b - f0) / (f1 - f0);
            let p0 = self.power[i - 1] + (self.power[i] - self.power[i - 1]) * t0;
            let p1 = self.power[i - 1] + (self.power[i] - self.power[i - 1]) * t1;
            acc += 0.5 * (p0 + p1) * (b - a);
        }
        acc
    }

    /// Total power over the whole estimated band.
    pub fn total_power(&self) -> f64 {
        match (self.freqs.first(), self.freqs.last()) {
            (Some(&lo), Some(&hi)) => self.band_power(lo, hi + f64::EPSILON),
            _ => 0.0,
        }
    }

    /// Frequency of the maximum power bin; `None` on an empty spectrum.
    pub fn peak_frequency(&self) -> Option<f64> {
        crate::stats::argmax(&self.power).map(|i| self.freqs[i])
    }
}

/// Cached spectral machinery for one `(segment length, window)` shape:
/// window coefficients (both precisions), their power normalisation, the
/// real-input FFT plans and every work buffer the hot loop touches. Kept
/// in a thread-local single-slot cache so the feature path — thousands of
/// Welch calls with one fixed `(nperseg, Hann)` shape per monitor thread —
/// builds windows and twiddle tables exactly once.
struct PlanSlot {
    wlen: usize,
    window: WindowKind,
    coeffs: Vec<f64>,
    coeffs32: Vec<f32>,
    /// `sum(w^2)` in [`WindowKind::apply`]'s accumulation order.
    wpow: f64,
    plan: RfftPlan<f64>,
    /// Built lazily on the first [`ExtractPrecision::F32`] call.
    plan32: Option<RfftPlan<f32>>,
    buf: Vec<f64>,
    buf32: Vec<f32>,
    pow: Vec<f64>,
}

thread_local! {
    static PLAN_SLOT: RefCell<Option<PlanSlot>> = const { RefCell::new(None) };
}

/// Runs `f` with the thread-local plan slot rebuilt (if necessary) for
/// `(wlen, window)`.
fn with_plan<R>(wlen: usize, window: WindowKind, f: impl FnOnce(&mut PlanSlot) -> R) -> R {
    PLAN_SLOT.with(|slot| {
        let mut slot = slot.borrow_mut();
        let rebuild = match slot.as_ref() {
            Some(s) => s.wlen != wlen || s.window != window,
            None => true,
        };
        if rebuild {
            let coeffs = window.coefficients(wlen);
            let wpow = coeffs.iter().map(|w| w * w).sum();
            let coeffs32 = coeffs.iter().map(|&w| w as f32).collect();
            *slot = Some(PlanSlot {
                wlen,
                window,
                coeffs,
                coeffs32,
                wpow,
                plan: RfftPlan::new(next_pow2(wlen)),
                plan32: None,
                buf: Vec::with_capacity(wlen),
                buf32: Vec::new(),
                pow: Vec::new(),
            });
        }
        f(slot.as_mut().expect("plan slot filled"))
    })
}

/// Detrends, windows and transforms one segment, leaving the scaled
/// one-sided PSD bins in `slot.pow`. Mean removal and windowing are fused
/// into the transform input fill; the `F32` arm narrows once and runs the
/// half-size FFT in `f32`, emitting `f64` powers.
fn segment_power(slot: &mut PlanSlot, seg: &[f64], fs: f64, precision: ExtractPrecision) {
    let m = crate::stats::mean(seg);
    match precision {
        ExtractPrecision::F64 => {
            slot.buf.clear();
            slot.buf.extend(
                seg.iter()
                    .zip(slot.coeffs.iter())
                    .map(|(&v, &w)| (v - m) * w),
            );
            slot.plan.power_into(&slot.buf, &mut slot.pow);
        }
        ExtractPrecision::F32 => {
            let m32 = m as f32;
            slot.buf32.clear();
            slot.buf32.extend(
                seg.iter()
                    .zip(slot.coeffs32.iter())
                    .map(|(&v, &w)| (v as f32 - m32) * w),
            );
            let n = slot.plan.len();
            let plan32 = slot.plan32.get_or_insert_with(|| RfftPlan::new(n));
            plan32.power_into(&slot.buf32, &mut slot.pow);
        }
    }
    let nfft = slot.plan.len();
    let scale = 1.0 / (fs * slot.wpow);
    for (k, p) in slot.pow.iter_mut().enumerate() {
        *p *= scale;
        // One-sided: double everything except DC and Nyquist.
        if k != 0 && k != nfft / 2 {
            *p *= 2.0;
        }
    }
}

/// One-sided periodogram of an evenly sampled signal.
///
/// The signal is detrended (mean removal), windowed, zero-padded to a power
/// of two and scaled so that the integral of the PSD approximates the signal
/// variance.
///
/// Runs the plan-cached real-input FFT; [`periodogram_reference`] keeps the
/// pre-fusion full-complex path, which the `dsp_kernel_equivalence` suite
/// pins this against at ≤1e-12 relative.
///
/// # Errors
///
/// Returns [`DspError::TooShort`] for signals with fewer than 4 samples and
/// [`DspError::InvalidParameter`] for non-positive `fs`.
pub fn periodogram(signal: &[f64], fs: f64, window: WindowKind) -> Result<Spectrum, DspError> {
    periodogram_with(signal, fs, window, ExtractPrecision::F64)
}

/// Precision-dispatching twin of [`periodogram`]: the detrend/window/FFT
/// arithmetic runs at `precision`, scaling and output stay `f64`.
///
/// # Errors
///
/// Same contract as [`periodogram`].
pub fn periodogram_with(
    signal: &[f64],
    fs: f64,
    window: WindowKind,
    precision: ExtractPrecision,
) -> Result<Spectrum, DspError> {
    if signal.len() < 4 {
        return Err(DspError::TooShort {
            needed: 4,
            got: signal.len(),
        });
    }
    if fs <= 0.0 {
        return Err(DspError::InvalidParameter {
            name: "fs",
            reason: "must be positive",
        });
    }
    with_plan(signal.len(), window, |slot| {
        segment_power(slot, signal, fs, precision);
        let nfft = slot.plan.len();
        let nbins = nfft / 2 + 1;
        let freqs = (0..nbins).map(|k| k as f64 * fs / nfft as f64).collect();
        Ok(Spectrum {
            freqs,
            power: slot.pow.clone(),
        })
    })
}

/// Pre-fusion reference for [`periodogram`]: rebuilds the window, allocates
/// and zero-pads a full complex spectrum per call. Kept as the accuracy
/// reference for the planned real-input path and as the honest legacy
/// bench row.
///
/// # Errors
///
/// Same contract as [`periodogram`].
pub fn periodogram_reference(
    signal: &[f64],
    fs: f64,
    window: WindowKind,
) -> Result<Spectrum, DspError> {
    if signal.len() < 4 {
        return Err(DspError::TooShort {
            needed: 4,
            got: signal.len(),
        });
    }
    if fs <= 0.0 {
        return Err(DspError::InvalidParameter {
            name: "fs",
            reason: "must be positive",
        });
    }
    let m = crate::stats::mean(signal);
    let mut buf: Vec<f64> = signal.iter().map(|v| v - m).collect();
    let wpow = window.apply(&mut buf);
    let nfft = next_pow2(buf.len());
    let spec = rfft(&buf);
    let nbins = nfft / 2 + 1;
    let scale = 1.0 / (fs * wpow);
    let mut power = Vec::with_capacity(nbins);
    let mut freqs = Vec::with_capacity(nbins);
    for (k, s) in spec.iter().take(nbins).enumerate() {
        let mut p = s.norm_sqr() * scale;
        // One-sided: double everything except DC and Nyquist.
        if k != 0 && k != nfft / 2 {
            p *= 2.0;
        }
        power.push(p);
        freqs.push(k as f64 * fs / nfft as f64);
    }
    Ok(Spectrum { freqs, power })
}

/// Welch's method: averaged periodograms of `nperseg`-sample segments with
/// `overlap` fractional overlap in `[0, 1)`.
///
/// The window, FFT plan and all work buffers are hoisted out of the segment
/// loop through the thread-local plan cache, so the per-segment cost is one
/// fused fill plus one half-size FFT — no allocation, no window rebuild.
///
/// # Errors
///
/// Returns [`DspError::TooShort`] when the signal is shorter than `nperseg`,
/// and [`DspError::InvalidParameter`] for bad `overlap`/`nperseg`/`fs`.
pub fn welch(
    signal: &[f64],
    fs: f64,
    nperseg: usize,
    overlap: f64,
    window: WindowKind,
) -> Result<Spectrum, DspError> {
    welch_with(signal, fs, nperseg, overlap, window, ExtractPrecision::F64)
}

/// Precision-dispatching twin of [`welch`]: per-segment detrend/window/FFT
/// arithmetic runs at `precision`, accumulation and output stay `f64`.
///
/// # Errors
///
/// Same contract as [`welch`].
pub fn welch_with(
    signal: &[f64],
    fs: f64,
    nperseg: usize,
    overlap: f64,
    window: WindowKind,
    precision: ExtractPrecision,
) -> Result<Spectrum, DspError> {
    if nperseg < 4 {
        return Err(DspError::InvalidParameter {
            name: "nperseg",
            reason: "must be >= 4",
        });
    }
    if !(0.0..1.0).contains(&overlap) {
        return Err(DspError::InvalidParameter {
            name: "overlap",
            reason: "must be in [0,1)",
        });
    }
    if signal.len() < nperseg {
        return Err(DspError::TooShort {
            needed: nperseg,
            got: signal.len(),
        });
    }
    let step = ((nperseg as f64) * (1.0 - overlap)).max(1.0) as usize;
    with_plan(nperseg, window, |slot| {
        let nfft = slot.plan.len();
        let nbins = nfft / 2 + 1;
        let mut acc = vec![0.0f64; nbins];
        let mut count = 0usize;
        let mut start = 0usize;
        while start + nperseg <= signal.len() {
            segment_power(slot, &signal[start..start + nperseg], fs, precision);
            for (a, &p) in acc.iter_mut().zip(slot.pow.iter()) {
                *a += p;
            }
            count += 1;
            start += step;
        }
        for a in &mut acc {
            *a /= count as f64;
        }
        let freqs = (0..nbins).map(|k| k as f64 * fs / nfft as f64).collect();
        Ok(Spectrum { freqs, power: acc })
    })
}

/// Pre-fusion reference for [`welch`]: folds [`periodogram_reference`] per
/// segment, rebuilding the window and reallocating the FFT buffers each
/// time. Kept for the equivalence suite and the legacy bench rows.
///
/// # Errors
///
/// Same contract as [`welch`].
pub fn welch_reference(
    signal: &[f64],
    fs: f64,
    nperseg: usize,
    overlap: f64,
    window: WindowKind,
) -> Result<Spectrum, DspError> {
    if nperseg < 4 {
        return Err(DspError::InvalidParameter {
            name: "nperseg",
            reason: "must be >= 4",
        });
    }
    if !(0.0..1.0).contains(&overlap) {
        return Err(DspError::InvalidParameter {
            name: "overlap",
            reason: "must be in [0,1)",
        });
    }
    if signal.len() < nperseg {
        return Err(DspError::TooShort {
            needed: nperseg,
            got: signal.len(),
        });
    }
    let step = ((nperseg as f64) * (1.0 - overlap)).max(1.0) as usize;
    let mut acc: Option<Spectrum> = None;
    let mut count = 0usize;
    let mut start = 0usize;
    while start + nperseg <= signal.len() {
        let seg = &signal[start..start + nperseg];
        let p = periodogram_reference(seg, fs, window)?;
        match &mut acc {
            None => acc = Some(p),
            Some(a) => {
                for (ap, sp) in a.power.iter_mut().zip(p.power.iter()) {
                    *ap += sp;
                }
            }
        }
        count += 1;
        start += step;
    }
    let mut out = acc.expect("at least one segment fits by the length check");
    for p in &mut out.power {
        *p /= count as f64;
    }
    Ok(out)
}

/// Lomb–Scargle normalised periodogram for unevenly sampled data, evaluated
/// on `freqs` (Hz). Used for RR-interval (tachogram) spectra where samples
/// arrive at beat times.
///
/// # Errors
///
/// Returns [`DspError::LengthMismatch`] when `t` and `y` differ in length,
/// [`DspError::TooShort`] for fewer than 4 samples and
/// [`DspError::InvalidParameter`] for an empty frequency grid.
pub fn lomb_scargle(t: &[f64], y: &[f64], freqs: &[f64]) -> Result<Spectrum, DspError> {
    if t.len() != y.len() {
        return Err(DspError::LengthMismatch {
            left: t.len(),
            right: y.len(),
        });
    }
    if t.len() < 4 {
        return Err(DspError::TooShort {
            needed: 4,
            got: t.len(),
        });
    }
    if freqs.is_empty() {
        return Err(DspError::InvalidParameter {
            name: "freqs",
            reason: "must be non-empty",
        });
    }
    let my = crate::stats::mean(y);
    let vy = crate::stats::sample_variance(y);
    let yc: Vec<f64> = y.iter().map(|v| v - my).collect();
    let mut power = Vec::with_capacity(freqs.len());
    for &f in freqs {
        if f <= 0.0 {
            power.push(0.0);
            continue;
        }
        let w = 2.0 * PI * f;
        // Time offset tau that makes the basis orthogonal.
        let (mut s2, mut c2) = (0.0, 0.0);
        for &ti in t {
            s2 += (2.0 * w * ti).sin();
            c2 += (2.0 * w * ti).cos();
        }
        let tau = (s2.atan2(c2)) / (2.0 * w);
        let (mut cs, mut cc, mut ss, mut sc) = (0.0, 0.0, 0.0, 0.0);
        for (&ti, &yi) in t.iter().zip(yc.iter()) {
            let arg = w * (ti - tau);
            let c = arg.cos();
            let s = arg.sin();
            cs += yi * c;
            sc += yi * s;
            cc += c * c;
            ss += s * s;
        }
        let p = if vy > 0.0 && cc > 0.0 && ss > 0.0 {
            0.5 * (cs * cs / cc + sc * sc / ss) / vy
        } else {
            0.0
        };
        power.push(p);
    }
    Ok(Spectrum {
        freqs: freqs.to_vec(),
        power,
    })
}

/// Builds a linear frequency grid `[lo, hi]` with `n` points.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![lo];
    }
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(fs: f64, f: f64, n: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * PI * f * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn periodogram_finds_tone() {
        let fs = 64.0;
        let sig = tone(fs, 8.0, 512, 1.0);
        let spec = periodogram(&sig, fs, WindowKind::Hann).unwrap();
        let peak = spec.peak_frequency().unwrap();
        assert!((peak - 8.0).abs() < 0.5, "peak at {peak}");
    }

    #[test]
    fn periodogram_power_approximates_variance() {
        let fs = 32.0;
        let sig = tone(fs, 4.0, 1024, 2.0); // variance = amp^2/2 = 2.0
        let spec = periodogram(&sig, fs, WindowKind::Hann).unwrap();
        let total = spec.total_power();
        assert!((total - 2.0).abs() / 2.0 < 0.1, "total {total}");
    }

    #[test]
    fn periodogram_rejects_bad_inputs() {
        assert!(periodogram(&[1.0, 2.0], 10.0, WindowKind::Hann).is_err());
        assert!(periodogram(&[1.0; 8], 0.0, WindowKind::Hann).is_err());
    }

    #[test]
    fn band_power_splits_two_tones() {
        let fs = 64.0;
        let n = 2048;
        let sig: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (2.0 * PI * 4.0 * t).sin() + 3.0 * (2.0 * PI * 12.0 * t).sin()
            })
            .collect();
        let spec = periodogram(&sig, fs, WindowKind::Hann).unwrap();
        let low = spec.band_power(2.0, 6.0);
        let high = spec.band_power(10.0, 14.0);
        // amp 1 vs amp 3 -> power ratio 9.
        assert!((high / low - 9.0).abs() < 1.5, "ratio {}", high / low);
    }

    #[test]
    fn welch_reduces_variance_of_estimate() {
        // White noise: Welch estimate should be flatter than the raw
        // periodogram. Compare coefficient of variation across bins.
        let mut seed = 0x12345678u64;
        let mut rand = || {
            // xorshift
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) - 0.5
        };
        let sig: Vec<f64> = (0..4096).map(|_| rand()).collect();
        let fs = 100.0;
        let raw = periodogram(&sig, fs, WindowKind::Hann).unwrap();
        let wel = welch(&sig, fs, 256, 0.5, WindowKind::Hann).unwrap();
        let cv = |s: &Spectrum| {
            let m = crate::stats::mean(&s.power[1..]);
            crate::stats::std_dev(&s.power[1..]) / m
        };
        assert!(cv(&wel) < cv(&raw) * 0.5);
    }

    #[test]
    fn welch_validates_parameters() {
        let sig = vec![0.0; 100];
        assert!(welch(&sig, 10.0, 2, 0.5, WindowKind::Hann).is_err());
        assert!(welch(&sig, 10.0, 64, 1.0, WindowKind::Hann).is_err());
        assert!(welch(&sig, 10.0, 128, 0.5, WindowKind::Hann).is_err());
    }

    #[test]
    fn lomb_scargle_finds_tone_in_uneven_samples() {
        // Jittered sampling times.
        let mut seed = 99u64;
        let mut rand = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed as f64 / u64::MAX as f64
        };
        let f0 = 0.25; // Hz (HRV-like)
        let t: Vec<f64> = (0..400).map(|i| i as f64 * 0.8 + 0.3 * rand()).collect();
        let y: Vec<f64> = t.iter().map(|&ti| (2.0 * PI * f0 * ti).sin()).collect();
        let freqs = linspace(0.01, 0.5, 200);
        let spec = lomb_scargle(&t, &y, &freqs).unwrap();
        let peak = spec.peak_frequency().unwrap();
        assert!((peak - f0).abs() < 0.02, "peak {peak}");
    }

    #[test]
    fn lomb_scargle_validates() {
        assert!(lomb_scargle(&[1.0, 2.0], &[1.0], &[0.1]).is_err());
        assert!(lomb_scargle(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], &[0.1]).is_err());
        let t = [0.0, 1.0, 2.0, 3.0];
        assert!(lomb_scargle(&t, &[0.0; 4], &[]).is_err());
    }

    #[test]
    fn band_power_clipping() {
        let spec = Spectrum {
            freqs: vec![0.0, 1.0, 2.0],
            power: vec![1.0, 1.0, 1.0],
        };
        assert!((spec.band_power(0.0, 2.0) - 2.0).abs() < 1e-12);
        assert!((spec.band_power(0.5, 1.5) - 1.0).abs() < 1e-12);
        assert_eq!(spec.band_power(3.0, 4.0), 0.0);
        assert_eq!(spec.band_power(1.0, 1.0), 0.0);
    }

    #[test]
    fn linspace_edges() {
        assert!(linspace(0.0, 1.0, 0).is_empty());
        assert_eq!(linspace(2.0, 9.0, 1), vec![2.0]);
        let g = linspace(0.0, 1.0, 5);
        assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    fn two_tone(fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (2.0 * PI * 0.31 * t).sin() + 0.4 * (2.0 * PI * 1.7 * t).sin() + 0.05 * t
            })
            .collect()
    }

    #[test]
    fn planned_periodogram_tracks_reference() {
        let fs = 4.0;
        for n in [20usize, 128, 157, 500] {
            let sig = two_tone(fs, n);
            let new = periodogram(&sig, fs, WindowKind::Hann).unwrap();
            let old = periodogram_reference(&sig, fs, WindowKind::Hann).unwrap();
            assert_eq!(new.freqs, old.freqs, "n {n}");
            let pmax = old.power.iter().fold(0.0f64, |a, &b| a.max(b));
            for (a, b) in new.power.iter().zip(old.power.iter()) {
                assert!((a - b).abs() <= 1e-12 * pmax, "n {n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn hoisted_welch_tracks_reference() {
        let fs = 4.0;
        let sig = two_tone(fs, 600);
        let new = welch(&sig, fs, 128, 0.5, WindowKind::Hann).unwrap();
        let old = welch_reference(&sig, fs, 128, 0.5, WindowKind::Hann).unwrap();
        assert_eq!(new.freqs, old.freqs);
        let pmax = old.power.iter().fold(0.0f64, |a, &b| a.max(b));
        for (a, b) in new.power.iter().zip(old.power.iter()) {
            assert!((a - b).abs() <= 1e-12 * pmax, "{a} vs {b}");
        }
    }

    #[test]
    fn welch_is_exact_fold_of_planned_periodograms() {
        // The hoisted loop must be bit-identical to averaging the planned
        // periodogram of each segment by hand.
        let fs = 4.0;
        let sig = two_tone(fs, 600);
        let nperseg = 128;
        let step = 64;
        let wel = welch(&sig, fs, nperseg, 0.5, WindowKind::Hann).unwrap();
        let mut acc = vec![0.0f64; nperseg / 2 + 1];
        let mut count = 0usize;
        let mut start = 0usize;
        while start + nperseg <= sig.len() {
            let p = periodogram(&sig[start..start + nperseg], fs, WindowKind::Hann).unwrap();
            for (a, &v) in acc.iter_mut().zip(p.power.iter()) {
                *a += v;
            }
            count += 1;
            start += step;
        }
        for a in &mut acc {
            *a /= count as f64;
        }
        assert_eq!(wel.power.len(), acc.len());
        for (a, b) in wel.power.iter().zip(acc.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f32_welch_tracks_f64() {
        let fs = 4.0;
        let sig = two_tone(fs, 600);
        let hi = welch(&sig, fs, 128, 0.5, WindowKind::Hann).unwrap();
        let lo = welch_with(&sig, fs, 128, 0.5, WindowKind::Hann, ExtractPrecision::F32).unwrap();
        assert_eq!(hi.freqs, lo.freqs);
        let pmax = hi.power.iter().fold(0.0f64, |a, &b| a.max(b));
        for (a, b) in lo.power.iter().zip(hi.power.iter()) {
            assert!((a - b).abs() <= 1e-5 * pmax, "{a} vs {b}");
        }
    }
}
